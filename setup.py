"""Shim for legacy editable installs (`pip install -e . --no-use-pep517`).

The execution environment has no `wheel` package and no network, so the
PEP-517 editable path (which builds a wheel) is unavailable; this shim
lets setuptools' classic `develop` command handle `pip install -e .`.
All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
