"""Adversarial instance tests (failure injection for the schedulers)."""

import numpy as np
import pytest

import repro
from repro.core.baseline import schedule_baseline, schedule_baseline_nosync
from repro.core.openshop import schedule_openshop
from repro.workloads.adversarial import (
    caterpillar_killer,
    theorem2_chain,
    worst_case_search,
)


class TestCaterpillarKiller:
    def test_one_long_event_per_step(self):
        problem = caterpillar_killer(9, long=1.0, short=1e-3)
        cost = problem.cost
        for step in range(1, 9):
            count = sum(
                1 for i in range(9) if cost[i, (i + step) % 9] >= 1.0
            )
            assert count == 1

    def test_barrier_ratio_scales_with_p(self):
        for p in (5, 9, 15):
            problem = caterpillar_killer(p, long=1.0, short=1e-4)
            ratio = (
                schedule_baseline(problem).completion_time
                / problem.lower_bound()
            )
            # each step costs ~1, lower bound ~1 + P*short
            assert ratio > 0.8 * (p - 1)

    def test_nosync_still_within_half_p(self):
        problem = caterpillar_killer(9, long=1.0, short=1e-4)
        ratio = (
            schedule_baseline_nosync(problem).completion_time
            / problem.lower_bound()
        )
        assert ratio <= 4.5 + 1e-9

    def test_adaptive_schedulers_unaffected(self):
        problem = caterpillar_killer(9)
        for name in ("openshop", "max_matching"):
            ratio = (
                repro.get_scheduler(name)(problem).completion_time
                / problem.lower_bound()
            )
            assert ratio < 1.5

    def test_validation(self):
        with pytest.raises(ValueError):
            caterpillar_killer(8)  # even P
        with pytest.raises(ValueError):
            caterpillar_killer(9, long=1.0, short=2.0)


class TestTheorem2Chain:
    def test_ratio_tight_at_every_p(self):
        for p in (4, 6, 8, 10):
            problem = theorem2_chain(p, epsilon=1e-6)
            ratio = (
                schedule_baseline_nosync(problem).completion_time
                / problem.lower_bound()
            )
            assert ratio == pytest.approx(p / 2, rel=1e-3)

    def test_never_exceeds_bound(self):
        for p in (3, 5, 7):
            problem = theorem2_chain(p, epsilon=0.01)
            ratio = (
                schedule_baseline_nosync(problem).completion_time
                / problem.lower_bound()
            )
            assert ratio <= p / 2 + 1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            theorem2_chain(1)
        with pytest.raises(ValueError):
            theorem2_chain(4, epsilon=0.0)


class TestWorstCaseSearch:
    def test_returns_instance_and_ratio(self):
        problem, ratio = worst_case_search(
            schedule_openshop, 4, trials=20, rng=0
        )
        assert problem.num_procs == 4
        assert ratio >= 1.0

    def test_openshop_never_beyond_theorem3(self):
        _, ratio = worst_case_search(schedule_openshop, 6, trials=50, rng=1)
        assert ratio <= 2.0

    def test_deterministic(self):
        a = worst_case_search(schedule_openshop, 4, trials=10, rng=7)
        b = worst_case_search(schedule_openshop, 4, trials=10, rng=7)
        assert a[1] == b[1]

    def test_invalid_trials(self):
        with pytest.raises(ValueError):
            worst_case_search(schedule_openshop, 4, trials=0)
