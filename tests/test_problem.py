"""TotalExchangeProblem tests."""

import numpy as np
import pytest

from repro.core.problem import (
    TotalExchangeProblem,
    example_problem,
    tight_baseline_instance,
)
from repro.directory.service import DirectorySnapshot
from repro.model.messages import UniformSizes


def test_construction_and_immutability():
    cost = np.array([[0.0, 1.0], [2.0, 0.0]])
    problem = TotalExchangeProblem(cost=cost)
    with pytest.raises(ValueError):
        problem.cost[0, 1] = 5.0
    cost[0, 1] = 9.0  # source mutation does not leak
    assert problem.cost[0, 1] == 1.0


def test_rejects_negative_costs():
    with pytest.raises(ValueError):
        TotalExchangeProblem(cost=np.array([[0.0, -1.0], [1.0, 0.0]]))


def test_sizes_shape_checked():
    with pytest.raises(ValueError):
        TotalExchangeProblem(cost=np.zeros((2, 2)), sizes=np.zeros((3, 3)))


def test_paper_matrix_roundtrip():
    paper_c = np.array([[0.0, 3.0], [5.0, 0.0]])
    problem = TotalExchangeProblem.from_paper_matrix(paper_c)
    # C[i][j] is the time from P_j to P_i, so cost[j][i] == C[i][j].
    assert problem.cost[1, 0] == 3.0
    assert problem.cost[0, 1] == 5.0
    assert np.array_equal(problem.paper_matrix(), paper_c)


def test_from_snapshot():
    latency = np.array([[0.0, 0.5], [0.5, 0.0]])
    bandwidth = np.array([[np.inf, 2.0], [2.0, np.inf]])
    snap = DirectorySnapshot(latency=latency, bandwidth=bandwidth)
    problem = TotalExchangeProblem.from_snapshot(snap, UniformSizes(4.0))
    assert problem.cost[0, 1] == pytest.approx(0.5 + 2.0)
    assert problem.sizes[0, 1] == 4.0


def test_lower_bound_send_dominated():
    cost = np.array([[0.0, 5.0, 5.0], [1.0, 0.0, 1.0], [1.0, 1.0, 0.0]])
    problem = TotalExchangeProblem(cost=cost)
    assert problem.lower_bound() == pytest.approx(10.0)


def test_lower_bound_recv_dominated():
    cost = np.array([[0.0, 1.0, 5.0], [1.0, 0.0, 5.0], [1.0, 1.0, 0.0]])
    problem = TotalExchangeProblem(cost=cost)
    # column 2 receives 10
    assert problem.lower_bound() == pytest.approx(10.0)


def test_send_recv_totals():
    problem = example_problem()
    assert problem.send_totals()[0] == pytest.approx(16.0)
    assert problem.recv_totals()[2] == pytest.approx(14.0)


def test_positive_events_count():
    problem = example_problem()
    assert len(problem.positive_events()) == 20  # 5*5 minus the diagonal


def test_scaled():
    problem = example_problem()
    doubled = problem.scaled(2.0)
    assert doubled.lower_bound() == pytest.approx(2 * problem.lower_bound())
    with pytest.raises(ValueError):
        problem.scaled(0.0)


def test_restricted_to():
    problem = example_problem()
    sub = problem.restricted_to([(0, 1), (2, 3)])
    assert sub.cost[0, 1] == problem.cost[0, 1]
    assert sub.cost[0, 2] == 0.0
    assert len(sub.positive_events()) == 2


def test_size_of_default_zero():
    assert example_problem().size_of(0, 1) == 0.0


def test_example_problem_characteristics():
    problem = example_problem()
    assert problem.num_procs == 5
    assert problem.lower_bound() == pytest.approx(16.0)
    assert np.all(np.diag(problem.cost) == 0.0)


class TestTightBaselineInstance:
    def test_lower_bound(self):
        problem = tight_baseline_instance(0.001)
        assert problem.lower_bound() == pytest.approx(2.002)

    def test_has_self_message(self):
        problem = tight_baseline_instance(0.001)
        assert problem.cost[1, 1] == 1.0  # paper's C[1,1]

    def test_epsilon_validation(self):
        with pytest.raises(ValueError):
            tight_baseline_instance(0.0)
        with pytest.raises(ValueError):
            tight_baseline_instance(1.0)
