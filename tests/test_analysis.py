"""Schedule analysis tests."""

import numpy as np
import pytest

import repro
from repro.analysis import (
    analyze_schedule,
    bottleneck_processor,
    compare_schedules,
)
from repro.core.problem import example_problem
from repro.timing.events import CommEvent, Schedule


def test_analyze_simple_schedule():
    schedule = Schedule.from_events(
        3,
        [
            CommEvent(start=0, src=0, dst=1, duration=2),
            CommEvent(start=5, src=0, dst=2, duration=1),
            CommEvent(start=0, src=1, dst=2, duration=4),
        ],
    )
    stats = analyze_schedule(schedule)
    assert stats.completion_time == pytest.approx(6.0)
    assert stats.total_events == 3
    assert stats.total_busy == pytest.approx(7.0)
    p0 = stats.processor(0)
    assert p0.send_busy == pytest.approx(3.0)
    assert p0.send_idle == pytest.approx(3.0)  # gap between the sends
    assert p0.send_utilisation == pytest.approx(0.5)


def test_analyze_ignores_markers():
    schedule = Schedule.from_events(
        2, [CommEvent(start=0, src=0, dst=1, duration=0.0)]
    )
    stats = analyze_schedule(schedule)
    assert stats.total_events == 0
    assert stats.completion_time == 0.0


def test_openshop_utilisation_higher_than_baseline():
    problem = example_problem()
    open_stats = analyze_schedule(repro.schedule_openshop(problem))
    base_stats = analyze_schedule(repro.schedule_baseline(problem))
    assert open_stats.mean_utilisation > base_stats.mean_utilisation


def test_bottleneck_processor():
    problem = example_problem()
    proc, port, busy = bottleneck_processor(problem)
    assert (proc, port) == (0, "send")
    assert busy == pytest.approx(16.0)


def test_bottleneck_receive_side():
    cost = np.array([[0.0, 1.0, 9.0], [1.0, 0.0, 9.0], [1.0, 1.0, 0.0]])
    problem = repro.TotalExchangeProblem(cost=cost)
    proc, port, busy = bottleneck_processor(problem)
    assert (proc, port) == (2, "recv")
    assert busy == pytest.approx(18.0)


def test_compare_schedules_table():
    problem = example_problem()
    table = compare_schedules(
        {
            "openshop": repro.schedule_openshop(problem),
            "baseline": repro.schedule_baseline(problem),
        },
        lower_bound=problem.lower_bound(),
    )
    assert "ratio to LB" in table
    assert "openshop" in table
    assert "1.500" in table  # baseline ratio
