"""Integration tests: full pipelines across subsystems."""

import numpy as np
import pytest

import repro
from repro.adaptive import (
    HalvingCheckpoints,
    NoCheckpoints,
    piecewise_cost_provider,
    run_adaptive,
)
from repro.directory import TopologyDirectory
from repro.directory.dynamics import RandomWalkLoad
from repro.network.topology import Metacomputer
from repro.sim.fluid import fluid_execute_orders
from repro.util.units import GBIT_PER_S, MBIT_PER_S, seconds_from_ms
from repro.workloads import transpose_sizes


def build_metacomputer() -> Metacomputer:
    return Metacomputer.build(
        {"west": 3, "east": 3},
        access_latency=seconds_from_ms(0.5),
        access_bandwidth=GBIT_PER_S,
        backbone=[("west", "east", seconds_from_ms(40), 10 * MBIT_PER_S)],
    )


def test_topology_to_schedule_pipeline():
    """Topology -> directory -> problem -> all schedulers -> validation."""
    system = build_metacomputer()
    directory = TopologyDirectory(
        system, software_overhead=seconds_from_ms(10)
    )
    sizes = transpose_sizes(600, system.num_procs)
    problem = repro.TotalExchangeProblem.from_snapshot(
        directory.snapshot(), sizes
    )
    lb = problem.lower_bound()
    times = {}
    for name in repro.scheduler_names():
        schedule = repro.get_scheduler(name)(problem)
        repro.check_schedule(schedule, problem.cost)
        times[name] = schedule.completion_time
        assert schedule.completion_time >= lb - 1e-9
    # the paper's qualitative ordering
    assert times["openshop"] <= times["baseline"]
    assert times["max_matching"] <= times["baseline"]


def test_gusto_quickstart_flow():
    directory = repro.gusto_directory()
    problem = repro.TotalExchangeProblem.from_snapshot(
        directory.snapshot(), repro.UniformSizes(repro.MEGABYTE)
    )
    schedule = repro.schedule_openshop(problem)
    assert schedule.completion_time <= 2 * problem.lower_bound()
    # GUSTO's slowest pair (IND at 246-311 kbit/s) dominates: schedule
    # should be tens of seconds for 1 MB messages.
    assert 10.0 < schedule.completion_time < 1000.0


def test_dynamic_directory_drift_and_rescheduling():
    """Directory with random-walk load -> drifted snapshots -> adaptivity."""
    system = build_metacomputer()
    directory = TopologyDirectory(
        system,
        load_factory=lambda edge: RandomWalkLoad(
            mean=1.0, volatility=0.6, step=5.0, rng=hash(edge) % (2**31)
        ),
        software_overhead=seconds_from_ms(10),
    )
    sizes = repro.MixedSizes().sizes(system.num_procs, rng=3)
    estimate = repro.TotalExchangeProblem.from_snapshot(
        directory.snapshot(), sizes
    )
    directory.advance(300.0)
    actual = repro.TotalExchangeProblem.from_snapshot(
        directory.snapshot(), sizes
    )
    provider = piecewise_cost_provider(
        [0.0, 0.2 * estimate.lower_bound()], [estimate.cost, actual.cost]
    )
    stale = run_adaptive(estimate, provider, policy=NoCheckpoints())
    adaptive = run_adaptive(estimate, provider, policy=HalvingCheckpoints())
    # adaptive never loses badly; usually it wins
    assert adaptive.completion_time <= stale.completion_time * 1.1


def test_fluid_vs_analytical_model_error():
    """The analytical model underestimates under heavy link sharing."""
    system = build_metacomputer()
    sizes = np.zeros((6, 6))
    # all west nodes ship 2 MB to all east nodes over one backbone
    for i in range(3):
        for j in range(3, 6):
            sizes[i, j] = 2e6
    directory = TopologyDirectory(system)
    problem = repro.TotalExchangeProblem.from_snapshot(
        directory.snapshot(), sizes
    )
    planned = repro.schedule_openshop(problem)
    orders = planned.send_orders()
    fluid = fluid_execute_orders(system, orders, sizes)
    # port serialisation means at most 3 concurrent backbone flows; the
    # fluid time exceeds the analytical plan but within the sharing
    # factor (3 concurrent flows -> at most ~3x).
    assert fluid.completion_time >= planned.completion_time - 1e-6
    assert fluid.completion_time <= 3.5 * planned.completion_time


def test_replay_consistency_with_strict_semantics():
    """Replaying the plan under its own costs reproduces it exactly."""
    system = build_metacomputer()
    directory = TopologyDirectory(system)
    problem = repro.TotalExchangeProblem.from_snapshot(
        directory.snapshot(), repro.UniformSizes(5e5)
    )
    for name in repro.scheduler_names():
        planned = repro.get_scheduler(name)(problem)
        replayed = repro.replay_schedule(planned, problem)
        assert replayed.completion_time == pytest.approx(
            planned.completion_time
        ), name


def test_end_to_end_quality_ordering_on_server_workload():
    """Aggregate check of the paper's Figure 12 story at moderate scale."""
    from repro.experiments.figures import figure12_servers

    result = figure12_servers(proc_counts=(20,), trials=3, seed=1)
    assert result.mean_ratio("openshop") < 1.15
    assert result.mean_ratio("max_matching") < 1.25
    assert result.mean_ratio("baseline") > 1.3
