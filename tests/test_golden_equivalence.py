"""Golden-equivalence tests: optimized kernels == frozen seed kernels.

The perf rewrite of the greedy composition, the executors, and the
matching backend must be *invisible* except for speed.  These tests pin
every optimized kernel to the seed implementations preserved verbatim in
:mod:`repro.perf.reference`, comparing whole :class:`Schedule` objects
(CommEvent-by-CommEvent equality) across processor counts, seeds, and
zero-cost densities.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.adaptive.incremental import RefineResult, refine_orders
from repro.core.greedy import greedy_orders, greedy_steps, schedule_greedy
from repro.core.matching import matching_rounds, schedule_matching
from repro.core.openshop import openshop_events, schedule_openshop
from repro.core.problem import TotalExchangeProblem, tight_baseline_instance
from repro.experiments.harness import run_sweep
from repro.model.messages import UniformSizes
from repro.perf import reference
from repro.sim.engine import (
    execute_orders,
    execute_orders_on_cost,
    execute_steps_barrier,
    execute_steps_strict,
)
from tests.conftest import random_problem

PROC_COUNTS = (2, 3, 8, 17, 50)
SEEDS = (0, 1, 2)

#: The ISSUE's open shop pin sizes: odd/paper/seed-headroom points.
OPENSHOP_PROC_COUNTS = (13, 50, 100)


def _sized_problem(num_procs: int, seed: int, zero_fraction: float = 0.0):
    problem = random_problem(
        num_procs, seed=seed, zero_fraction=zero_fraction
    )
    rng = np.random.default_rng(seed + 1)
    sizes = rng.uniform(1e3, 1e6, size=problem.cost.shape)
    sizes[problem.cost == 0] = 0.0
    return TotalExchangeProblem(cost=problem.cost, sizes=sizes)


@pytest.mark.parametrize("num_procs", PROC_COUNTS)
@pytest.mark.parametrize("seed", SEEDS)
def test_greedy_chain_matches_seed(num_procs, seed):
    problem = _sized_problem(num_procs, seed)
    assert greedy_steps(problem.cost) == reference.greedy_steps_reference(
        problem.cost
    )
    assert greedy_orders(problem) == reference.greedy_orders_reference(
        problem
    )
    assert schedule_greedy(problem) == reference.schedule_greedy_reference(
        problem
    )


@pytest.mark.parametrize("num_procs", (3, 8, 17))
@pytest.mark.parametrize("seed", SEEDS)
def test_greedy_chain_matches_seed_with_free_messages(num_procs, seed):
    problem = _sized_problem(num_procs, seed, zero_fraction=0.3)
    assert greedy_steps(problem.cost) == reference.greedy_steps_reference(
        problem.cost
    )
    assert greedy_orders(problem) == reference.greedy_orders_reference(
        problem
    )
    assert schedule_greedy(problem) == reference.schedule_greedy_reference(
        problem
    )


@pytest.mark.parametrize("num_procs", PROC_COUNTS)
@pytest.mark.parametrize("seed", SEEDS)
def test_order_executor_matches_seed(num_procs, seed):
    problem = _sized_problem(num_procs, seed, zero_fraction=0.2)
    orders = greedy_orders(problem)
    fast = execute_orders_on_cost(
        problem.cost, orders, sizes=problem.sizes
    )
    slow = reference.execute_orders_on_cost_reference(
        problem.cost, orders, sizes=problem.sizes
    )
    assert fast == slow


@pytest.mark.parametrize("num_procs", PROC_COUNTS)
@pytest.mark.parametrize("seed", (0, 1))
def test_step_executors_match_seed(num_procs, seed):
    problem = _sized_problem(num_procs, seed, zero_fraction=0.2)
    steps = greedy_steps(problem.cost)
    assert execute_steps_strict(
        problem.cost, steps, sizes=problem.sizes
    ) == reference.execute_steps_strict_reference(
        problem.cost, steps, sizes=problem.sizes
    )
    assert execute_steps_barrier(
        problem.cost, steps, sizes=problem.sizes
    ) == reference.execute_steps_barrier_reference(
        problem.cost, steps, sizes=problem.sizes
    )


@pytest.mark.parametrize("num_procs", (2, 3, 8, 17))
@pytest.mark.parametrize("backend", ("scipy", "networkx"))
def test_matching_rounds_match_seed(num_procs, backend):
    problem = _sized_problem(num_procs, seed=0)
    ours = matching_rounds(problem.cost, backend=backend)
    seed_rounds = reference.matching_rounds_reference(
        problem.cost, backend=backend
    )
    assert len(ours) == len(seed_rounds)
    for a, b in zip(ours, seed_rounds):
        assert (a == b).all()


def test_matching_schedule_matches_seed_executor():
    problem = _sized_problem(8, seed=2)
    rounds = matching_rounds(problem.cost)
    steps = [
        [(src, int(dst)) for src, dst in enumerate(perm)] for perm in rounds
    ]
    assert schedule_matching(problem) == (
        reference.execute_steps_strict_reference(
            problem.cost, steps, sizes=problem.sizes
        )
    )


def test_adversarial_self_message_instance_matches_seed():
    problem = tight_baseline_instance()
    assert schedule_greedy(problem) == reference.schedule_greedy_reference(
        problem
    )
    steps = greedy_steps(problem.cost)
    assert execute_steps_barrier(
        problem.cost, steps, sizes=problem.sizes
    ) == reference.execute_steps_barrier_reference(
        problem.cost, steps, sizes=problem.sizes
    )


def test_lazy_schedule_behaves_like_eager():
    problem = _sized_problem(17, seed=0)
    lazy = schedule_greedy(problem)
    eager = reference.schedule_greedy_reference(problem)
    # Makespan and len read the raw columns before materialization...
    assert lazy.completion_time == eager.completion_time
    assert len(lazy) == len(eager)
    # ...and full event access materializes identical objects.
    assert lazy.events == eager.events
    assert lazy == eager
    assert hash(lazy) == hash(eager)
    assert lazy.send_orders() == eager.send_orders()


@pytest.mark.parametrize("num_procs", OPENSHOP_PROC_COUNTS)
@pytest.mark.parametrize("seed", (0, 1))
def test_openshop_events_match_seed(num_procs, seed):
    problem = _sized_problem(num_procs, seed)
    pairs = list(problem.positive_events())
    fast_send = [0.0] * num_procs
    fast_recv = [0.0] * num_procs
    slow_send = [0.0] * num_procs
    slow_recv = [0.0] * num_procs
    fast = openshop_events(
        problem.cost, pairs, fast_send, fast_recv, sizes=problem.sizes
    )
    slow = reference.openshop_events_reference(
        problem.cost, pairs, slow_send, slow_recv, sizes=problem.sizes
    )
    # Event-by-event identity in pick order, and the in-place availability
    # mutation (the warm-start contract) must land on the same state.
    assert fast == slow
    assert fast_send == slow_send
    assert fast_recv == slow_recv


@pytest.mark.parametrize("num_procs", OPENSHOP_PROC_COUNTS)
@pytest.mark.parametrize("seed", SEEDS)
def test_openshop_events_match_seed_from_warm_state(num_procs, seed):
    # Warm-start entry: ports already busy at staggered times and only a
    # subset of pairs left, as checkpoint rescheduling hands the kernel.
    problem = _sized_problem(num_procs, seed)
    rng = np.random.default_rng(seed + 17)
    all_pairs = list(problem.positive_events())
    keep = rng.random(len(all_pairs)) < 0.4
    pairs = [pair for pair, kept in zip(all_pairs, keep) if kept]
    sendavail = rng.uniform(0.0, 5e-3, size=num_procs).tolist()
    recvavail = rng.uniform(0.0, 5e-3, size=num_procs).tolist()
    fast_send, fast_recv = list(sendavail), list(recvavail)
    slow_send, slow_recv = list(sendavail), list(recvavail)
    fast = openshop_events(
        problem.cost, pairs, fast_send, fast_recv, sizes=problem.sizes
    )
    slow = reference.openshop_events_reference(
        problem.cost, pairs, slow_send, slow_recv, sizes=problem.sizes
    )
    assert fast == slow
    assert fast_send == slow_send
    assert fast_recv == slow_recv


@pytest.mark.parametrize("num_procs", OPENSHOP_PROC_COUNTS)
@pytest.mark.parametrize("zero_fraction", (0.0, 0.3))
def test_openshop_schedule_matches_seed(num_procs, zero_fraction):
    # zero_fraction > 0 exercises the vectorised zero-duration marker
    # path against the seed's scalar double loop.
    problem = _sized_problem(num_procs, seed=0, zero_fraction=zero_fraction)
    assert schedule_openshop(problem) == (
        reference.schedule_openshop_reference(problem)
    )


@pytest.mark.parametrize("num_procs", (1, 2, 7, 33))
@pytest.mark.parametrize("objective", ("max", "min"))
def test_auction_rounds_are_optimal_and_partition(num_procs, objective):
    from scipy.optimize import linear_sum_assignment

    problem = _sized_problem(num_procs, seed=1)
    cost = problem.cost
    rounds = matching_rounds(cost, objective=objective, backend="auction")
    assert len(rounds) == num_procs

    # Partition invariant: the rounds cover all P^2 pairs exactly once.
    rows = np.arange(num_procs)
    seen = np.zeros((num_procs, num_procs), dtype=int)
    for permutation in rounds:
        seen[rows, permutation] += 1
    assert (seen == 1).all()

    # Weight equality: per round, the auction permutation must match a
    # scipy re-solve of the identical masked matrix on matching weight
    # (the permutations themselves may differ between optimal solutions).
    weights = cost.copy()
    penalty = float(cost.max()) * num_procs + 1.0
    used_value = -penalty if objective == "max" else penalty
    for permutation in rounds:
        srow, scol = linear_sum_assignment(
            weights, maximize=(objective == "max")
        )
        optimal_weight = float(weights[srow, scol].sum())
        auction_weight = float(weights[rows, permutation].sum())
        assert auction_weight == pytest.approx(optimal_weight, rel=1e-9)
        weights[rows, permutation] = used_value


def _refine_orders_seed(orders, new_problem, *, old_problem=None, max_passes=2):
    """The seed ``refine_orders``, verbatim: deep-copied candidate per move."""
    from repro.adaptive.incremental import changed_pairs

    current = [list(sender) for sender in orders]
    evaluations = 0

    def evaluate(candidate):
        nonlocal evaluations
        evaluations += 1
        return execute_orders(
            new_problem, candidate, validate=False
        ).completion_time

    initial_time = evaluate(current)
    best_time = initial_time

    if old_problem is not None:
        affected = {src for src, _ in changed_pairs(old_problem, new_problem)}
    else:
        affected = set(range(new_problem.num_procs))
    cost = new_problem.cost
    for src in sorted(affected):
        candidate = [list(sender) for sender in current]
        candidate[src] = sorted(
            current[src], key=lambda dst: (-cost[src, dst], dst)
        )
        time = evaluate(candidate)
        if time < best_time:
            best_time = time
            current = candidate

    for _ in range(max_passes):
        improved = False
        for src in range(new_problem.num_procs):
            for k in range(len(current[src]) - 1):
                candidate = [list(sender) for sender in current]
                candidate[src][k], candidate[src][k + 1] = (
                    candidate[src][k + 1],
                    candidate[src][k],
                )
                time = evaluate(candidate)
                if time < best_time - 1e-12:
                    best_time = time
                    current = candidate
                    improved = True
        if not improved:
            break

    return RefineResult(
        orders=current,
        schedule=execute_orders(new_problem, current, validate=False),
        initial_time=initial_time,
        evaluations=evaluations,
    )


@pytest.mark.parametrize("seed", (0, 3))
def test_refine_orders_matches_seed_behaviour(seed):
    # The in-place swap/undo rewrite must make the same accept/reject
    # decisions as the seed's copy-per-candidate local search.
    old_problem = _sized_problem(8, seed)
    rng = np.random.default_rng(seed + 101)
    drift = rng.uniform(0.5, 1.5, size=old_problem.cost.shape)
    new_problem = TotalExchangeProblem(
        cost=old_problem.cost * drift, sizes=old_problem.sizes
    )
    orders = greedy_orders(old_problem)
    fast = refine_orders(orders, new_problem, old_problem=old_problem)
    slow = _refine_orders_seed(orders, new_problem, old_problem=old_problem)
    assert fast.orders == slow.orders
    assert fast.initial_time == slow.initial_time
    assert fast.evaluations == slow.evaluations
    assert fast.schedule == slow.schedule


def test_parallel_sweep_is_bit_identical_to_serial():
    kwargs = dict(proc_counts=(4, 6), trials=2, seed=5)
    serial = run_sweep("determinism", UniformSizes(1e4), **kwargs)
    parallel = run_sweep(
        "determinism", UniformSizes(1e4), workers=2, **kwargs
    )
    assert parallel == serial


def test_memoized_sweep_is_bit_identical_to_plain():
    kwargs = dict(proc_counts=(4, 5), trials=2, seed=9)
    plain = run_sweep("memo", UniformSizes(1e4), **kwargs)
    first = run_sweep("memo", UniformSizes(1e4), memoize=True, **kwargs)
    again = run_sweep("memo", UniformSizes(1e4), memoize=True, **kwargs)
    assert first == plain
    assert again == plain
