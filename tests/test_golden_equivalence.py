"""Golden-equivalence tests: optimized kernels == frozen seed kernels.

The perf rewrite of the greedy composition, the executors, and the
matching backend must be *invisible* except for speed.  These tests pin
every optimized kernel to the seed implementations preserved verbatim in
:mod:`repro.perf.reference`, comparing whole :class:`Schedule` objects
(CommEvent-by-CommEvent equality) across processor counts, seeds, and
zero-cost densities.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.greedy import greedy_orders, greedy_steps, schedule_greedy
from repro.core.matching import matching_rounds, schedule_matching
from repro.core.problem import TotalExchangeProblem, tight_baseline_instance
from repro.experiments.harness import run_sweep
from repro.model.messages import UniformSizes
from repro.perf import reference
from repro.sim.engine import (
    execute_orders_on_cost,
    execute_steps_barrier,
    execute_steps_strict,
)
from tests.conftest import random_problem

PROC_COUNTS = (2, 3, 8, 17, 50)
SEEDS = (0, 1, 2)


def _sized_problem(num_procs: int, seed: int, zero_fraction: float = 0.0):
    problem = random_problem(
        num_procs, seed=seed, zero_fraction=zero_fraction
    )
    rng = np.random.default_rng(seed + 1)
    sizes = rng.uniform(1e3, 1e6, size=problem.cost.shape)
    sizes[problem.cost == 0] = 0.0
    return TotalExchangeProblem(cost=problem.cost, sizes=sizes)


@pytest.mark.parametrize("num_procs", PROC_COUNTS)
@pytest.mark.parametrize("seed", SEEDS)
def test_greedy_chain_matches_seed(num_procs, seed):
    problem = _sized_problem(num_procs, seed)
    assert greedy_steps(problem.cost) == reference.greedy_steps_reference(
        problem.cost
    )
    assert greedy_orders(problem) == reference.greedy_orders_reference(
        problem
    )
    assert schedule_greedy(problem) == reference.schedule_greedy_reference(
        problem
    )


@pytest.mark.parametrize("num_procs", (3, 8, 17))
@pytest.mark.parametrize("seed", SEEDS)
def test_greedy_chain_matches_seed_with_free_messages(num_procs, seed):
    problem = _sized_problem(num_procs, seed, zero_fraction=0.3)
    assert greedy_steps(problem.cost) == reference.greedy_steps_reference(
        problem.cost
    )
    assert greedy_orders(problem) == reference.greedy_orders_reference(
        problem
    )
    assert schedule_greedy(problem) == reference.schedule_greedy_reference(
        problem
    )


@pytest.mark.parametrize("num_procs", PROC_COUNTS)
@pytest.mark.parametrize("seed", SEEDS)
def test_order_executor_matches_seed(num_procs, seed):
    problem = _sized_problem(num_procs, seed, zero_fraction=0.2)
    orders = greedy_orders(problem)
    fast = execute_orders_on_cost(
        problem.cost, orders, sizes=problem.sizes
    )
    slow = reference.execute_orders_on_cost_reference(
        problem.cost, orders, sizes=problem.sizes
    )
    assert fast == slow


@pytest.mark.parametrize("num_procs", PROC_COUNTS)
@pytest.mark.parametrize("seed", (0, 1))
def test_step_executors_match_seed(num_procs, seed):
    problem = _sized_problem(num_procs, seed, zero_fraction=0.2)
    steps = greedy_steps(problem.cost)
    assert execute_steps_strict(
        problem.cost, steps, sizes=problem.sizes
    ) == reference.execute_steps_strict_reference(
        problem.cost, steps, sizes=problem.sizes
    )
    assert execute_steps_barrier(
        problem.cost, steps, sizes=problem.sizes
    ) == reference.execute_steps_barrier_reference(
        problem.cost, steps, sizes=problem.sizes
    )


@pytest.mark.parametrize("num_procs", (2, 3, 8, 17))
@pytest.mark.parametrize("backend", ("scipy", "networkx"))
def test_matching_rounds_match_seed(num_procs, backend):
    problem = _sized_problem(num_procs, seed=0)
    ours = matching_rounds(problem.cost, backend=backend)
    seed_rounds = reference.matching_rounds_reference(
        problem.cost, backend=backend
    )
    assert len(ours) == len(seed_rounds)
    for a, b in zip(ours, seed_rounds):
        assert (a == b).all()


def test_matching_schedule_matches_seed_executor():
    problem = _sized_problem(8, seed=2)
    rounds = matching_rounds(problem.cost)
    steps = [
        [(src, int(dst)) for src, dst in enumerate(perm)] for perm in rounds
    ]
    assert schedule_matching(problem) == (
        reference.execute_steps_strict_reference(
            problem.cost, steps, sizes=problem.sizes
        )
    )


def test_adversarial_self_message_instance_matches_seed():
    problem = tight_baseline_instance()
    assert schedule_greedy(problem) == reference.schedule_greedy_reference(
        problem
    )
    steps = greedy_steps(problem.cost)
    assert execute_steps_barrier(
        problem.cost, steps, sizes=problem.sizes
    ) == reference.execute_steps_barrier_reference(
        problem.cost, steps, sizes=problem.sizes
    )


def test_lazy_schedule_behaves_like_eager():
    problem = _sized_problem(17, seed=0)
    lazy = schedule_greedy(problem)
    eager = reference.schedule_greedy_reference(problem)
    # Makespan and len read the raw columns before materialization...
    assert lazy.completion_time == eager.completion_time
    assert len(lazy) == len(eager)
    # ...and full event access materializes identical objects.
    assert lazy.events == eager.events
    assert lazy == eager
    assert hash(lazy) == hash(eager)
    assert lazy.send_orders() == eager.send_orders()


def test_parallel_sweep_is_bit_identical_to_serial():
    kwargs = dict(proc_counts=(4, 6), trials=2, seed=5)
    serial = run_sweep("determinism", UniformSizes(1e4), **kwargs)
    parallel = run_sweep(
        "determinism", UniformSizes(1e4), workers=2, **kwargs
    )
    assert parallel == serial


def test_memoized_sweep_is_bit_identical_to_plain():
    kwargs = dict(proc_counts=(4, 5), trials=2, seed=9)
    plain = run_sweep("memo", UniformSizes(1e4), **kwargs)
    first = run_sweep("memo", UniformSizes(1e4), memoize=True, **kwargs)
    again = run_sweep("memo", UniformSizes(1e4), memoize=True, **kwargs)
    assert first == plain
    assert again == plain
