"""The bench regression guard CI runs against the committed record."""

import json

from repro.perf.regression import (
    bench_regressions,
    collectives_regressions,
    drift_regressions,
    load_bench,
    scale_regressions,
    soak_regressions,
)

SCALE = {
    "meta": {"workload": "clustered"},
    "hierarchical": {"ratio_to_lb": 1.10, "seconds": 10.0},
    "openshop": {"ratio_to_lb": 1.001, "seconds": 6.0},
}

DRIFT = {
    "meta": {"ticks": 8},
    "repair": {"p50_s": 0.4, "p99_s": 4.0, "mean_s": 1.0},
    "full": {"p50_s": 5.0, "p99_s": 6.0, "mean_s": 5.0},
    "speedup_p50": 12.0,
    "makespan_ratio_max": 1.05,
}

COLLECTIVES = {
    "meta": {"size_bytes": 1048576.0},
    "broadcast_log": {
        "seconds": 0.01, "completion_s": 1.2, "events": 63,
    },
    "allreduce_rs_ag": {
        "seconds": 0.02, "completion_s": 11.8, "events": 8064,
    },
    "broadcast_log_vs_binomial": 1.8,
    "allreduce_pipelined_vs_lockstep": 1.7,
}

STRAGGLER = {
    "meta": {"ticks": 8},
    "tick_latency": {"p50_s": 0.003, "p99_s": 0.08, "max_s": 0.1},
    "makespan": {
        "baseline_s": 1.0, "straggler_worst_s": 8.0,
        "degradation_max": 8.0,
    },
}


SOAK = {
    "meta": {"tenants": 6, "ticks": 40},
    "ok": True,
    "oracle_checks": 240,
    "oracle_violations": 0,
    "alerts_fired": 1,
    "alerts_resolved": 1,
    "daemon": {
        "accepted": 160, "served": 160, "dropped": 0,
        "zero_loss": True, "restart_bit_identical": True,
    },
    "backup_bit_identical": True,
    "store": {"segments": 6, "sealed_segments": 6, "records_written": 400},
    "wall_s": 3.0,
}


def _with(record, **overrides):
    out = json.loads(json.dumps(record))
    for dotted, value in overrides.items():
        node = out
        *path, leaf = dotted.split("__")
        for key in path:
            node = node[key]
        node[leaf] = value
    return out


class TestScaleRegressions:
    def test_identical_passes(self):
        assert scale_regressions("scale_p1024", SCALE, SCALE) == []

    def test_quality_within_rtol_passes(self):
        fresh = _with(SCALE, hierarchical__ratio_to_lb=1.10 * 1.04)
        assert scale_regressions("scale_p1024", SCALE, fresh) == []

    def test_quality_regression_fails(self):
        fresh = _with(SCALE, hierarchical__ratio_to_lb=1.10 * 1.06)
        problems = scale_regressions("scale_p1024", SCALE, fresh)
        assert len(problems) == 1
        assert "ratio_to_lb" in problems[0]

    def test_seconds_need_gross_regression(self):
        # 4x slower is machine noise; 6x is a real slowdown
        assert scale_regressions(
            "s", SCALE, _with(SCALE, openshop__seconds=24.0)
        ) == []
        problems = scale_regressions(
            "s", SCALE, _with(SCALE, openshop__seconds=36.0)
        )
        assert len(problems) == 1 and "seconds" in problems[0]

    def test_missing_scheduler_reported(self):
        fresh = json.loads(json.dumps(SCALE))
        del fresh["openshop"]
        problems = scale_regressions("s", SCALE, fresh)
        assert any("disappeared" in p for p in problems)

    def test_quality_improvement_passes(self):
        fresh = _with(SCALE, hierarchical__ratio_to_lb=1.02)
        assert scale_regressions("s", SCALE, fresh) == []


class TestDriftRegressions:
    def test_identical_passes(self):
        assert drift_regressions("drift_response_p1024", DRIFT, DRIFT) == []

    def test_makespan_ratio_is_tight(self):
        fresh = _with(DRIFT, makespan_ratio_max=1.05 * 1.06)
        problems = drift_regressions("d", DRIFT, fresh)
        assert len(problems) == 1 and "makespan_ratio_max" in problems[0]

    def test_speedup_gets_intermediate_slack(self):
        # 12x -> 5x survives (CI variance); 12x -> 3x fails
        assert drift_regressions("d", DRIFT, _with(DRIFT, speedup_p50=5.0)) == []
        problems = drift_regressions("d", DRIFT, _with(DRIFT, speedup_p50=3.0))
        assert len(problems) == 1 and "speedup_p50" in problems[0]

    def test_repair_latency_is_loose(self):
        assert drift_regressions(
            "d", DRIFT, _with(DRIFT, repair__p50_s=1.9)
        ) == []
        problems = drift_regressions(
            "d", DRIFT, _with(DRIFT, repair__p50_s=2.5)
        )
        assert len(problems) == 1 and "repair p50" in problems[0]


class TestCollectivesRegressions:
    def test_identical_passes(self):
        assert collectives_regressions(
            "collectives_p64", COLLECTIVES, COLLECTIVES
        ) == []
        assert collectives_regressions(
            "collectives_allreduce_straggler_p512", STRAGGLER, STRAGGLER
        ) == []

    def test_completion_is_tight(self):
        fresh = _with(COLLECTIVES, broadcast_log__completion_s=1.2 * 1.06)
        problems = collectives_regressions("c", COLLECTIVES, fresh)
        assert len(problems) == 1 and "completion_s" in problems[0]

    def test_planning_seconds_are_loose(self):
        assert collectives_regressions(
            "c", COLLECTIVES, _with(COLLECTIVES, broadcast_log__seconds=0.04)
        ) == []
        problems = collectives_regressions(
            "c", COLLECTIVES, _with(COLLECTIVES, broadcast_log__seconds=0.06)
        )
        assert len(problems) == 1 and "seconds" in problems[0]

    def test_headline_ratio_must_not_drop(self):
        fresh = _with(COLLECTIVES, broadcast_log_vs_binomial=1.8 * 0.9)
        problems = collectives_regressions("c", COLLECTIVES, fresh)
        assert len(problems) == 1
        assert "broadcast_log_vs_binomial" in problems[0]
        # improving is fine
        assert collectives_regressions(
            "c", COLLECTIVES, _with(COLLECTIVES, broadcast_log_vs_binomial=2.5)
        ) == []

    def test_disappeared_entry_reported(self):
        fresh = json.loads(json.dumps(COLLECTIVES))
        del fresh["allreduce_rs_ag"]
        problems = collectives_regressions("c", COLLECTIVES, fresh)
        assert any("disappeared" in p for p in problems)

    def test_straggler_degradation_is_tight(self):
        fresh = _with(STRAGGLER, makespan__degradation_max=8.0 * 1.06)
        problems = collectives_regressions("s", STRAGGLER, fresh)
        assert len(problems) == 1 and "degradation_max" in problems[0]

    def test_tick_latency_is_loose(self):
        assert collectives_regressions(
            "s", STRAGGLER, _with(STRAGGLER, tick_latency__p50_s=0.01)
        ) == []
        problems = collectives_regressions(
            "s", STRAGGLER, _with(STRAGGLER, tick_latency__p50_s=0.02)
        )
        assert len(problems) == 1 and "tick latency" in problems[0]

    def test_dispatched_by_tier_prefix(self):
        committed = {
            "collectives_p64": COLLECTIVES,
            "collectives_allreduce_straggler_p512": STRAGGLER,
        }
        fresh = {
            "collectives_p64": _with(
                COLLECTIVES, broadcast_log__completion_s=9.9
            ),
            "collectives_allreduce_straggler_p512": _with(
                STRAGGLER, makespan__degradation_max=9.9
            ),
        }
        problems = bench_regressions(committed, fresh)
        assert len(problems) == 2
        assert any("completion_s" in p for p in problems)
        assert any("degradation_max" in p for p in problems)


class TestBenchRegressions:
    def test_only_shared_tiers_compared(self):
        committed = {"scale_p1024": SCALE, "drift_response_p256": DRIFT}
        fresh = {
            "scale_p1024": _with(SCALE, hierarchical__ratio_to_lb=9.9),
            "scale_hier_p2048": SCALE,  # no committed baseline: skipped
        }
        problems = bench_regressions(committed, fresh)
        assert len(problems) == 1
        assert problems[0].startswith("scale_p1024")

    def test_empty_or_missing_extra_passes(self):
        assert bench_regressions(None, {"scale_p1024": SCALE}) == []
        assert bench_regressions({"scale_p1024": SCALE}, {}) == []

    def test_clean_pass_across_kinds(self):
        extra = {"scale_p1024": SCALE, "drift_response_p1024": DRIFT}
        assert bench_regressions(extra, json.loads(json.dumps(extra))) == []

    def test_load_bench_roundtrip(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps({"extra": {"scale_p1024": SCALE}}))
        record = load_bench(path)
        assert record["extra"]["scale_p1024"]["openshop"]["seconds"] == 6.0


class TestSoakRegressions:
    def test_identical_passes(self):
        assert soak_regressions("soak_smoke", SOAK, SOAK) == []

    def test_guarantees_are_absolute(self):
        # each broken guarantee is reported regardless of the baseline
        for override, needle in [
            ({"oracle_violations": 1}, "oracle violations"),
            ({"daemon__dropped": 3}, "dropped"),
            ({"daemon__zero_loss": False}, "accepted != served"),
            ({"daemon__restart_bit_identical": False}, "across restart"),
            ({"backup_bit_identical": False}, "bit-identical"),
            ({"alerts_fired": 0}, "canary"),
            ({"alerts_resolved": 0}, "canary"),
            ({"store__sealed_segments": 0}, "rotated"),
        ]:
            fresh = _with(SOAK, **override)
            problems = soak_regressions("soak_smoke", SOAK, fresh)
            assert problems, f"override {override} not caught"
            assert any(needle in p for p in problems), (override, problems)

    def test_wall_time_is_loose(self):
        ok = _with(SOAK, wall_s=10.0)
        assert soak_regressions("soak_smoke", SOAK, ok) == []
        slow = _with(SOAK, wall_s=30.0)
        problems = soak_regressions("soak_smoke", SOAK, slow)
        assert len(problems) == 1 and "wall time" in problems[0]

    def test_dispatched_by_prefix(self):
        fresh = _with(SOAK, oracle_violations=2)
        problems = bench_regressions({"soak_smoke": SOAK}, {"soak_smoke": fresh})
        assert len(problems) == 1
        assert problems[0].startswith("soak_smoke")
