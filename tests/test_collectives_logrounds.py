"""Log-round collective planners: round counts, delivery, adaptivity."""

import numpy as np
import pytest

import repro
from repro.collectives import (
    allbroadcast_plan,
    allreduce_log_tree,
    allreduce_rs_ag,
    alltoall_direct_plan,
    broadcast_log_plan,
    fabric_dims,
    fabric_edges,
    log2_rounds,
    make_collective,
    reduction_log_plan,
    straggler_aware_ring,
)
from repro.check.collectives import (
    block_flow_violations,
    fanout_violations,
    gossip_violations,
    reduction_flow_violations,
)
from repro.directory.service import DirectorySnapshot
from repro.timing.validate import check_schedule_fast


def make_snapshot(n, seed=0):
    rng = np.random.default_rng(seed)
    latency, bandwidth = repro.random_pairwise_parameters(n, rng=rng)
    return DirectorySnapshot(latency=latency, bandwidth=bandwidth)


class TestLog2Rounds:
    def test_values(self):
        assert [log2_rounds(n) for n in (1, 2, 3, 4, 5, 8, 9, 64, 65)] == [
            0, 1, 2, 2, 3, 3, 4, 6, 7
        ]


class TestBroadcastLog:
    @pytest.mark.parametrize("n", [1, 2, 3, 8, 17, 64])
    def test_round_count_is_optimal(self, n):
        plan = broadcast_log_plan(make_snapshot(n), 4096.0)
        assert plan.rounds == log2_rounds(n)
        assert len(plan.entries) == max(0, n - 1)

    @pytest.mark.parametrize("n", [2, 3, 8, 17])
    def test_delivery_and_ports(self, n):
        plan = broadcast_log_plan(make_snapshot(n), 4096.0)
        check_schedule_fast(plan.schedule)
        assert fanout_violations(plan.schedule, root=0) == []

    def test_nonzero_root(self):
        plan = broadcast_log_plan(make_snapshot(8), 4096.0, root=5)
        assert fanout_violations(plan.schedule, root=5) == []
        assert all(e.payload == (5,) for e in plan.entries)

    def test_adapts_to_heterogeneous_links(self):
        # One fast hub, everyone else slow: the greedy log-round tree
        # must beat the rank-ordered binomial tree, which wastes early
        # rounds on slow ranks.
        n = 16
        latency = np.full((n, n), 1.0)
        latency[0, :] = 0.01
        latency[:, 1] = 0.01  # rank 1 is cheap to reach, then fans out
        np.fill_diagonal(latency, 0.0)
        bandwidth = np.full((n, n), np.inf)
        snapshot = DirectorySnapshot(latency=latency, bandwidth=bandwidth)
        log_plan = broadcast_log_plan(snapshot, 4096.0)
        binomial = make_collective("broadcast_binomial")(snapshot, 4096.0)
        assert log_plan.completion_time <= binomial.completion_time
        assert fanout_violations(log_plan.schedule) == []

    def test_degenerate_single_rank(self):
        plan = broadcast_log_plan(make_snapshot(1), 4096.0)
        assert plan.rounds == 0
        assert plan.entries == ()
        assert plan.completion_time == 0.0


class TestAllbroadcast:
    @pytest.mark.parametrize("n", [1, 2, 3, 8, 13, 64])
    def test_rounds_and_delivery(self, n):
        plan = allbroadcast_plan(make_snapshot(n), 1024.0)
        assert plan.rounds == log2_rounds(n)
        check_schedule_fast(plan.schedule)
        assert gossip_violations(plan.schedule) == []

    @pytest.mark.parametrize("n", [2, 3, 8, 13])
    def test_block_flow_exact(self, n):
        plan = allbroadcast_plan(make_snapshot(n), 1024.0)
        everyone = set(range(n))
        assert block_flow_violations(
            plan.entries,
            initial={r: {r} for r in range(n)},
            required={r: everyone for r in range(n)},
        ) == []

    def test_bundle_sizes_follow_bruck(self):
        n, block = 11, 1000.0
        plan = allbroadcast_plan(make_snapshot(n), block)
        by_round = {}
        for entry in plan.entries:
            by_round.setdefault(entry.round, set()).add(entry.size)
        for k, sizes in by_round.items():
            expected = min(1 << k, n - (1 << k)) * block
            assert sizes == {expected}


class TestReduction:
    @pytest.mark.parametrize("n", [1, 2, 3, 8, 17, 64])
    def test_round_count_is_optimal(self, n):
        plan = reduction_log_plan(make_snapshot(n), 4096.0)
        assert plan.rounds == log2_rounds(n)

    @pytest.mark.parametrize("n", [2, 3, 8, 17])
    @pytest.mark.parametrize("root", [0, 2])
    def test_operand_flow(self, n, root):
        if root >= n:
            pytest.skip("root outside range")
        plan = reduction_log_plan(make_snapshot(n), 4096.0, root=root)
        check_schedule_fast(plan.schedule)
        assert reduction_flow_violations(plan, root=root) == []

    def test_combine_rate_delays_forwarding(self):
        fast = reduction_log_plan(
            make_snapshot(8), 1e6, combine_rate=1e12
        )
        slow = reduction_log_plan(
            make_snapshot(8), 1e6, combine_rate=1e6
        )
        assert slow.completion_time > fast.completion_time


class TestAllreduceRing:
    @pytest.mark.parametrize("n", [1, 2, 3, 8, 64])
    def test_step_count_and_ports(self, n):
        plan = allreduce_rs_ag(make_snapshot(n), 1 << 16)
        assert plan.steps == (0 if n == 1 else 2 * (n - 1))
        check_schedule_fast(plan.schedule)
        assert gossip_violations(plan.schedule) == []

    def test_volume_is_bandwidth_optimal(self):
        n, block = 8, float(1 << 20)
        plan = allreduce_rs_ag(make_snapshot(n), block)
        sent = np.bincount(
            plan.srcs, weights=np.full(plan.srcs.size, plan.chunk_bytes),
            minlength=n,
        )
        assert np.allclose(sent, 2 * (n - 1) / n * block)

    def test_straggler_aware_ring_is_permutation(self):
        ring = straggler_aware_ring(make_snapshot(17), 1024.0)
        assert sorted(ring) == list(range(17))

    def test_straggler_aware_ring_beats_rank_order_on_average(self):
        # Across seeds the cost-aware ring should not lose to the
        # arbitrary rank ordering.
        wins = 0
        for seed in range(8):
            snapshot = make_snapshot(16, seed=seed)
            auto = allreduce_rs_ag(snapshot, 1 << 20)
            rank = allreduce_rs_ag(snapshot, 1 << 20, ring=range(16))
            wins += auto.completion_time <= rank.completion_time * 1.001
        assert wins >= 5

    def test_explicit_ring_must_be_permutation(self):
        with pytest.raises(ValueError, match="permutation"):
            allreduce_rs_ag(make_snapshot(4), 1024.0, ring=[0, 1, 2, 2])

    def test_tree_variant_rounds(self):
        plan = allreduce_log_tree(make_snapshot(8), 1024.0)
        assert plan.rounds == 2 * log2_rounds(8)
        assert gossip_violations(plan.schedule) == []


class TestAlltoallDirect:
    @pytest.mark.parametrize("topology,n", [
        ("ring", 5), ("ring", 8), ("torus", 12), ("torus", 16),
        ("hypercube", 8), ("hypercube", 16),
    ])
    def test_fabric_containment(self, topology, n):
        plan = alltoall_direct_plan(
            make_snapshot(n), 512.0, topology=topology
        )
        edges = fabric_edges(topology, n)
        assert all((e.src, e.dst) in edges for e in plan.entries)
        assert plan.rounds == sum(d - 1 for d in plan.dims)
        check_schedule_fast(plan.schedule)

    def test_all_blocks_delivered(self):
        n = 9
        plan = alltoall_direct_plan(
            make_snapshot(n), 512.0, topology="torus"
        )
        blocks = {
            (i, j) for i in range(n) for j in range(n) if i != j
        }
        assert block_flow_violations(
            plan.entries,
            initial={r: {b for b in blocks if b[0] == r}
                     for r in range(n)},
            required={r: {b for b in blocks if b[1] == r}
                      for r in range(n)},
        ) == []

    def test_hypercube_rejects_non_power_of_two(self):
        with pytest.raises(ValueError, match="power-of-two"):
            alltoall_direct_plan(
                make_snapshot(6), 512.0, topology="hypercube"
            )

    def test_unknown_topology(self):
        with pytest.raises(KeyError, match="unknown topology"):
            alltoall_direct_plan(make_snapshot(4), 512.0, topology="mesh")

    def test_explicit_dims_must_factor(self):
        with pytest.raises(ValueError, match="multiply to"):
            alltoall_direct_plan(
                make_snapshot(8), 512.0, topology="torus", dims="3x3"
            )

    def test_dims_resolution(self):
        assert fabric_dims("torus", 12) == (3, 4)
        assert fabric_dims("torus", 12, "2x6") == (2, 6)
        assert fabric_dims("hypercube", 8) == (2, 2, 2)
        assert fabric_dims("ring", 7) == (7,)

    def test_degenerate_sizes(self):
        for topology in ("ring", "torus", "hypercube"):
            plan = alltoall_direct_plan(
                make_snapshot(1), 512.0, topology=topology
            )
            assert plan.entries == ()
            assert plan.completion_time == 0.0
        two = alltoall_direct_plan(make_snapshot(2), 512.0)
        assert len(two.entries) == 2
