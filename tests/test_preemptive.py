"""Preemptive optimum (Birkhoff-von Neumann) tests."""

import numpy as np
import pytest

from repro.core.preemptive import (
    balance_matrix,
    bvn_decomposition,
    preemption_counts,
    preemption_startup_penalty,
    schedule_preemptive,
)
from repro.core.problem import TotalExchangeProblem, example_problem
from repro.timing.validate import check_schedule
from tests.conftest import random_problem


class TestBalanceMatrix:
    def test_line_sums_equalised(self):
        cost = random_problem(6, seed=0).cost
        padded, r = balance_matrix(cost)
        assert np.allclose(padded.sum(axis=1), r)
        assert np.allclose(padded.sum(axis=0), r)

    def test_r_is_lower_bound(self):
        problem = random_problem(5, seed=1)
        _, r = balance_matrix(problem.cost)
        assert r == pytest.approx(problem.lower_bound())

    def test_padding_never_reduces(self):
        cost = random_problem(4, seed=2).cost
        padded, _ = balance_matrix(cost)
        assert np.all(padded >= cost - 1e-12)


class TestBvnDecomposition:
    def test_weights_sum_to_r(self):
        cost = random_problem(5, seed=3).cost
        padded, r = balance_matrix(cost)
        terms = bvn_decomposition(padded)
        assert sum(w for w, _ in terms) == pytest.approx(r)

    def test_terms_are_permutations(self):
        padded, _ = balance_matrix(random_problem(6, seed=4).cost)
        for _, perm in bvn_decomposition(padded):
            assert sorted(perm.tolist()) == list(range(6))

    def test_reconstructs_matrix(self):
        padded, _ = balance_matrix(random_problem(4, seed=5).cost)
        rebuilt = np.zeros_like(padded)
        for weight, perm in bvn_decomposition(padded):
            rebuilt[np.arange(4), perm] += weight
        assert np.allclose(rebuilt, padded, atol=1e-6)

    def test_rejects_unbalanced(self):
        with pytest.raises(ValueError, match="constant"):
            bvn_decomposition(np.array([[1.0, 0.0], [0.0, 2.0]]))


class TestSchedulePreemptive:
    def test_meets_lower_bound_exactly(self):
        for seed in range(6):
            problem = random_problem(7, seed=seed)
            schedule = schedule_preemptive(problem)
            assert schedule.completion_time == pytest.approx(
                problem.lower_bound(), rel=1e-9
            )

    def test_port_validity(self):
        problem = random_problem(6, seed=7)
        check_schedule(schedule_preemptive(problem))

    def test_pieces_cover_every_message(self):
        problem = random_problem(5, seed=8)
        schedule = schedule_preemptive(problem)
        totals = np.zeros((5, 5))
        for event in schedule:
            totals[event.src, event.dst] += event.duration
        assert np.allclose(totals, problem.cost, atol=1e-6)

    def test_sparse_instances(self):
        problem = random_problem(6, seed=9, zero_fraction=0.5)
        schedule = schedule_preemptive(problem)
        assert schedule.completion_time == pytest.approx(
            problem.lower_bound()
        )

    def test_single_processor(self):
        problem = TotalExchangeProblem(cost=np.zeros((1, 1)))
        assert schedule_preemptive(problem).completion_time == 0.0

    def test_beats_every_nonpreemptive_heuristic(self):
        from repro.core.registry import iter_specs

        problem = example_problem()
        optimum = schedule_preemptive(problem).completion_time
        for spec in iter_specs(tier="paper"):
            assert optimum <= spec.fn(problem).completion_time + 1e-9


class TestPreemptionCost:
    def test_counts(self):
        problem = random_problem(5, seed=10)
        slots, pieces = preemption_counts(problem)
        assert slots >= 1
        assert pieces >= len(problem.positive_events())

    def test_startup_penalty_positive_when_fragmented(self):
        problem = random_problem(6, seed=11)
        latency = np.full((6, 6), 0.02)
        np.fill_diagonal(latency, 0.0)
        penalty = preemption_startup_penalty(problem, latency)
        assert penalty >= 0.0
        # fragmentation is essentially unavoidable on dense instances
        _, pieces = preemption_counts(problem)
        if pieces > len(problem.positive_events()):
            assert penalty > 0.0
