"""Incremental refinement tests (paper Section 6.2)."""

import numpy as np
import pytest

from repro.adaptive.incremental import changed_pairs, refine_orders
from repro.core.openshop import schedule_openshop
from repro.core.problem import TotalExchangeProblem
from repro.sim.engine import execute_orders
from tests.conftest import random_problem


def stale_orders(problem):
    return schedule_openshop(problem).send_orders()


class TestChangedPairs:
    def test_detects_changes(self):
        old = random_problem(4, seed=0)
        new_cost = old.cost.copy()
        new_cost[1, 2] *= 3.0
        new = TotalExchangeProblem(cost=new_cost)
        assert changed_pairs(old, new) == {(1, 2)}

    def test_identical_instances_empty(self):
        p = random_problem(4, seed=1)
        assert changed_pairs(p, p) == set()

    def test_mismatched_sizes_raise(self):
        with pytest.raises(ValueError):
            changed_pairs(random_problem(3), random_problem(4))


class TestRefineOrders:
    def test_never_worse_than_stale(self):
        for seed in range(5):
            old = random_problem(6, seed=seed)
            rng = np.random.default_rng(seed + 100)
            new_cost = old.cost * np.exp(rng.normal(0, 0.8, old.cost.shape))
            np.fill_diagonal(new_cost, 0.0)
            new = TotalExchangeProblem(cost=new_cost)
            orders = stale_orders(old)
            result = refine_orders(orders, new, old_problem=old)
            assert result.completion_time <= result.initial_time + 1e-9

    def test_reports_evaluations(self):
        old = random_problem(5, seed=2)
        new = TotalExchangeProblem(cost=old.cost * 2.0)
        result = refine_orders(stale_orders(old), new, old_problem=old)
        assert result.evaluations >= 1

    def test_unchanged_problem_keeps_quality(self):
        problem = random_problem(5, seed=3)
        orders = stale_orders(problem)
        baseline_time = execute_orders(
            problem, orders, validate=False
        ).completion_time
        result = refine_orders(orders, problem, old_problem=problem)
        assert result.completion_time <= baseline_time + 1e-9

    def test_improvement_property(self):
        old = random_problem(6, seed=4)
        new = TotalExchangeProblem(cost=old.cost[::-1, ::-1].copy())
        result = refine_orders(stale_orders(old), new)
        assert 0.0 <= result.improvement <= 1.0

    def test_refined_orders_still_cover(self):
        old = random_problem(5, seed=5)
        rng = np.random.default_rng(6)
        new_cost = old.cost * np.exp(rng.normal(0, 1.0, old.cost.shape))
        np.fill_diagonal(new_cost, 0.0)
        new = TotalExchangeProblem(cost=new_cost)
        result = refine_orders(stale_orders(old), new, old_problem=old)
        for src, order in enumerate(result.orders):
            assert set(order) >= {
                dst for dst in range(5) if dst != src
            }

    def test_zero_passes_allowed(self):
        old = random_problem(4, seed=7)
        result = refine_orders(stale_orders(old), old, max_passes=0)
        assert result.evaluations >= 1
        with pytest.raises(ValueError):
            refine_orders(stale_orders(old), old, max_passes=-1)


class TestUndoOnReject:
    def test_fully_rejected_refinement_restores_orders_bit_identically(self):
        # Uniform costs: pass 1's re-sort and every adjacent swap tie (or
        # worsen), so every move is rejected — and the in-place
        # mutate/undo must hand back exactly the input orders.
        for p in (4, 5, 6):
            cost = np.full((p, p), 2.0)
            np.fill_diagonal(cost, 0.0)
            problem = TotalExchangeProblem(cost=cost)
            orders = stale_orders(problem)
            snapshot = [list(row) for row in orders]
            result = refine_orders(orders, problem)
            assert result.orders == snapshot
            assert result.completion_time == result.initial_time
            # Moves were genuinely attempted, not skipped.
            assert result.evaluations > p
            # The caller's lists were never mutated either.
            assert orders == snapshot
