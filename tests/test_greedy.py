"""Greedy scheduler tests (paper Section 4.4)."""

import numpy as np
import pytest

from repro.core.greedy import greedy_orders, greedy_steps, schedule_greedy
from repro.core.problem import TotalExchangeProblem, example_problem
from repro.timing.validate import check_schedule
from tests.conftest import random_problem


class TestGreedySteps:
    def test_no_port_repeats_within_step(self):
        problem = random_problem(7, seed=0)
        for step in greedy_steps(problem.cost):
            srcs = [s for s, _ in step]
            dsts = [d for _, d in step]
            assert len(set(srcs)) == len(srcs)
            assert len(set(dsts)) == len(dsts)

    def test_all_events_scheduled_once(self):
        problem = random_problem(6, seed=1)
        picks = [pair for step in greedy_steps(problem.cost) for pair in step]
        assert len(picks) == len(set(picks)) == 30

    def test_senders_pick_longest_first(self):
        problem = random_problem(5, seed=2)
        steps = greedy_steps(problem.cost)
        # Track each sender's pick sequence: the first pick must be its
        # longest message (it picks before any destination conflicts).
        first_picks = {}
        for step in steps:
            for src, dst in step:
                first_picks.setdefault(src, dst)
        longest = {
            src: int(np.argmax(problem.cost[src]))
            for src in range(5)
        }
        # At least the very first processor to pick gets its longest.
        assert first_picks[0] == longest[0]

    def test_idle_processor_goes_first_next_step(self):
        # Two senders both want receiver 1 most; sender 1 idles in step 0
        # (receiver 1 taken, receiver 0 is itself... use 3 procs).
        cost = np.array(
            [
                [0.0, 10.0, 1.0],
                [9.0, 0.0, 1.0],
                [8.0, 7.0, 0.0],
            ]
        )
        steps = greedy_steps(cost)
        # step 0: P0 -> 1 (10), P1 -> 0 (9), P2 idles (both 0 and 1 taken)
        assert set(steps[0]) == {(0, 1), (1, 0)}
        # fairness: P2 picks first in step 1 and takes its longest (0).
        assert steps[1][0] == (2, 0)

    def test_rotation_when_no_idle(self):
        # Uniform 2-processor instance: each step has one pick per sender
        # and nobody idles; the last picker leads the next step.
        cost = np.array([[0.0, 1.0], [1.0, 0.0]])
        steps = greedy_steps(cost)
        assert steps[0] == [(0, 1), (1, 0)]

    def test_zero_cost_events_excluded_from_steps(self):
        cost = np.array([[0.0, 0.0, 2.0], [1.0, 0.0, 0.0], [0.0, 1.0, 0.0]])
        picks = [pair for step in greedy_steps(cost) for pair in step]
        assert (0, 1) not in picks
        assert (0, 2) in picks


class TestGreedySchedule:
    def test_valid_and_covering(self):
        problem = random_problem(6, seed=3)
        schedule = schedule_greedy(problem)
        check_schedule(schedule, problem.cost)

    def test_orders_cover_everything(self):
        problem = random_problem(5, seed=4, zero_fraction=0.3)
        orders = greedy_orders(problem)
        for src, order in enumerate(orders):
            expected = {d for d in range(5) if d != src}
            assert set(order) == expected

    def test_example_problem_value(self):
        assert schedule_greedy(example_problem()).completion_time == 18.0

    def test_sparse_instances(self):
        problem = random_problem(8, seed=5, zero_fraction=0.5)
        schedule = schedule_greedy(problem)
        check_schedule(schedule, problem.cost)

    def test_one_processor(self):
        problem = TotalExchangeProblem(cost=np.zeros((1, 1)))
        schedule = schedule_greedy(problem)
        assert schedule.completion_time == 0.0
