"""Open shop heuristic tests (paper Section 4.5, Theorem 3)."""

import numpy as np
import pytest

from repro.core.openshop import openshop_bound, schedule_openshop
from repro.core.problem import TotalExchangeProblem, example_problem
from repro.timing.validate import check_schedule
from tests.conftest import random_problem


def test_valid_and_covering():
    problem = random_problem(8, seed=0)
    schedule = schedule_openshop(problem)
    check_schedule(schedule, problem.cost)


def test_theorem3_two_times_lower_bound():
    for seed in range(20):
        problem = random_problem(9, seed=seed, low=0.01, high=50.0)
        t = schedule_openshop(problem).completion_time
        assert t <= openshop_bound(problem) + 1e-9


def test_theorem3_on_sparse_instances():
    for seed in range(10):
        problem = random_problem(7, seed=seed, zero_fraction=0.6)
        t = schedule_openshop(problem).completion_time
        assert t <= 2.0 * problem.lower_bound() + 1e-9


def test_example_problem_meets_lower_bound():
    problem = example_problem()
    assert schedule_openshop(problem).completion_time == pytest.approx(16.0)


def test_deterministic():
    problem = random_problem(10, seed=1)
    a = schedule_openshop(problem)
    b = schedule_openshop(problem)
    assert a == b


def test_idle_only_while_committed_receiver_busy():
    # The invariant behind Theorem 3's proof: a gap in a sender's
    # timeline only ever waits for the receiver it committed to — the
    # next event starts exactly when the sender or that receiver frees.
    problem = random_problem(5, seed=2)
    schedule = schedule_openshop(problem)
    real = [e for e in schedule if e.duration > 0]
    finishes_at_recv = {}
    for event in real:
        finishes_at_recv.setdefault(event.dst, set()).add(round(event.finish, 9))
    for src in range(5):
        sends = sorted((e for e in real if e.src == src), key=lambda e: e.start)
        prev_finish = 0.0
        for event in sends:
            if event.start > prev_finish + 1e-9:
                # the wait must end exactly when an event at the chosen
                # receiver completes
                assert round(event.start, 9) in finishes_at_recv[event.dst]
            prev_finish = event.finish


def test_earliest_available_receiver_selected():
    # Sender 0's first pick is the lowest-index receiver (all avail 0).
    problem = random_problem(4, seed=3)
    schedule = schedule_openshop(problem)
    first = min(
        (e for e in schedule if e.src == 0 and e.duration > 0),
        key=lambda e: e.start,
    )
    assert first.dst == 1  # receivers all free at t=0, ties break low


def test_handles_self_messages():
    cost = np.array([[1.0, 2.0], [2.0, 0.0]])
    problem = TotalExchangeProblem(cost=cost)
    schedule = schedule_openshop(problem)
    check_schedule(schedule, problem.cost)
    self_events = [e for e in schedule if e.src == e.dst == 0]
    assert len(self_events) == 1


def test_zero_cost_pairs_present_as_markers():
    problem = random_problem(5, seed=4, zero_fraction=0.4)
    schedule = schedule_openshop(problem)
    pairs = {(e.src, e.dst) for e in schedule}
    expected = {(i, j) for i in range(5) for j in range(5) if i != j}
    assert pairs >= expected


def test_single_processor():
    problem = TotalExchangeProblem(cost=np.zeros((1, 1)))
    assert schedule_openshop(problem).completion_time == 0.0


def test_uniform_instance_within_theorem_bound():
    # On a uniform instance the greedy receiver choices collide in later
    # rounds, so the heuristic does NOT meet the lower bound — but it
    # stays comfortably inside Theorem 3's 2x guarantee.
    cost = np.full((6, 6), 3.0)
    np.fill_diagonal(cost, 0.0)
    problem = TotalExchangeProblem(cost=cost)
    t = schedule_openshop(problem).completion_time
    assert problem.lower_bound() <= t <= 2.0 * problem.lower_bound()


class TestWarmStartDegenerate:
    """openshop_events warm-start entry point at P in {1, 2}."""

    def test_p1_no_pairs_leaves_availabilities_untouched(self):
        from repro.core.openshop import openshop_events

        send, recv = [2.5], [1.0]
        events = openshop_events(np.zeros((1, 1)), [], send, recv)
        assert events == []
        assert send == [2.5]
        assert recv == [1.0]

    def test_p1_self_message_waits_for_both_ports(self):
        from repro.core.openshop import openshop_events

        send, recv = [1.0], [3.0]
        events = openshop_events(np.array([[2.0]]), [(0, 0)], send, recv)
        assert len(events) == 1
        event = events[0]
        assert (event.src, event.dst) == (0, 0)
        assert event.start == pytest.approx(3.0)
        assert event.finish == pytest.approx(5.0)
        assert send == [5.0]
        assert recv == [5.0]

    def test_p2_warm_start_matches_reference(self):
        from repro.core.openshop import openshop_events
        from repro.perf.reference import openshop_events_reference

        cost = np.array([[0.0, 3.0], [2.0, 0.0]])
        pairs = [(0, 1), (1, 0)]
        for seed in range(5):
            rng = np.random.default_rng(seed)
            send0 = rng.uniform(0.0, 4.0, size=2).tolist()
            recv0 = rng.uniform(0.0, 4.0, size=2).tolist()
            live_send, live_recv = list(send0), list(recv0)
            ref_send, ref_recv = list(send0), list(recv0)
            live = openshop_events(cost, pairs, live_send, live_recv)
            ref = openshop_events_reference(cost, pairs, ref_send, ref_recv)
            key = lambda e: (e.start, e.src, e.dst, e.duration)
            assert [key(e) for e in live] == [key(e) for e in ref]
            # The mutated availability lists are part of the contract.
            assert live_send == ref_send
            assert live_recv == ref_recv

    def test_p2_cold_schedule_hits_lower_bound(self):
        problem = TotalExchangeProblem(
            cost=np.array([[0.0, 3.0], [2.0, 0.0]])
        )
        schedule = schedule_openshop(problem)
        check_schedule(schedule, problem.cost)
        assert schedule.completion_time == pytest.approx(
            problem.lower_bound()
        )
