"""Background-load process tests."""

import numpy as np
import pytest

from repro.directory.dynamics import (
    DiurnalLoad,
    RandomWalkLoad,
    SpikeLoad,
    StaticLoad,
)


class TestStaticLoad:
    def test_constant(self):
        load = StaticLoad(2.0)
        assert load.load_at(0.0) == 2.0
        assert load.load_at(1e6) == 2.0

    def test_effective_bandwidth(self):
        load = StaticLoad(1.0)
        # load factor 1 halves the capacity
        assert load.effective_bandwidth(10.0, 0.0) == pytest.approx(5.0)

    def test_effective_latency(self):
        load = StaticLoad(0.5)
        assert load.effective_latency(0.02, 0.0) == pytest.approx(0.03)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            StaticLoad(-1.0)


class TestRandomWalkLoad:
    def test_non_negative(self):
        load = RandomWalkLoad(rng=0)
        assert all(load.load_at(t) >= 0 for t in np.linspace(0, 100, 50))

    def test_deterministic_given_seed(self):
        a = RandomWalkLoad(rng=5)
        b = RandomWalkLoad(rng=5)
        assert a.load_at(37.0) == b.load_at(37.0)

    def test_query_order_independent(self):
        a = RandomWalkLoad(rng=5)
        late_then_early = (a.load_at(50.0), a.load_at(10.0))
        b = RandomWalkLoad(rng=5)
        early_then_late = (b.load_at(10.0), b.load_at(50.0))
        assert late_then_early[0] == early_then_late[1]
        assert late_then_early[1] == early_then_late[0]

    def test_negative_time_raises(self):
        with pytest.raises(ValueError):
            RandomWalkLoad(rng=0).load_at(-1.0)

    def test_zero_volatility_constant(self):
        load = RandomWalkLoad(mean=2.0, volatility=0.0, rng=0)
        assert load.load_at(100.0) == pytest.approx(load.load_at(0.0))

    def test_invalid_reversion(self):
        with pytest.raises(ValueError):
            RandomWalkLoad(reversion=0.0)


class TestSpikeLoad:
    def test_base_before_spikes(self):
        load = SpikeLoad(rate=1e-9, base=0.3, rng=0)
        assert load.load_at(10.0) == pytest.approx(0.3)

    def test_spike_decays(self):
        load = SpikeLoad(rate=0.5, magnitude=5.0, decay=2.0, base=0.0, rng=3,
                         horizon=100.0)
        times = np.linspace(0, 100, 400)
        values = [load.load_at(t) for t in times]
        assert max(values) > 1.0  # at least one spike seen
        # long after the horizon the load decays back toward base
        assert load.load_at(1e5) == pytest.approx(0.0, abs=1e-6)

    def test_negative_time_raises(self):
        with pytest.raises(ValueError):
            SpikeLoad(rng=0).load_at(-0.5)


class TestDiurnalLoad:
    def test_period_and_bounds(self):
        load = DiurnalLoad(mean=1.0, amplitude=0.8, period=100.0)
        values = [load.load_at(t) for t in np.linspace(0, 200, 100)]
        assert min(values) >= 0.2 - 1e-9
        assert max(values) <= 1.8 + 1e-9
        assert load.load_at(0.0) == pytest.approx(load.load_at(100.0))

    def test_amplitude_cannot_exceed_mean(self):
        with pytest.raises(ValueError):
            DiurnalLoad(mean=0.5, amplitude=0.8)
