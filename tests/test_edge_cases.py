"""Edge-case tests across modules (failure injection and odd inputs)."""

import numpy as np
import pytest

import repro
from repro.core.problem import TotalExchangeProblem
from repro.sim.engine import execute_orders_on_cost, execute_steps_strict
from repro.timing.diagram import describe_schedule
from repro.timing.events import CommEvent, Schedule


class TestDegenerateInstances:
    def test_two_processors(self):
        problem = TotalExchangeProblem(
            cost=np.array([[0.0, 3.0], [5.0, 0.0]])
        )
        for name in repro.scheduler_names():
            schedule = repro.get_scheduler(name)(problem)
            repro.check_schedule(schedule, problem.cost)
            # both directions run concurrently: optimum is max, not sum
            assert schedule.completion_time == pytest.approx(5.0), name

    def test_all_zero_costs(self):
        problem = TotalExchangeProblem(cost=np.zeros((4, 4)))
        for name in repro.scheduler_names():
            schedule = repro.get_scheduler(name)(problem)
            assert schedule.completion_time == 0.0, name

    def test_single_nonzero_message(self):
        cost = np.zeros((5, 5))
        cost[1, 3] = 7.0
        problem = TotalExchangeProblem(cost=cost)
        for name in repro.scheduler_names():
            schedule = repro.get_scheduler(name)(problem)
            assert schedule.completion_time == pytest.approx(7.0), name

    def test_extreme_cost_spread(self):
        cost = np.full((4, 4), 1e-9)
        cost[0, 1] = 1e6
        np.fill_diagonal(cost, 0.0)
        problem = TotalExchangeProblem(cost=cost)
        t = repro.schedule_openshop(problem).completion_time
        assert t <= 2 * problem.lower_bound()

    def test_one_dominant_sender(self):
        cost = np.zeros((5, 5))
        cost[0, 1:] = 10.0  # only P0 sends
        problem = TotalExchangeProblem(cost=cost)
        for name in ("openshop", "max_matching", "greedy"):
            t = repro.get_scheduler(name)(problem).completion_time
            # a single sender serialises: LB achieved exactly
            assert t == pytest.approx(40.0), name


class TestEngineEdges:
    def test_empty_orders(self):
        schedule = execute_orders_on_cost(np.zeros((3, 3)), [[], [], []])
        assert len(schedule) == 0

    def test_sizes_attached(self):
        cost = np.array([[0.0, 2.0], [0.0, 0.0]])
        sizes = np.array([[0.0, 1e6], [0.0, 0.0]])
        schedule = execute_orders_on_cost(cost, [[1], []], sizes=sizes)
        event = list(schedule)[0]
        assert event.size == 1e6

    def test_strict_empty_steps(self):
        schedule = execute_steps_strict(np.zeros((2, 2)), [])
        assert schedule.completion_time == 0.0

    def test_strict_step_with_empty_list(self):
        schedule = execute_steps_strict(np.zeros((2, 2)), [[]])
        assert len(schedule) == 0


class TestDiagramEdges:
    def test_describe_precision(self):
        schedule = Schedule.from_events(
            2, [CommEvent(start=0.123456, src=0, dst=1, duration=1.0)]
        )
        text = describe_schedule(schedule, precision=2)
        assert "0.12" in text

    def test_large_schedule_renders(self):
        problem = repro.TotalExchangeProblem(
            cost=np.ones((20, 20)) - np.eye(20)
        )
        schedule = repro.schedule_openshop(problem)
        out = repro.render_timing_diagram(schedule, rows=40)
        assert "P19" in out


class TestAnalysisEdges:
    def test_compare_without_lower_bound(self):
        from repro.analysis import compare_schedules

        problem = repro.example_problem()
        table = compare_schedules(
            {"openshop": repro.schedule_openshop(problem)}
        )
        assert "ratio to LB" not in table
        assert "openshop" in table

    def test_explain_trivial_instance(self):
        from repro.analysis import explain_schedule

        problem = TotalExchangeProblem(cost=np.zeros((2, 2)))
        schedule = repro.schedule_openshop(problem)
        explanation = explain_schedule(problem, schedule)
        assert explanation.completion_time == 0.0
        assert explanation.summary()  # doesn't crash on the empty case


class TestAdaptiveEdges:
    def test_run_adaptive_trivial_instance(self):
        from repro.adaptive import NoCheckpoints, run_adaptive

        problem = TotalExchangeProblem(cost=np.zeros((3, 3)))
        result = run_adaptive(
            problem, lambda t: problem.cost, policy=NoCheckpoints()
        )
        assert result.completion_time == 0.0

    def test_run_adaptive_two_procs_checkpointed(self):
        from repro.adaptive import EveryKEvents, run_adaptive

        problem = TotalExchangeProblem(
            cost=np.array([[0.0, 2.0], [3.0, 0.0]])
        )
        result = run_adaptive(
            problem, lambda t: problem.cost, policy=EveryKEvents(1)
        )
        positive = {(e.src, e.dst) for e in result.schedule if e.duration > 0}
        assert positive == {(0, 1), (1, 0)}
