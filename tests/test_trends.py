"""Trend-analysis tests."""

import pytest

from repro.experiments.harness import run_sweep
from repro.experiments.trends import RatioTrend, ratio_trends
from repro.model.messages import MixedSizes


def test_trends_shapes():
    result = run_sweep(
        "trend-test", MixedSizes(), proc_counts=(5, 10, 20), trials=2
    )
    trends = ratio_trends(result)
    assert set(trends) == set(result.completion)
    for trend in trends.values():
        assert trend.ratio_at_min_p >= 1.0 - 1e-9
        assert trend.ratio_at_max_p >= 1.0 - 1e-9


def test_baseline_grows_adaptive_flat():
    result = run_sweep(
        "trend-shape", MixedSizes(), proc_counts=(5, 15, 30), trials=3
    )
    trends = ratio_trends(result)
    assert trends["baseline"].grows
    assert trends["openshop"].flat


def test_single_point_rejected():
    result = run_sweep(
        "trend-single", MixedSizes(), proc_counts=(5,), trials=1
    )
    with pytest.raises(ValueError):
        ratio_trends(result)


def test_trend_properties():
    flat = RatioTrend("x", 0.00005, 1.0, 1.0, 1.02)
    steep = RatioTrend("y", 0.05, 1.0, 1.2, 3.0)
    assert flat.flat and not flat.grows
    assert steep.grows and not steep.flat
