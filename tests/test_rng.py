"""RNG plumbing tests."""

import numpy as np
import pytest

from repro.util.rng import spawn_rngs, stable_seed, to_rng


def test_to_rng_passthrough():
    rng = np.random.default_rng(1)
    assert to_rng(rng) is rng


def test_to_rng_from_int_deterministic():
    a = to_rng(123).random(5)
    b = to_rng(123).random(5)
    assert np.array_equal(a, b)


def test_to_rng_none_gives_generator():
    assert isinstance(to_rng(None), np.random.Generator)


def test_spawn_rngs_count():
    children = spawn_rngs(0, 4)
    assert len(children) == 4


def test_spawn_rngs_independent_streams():
    a, b = spawn_rngs(0, 2)
    assert not np.array_equal(a.random(10), b.random(10))


def test_spawn_rngs_negative_raises():
    with pytest.raises(ValueError):
        spawn_rngs(0, -1)


def test_stable_seed_deterministic():
    assert stable_seed("fig09", 5, 0) == stable_seed("fig09", 5, 0)


def test_stable_seed_distinguishes_parts():
    seeds = {
        stable_seed("a", 1),
        stable_seed("a", 2),
        stable_seed("b", 1),
        stable_seed("ab", ""),
        stable_seed("a", "b1"),
    }
    assert len(seeds) == 5


def test_stable_seed_fits_in_63_bits():
    for parts in [("x",), ("y", 10**9), ("z", "w", 3)]:
        seed = stable_seed(*parts)
        assert 0 <= seed < 2**63
