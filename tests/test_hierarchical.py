"""Tests for cluster detection and the hierarchical two-level scheduler.

Covers: threshold/partition detection on planted two-level instances,
the degenerate delegations (one cluster -> flat open shop bit-identically,
all singletons -> flat matching), splice validity at P in {8, 64, 256}
under the full invariant oracle, the clustered adversarial family, the
vectorized schedule checker, cluster-assignment reuse (drift and digest
paths), and the AdaptiveSession integration.
"""

import numpy as np
import pytest

from repro.check.instances import build_instance
from repro.check.oracle import oracle_violations
from repro.core.clustering import (
    ClusterAssignment,
    cluster_permutation,
    detect_clusters,
    detect_threshold,
)
from repro.core.hierarchical import (
    HierarchicalScheduler,
    schedule_hierarchical,
)
from repro.core.matching import schedule_matching_max
from repro.core.openshop import schedule_openshop
from repro.core.problem import TotalExchangeProblem
from repro.perf.memo import ScheduleCache
from repro.timing.validate import (
    ScheduleError,
    check_schedule,
    check_schedule_fast,
)
from tests.conftest import random_problem


def planted_problem(
    num_procs: int,
    cluster_size: int,
    *,
    seed: int = 0,
    separation: float = 25.0,
) -> TotalExchangeProblem:
    """A two-level instance with known contiguous clusters."""
    rng = np.random.default_rng(seed)
    labels = np.arange(num_procs) // cluster_size
    k = int(labels[-1]) + 1
    intra = rng.uniform(0.9, 1.1, size=(num_procs, num_procs))
    level = rng.uniform(separation, 2 * separation, size=(k, k))
    cost = intra * level[np.ix_(labels, labels)]
    same = labels[:, None] == labels[None, :]
    cost[same] = intra[same]
    np.fill_diagonal(cost, 0.0)
    return TotalExchangeProblem(cost=cost)


class TestClustering:
    def test_planted_partition_recovered(self):
        problem = planted_problem(24, 6)
        assignment = detect_clusters(problem.cost)
        assert assignment.num_clusters == 4
        expected = np.arange(24) // 6
        assert np.array_equal(assignment.labels, expected)

    def test_members_and_permutation_consistent(self):
        problem = planted_problem(20, 5)
        assignment = detect_clusters(problem.cost)
        members = assignment.members()
        assert sorted(np.concatenate(members).tolist()) == list(range(20))
        perm, offsets = cluster_permutation(assignment)
        for c, block in enumerate(members):
            span = perm[offsets[c]:offsets[c + 1]]
            assert np.array_equal(span, block)

    def test_flat_instance_is_one_cluster(self):
        problem = random_problem(12, seed=4)
        assignment = detect_clusters(problem.cost)
        assert assignment.num_clusters == 1

    def test_all_equal_is_one_cluster(self):
        cost = np.full((8, 8), 3.0)
        np.fill_diagonal(cost, 0.0)
        assert detect_clusters(cost).num_clusters == 1
        assert detect_threshold(cost) is None

    def test_tiny_threshold_yields_singletons(self):
        problem = random_problem(7, seed=1)
        assignment = detect_clusters(problem.cost, threshold=1e-12)
        assert assignment.num_clusters == 7

    def test_zero_matrix_and_single_node(self):
        assert detect_clusters(np.zeros((5, 5))).num_clusters == 1
        assert detect_clusters(np.zeros((1, 1))).num_clusters == 1

    def test_asymmetric_links_do_not_merge(self):
        # One fast direction must not count as proximity: the weight is
        # the max of the two directions.
        cost = np.array([
            [0.0, 0.1, 50.0],
            [60.0, 0.0, 50.0],
            [50.0, 50.0, 0.0],
        ])
        assignment = detect_clusters(cost, threshold=1.0)
        assert assignment.num_clusters == 3

    def test_gap_factor_validation(self):
        with pytest.raises(ValueError, match="gap_factor"):
            detect_threshold(np.zeros((3, 3)), gap_factor=1.0)

    def test_labels_read_only(self):
        assignment = detect_clusters(planted_problem(12, 4).cost)
        with pytest.raises(ValueError):
            assignment.labels[0] = 5


class TestDegenerateDelegation:
    def test_one_cluster_is_flat_openshop_bit_identical(self):
        problem = random_problem(10, seed=2)
        hier = schedule_hierarchical(problem)
        flat = schedule_openshop(problem)
        assert hier.events == flat.events

    def test_all_singletons_is_flat_matching_bit_identical(self):
        problem = random_problem(8, seed=3)
        hier = schedule_hierarchical(problem, threshold=1e-12)
        flat = schedule_matching_max(problem)
        assert hier.events == flat.events

    def test_unknown_intra_kernel_rejected(self):
        problem = random_problem(4, seed=0)
        with pytest.raises(ValueError, match="intra kernel"):
            schedule_hierarchical(problem, intra="quantum")

    def test_mismatched_assignment_rejected(self):
        problem = random_problem(4, seed=0)
        assignment = ClusterAssignment(
            labels=np.zeros(6, dtype=np.intp), threshold=1.0
        )
        with pytest.raises(ValueError, match="assignment covers"):
            schedule_hierarchical(problem, assignment=assignment)


class TestSpliceValidity:
    @pytest.mark.parametrize("num_procs,cluster_size", [
        (8, 2), (64, 8), (256, 32),
    ])
    def test_spliced_schedule_passes_full_oracle(self, num_procs, cluster_size):
        problem = planted_problem(num_procs, cluster_size)
        schedule = schedule_hierarchical(problem)
        violations = oracle_violations(
            problem, schedule, scheduler="hierarchical"
        )
        assert violations == []
        check_schedule(schedule, problem.cost)

    def test_uneven_and_singleton_clusters(self):
        # 3 clusters of very different sizes, one a singleton.
        rng = np.random.default_rng(7)
        labels = np.array([0] * 9 + [1] * 4 + [2])
        n = labels.shape[0]
        intra = rng.uniform(0.9, 1.1, (n, n))
        level = rng.uniform(30.0, 60.0, (3, 3))
        cost = intra * level[np.ix_(labels, labels)]
        same = labels[:, None] == labels[None, :]
        cost[same] = intra[same]
        np.fill_diagonal(cost, 0.0)
        problem = TotalExchangeProblem(cost=cost)
        assignment = detect_clusters(cost)
        assert assignment.num_clusters == 3
        schedule = schedule_hierarchical(problem)
        assert oracle_violations(
            problem, schedule, scheduler="hierarchical"
        ) == []

    def test_clustered_family_clean_under_oracle(self):
        for seed in range(6):
            for p in (3, 9, 17):
                inst = build_instance("clustered", p, seed)
                schedule = schedule_hierarchical(inst.problem)
                assert oracle_violations(
                    inst.problem, schedule, scheduler="hierarchical"
                ) == [], (p, seed)

    def test_greedy_intra_kernel_valid(self):
        problem = planted_problem(24, 6, seed=5)
        schedule = schedule_hierarchical(problem, intra="greedy")
        assert oracle_violations(
            problem, schedule, scheduler="hierarchical"
        ) == []

    def test_quality_on_clustered_platform(self):
        problem = planted_problem(64, 8)
        schedule = schedule_hierarchical(problem)
        ratio = schedule.completion_time / problem.lower_bound()
        assert ratio <= 1.25

    def test_sizes_carried_through(self):
        problem = planted_problem(12, 4)
        sized = TotalExchangeProblem(
            cost=problem.cost,
            sizes=np.where(problem.cost > 0, 2048.0, 0.0),
        )
        schedule = schedule_hierarchical(sized)
        positive = [e for e in schedule if e.duration > 0]
        assert positive and all(e.size == 2048.0 for e in positive)


class TestClusteredFamily:
    def test_registered_and_deterministic(self):
        a = build_instance("clustered", 16, 3).problem.cost
        b = build_instance("clustered", 16, 3).problem.cost
        assert np.array_equal(a, b)
        assert np.all(a >= 0)
        assert np.all(np.diag(a) == 0)

    def test_exhibits_two_level_structure_somewhere(self):
        # At least some seeds must present a detectable gap with
        # multiple clusters — otherwise the family never exercises the
        # two-level path.
        hits = 0
        for seed in range(10):
            inst = build_instance("clustered", 20, seed)
            k = detect_clusters(inst.problem.cost).num_clusters
            if 1 < k < 20:
                hits += 1
        assert hits >= 3


class TestCheckScheduleFast:
    def test_agrees_on_valid_schedules(self):
        for seed in range(3):
            problem = random_problem(9, seed=seed, zero_fraction=0.2)
            for schedule in (
                schedule_openshop(problem),
                schedule_hierarchical(problem, threshold=None),
            ):
                check_schedule(schedule, problem.cost)
                check_schedule_fast(schedule, problem.cost)

    def test_detects_sender_overlap(self):
        from repro.timing.events import CommEvent, Schedule

        schedule = Schedule.from_events(3, [
            CommEvent(start=0.0, src=0, dst=1, duration=2.0),
            CommEvent(start=1.0, src=0, dst=2, duration=2.0),
        ])
        with pytest.raises(ScheduleError, match="sender conflict"):
            check_schedule_fast(schedule, require_coverage=False)

    def test_detects_receiver_overlap(self):
        from repro.timing.events import CommEvent, Schedule

        schedule = Schedule.from_events(3, [
            CommEvent(start=0.0, src=0, dst=2, duration=2.0),
            CommEvent(start=1.0, src=1, dst=2, duration=2.0),
        ])
        with pytest.raises(ScheduleError, match="receiver conflict"):
            check_schedule_fast(schedule)

    def test_detects_duplicate_wrong_duration_and_missing(self):
        from repro.timing.events import CommEvent, Schedule

        cost = np.array([[0.0, 1.0, 2.0], [1.0, 0.0, 0.0], [0.0, 0.0, 0.0]])
        schedule = Schedule.from_events(3, [
            CommEvent(start=0.0, src=0, dst=1, duration=1.0),
            CommEvent(start=2.0, src=0, dst=1, duration=1.0),
            CommEvent(start=0.0, src=1, dst=0, duration=5.0),
        ])
        with pytest.raises(ScheduleError) as excinfo:
            check_schedule_fast(schedule, cost)
        text = "\n".join(excinfo.value.violations)
        assert "duplicate" in text
        assert "duration" in text
        assert "missing" in text

    def test_clean_on_empty_schedule(self):
        from repro.timing.events import Schedule

        check_schedule_fast(Schedule(num_procs=2))


class TestAssignmentReuse:
    def test_small_drift_reuses_clustering(self):
        scheduler = HierarchicalScheduler()
        problem = planted_problem(16, 4)
        scheduler(problem)
        assert scheduler.clusterings == 1
        drifted = TotalExchangeProblem(cost=problem.cost * 1.02)
        scheduler(drifted)
        assert scheduler.clusterings == 1
        assert scheduler.cluster_reuses == 1

    def test_large_drift_reclusters(self):
        scheduler = HierarchicalScheduler(drift_tolerance=0.1)
        problem = planted_problem(16, 4)
        scheduler(problem)
        shifted = TotalExchangeProblem(cost=problem.cost * 3.0)
        scheduler(shifted)
        assert scheduler.clusterings == 2

    def test_digest_cache_hit_on_revisit(self):
        scheduler = HierarchicalScheduler()
        cache = ScheduleCache()
        scheduler.bind_cluster_cache(cache)
        first = planted_problem(16, 4, seed=0)
        other = planted_problem(16, 4, seed=9, separation=80.0)
        scheduler(first)
        scheduler(other)  # large drift: re-clusters, digests both
        assert scheduler.clusterings == 2
        scheduler(first)  # exact revisit of a past world
        assert scheduler.cluster_cache_hits == 1
        assert scheduler.clusterings == 2

    def test_aux_store_roundtrip_and_eviction(self):
        cache = ScheduleCache(maxsize=2)
        cache.aux_put("clusters", "d1", "a1")
        assert cache.aux_lookup("clusters", "d1") == "a1"
        assert cache.aux_lookup("clusters", "d2") is None
        cache.aux_put("clusters", "d2", "a2")
        cache.aux_put("clusters", "d3", "a3")  # evicts d1
        assert cache.aux_lookup("clusters", "d1") is None

    def test_explicit_threshold_propagates(self):
        scheduler = HierarchicalScheduler(threshold=1e-12)
        problem = random_problem(6, seed=0)
        assert (
            scheduler(problem).events
            == schedule_matching_max(problem).events
        )


class TestRegistryIntegration:
    def test_spec_registered_as_extra(self):
        from repro.core.registry import get_spec, iter_specs, make_scheduler
        from repro.timing.events import Schedule

        spec = get_spec("hierarchical")
        assert spec.tier == "extra"
        assert spec.guarantee is None
        assert "hierarchical" in {s.name for s in iter_specs(tier="extra")}
        problem = planted_problem(12, 4)
        schedule = make_scheduler("hierarchical")(problem)
        assert isinstance(schedule, Schedule)
        configured = make_scheduler("hierarchical", gap_factor=2.0)
        assert isinstance(configured(problem), Schedule)

    def test_flows_through_run_check(self, tmp_path):
        from repro.check import run_check
        from repro.check.differential import default_schedulers

        assert "hierarchical" in default_schedulers()
        report = run_check(
            seeds=8, p_max=6, out_dir=str(tmp_path), include_exact=False
        )
        assert report.ok
        assert "hierarchical" in report.schedulers


class TestSessionIntegration:
    def _directory(self, num_procs):
        from repro.directory import StaticDirectory

        problem = planted_problem(num_procs, 4)
        with np.errstate(divide="ignore"):
            bandwidth = np.where(
                problem.cost > 0, 1e6 / problem.cost, np.inf
            )
        return StaticDirectory(
            latency=np.zeros_like(problem.cost), bandwidth=bandwidth
        )

    def test_session_binds_cluster_cache(self):
        from repro.runtime.session import AdaptiveSession

        scheduler = HierarchicalScheduler()
        session = AdaptiveSession(
            self._directory(12),
            np.full((12, 12), 1e6) - np.diag(np.full(12, 1e6)),
            scheduler=scheduler,
        )
        assert scheduler._cluster_cache is session.cache
        result = session.tick()
        assert result.schedule.num_procs == 12
        assert scheduler.clusterings >= 1

    def test_session_by_name(self):
        from repro.runtime.session import AdaptiveSession

        session = AdaptiveSession(
            self._directory(8),
            np.full((8, 8), 1e6) - np.diag(np.full(8, 1e6)),
            scheduler="hierarchical",
        )
        assert session.scheduler_name == "hierarchical"
        result = session.tick()
        assert result.schedule.num_procs == 8
