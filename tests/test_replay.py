"""Replay-under-different-conditions tests."""

import numpy as np
import pytest

from repro.core.openshop import schedule_openshop
from repro.core.problem import TotalExchangeProblem
from repro.sim.replay import planned_vs_actual, replay_schedule
from repro.timing.validate import check_schedule
from tests.conftest import random_problem


def test_replay_under_same_costs_is_no_slower_planwise():
    # Replaying under identical costs reproduces the planned completion
    # time (strict semantics preserve the plan's port orders).
    problem = random_problem(6, seed=0)
    planned = schedule_openshop(problem)
    replayed = replay_schedule(planned, problem)
    assert replayed.completion_time == pytest.approx(planned.completion_time)


def test_replay_valid_schedule():
    problem = random_problem(6, seed=1)
    planned = schedule_openshop(problem)
    scaled = problem.scaled(2.0)
    replayed = replay_schedule(planned, scaled)
    check_schedule(replayed, scaled.cost)


def test_uniform_scaling_scales_completion():
    problem = random_problem(5, seed=2)
    planned = schedule_openshop(problem)
    result = planned_vs_actual(planned, problem.scaled(3.0))
    assert result.actual_time == pytest.approx(3.0 * result.planned_time)
    assert result.slowdown == pytest.approx(3.0)


def test_mismatched_procs_raise():
    planned = schedule_openshop(random_problem(4, seed=3))
    with pytest.raises(ValueError):
        replay_schedule(planned, random_problem(5, seed=3))


def test_degraded_pair_slows_replay():
    problem = random_problem(5, seed=4)
    planned = schedule_openshop(problem)
    worse_cost = problem.cost.copy()
    worse_cost[0, 1] *= 10
    worse = TotalExchangeProblem(cost=worse_cost)
    result = planned_vs_actual(planned, worse)
    assert result.actual_time >= result.planned_time - 1e-9


def test_zero_planned_time_slowdown():
    problem = TotalExchangeProblem(cost=np.zeros((2, 2)))
    planned = schedule_openshop(problem)
    result = planned_vs_actual(planned, problem)
    assert result.slowdown == 1.0
