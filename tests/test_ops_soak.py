"""The chaos soak, at test scale: deterministic, oracle-clean, alerting.

A reduced seeded soak (session phase only for speed) must complete with
zero invariant-oracle violations while firing *and* resolving the
fallback-rate canary; the full ``--smoke`` configuration (with the
daemon restart/backup phase) runs in the CLI tests and CI.
"""

import dataclasses
import json

import pytest

from repro.ops.soak import SOAK_SLOS, SoakConfig, run_soak
from repro.ops.store import MetricsStore


@pytest.fixture(scope="module")
def soak_result(tmp_path_factory):
    ops_dir = tmp_path_factory.mktemp("soak_ops")
    config = dataclasses.replace(
        SoakConfig.smoke(seed=0),
        tenants=3,
        daemon_phase=False,
        segment_bytes=8192,
    )
    report = run_soak(config, ops_dir)
    return config, ops_dir, report


def test_soak_is_oracle_clean(soak_result):
    _, _, report = soak_result
    assert report.oracle_violations == 0
    assert report.violations == []
    config, _, _ = soak_result
    assert report.oracle_checks == config.tenants * config.ticks


def test_soak_fires_and_resolves_the_canary(soak_result):
    _, _, report = soak_result
    assert report.alerts_fired >= 1
    assert report.alerts_resolved >= 1
    fallback_status = next(
        s for s in report.slo["slos"] if s["slo"].startswith("fallback_rate")
    )
    assert fallback_status["fired"] >= 1
    assert fallback_status["resolved"] >= 1
    assert fallback_status["state"] == "ok"  # resolved by the end
    assert report.ok


def test_soak_exercises_chaos(soak_result):
    _, _, report = soak_result
    assert report.fallback_activations > 0  # forced timeouts hit
    assert report.faults_seen > 0  # fault profiles injected
    assert report.decisions.get("reschedule", 0) > 0  # storms forced replans


def test_soak_is_deterministic(tmp_path):
    config = dataclasses.replace(
        SoakConfig.smoke(seed=0), tenants=2, ticks=24, daemon_phase=False
    )
    first = run_soak(config, tmp_path / "a")
    second = run_soak(config, tmp_path / "b")
    assert first.decisions == second.decisions
    assert first.fallback_activations == second.fallback_activations
    assert first.alerts_fired == second.alerts_fired
    assert first.slo["alerts"] == second.slo["alerts"]


def test_soak_persists_rotated_store_and_report(soak_result):
    _, ops_dir, report = soak_result
    store = MetricsStore(ops_dir / "store", max_segment_bytes=8192)
    stats = store.stats()
    assert stats["sealed_segments"] >= 1
    ticks = store.query(kind="tick")
    assert len(ticks) == report.oracle_checks
    assert {r["source"] for r in ticks} == {
        f"tenant-{i}" for i in range(report.tenants)
    }
    store.close()

    payload = json.loads((ops_dir / "slo_report.json").read_text())
    assert payload["ok"] is True
    assert payload["oracle_violations"] == 0
    assert payload["alerts_fired"] == report.alerts_fired

    alerts = [
        json.loads(line)
        for line in (ops_dir / "alerts.jsonl").read_text().splitlines()
    ]
    states = [a["state"] for a in alerts]
    assert "firing" in states and "resolved" in states


def test_soak_report_renders(soak_result):
    _, _, report = soak_result
    text = report.render()
    assert "oracle:" in text and "0 violations" in text
    assert "verdict: OK" in text


def test_hours_config_scales_simulated_time():
    config = SoakConfig.hours(2.0)
    assert config.sim_seconds == pytest.approx(2 * 3600.0)
    assert config.dt == 300.0
    # the canary burst and window scale with dt so it still fires
    assert len(config.timeout_ticks) >= 2
    fallback = next(s for s in config.slos if s.name == "fallback_rate")
    assert fallback.window_s > SOAK_SLOS[0].window_s


def test_smoke_config_is_ci_sized():
    config = SoakConfig.smoke()
    assert config.tenants * config.ticks <= 600
    assert config.daemon_phase
