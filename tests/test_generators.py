"""Synthetic network generator tests."""

import numpy as np
import pytest

from repro.network.generators import (
    random_metacomputer,
    random_pairwise_parameters,
)
from repro.network.gusto import (
    GUSTO_BANDWIDTH_RANGE_BPS,
    GUSTO_LATENCY_RANGE_S,
)


class TestRandomPairwiseParameters:
    def test_shapes_and_diagonals(self):
        latency, bandwidth = random_pairwise_parameters(8, rng=0)
        assert latency.shape == (8, 8)
        assert np.all(np.diag(latency) == 0.0)
        assert np.all(np.isinf(np.diag(bandwidth)))

    def test_ranges(self):
        latency, bandwidth = random_pairwise_parameters(20, rng=1)
        off = ~np.eye(20, dtype=bool)
        lo, hi = GUSTO_LATENCY_RANGE_S
        assert latency[off].min() >= lo and latency[off].max() <= hi
        blo, bhi = GUSTO_BANDWIDTH_RANGE_BPS
        assert bandwidth[off].min() >= blo and bandwidth[off].max() <= bhi

    def test_symmetric_by_default(self):
        latency, bandwidth = random_pairwise_parameters(6, rng=2)
        assert np.allclose(latency, latency.T)
        assert np.allclose(bandwidth, bandwidth.T)

    def test_asymmetric_option(self):
        latency, _ = random_pairwise_parameters(6, symmetric=False, rng=3)
        assert not np.allclose(latency, latency.T)

    def test_deterministic_by_seed(self):
        a = random_pairwise_parameters(5, rng=10)
        b = random_pairwise_parameters(5, rng=10)
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])

    def test_custom_ranges(self):
        latency, bandwidth = random_pairwise_parameters(
            5,
            latency_range=(0.5, 0.5),
            bandwidth_range=(100.0, 100.0),
            rng=4,
        )
        off = ~np.eye(5, dtype=bool)
        assert np.allclose(latency[off], 0.5)
        assert np.allclose(bandwidth[off], 100.0)

    def test_linear_bandwidth_option(self):
        _, bandwidth = random_pairwise_parameters(
            30, log_uniform_bandwidth=False, rng=5
        )
        off = ~np.eye(30, dtype=bool)
        blo, bhi = GUSTO_BANDWIDTH_RANGE_BPS
        assert bandwidth[off].min() >= blo

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            random_pairwise_parameters(0)
        with pytest.raises(ValueError):
            random_pairwise_parameters(3, latency_range=(1.0, 0.5))
        with pytest.raises(ValueError):
            random_pairwise_parameters(3, bandwidth_range=(0.0, 1.0))


class TestRandomMetacomputer:
    def test_connected(self):
        for seed in range(5):
            system = random_metacomputer(
                num_sites=4, nodes_per_site=3, rng=seed
            )
            assert system.is_connected()
            assert system.num_procs == 12

    def test_deterministic(self):
        a = random_metacomputer(rng=9)
        b = random_metacomputer(rng=9)
        links_a = sorted((u, v, l.latency) for u, v, l in a.links())
        links_b = sorted((u, v, l.latency) for u, v, l in b.links())
        assert links_a == links_b

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            random_metacomputer(num_sites=0)

    def test_backbone_in_range(self):
        system = random_metacomputer(num_sites=5, nodes_per_site=1, rng=11)
        for _, _, link in system.links():
            if link.kind == "backbone":
                lo, hi = GUSTO_LATENCY_RANGE_S
                assert lo <= link.latency <= hi
