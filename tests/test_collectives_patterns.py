"""Pattern adapter tests (all-gather / all-to-all as total exchange)."""

import numpy as np
import pytest

import repro
from repro.collectives.patterns import allgather_problem, alltoall_problem
from repro.directory.service import DirectorySnapshot


def make_snapshot(n=5):
    lat = np.full((n, n), 0.02)
    np.fill_diagonal(lat, 0.0)
    bw = np.full((n, n), 1e6)
    np.fill_diagonal(bw, np.inf)
    return DirectorySnapshot(latency=lat, bandwidth=bw)


class TestAllgather:
    def test_scalar_block(self):
        problem = allgather_problem(make_snapshot(), 1e5)
        assert problem.sizes[0, 1] == 1e5
        assert problem.sizes[3, 2] == 1e5
        assert np.all(np.diag(problem.sizes) == 0.0)

    def test_per_node_blocks(self):
        blocks = [1e5, 2e5, 3e5, 4e5, 5e5]
        problem = allgather_problem(make_snapshot(), blocks)
        # row src is constant at blocks[src]
        for src in range(5):
            off = [problem.sizes[src, d] for d in range(5) if d != src]
            assert all(x == blocks[src] for x in off)

    def test_schedulable_by_core_algorithms(self):
        problem = allgather_problem(make_snapshot(), 1e5)
        schedule = repro.schedule_openshop(problem)
        repro.check_schedule(schedule, problem.cost)
        assert schedule.completion_time <= 2 * problem.lower_bound()

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            allgather_problem(make_snapshot(), [1.0, 2.0])
        with pytest.raises(ValueError):
            allgather_problem(make_snapshot(), [-1.0] * 5)


class TestAlltoall:
    def test_uniform(self):
        problem = alltoall_problem(make_snapshot(), 2e5)
        off = problem.sizes[~np.eye(5, dtype=bool)]
        assert np.all(off == 2e5)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            alltoall_problem(make_snapshot(), -1.0)

    def test_cost_formula(self):
        problem = alltoall_problem(make_snapshot(), 1e6)
        assert problem.cost[0, 1] == pytest.approx(0.02 + 1.0)
