"""Directory forecasting tests."""

import numpy as np
import pytest

from repro.directory.forecast import (
    SnapshotHistory,
    ewma_forecast,
    forecast_error,
    linear_forecast,
)
from repro.directory.service import DirectorySnapshot


def make_snapshot(bandwidth_value, time=0.0, n=3):
    latency = np.full((n, n), 0.01)
    np.fill_diagonal(latency, 0.0)
    bandwidth = np.full((n, n), float(bandwidth_value))
    np.fill_diagonal(bandwidth, np.inf)
    return DirectorySnapshot(latency=latency, bandwidth=bandwidth, time=time)


class TestSnapshotHistory:
    def test_push_and_latest(self):
        history = SnapshotHistory()
        history.push(make_snapshot(1e6, time=0.0))
        history.push(make_snapshot(2e6, time=10.0))
        assert len(history) == 2
        assert history.latest.bandwidth[0, 1] == 2e6

    def test_bounded(self):
        history = SnapshotHistory(maxlen=2)
        for k in range(5):
            history.push(make_snapshot(1e6, time=float(k)))
        assert len(history) == 2

    def test_rejects_time_regression(self):
        history = SnapshotHistory()
        history.push(make_snapshot(1e6, time=5.0))
        with pytest.raises(ValueError):
            history.push(make_snapshot(1e6, time=1.0))

    def test_rejects_size_change(self):
        history = SnapshotHistory()
        history.push(make_snapshot(1e6, n=3))
        with pytest.raises(ValueError):
            history.push(make_snapshot(1e6, n=4, time=1.0))

    def test_empty_latest_raises(self):
        with pytest.raises(ValueError):
            SnapshotHistory().latest


class TestEwma:
    def test_alpha_one_uses_latest(self):
        history = SnapshotHistory()
        history.push(make_snapshot(1e6, time=0.0))
        history.push(make_snapshot(3e6, time=1.0))
        forecast = ewma_forecast(history, alpha=1.0)
        assert forecast.bandwidth[0, 1] == pytest.approx(3e6)

    def test_midpoint(self):
        history = SnapshotHistory()
        history.push(make_snapshot(1e6, time=0.0))
        history.push(make_snapshot(3e6, time=1.0))
        forecast = ewma_forecast(history, alpha=0.5)
        assert forecast.bandwidth[0, 1] == pytest.approx(2e6)

    def test_diagonal_preserved(self):
        history = SnapshotHistory()
        history.push(make_snapshot(1e6))
        forecast = ewma_forecast(history)
        assert np.all(np.isinf(np.diag(forecast.bandwidth)))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            ewma_forecast(SnapshotHistory())


class TestLinear:
    def test_extrapolates_geometric_trend_exactly(self):
        history = SnapshotHistory()
        for k in range(4):
            history.push(make_snapshot(1e6 * 1.1**k, time=float(k)))
        forecast = linear_forecast(history, horizon=2.0)
        # multiplicative trend: x1.1 per second; 2 ahead of t=3 -> 1.1^5
        assert forecast.bandwidth[0, 1] == pytest.approx(
            1e6 * 1.1**5, rel=1e-9
        )
        assert forecast.time == pytest.approx(5.0)

    def test_single_snapshot_falls_back(self):
        history = SnapshotHistory()
        history.push(make_snapshot(2e6, time=1.0))
        forecast = linear_forecast(history, horizon=10.0)
        assert forecast.bandwidth[0, 1] == pytest.approx(2e6)

    def test_collapsing_trend_stays_positive(self):
        history = SnapshotHistory()
        history.push(make_snapshot(1e6, time=0.0))
        history.push(make_snapshot(1e5, time=1.0))
        forecast = linear_forecast(history, horizon=100.0)
        # log-space extrapolation predicts a near-dead link, never a
        # non-positive bandwidth (the snapshot type would reject it)
        assert forecast.bandwidth[0, 1] > 0.0
        assert forecast.bandwidth[0, 1] < 1e5

    def test_latency_floor_zero(self):
        history = SnapshotHistory()
        a = make_snapshot(1e6, time=0.0)
        b = make_snapshot(1e6, time=1.0)
        # craft decreasing latency
        lat_b = a.latency * 0.1
        b = DirectorySnapshot(latency=lat_b, bandwidth=b.bandwidth, time=1.0)
        history.push(a)
        history.push(b)
        forecast = linear_forecast(history, horizon=100.0)
        assert np.all(forecast.latency >= 0.0)


class TestForecastError:
    def test_zero_for_exact(self):
        snap = make_snapshot(1e6)
        assert forecast_error(snap, snap) == 0.0

    def test_relative(self):
        a = make_snapshot(1e6)
        b = make_snapshot(2e6)
        assert forecast_error(a, b) == pytest.approx(0.5)

    def test_size_mismatch(self):
        with pytest.raises(ValueError):
            forecast_error(make_snapshot(1e6, n=3), make_snapshot(1e6, n=4))


def test_forecast_improves_planning_under_trend():
    """Planning on the linear forecast beats planning on the stale view."""
    import repro
    from repro.sim.replay import replay_schedule

    rng = np.random.default_rng(0)
    n = 8
    latency, bandwidth = repro.random_pairwise_parameters(n, rng=rng)
    # a deterministic multiplicative trend per pair
    trend = np.exp(rng.normal(0, 0.15, (n, n)))
    trend = (trend + trend.T) / 2
    np.fill_diagonal(trend, 1.0)

    history = SnapshotHistory()
    bw = bandwidth.copy()
    for k in range(4):
        history.push(
            DirectorySnapshot(latency=latency, bandwidth=bw, time=float(k))
        )
        bw = bw * trend
    realised = DirectorySnapshot(latency=latency, bandwidth=bw, time=4.0)
    sizes = repro.MixedSizes().sizes(n, rng=rng)
    truth = repro.TotalExchangeProblem.from_snapshot(realised, sizes)

    stale_plan = repro.schedule_openshop(
        repro.TotalExchangeProblem.from_snapshot(history.latest, sizes)
    )
    forecast_plan = repro.schedule_openshop(
        repro.TotalExchangeProblem.from_snapshot(
            linear_forecast(history, horizon=1.0), sizes
        )
    )
    stale_time = replay_schedule(stale_plan, truth).completion_time
    forecast_time = replay_schedule(forecast_plan, truth).completion_time
    assert forecast_time <= stale_time * 1.02
