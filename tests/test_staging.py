"""Data staging tests (BADD-style, paper reference [24])."""

import numpy as np
import pytest

from repro.network.topology import Metacomputer
from repro.staging import (
    DataItem,
    DataRequest,
    evaluate_plan,
    schedule_staging,
)
from repro.util.units import MBIT_PER_S, seconds_from_ms


def build_system() -> Metacomputer:
    # a -- b -- c chain, 2 nodes per site
    return Metacomputer.build(
        {"a": 2, "b": 2, "c": 2},
        access_latency=seconds_from_ms(1),
        access_bandwidth=100 * MBIT_PER_S,
        backbone=[
            ("a", "b", seconds_from_ms(20), 10 * MBIT_PER_S),
            ("b", "c", seconds_from_ms(20), 2 * MBIT_PER_S),
        ],
    )


class TestRequestTypes:
    def test_item_validation(self):
        with pytest.raises(ValueError):
            DataItem("x", 0.0, (0,))
        with pytest.raises(ValueError):
            DataItem("x", 1.0, ())

    def test_request_validation(self):
        item = DataItem("x", 1.0, (0,))
        with pytest.raises(ValueError):
            DataRequest(item, -1, deadline=1.0)
        with pytest.raises(ValueError):
            DataRequest(item, 0, deadline=-1.0)
        with pytest.raises(ValueError):
            DataRequest(item, 0, deadline=1.0, priority=0.0)


class TestScheduleStaging:
    def test_single_request_earliest_route(self):
        system = build_system()
        item = DataItem("map", 1e6, (0,))
        plan = schedule_staging(
            system, [DataRequest(item, 2, deadline=100.0)]
        )
        assert len(plan.transfers) == 1
        transfer = plan.transfers[0]
        # node 0 (site a) -> node 2 (site b): 2 access + 1 backbone hops
        assert transfer.route[0] == "node:0"
        assert transfer.route[-1] == "node:2"
        # arrival = sum of per-hop latency + size/bw along a->b
        expected = (
            (0.001 + 1e6 / (100 * MBIT_PER_S)) * 2
            + 0.020 + 1e6 / (10 * MBIT_PER_S)
        )
        assert transfer.finish == pytest.approx(expected, rel=1e-6)

    def test_replica_choice(self):
        system = build_system()
        # item replicated at site a (node 0) and site c (node 4);
        # destination at site c should pull from the local replica.
        item = DataItem("tile", 4e6, (0, 4))
        plan = schedule_staging(
            system, [DataRequest(item, 5, deadline=100.0)]
        )
        assert plan.transfers[0].source == 4

    def test_local_delivery_instant(self):
        system = build_system()
        item = DataItem("x", 1e6, (3,))
        plan = schedule_staging(system, [DataRequest(item, 3, deadline=1.0)])
        assert plan.transfers[0].finish == 0.0

    def test_priority_order_wins_contention(self):
        system = build_system()
        # two large transfers share the slow b--c backbone; the high-
        # priority one should go first and meet its deadline.
        big = DataItem("video", 5e6, (0,))
        hop = 5e6 / (2 * MBIT_PER_S)  # ~20s on the slow link
        urgent = DataRequest(big, 4, deadline=hop * 1.5, priority=10.0)
        casual = DataRequest(big, 5, deadline=hop * 1.5, priority=1.0)
        plan = schedule_staging(system, [casual, urgent])
        by_dst = {t.request.destination: t for t in plan.transfers}
        assert by_dst[4].finish < by_dst[5].finish

    def test_reservations_serialise_shared_link(self):
        system = build_system()
        item = DataItem("blob", 2e6, (0,))
        requests = [
            DataRequest(item, 4, deadline=1e6),
            DataRequest(item, 5, deadline=1e6),
        ]
        plan = schedule_staging(system, requests)
        finishes = sorted(t.finish for t in plan.transfers)
        # the second transfer waits for the first on the shared backbone
        assert finishes[1] > finishes[0] * 1.5

    def test_request_arrival_delays_start(self):
        system = build_system()
        item = DataItem("x", 1e6, (0,))
        plan = schedule_staging(
            system,
            [DataRequest(item, 2, deadline=100.0, arrival=50.0)],
        )
        transfer = plan.transfers[0]
        assert transfer.start == pytest.approx(50.0)
        assert transfer.finish > 50.0

    def test_negative_arrival_rejected(self):
        item = DataItem("x", 1e6, (0,))
        with pytest.raises(ValueError):
            DataRequest(item, 2, deadline=1.0, arrival=-1.0)

    def test_staggered_arrivals_respect_reservations(self):
        # two requests over the same slow backbone; the late arrival
        # cannot start before it arrives, even though the link is free.
        system = build_system()
        item = DataItem("blob", 2e6, (0,))
        plan = schedule_staging(
            system,
            [
                DataRequest(item, 4, deadline=1e6, arrival=0.0),
                DataRequest(item, 5, deadline=1e6, arrival=500.0),
            ],
        )
        by_dst = {t.request.destination: t for t in plan.transfers}
        assert by_dst[5].start == pytest.approx(500.0)
        assert by_dst[5].finish > by_dst[4].finish

    def test_arrival_order_is_priority_blind(self):
        system = build_system()
        big = DataItem("video", 5e6, (0,))
        hop = 5e6 / (2 * MBIT_PER_S)
        urgent = DataRequest(big, 4, deadline=hop * 1.5, priority=10.0)
        casual = DataRequest(big, 5, deadline=hop * 1.5, priority=1.0)
        plan = schedule_staging(
            system, [casual, urgent], order_by="arrival"
        )
        by_dst = {t.request.destination: t for t in plan.transfers}
        # arrival order serves the casual request first
        assert by_dst[5].finish < by_dst[4].finish

    def test_invalid_order_by(self):
        system = build_system()
        with pytest.raises(ValueError, match="order_by"):
            schedule_staging(system, [], order_by="magic")

    def test_unroutable_destination(self):
        system = build_system()
        item = DataItem("x", 1.0, (0,))
        plan = schedule_staging(system, [DataRequest(item, 99, deadline=1.0)])
        assert len(plan.unroutable) == 1
        assert not plan.transfers

    def test_bad_source_skipped(self):
        system = build_system()
        item = DataItem("x", 1.0, (99,))
        plan = schedule_staging(system, [DataRequest(item, 0, deadline=1.0)])
        assert len(plan.unroutable) == 1


class TestHopReservations:
    def test_hops_recorded(self):
        system = build_system()
        item = DataItem("map", 1e6, (0,))
        plan = schedule_staging(system, [DataRequest(item, 4, deadline=1e6)])
        transfer = plan.transfers[0]
        assert len(transfer.hops) == len(transfer.route) - 1
        # hop windows chain: each departs no earlier than the previous
        # arrival, and the last arrival is the finish
        prev_arrive = transfer.start
        for _edge, depart, arrive in transfer.hops:
            assert depart >= prev_arrive - 1e-12
            prev_arrive = arrive
        assert prev_arrive == pytest.approx(transfer.finish)

    def test_link_reservations_never_overlap(self):
        system = build_system()
        item = DataItem("blob", 3e6, (0,))
        requests = [
            DataRequest(item, dst, deadline=1e6) for dst in (2, 3, 4, 5)
        ]
        plan = schedule_staging(system, requests)
        windows = {}
        for transfer in plan.transfers:
            for edge, depart, arrive in transfer.hops:
                windows.setdefault(edge, []).append((depart, arrive))
        for edge, intervals in windows.items():
            intervals.sort()
            for (s1, f1), (s2, f2) in zip(intervals, intervals[1:]):
                assert s2 >= f1 - 1e-9, f"overlap on {edge}"


class TestMetrics:
    def test_counts(self):
        system = build_system()
        fast = DataItem("small", 1e4, (0,))
        slow = DataItem("huge", 50e6, (0,))
        # the huge transfer goes first (priority 2) and reserves the a--b
        # backbone for ~40s, so the small one lands around t=40 — inside
        # its 60s deadline; the huge one misses its own 1s deadline.
        plan = schedule_staging(
            system,
            [
                DataRequest(fast, 2, deadline=60.0),
                DataRequest(slow, 5, deadline=1.0, priority=2.0),  # misses
            ],
        )
        metrics = evaluate_plan(plan)
        assert metrics.total_requests == 2
        assert metrics.delivered == 2
        assert metrics.on_time == 1
        assert metrics.on_time_rate == pytest.approx(0.5)
        assert metrics.max_tardiness > 0
        # 1 of 3 priority units satisfied
        assert metrics.weighted_satisfaction == pytest.approx(1 / 3)

    def test_empty_plan(self):
        from repro.staging.request import StagingPlan

        metrics = evaluate_plan(StagingPlan())
        assert metrics.on_time_rate == 1.0
        assert metrics.completion_time == 0.0
