"""Spec-string grammar fuzzing: one deterministic error per failure mode.

Satellite of the collectives tentpole: malformed
``make_collective(...)`` / ``make_directory(...)`` specs must raise a
single deterministic error naming the bad token, and
``parse -> format -> parse`` must round-trip for every registered
family in both registries (they share one grammar,
:mod:`repro.util.spec`).
"""

import numpy as np
import pytest

from repro.collectives import (
    format_collective_spec,
    iter_collective_specs,
    make_collective,
    parse_collective_spec,
)
from repro.directory.factory import (
    DIRECTORY_FLAVOURS,
    format_directory_spec,
    make_directory,
    parse_directory_spec,
)
from repro.util.spec import (
    format_spec,
    format_value,
    parse_spec,
    parse_value,
)


class TestValueGrammar:
    @pytest.mark.parametrize("text,expected", [
        ("true", True), ("yes", True), ("on", True),
        ("false", False), ("no", False), ("off", False),
        ("3", 3), ("-2", -2), ("0.5", 0.5), ("1e9", 1e9),
        ("openshop", "openshop"), (" ring ", "ring"), ("4x8", "4x8"),
    ])
    def test_parse_value(self, text, expected):
        value = parse_value(text)
        assert value == expected
        assert type(value) is type(expected)

    @pytest.mark.parametrize("value", [
        True, False, 0, 3, -7, 0.5, 1e9, "ring", "openshop", "4x8",
        "auto",
    ])
    def test_format_round_trips(self, value):
        assert parse_value(format_value(value)) == value

    @pytest.mark.parametrize("bad", ["", " padded ", "a:b", "a,b", "a=b"])
    def test_unformattable_strings_rejected(self, bad):
        with pytest.raises(ValueError, match="spec string"):
            format_value(bad)


class TestParseSpecErrors:
    """Each failure mode: one deterministic error naming the token."""

    def test_empty(self):
        with pytest.raises(ValueError, match="empty collective spec"):
            parse_collective_spec("   ")

    def test_unknown_name_lists_known(self):
        with pytest.raises(KeyError) as err:
            parse_collective_spec("gossip:fanout=2")
        message = str(err.value)
        assert "unknown collective 'gossip'" in message
        assert "broadcast_log" in message and "allreduce" in message

    def test_malformed_option_names_the_item(self):
        with pytest.raises(ValueError) as err:
            parse_collective_spec("allreduce:variant")
        assert "malformed option 'variant'" in str(err.value)
        assert "expected key=value" in str(err.value)

    def test_duplicate_option_names_the_key(self):
        with pytest.raises(ValueError) as err:
            parse_collective_spec("allreduce:root=0,root=1")
        assert "duplicate option 'root'" in str(err.value)

    def test_missing_key(self):
        with pytest.raises(ValueError, match="malformed option"):
            parse_collective_spec("allreduce:=ring")

    def test_directory_flavour_error_wording_is_stable(self):
        # Pinned by the pre-existing factory tests; the shared grammar
        # must preserve it.
        with pytest.raises(KeyError, match="unknown directory flavour"):
            parse_directory_spec("chaotic:sigma=1")
        with pytest.raises(ValueError, match="key=value"):
            parse_directory_spec("noisy:sigma")
        with pytest.raises(ValueError, match="empty"):
            parse_directory_spec("")

    def test_fuzzed_mutations_raise_exactly_one_grammar_error(self):
        # Seeded fuzz: mutate valid specs with the grammar's own
        # separators; every mutant must raise ValueError or KeyError
        # (never anything else) from the parser itself.
        rng = np.random.default_rng(0)
        seeds = [
            "allreduce:variant=ring", "noisy:sigma=0.3",
            "alltoall_direct:topology=torus,dims=4x8", "static",
        ]
        glyphs = ":,=  "
        for _ in range(300):
            base = seeds[rng.integers(len(seeds))]
            chars = list(base)
            for _ in range(rng.integers(1, 4)):
                mutation = rng.integers(3)
                position = rng.integers(len(chars) + 1)
                if mutation == 0:
                    chars.insert(
                        position, glyphs[rng.integers(len(glyphs))]
                    )
                elif mutation == 1 and chars:
                    del chars[rng.integers(len(chars))]
                elif chars:
                    chars[rng.integers(len(chars))] = glyphs[
                        rng.integers(len(glyphs))
                    ]
            mutant = "".join(chars)
            try:
                name, options = parse_spec(mutant)
            except (ValueError, KeyError) as err:
                assert str(err)  # deterministic message, never empty
            else:
                # parses fine -> must round-trip canonically
                recovered = parse_spec(format_spec(name, options))
                assert recovered == (name, options)


class TestRoundTrips:
    @pytest.mark.parametrize(
        "spec",
        list(iter_collective_specs()),
        ids=[s.name for s in iter_collective_specs()],
    )
    def test_every_collective_round_trips(self, spec):
        text = format_collective_spec(spec.name, spec.options)
        name, options = parse_collective_spec(text)
        assert name == spec.name
        assert options == dict(spec.options)
        # and the canonical form is a fixed point
        assert format_collective_spec(name, options) == text

    @pytest.mark.parametrize("flavour", DIRECTORY_FLAVOURS)
    def test_every_directory_flavour_round_trips(self, flavour):
        text = format_directory_spec(flavour)
        assert parse_directory_spec(text) == (flavour, {})

    def test_directory_options_round_trip(self):
        text = format_directory_spec("noisy", {"sigma": 0.25})
        assert text == "noisy:sigma=0.25"
        assert parse_directory_spec(text) == ("noisy", {"sigma": 0.25})

    def test_format_directory_spec_rejects_unknown(self):
        with pytest.raises(KeyError, match="unknown directory flavour"):
            format_directory_spec("chaotic")

    def test_format_collective_spec_rejects_unknown(self):
        with pytest.raises(KeyError, match="known:"):
            format_collective_spec("gossip")

    def test_options_sorted_canonically(self):
        text = format_collective_spec(
            "alltoall_direct", {"topology": "torus", "dims": "4x8"}
        )
        assert text == "alltoall_direct:dims=4x8,topology=torus"


class TestMakeCollectiveSpecStrings:
    def test_spec_string_builds_configured_collective(self):
        import repro
        from repro.directory.service import DirectorySnapshot

        rng = np.random.default_rng(0)
        latency, bandwidth = repro.random_pairwise_parameters(8, rng=rng)
        snapshot = DirectorySnapshot(latency=latency, bandwidth=bandwidth)
        via_spec = make_collective("allreduce:variant=tree")(
            snapshot, 4096.0
        )
        via_kwargs = make_collective("allreduce", variant="tree")(
            snapshot, 4096.0
        )
        assert via_spec.completion_time == via_kwargs.completion_time

    def test_explicit_kwargs_override_spec_options(self):
        import repro
        from repro.directory.service import DirectorySnapshot

        rng = np.random.default_rng(0)
        latency, bandwidth = repro.random_pairwise_parameters(6, rng=rng)
        snapshot = DirectorySnapshot(latency=latency, bandwidth=bandwidth)
        tree = make_collective(
            "allreduce:variant=ring", variant="tree"
        )(snapshot, 4096.0)
        reference = make_collective("allreduce", variant="tree")(
            snapshot, 4096.0
        )
        assert tree.completion_time == reference.completion_time

    def test_unknown_option_still_typeerror(self):
        with pytest.raises(TypeError, match="option"):
            make_collective("allreduce:fanout=2")

    def test_make_directory_spec_strings_still_work(self):
        service = make_directory("noisy:sigma=0.1", num_procs=4, rng=0)
        assert service.snapshot().num_procs == 4
