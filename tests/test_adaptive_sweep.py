"""Adaptive drift-sweep experiment tests."""

import pytest

from repro.experiments.adaptive_sweep import run_adaptive_sweep


@pytest.fixture(scope="module")
def sweep():
    return run_adaptive_sweep(
        sigmas=(0.0, 1.0), num_procs=8, trials=2, seed=3
    )


def test_shapes(sweep):
    assert sweep.sigmas == (0.0, 1.0)
    assert set(sweep.completion) == {"none", "every_p", "halving"}
    for series in sweep.completion.values():
        assert len(series) == 2
    assert len(sweep.post_drift_lb) == 2


def test_no_drift_policies_equal(sweep):
    # with sigma 0 the replans see the same matrix: same outcome
    values = [series[0] for series in sweep.completion.values()]
    assert max(values) - min(values) < 1e-6 * max(values)


def test_gain_zero_without_drift(sweep):
    assert sweep.gain("halving")[0] == pytest.approx(0.0, abs=1e-9)


def test_gain_bounded(sweep):
    for policy in ("every_p", "halving"):
        for gain in sweep.gain(policy):
            assert -0.5 < gain < 1.0


def test_deterministic():
    a = run_adaptive_sweep(sigmas=(0.5,), num_procs=6, trials=1, seed=9)
    b = run_adaptive_sweep(sigmas=(0.5,), num_procs=6, trials=1, seed=9)
    assert a.completion == b.completion


def test_invalid_trials():
    with pytest.raises(ValueError):
        run_adaptive_sweep(trials=0)
