"""Tests for the repro.check correctness subsystem.

Covers the adversarial instance generator, the invariant oracle, the
differential runner (including a deliberately broken open shop kernel
that must be caught and minimized), the shrinker, and the CLI entry.
"""

import heapq
import json

import numpy as np
import pytest

from repro.check import (
    FAMILIES,
    OracleError,
    bit_equivalence_violations,
    build_instance,
    check_invariants,
    generate_instances,
    oracle_violations,
    run_check,
    shrink_failing_instance,
)
from repro.check.differential import matching_differential_violations
from repro.cli import main
from repro.core.openshop import schedule_openshop
from repro.core.problem import TotalExchangeProblem
from repro.perf.reference import schedule_openshop_reference
from repro.timing.events import CommEvent, Schedule
from tests.conftest import random_problem


def ev(start, src, dst, duration):
    return CommEvent(start=start, src=src, dst=dst, duration=duration)


class TestInstances:
    def test_deterministic(self):
        a = [inst.problem.cost for inst in generate_instances(12, p_max=8)]
        b = [inst.problem.cost for inst in generate_instances(12, p_max=8)]
        for x, y in zip(a, b):
            assert np.array_equal(x, y)

    def test_prefix_stable_under_longer_runs(self):
        first = list(generate_instances(5, p_max=8))
        longer = list(generate_instances(10, p_max=8))
        for x, y in zip(first, longer):
            assert x.seed == y.seed
            assert np.array_equal(x.problem.cost, y.problem.cost)

    def test_family_rotation_covers_all(self):
        families = {
            inst.family for inst in generate_instances(len(FAMILIES), p_max=6)
        }
        assert families == set(FAMILIES)

    def test_p_stays_in_range(self):
        for inst in generate_instances(40, p_max=5):
            assert 1 <= inst.num_procs <= 5

    def test_degenerate_p_drawn_regularly(self):
        counts = [inst.num_procs for inst in generate_instances(60, p_max=8)]
        assert any(p <= 2 for p in counts)

    def test_matrices_valid(self):
        for inst in generate_instances(20, p_max=6):
            cost = inst.problem.cost
            assert cost.shape == (inst.num_procs, inst.num_procs)
            assert np.all(cost >= 0)

    def test_build_instance_replays_generator(self):
        inst = next(iter(generate_instances(1, p_max=6)))
        replay = build_instance(inst.family, inst.num_procs, inst.seed)
        assert np.array_equal(replay.problem.cost, inst.problem.cost)

    def test_unknown_family_rejected(self):
        with pytest.raises(KeyError, match="unknown instance family"):
            build_instance("nope", 3, 0)


class TestOracle:
    def test_openshop_schedule_clean(self):
        problem = random_problem(6, seed=3)
        schedule = schedule_openshop(problem)
        assert oracle_violations(problem, schedule, scheduler="openshop") == []

    def test_missing_zero_marker_detected(self):
        cost = np.array([[0.0, 0.0], [1.0, 0.0]])
        schedule = Schedule.from_events(2, [ev(0.0, 1, 0, 1.0)])
        violations = oracle_violations(
            TotalExchangeProblem(cost=cost), schedule
        )
        assert any("no marker" in v for v in violations)

    def test_missing_self_message_detected(self):
        problem = TotalExchangeProblem(cost=np.array([[2.0]]))
        violations = oracle_violations(problem, Schedule(num_procs=1))
        assert any("self-message" in v for v in violations)

    def test_lower_bound_violation_detected(self):
        # Both long sends of row 0 start together: the overlap is flagged
        # AND the resulting makespan impossibly beats the lower bound.
        cost = np.array(
            [[0.0, 2.0, 2.0], [0.0, 0.0, 0.0], [0.0, 0.0, 0.0]]
        )
        schedule = Schedule.from_events(
            3,
            [ev(0.0, 0, 1, 2.0), ev(0.0, 0, 2, 2.0), ev(0.0, 1, 0, 0.0),
             ev(0.0, 1, 2, 0.0), ev(0.0, 2, 0, 0.0), ev(0.0, 2, 1, 0.0)],
        )
        violations = oracle_violations(
            TotalExchangeProblem(cost=cost), schedule
        )
        assert any("lower bound" in v for v in violations)

    def test_guarantee_bound_violation_detected(self):
        # A needlessly delayed but otherwise valid schedule busting
        # Theorem 3's 2x cap is flagged only under the openshop name.
        cost = np.array([[0.0, 1.0], [1.0, 0.0]])
        problem = TotalExchangeProblem(cost=cost)
        schedule = Schedule.from_events(
            2, [ev(10.0, 0, 1, 1.0), ev(10.0, 1, 0, 1.0)]
        )
        slow = oracle_violations(problem, schedule, scheduler="openshop")
        assert any("guarantee" in v for v in slow)
        assert oracle_violations(problem, schedule) == []

    def test_check_invariants_raises_oracle_error(self):
        problem = TotalExchangeProblem(cost=np.array([[0.0, 1.0], [1.0, 0.0]]))
        with pytest.raises(OracleError, match="invariant"):
            check_invariants(problem, Schedule(num_procs=2))

    def test_proc_count_mismatch(self):
        problem = random_problem(3, seed=0)
        violations = oracle_violations(problem, Schedule(num_procs=2))
        assert violations == [
            "schedule covers 2 processors, problem has 3"
        ]


class TestMatchingDifferential:
    def test_all_backends_clean_on_random(self):
        problem = random_problem(5, seed=9)
        for objective in ("max", "min"):
            assert matching_differential_violations(
                problem.cost, objective,
                backends=("scipy", "auction", "networkx"),
            ) == []

    def test_clean_on_tie_heavy_instance(self):
        # Non-unique optima per round: weights may diverge between
        # backends round-by-round, but each round must still be optimal
        # for its own residual — the probe must NOT flag this.
        cost = np.full((5, 5), 4.0)
        np.fill_diagonal(cost, 0.0)
        for objective in ("max", "min"):
            assert matching_differential_violations(cost, objective) == []


class TestRunCheckClean:
    def test_small_run_passes_without_artifacts(self, tmp_path):
        report = run_check(seeds=10, p_max=5, out_dir=str(tmp_path))
        assert report.ok
        assert report.instances == 10
        assert report.probes_run > 10 * 9
        assert list(tmp_path.iterdir()) == []

    def test_time_budget_truncates(self):
        report = run_check(seeds=50, p_max=5, time_budget=0.0, out_dir=None)
        assert report.truncated
        assert report.instances == 0


def _broken_openshop(problem):
    """Scratch copy of the seed open shop kernel with an off-by-one bug:
    it picks the *second*-earliest available receiver."""
    cost = problem.cost
    n = problem.num_procs
    recv_sets = [set() for _ in range(n)]
    for src, dst in problem.positive_events():
        recv_sets[src].add(dst)
    sendavail = [0.0] * n
    recvavail = [0.0] * n
    events = []
    for src in range(n):
        for dst in range(n):
            if src != dst and cost[src, dst] == 0:
                events.append(ev(0.0, src, dst, 0.0))
    heap = [(sendavail[src], src) for src in range(n) if recv_sets[src]]
    heapq.heapify(heap)
    while heap:
        avail, src = heapq.heappop(heap)
        if avail < sendavail[src] or not recv_sets[src]:
            continue
        ranked = sorted(recv_sets[src], key=lambda j: (recvavail[j], j))
        dst = ranked[1] if len(ranked) > 1 else ranked[0]  # off-by-one
        start = max(sendavail[src], recvavail[dst])
        duration = float(cost[src, dst])
        finish = start + duration
        events.append(ev(start, src, dst, duration))
        sendavail[src] = finish
        recvavail[dst] = finish
        recv_sets[src].discard(dst)
        if recv_sets[src]:
            heapq.heappush(heap, (finish, src))
    return Schedule.from_events(n, events)


class TestInjectedBug:
    def test_off_by_one_caught_and_minimized(self, tmp_path):
        report = run_check(
            seeds=20,
            p_max=8,
            out_dir=str(tmp_path),
            schedulers={"openshop": _broken_openshop},
            include_exact=False,
            max_failures=4,
        )
        assert not report.ok
        diffs = [
            f for f in report.failures if f.kind == "differential:openshop"
        ]
        assert diffs, "bit-equivalence differential did not fire"
        failure = diffs[0]
        assert failure.shrunk_num_procs <= 4
        assert failure.shrunk_violations

        # The artifact is a self-contained reproduction.
        with open(failure.artifact, encoding="utf-8") as handle:
            data = json.load(handle)
        assert data["kind"] == "differential:openshop"
        shrunk = TotalExchangeProblem(
            cost=np.array(data["shrunk"]["cost"])
        )
        assert shrunk.num_procs == failure.shrunk_num_procs
        assert bit_equivalence_violations(
            "openshop",
            _broken_openshop(shrunk),
            schedule_openshop_reference(shrunk),
        )


class TestShrinker:
    def test_reduces_to_minimal_support(self):
        rng = np.random.default_rng(1)
        cost = rng.uniform(0.5, 2.0, (6, 6))
        np.fill_diagonal(cost, 0.0)
        cost[2, 4] = 9.0
        problem = TotalExchangeProblem(cost=cost)
        shrunk = shrink_failing_instance(
            problem, lambda p: bool(np.any(p.cost > 5.0))
        )
        assert shrunk.num_procs == 2
        assert int((shrunk.cost > 0).sum()) == 1
        assert float(shrunk.cost.max()) == 9.0

    def test_never_fails_predicate(self):
        problem = random_problem(4, seed=5)
        target = float(problem.cost.max())
        shrunk = shrink_failing_instance(
            problem, lambda p: float(p.cost.max()) == target
        )
        assert float(shrunk.cost.max()) == target


class TestCli:
    def test_check_subcommand(self, tmp_path, capsys):
        rc = main([
            "check", "--seeds", "4", "--p-max", "4",
            "--out-dir", str(tmp_path),
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "repro.check" in out
        assert "PASS" in out
