"""The ``repro.api`` facade and the one shared spec grammar.

Pins the PR-level contract: all four spec-string families (schedulers,
directories, collectives, fault profiles) parse and format through the
single implementation in :mod:`repro.util.spec`, with identical value
semantics and ``parse -> format -> parse`` round-trips everywhere — a
fuzz suite, not just examples."""

import random
import string

import numpy as np
import pytest

import repro.api as api
from repro.api import (
    format_collective_spec,
    format_directory_spec,
    format_fault_entry,
    format_fault_profile,
    format_scheduler_spec,
    format_spec,
    format_value,
    make_collective,
    make_directory,
    make_fault_profile,
    make_scheduler,
    parse_collective_spec,
    parse_directory_spec,
    parse_fault_entry,
    parse_fault_profile,
    parse_scheduler_spec,
    parse_spec,
    parse_value,
)


# -- the facade itself ------------------------------------------------------


def test_facade_exports_are_importable_and_callable():
    for name in api.__all__:
        assert callable(getattr(api, name)), name


def test_make_fault_profile_is_the_fault_factory():
    profile = make_fault_profile("link_dead:src=0,dst=1,at=2.0")
    assert len(profile.faults) == 1
    assert profile.faults[0].kind == "link_dead"


def test_facade_factories_build_real_objects():
    scheduler = make_scheduler("openshop_partitioned:chunks=2")
    assert callable(scheduler)
    directory = make_directory("drift:sigma=0.05", num_procs=4, rng=0)
    assert directory.num_procs == 4
    collective = make_collective("allreduce:variant=tree")
    assert collective is not None


# -- value grammar ----------------------------------------------------------


@pytest.mark.parametrize("text,value", [
    ("true", True),
    ("false", False),
    ("3", 3),
    ("-7", -7),
    ("0.5", 0.5),
    ("1e-3", 1e-3),
    ("auction", "auction"),
    ("1.0.0", "1.0.0"),
])
def test_parse_value(text, value):
    parsed = parse_value(text)
    assert parsed == value and type(parsed) is type(value)


def test_value_round_trip_fuzz():
    rng = random.Random(7)
    for _ in range(300):
        value = rng.choice([
            rng.randrange(-10**6, 10**6),
            rng.random() * rng.choice([1e-6, 1.0, 1e6]),
            rng.random() < 0.5,
            "".join(rng.choice(string.ascii_letters + "_-")
                    for _ in range(rng.randrange(1, 12))),
        ])
        again = parse_value(format_value(value))
        assert again == value and type(again) is type(value), value


def _random_options(rng):
    options = {}
    for _ in range(rng.randrange(4)):
        key = "".join(
            rng.choice(string.ascii_lowercase + "_")
            for _ in range(rng.randrange(1, 10))
        )
        options[key] = rng.choice([
            rng.randrange(1000), rng.random(), True, False, "word",
        ])
    return options


def test_spec_round_trip_fuzz():
    rng = random.Random(11)
    for _ in range(300):
        name = "".join(
            rng.choice(string.ascii_lowercase + "_")
            for _ in range(rng.randrange(1, 12))
        )
        options = _random_options(rng)
        spec = format_spec(name, options)
        parsed_name, parsed_options = parse_spec(spec)
        assert parsed_name == name
        assert parsed_options == options
        # formatting is canonical: keys sorted, stable string
        assert format_spec(parsed_name, parsed_options) == spec


@pytest.mark.parametrize("bad", [
    "name:key",            # no '='
    "name:=value",         # empty key
    "name:a=1,,b=2",       # empty option
    "name:a=1,a=2",        # duplicate key
    "",
])
def test_malformed_specs_raise_value_error(bad):
    with pytest.raises(ValueError):
        parse_spec(bad)


def test_unknown_name_raises_key_error_listing_known():
    with pytest.raises(KeyError, match="alpha"):
        parse_spec("omega:x=1", known=["alpha", "beta"], kind="thing")


# -- identical behaviour across the four families ---------------------------


FAMILY_PARSERS = [
    parse_scheduler_spec,
    parse_directory_spec,
    parse_collective_spec,
]


@pytest.mark.parametrize(
    "parser", FAMILY_PARSERS, ids=lambda f: f.__name__
)
def test_families_share_value_semantics(parser):
    """The same option string parses to the same typed values no matter
    which family consumes it (unknown names aside)."""
    try:
        _name, options = parser("zzz_not_registered:a=1,b=0.5,c=true,d=x")
    except KeyError:
        # families that validate names up front: go through the shared
        # grammar directly with the same known-set behaviour disabled
        _name, options = parse_spec("whatever:a=1,b=0.5,c=true,d=x")
    assert options == {"a": 1, "b": 0.5, "c": True, "d": "x"}


@pytest.mark.parametrize("parser,spec", [
    (parse_scheduler_spec, "openshop_partitioned:chunks=4"),
    (parse_scheduler_spec, "local_search:max_passes=2"),
    (parse_directory_spec, "noisy:sigma=0.1"),
    (parse_directory_spec, "drift:sigma=0.02"),
    (parse_collective_spec, "allreduce:variant=tree"),
    (parse_collective_spec, "broadcast_log:fanout=4"),
])
def test_family_specs_parse(parser, spec):
    name, options = parser(spec)
    assert ":" not in name or parser is parse_scheduler_spec
    assert options


def test_scheduler_registered_colon_names_win_over_grammar():
    # "matching_min:auction" is a *registered name*, not name+options
    name, options = parse_scheduler_spec("matching_min:auction")
    assert name == "matching_min:auction"
    assert options == {}
    assert callable(make_scheduler("matching_min:auction"))


def test_scheduler_spec_round_trip():
    for spec in (
        "openshop",
        "openshop_partitioned:chunks=4",
        "local_search:max_passes=2",
    ):
        name, options = parse_scheduler_spec(spec)
        again = format_scheduler_spec(name, options)
        assert parse_scheduler_spec(again) == (name, options)


def test_unknown_scheduler_name_raises_key_error():
    with pytest.raises(KeyError, match="openshop"):
        parse_scheduler_spec("frobnicator:x=1")


def test_directory_collective_round_trip():
    for fmt, parser, spec in (
        (format_directory_spec, parse_directory_spec, "noisy:sigma=0.1"),
        (format_collective_spec, parse_collective_spec,
         "allreduce:variant=tree"),
    ):
        name, options = parser(spec)
        assert parser(fmt(name, options)) == (name, options)


# -- fault profiles: the list-valued family ---------------------------------


FAULT_ENTRIES = [
    "link_dead:src=0,dst=1,at=2.0",
    "blackout:src=0,dst=1,at=2,recover=3",
    "bw_collapse:src=2,dst=3,factor=4,at=1,duration=2",
    "node_drop:node=2,at=1.5",
    "link_dead:src=1,dst=2,at=0.5,symmetric=false",
]


@pytest.mark.parametrize("entry", FAULT_ENTRIES)
def test_fault_entry_round_trip(entry):
    fault = parse_fault_entry(entry)
    formatted = format_fault_entry(fault)
    assert parse_fault_entry(formatted) == fault
    # canonical: formatting the reparse is a fixed point
    assert format_fault_entry(parse_fault_entry(formatted)) == formatted


def test_fault_profile_round_trip():
    spec = ";".join(FAULT_ENTRIES)
    profile = parse_fault_profile(spec)
    assert len(profile.faults) == len(FAULT_ENTRIES)
    formatted = format_fault_profile(profile)
    assert parse_fault_profile(formatted) == profile


def test_empty_fault_profile_formats_as_none():
    assert format_fault_profile(parse_fault_profile(None)) == "none"
    assert format_fault_profile(parse_fault_profile("none")) == "none"


def test_fault_profile_round_trip_fuzz():
    rng = random.Random(23)
    for _ in range(100):
        entries = []
        for _ in range(rng.randrange(1, 4)):
            kind = rng.choice(["link_dead", "blackout", "bw_collapse",
                               "node_drop"])
            src = rng.randrange(8)
            dst = (src + rng.randrange(1, 8)) % 8
            at = round(rng.random() * 10, 3)
            duration = round(0.1 + rng.random() * 5, 3)
            if kind == "node_drop":
                entries.append(f"node_drop:node={src},at={at}")
            elif kind == "link_dead":
                entries.append(f"link_dead:src={src},dst={dst},at={at}")
            elif kind == "blackout":
                entries.append(
                    f"blackout:src={src},dst={dst},at={at},"
                    f"duration={duration}"
                )
            else:
                factor = round(1.5 + rng.random() * 10, 3)
                entries.append(
                    f"bw_collapse:src={src},dst={dst},at={at},"
                    f"duration={duration},factor={factor}"
                )
        profile = parse_fault_profile(";".join(entries))
        assert parse_fault_profile(format_fault_profile(profile)) == profile


def test_unknown_fault_kind_raises_key_error():
    with pytest.raises(KeyError, match="link_dead"):
        parse_fault_entry("meteor:at=1")


def test_unknown_fault_option_raises_value_error():
    with pytest.raises(ValueError, match="wobble"):
        parse_fault_entry("link_dead:src=0,dst=1,at=2,wobble=9")


def test_fault_int_fields_reject_floats_and_bools():
    with pytest.raises(ValueError):
        parse_fault_entry("link_dead:src=0.5,dst=1,at=2")
    with pytest.raises(ValueError):
        parse_fault_entry("link_dead:src=true,dst=1,at=2")


# -- workload specs ride the same grammar -----------------------------------


def test_workload_specs_use_shared_grammar():
    from repro.serve.tenants import make_workload_sizes

    rng = np.random.default_rng(0)
    for spec in (
        "mixed",
        "uniform:size_bytes=64",
        "ring:block_bytes=4096",
        "ps:block_bytes=4096,servers=2",
    ):
        sizes = make_workload_sizes(spec, 6, rng=rng)
        assert sizes.shape == (6, 6)
        assert np.all(sizes >= 0)
    with pytest.raises(KeyError):
        make_workload_sizes("bogus_workload", 6, rng=rng)
    with pytest.raises(ValueError):
        make_workload_sizes("ring:block_bytes", 6, rng=rng)
