"""CommEvent and Schedule tests."""

import numpy as np
import pytest

from repro.timing.events import (
    CommEvent,
    Schedule,
    merge_schedules,
    schedule_from_columns,
    schedule_from_fields,
    schedule_from_sorted_fields,
)
from repro.timing.validate import check_schedule


def ev(start, src, dst, duration, size=0.0):
    return CommEvent(start=start, src=src, dst=dst, duration=duration, size=size)


class TestCommEvent:
    def test_finish(self):
        assert ev(1.0, 0, 1, 2.5).finish == pytest.approx(3.5)

    def test_rejects_negative_duration(self):
        with pytest.raises(ValueError):
            ev(0.0, 0, 1, -1.0)

    def test_rejects_negative_start(self):
        with pytest.raises(ValueError):
            ev(-0.1, 0, 1, 1.0)

    def test_rejects_negative_indices(self):
        with pytest.raises(ValueError):
            CommEvent(start=0.0, src=-1, dst=0, duration=1.0)

    def test_shifted(self):
        shifted = ev(1.0, 0, 1, 2.0).shifted(3.0)
        assert shifted.start == pytest.approx(4.0)
        assert shifted.duration == pytest.approx(2.0)

    def test_overlaps_true(self):
        assert ev(0.0, 0, 1, 2.0).overlaps(ev(1.0, 0, 2, 2.0))

    def test_overlaps_false_adjacent(self):
        # Half-open intervals: touching endpoints do not overlap.
        assert not ev(0.0, 0, 1, 1.0).overlaps(ev(1.0, 0, 2, 1.0))

    def test_zero_duration_never_overlaps(self):
        assert not ev(0.5, 0, 1, 0.0).overlaps(ev(0.0, 0, 2, 2.0))

    def test_ordering_by_start(self):
        events = sorted([ev(2.0, 0, 1, 1.0), ev(0.0, 1, 2, 1.0)])
        assert events[0].start == 0.0


class TestSchedule:
    def test_completion_time(self):
        s = Schedule.from_events(3, [ev(0, 0, 1, 2), ev(1, 1, 2, 5)])
        assert s.completion_time == pytest.approx(6.0)

    def test_empty_completion(self):
        assert Schedule(num_procs=2).completion_time == 0.0

    def test_rejects_bad_proc_count(self):
        with pytest.raises(ValueError):
            Schedule(num_procs=0)

    def test_rejects_out_of_range_event(self):
        with pytest.raises(ValueError):
            Schedule.from_events(2, [ev(0, 0, 5, 1)])

    def test_events_sorted(self):
        s = Schedule.from_events(3, [ev(5, 0, 1, 1), ev(0, 1, 2, 1)])
        assert [e.start for e in s] == [0.0, 5.0]

    def test_sender_receiver_events(self):
        s = Schedule.from_events(3, [ev(0, 0, 1, 2), ev(2, 0, 2, 1), ev(0, 1, 2, 1)])
        assert len(s.sender_events(0)) == 2
        assert len(s.receiver_events(2)) == 2

    def test_send_orders(self):
        s = Schedule.from_events(3, [ev(3, 0, 2, 1), ev(0, 0, 1, 2)])
        assert s.send_orders()[0] == [1, 2]

    def test_busy_time(self):
        s = Schedule.from_events(2, [ev(0, 0, 1, 2), ev(2, 1, 0, 3)])
        send, recv = s.busy_time(0)
        assert send == pytest.approx(2.0)
        assert recv == pytest.approx(3.0)

    def test_idle_time(self):
        s = Schedule.from_events(3, [ev(0, 0, 1, 1), ev(5, 0, 2, 1)])
        assert s.idle_time(0) == pytest.approx(4.0)

    def test_idle_time_no_events(self):
        assert Schedule(num_procs=2).idle_time(0) == 0.0

    def test_finish_time_of(self):
        s = Schedule.from_events(3, [ev(0, 0, 1, 2), ev(4, 2, 0, 3)])
        assert s.finish_time_of(0) == pytest.approx(7.0)
        assert s.finish_time_of(1) == pytest.approx(2.0)

    def test_event_map_rejects_duplicates(self):
        s = Schedule.from_events(2, [ev(0, 0, 1, 1), ev(2, 0, 1, 1)])
        with pytest.raises(ValueError):
            s.event_map()

    def test_duration_matrix(self):
        s = Schedule.from_events(2, [ev(0, 0, 1, 2.5)])
        m = s.duration_matrix()
        assert m[0, 1] == pytest.approx(2.5)
        assert m[1, 0] == 0.0

    def test_utilisation_perfect(self):
        s = Schedule.from_events(2, [ev(0, 0, 1, 2), ev(0, 1, 0, 2)])
        assert s.utilisation() == pytest.approx(1.0)

    def test_without_trivial_events(self):
        s = Schedule.from_events(2, [ev(0, 0, 1, 0.0), ev(0, 1, 0, 1.0)])
        assert len(s.without_trivial_events()) == 1

    def test_len_and_iter(self):
        s = Schedule.from_events(2, [ev(0, 0, 1, 1)])
        assert len(s) == 1
        assert [e.src for e in s] == [0]


class TestMergeSchedules:
    def test_merge(self):
        a = Schedule.from_events(3, [ev(0, 0, 1, 1)])
        b = Schedule.from_events(3, [ev(1, 1, 2, 1)])
        merged = merge_schedules(3, [a, b])
        assert len(merged) == 2

    def test_merge_mismatched_procs_raises(self):
        a = Schedule.from_events(2, [ev(0, 0, 1, 1)])
        with pytest.raises(ValueError):
            merge_schedules(3, [a])


class TestLazyScheduleEdgeCases:
    """Degenerate inputs to the trusted lazy constructors."""

    def test_empty_fields(self):
        for factory in (schedule_from_fields, schedule_from_sorted_fields):
            s = factory(3, [])
            assert len(s) == 0
            assert s.completion_time == 0.0
            assert s.events == ()
            # Still consistent after materialization.
            assert len(s) == 0
            assert s.completion_time == 0.0

    def test_empty_columns(self):
        empty = np.array([])
        s = schedule_from_columns(
            2,
            empty,
            empty.astype(np.intp),
            empty.astype(np.intp),
            empty,
            empty,
        )
        assert len(s) == 0
        assert s.completion_time == 0.0
        assert s.events == ()

    def test_zero_duration_markers_only(self):
        fields = [(0.0, 0, 1, 0.0, 0.0), (0.0, 1, 0, 0.0, 0.0)]
        s = schedule_from_sorted_fields(2, fields)
        assert s.completion_time == 0.0
        assert len(s) == 2
        assert all(e.duration == 0.0 for e in s)
        check_schedule(s)  # markers never conflict

    def test_materialization_is_idempotent_and_cached(self):
        fields = [(1.0, 0, 1, 2.0, 0.0), (0.0, 1, 0, 0.5, 0.0)]
        s = schedule_from_fields(2, list(fields))
        assert len(s) == 2  # pre-materialization, straight off the fields
        first = s.events
        assert s.events is first  # cached tuple, not rebuilt
        assert [e.start for e in first] == [0.0, 1.0]  # sorted on access
        assert len(s) == 2
        assert s.completion_time == pytest.approx(3.0)

    def test_lazy_equals_eager(self):
        fields = [(3.0, 0, 1, 1.0, 0.0), (0.0, 1, 0, 2.0, 0.0)]
        lazy = schedule_from_fields(2, list(fields))
        eager = Schedule.from_events(
            2,
            [
                ev(start, src, dst, duration, size)
                for start, src, dst, duration, size in fields
            ],
        )
        assert lazy == eager
        assert lazy.completion_time == eager.completion_time
