"""Unit conversion tests."""

import pytest

from repro.util import units


def test_milliseconds_constant():
    assert units.seconds_from_ms(1.0) == pytest.approx(0.001)


def test_ms_roundtrip():
    assert units.ms_from_seconds(units.seconds_from_ms(34.5)) == pytest.approx(34.5)


def test_kbit_per_s_is_125_bytes():
    assert units.KBIT_PER_S == pytest.approx(125.0)


def test_bandwidth_roundtrip():
    bps = units.bytes_per_s_from_kbit_per_s(4976.0)
    assert units.kbit_per_s_from_bytes_per_s(bps) == pytest.approx(4976.0)


def test_bandwidth_conversion_value():
    # 512 kbit/s = 64 kB/s
    assert units.bytes_per_s_from_kbit_per_s(512.0) == pytest.approx(64_000.0)


def test_size_constants_decimal():
    assert units.KILOBYTE == 1_000
    assert units.MEGABYTE == 1_000_000


def test_bit_rate_constants_are_consistent():
    assert units.MBIT_PER_S == pytest.approx(1_000 * units.KBIT_PER_S)
    assert units.GBIT_PER_S == pytest.approx(1_000 * units.MBIT_PER_S)


def test_one_megabyte_at_one_mbit():
    # 1 MB over 1 Mbit/s takes 8 seconds.
    assert units.MEGABYTE / units.MBIT_PER_S == pytest.approx(8.0)
