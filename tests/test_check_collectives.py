"""The ``check --collectives`` battery itself: green runs, tamper trips."""

import dataclasses

import numpy as np
import pytest

from repro.check.collectives import (
    audit_collective,
    fanout_violations,
    port_violations,
    render_collectives_check,
    round_structure_violations,
    run_collectives_check,
)
from repro.collectives import broadcast_log_plan, reduction_log_plan
from repro.check.collectives import reduction_flow_violations
from repro.directory.factory import make_directory
from repro.timing.events import CommEvent, Schedule


def snapshot_for(n, seed=0):
    return make_directory("static", num_procs=n, rng=seed).snapshot()


class TestRunCollectivesCheck:
    def test_small_sweep_is_green(self):
        report = run_collectives_check(
            size_bytes=4096.0, p_values=(1, 2, 5), seeds=(0,),
            directories=("static",),
        )
        assert report.ok
        assert report.failures == []
        assert report.cases > len(report.covered)
        assert "broadcast_log" in report.covered
        assert "alltoall_direct" in report.covered

    def test_render_mentions_pass_and_coverage(self):
        report = run_collectives_check(
            size_bytes=4096.0, p_values=(1, 2), seeds=(0,),
            directories=("static",),
        )
        text = render_collectives_check(report)
        assert "PASS" in text
        assert f"{len(report.covered)} registered collectives" in text
        assert "broadcast_log" in text  # headline stats table

    def test_render_lists_failures(self):
        report = run_collectives_check(
            size_bytes=4096.0, p_values=(1, 2), seeds=(0,),
            directories=("static",),
        )
        broken = dataclasses.replace(
            report,
            failures=[("broadcast_log[P=2]", ["lost rank 1"])],
        )
        text = render_collectives_check(broken)
        assert "FAIL: 1 case(s) violated" in text
        assert "broadcast_log[P=2]" in text
        assert "lost rank 1" in text


class TestTamperedSchedulesAreCaught:
    def test_dropped_event_breaks_delivery(self):
        snapshot = snapshot_for(8)
        plan = broadcast_log_plan(snapshot, 4096.0)
        tampered = Schedule(
            num_procs=8, events=plan.schedule.events[:-1]
        )
        violations = audit_collective(
            "broadcast_log", tampered, snapshot, 4096.0
        )
        assert violations
        assert any("never" in v or "rank" in v for v in violations)

    def test_uninformed_sender_is_flagged(self):
        # rank 3 relays the message before anyone told it anything
        events = (
            CommEvent(start=0.0, src=3, dst=1, duration=1.0),
            CommEvent(start=2.0, src=0, dst=2, duration=1.0),
            CommEvent(start=2.0, src=1, dst=3, duration=1.0),
        )
        violations = fanout_violations(
            Schedule(num_procs=4, events=events), root=0
        )
        assert any("without ever being reached" in v for v in violations)

    def test_port_conflict_is_flagged(self):
        events = (
            CommEvent(start=0.0, src=0, dst=1, duration=2.0),
            CommEvent(start=1.0, src=0, dst=2, duration=2.0),
        )
        violations = port_violations(Schedule(num_procs=3, events=events))
        assert violations

    def test_round_overload_is_flagged(self):
        entries = [
            type("E", (), {"round": 0, "src": 0, "dst": 1})(),
            type("E", (), {"round": 0, "src": 0, "dst": 2})(),
        ]
        violations = round_structure_violations(entries, 3)
        assert any("sends" in v for v in violations)

    def test_tampered_reduction_plan_is_flagged(self):
        plan = reduction_log_plan(snapshot_for(8), 4096.0)
        # redirect the last entry away from its true destination: the
        # operand flow replay must notice the root misses a partial
        entry = plan.entries[-1]
        bad_dst = (entry.dst + 1) % 8 or (entry.dst + 2) % 8
        tampered = dataclasses.replace(
            plan,
            entries=plan.entries[:-1]
            + (dataclasses.replace(entry, dst=bad_dst),),
        )
        assert reduction_flow_violations(tampered, root=0)


class TestAuditDispatch:
    def test_unknown_name_raises_keyerror(self):
        snapshot = snapshot_for(2)
        with pytest.raises(KeyError, match="no registered audit family"):
            audit_collective(
                "gossip", Schedule(num_procs=2, events=()), snapshot, 1.0
            )
