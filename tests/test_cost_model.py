"""Communication-cost model tests."""

import numpy as np
import pytest

from repro.directory.service import DirectorySnapshot
from repro.model.cost import CommunicationModel, cost_matrix
from repro.model.messages import UniformSizes


def make_snapshot():
    latency = np.array([[0.0, 0.01], [0.02, 0.0]])
    bandwidth = np.array([[np.inf, 1e6], [2e6, np.inf]])
    return DirectorySnapshot(latency=latency, bandwidth=bandwidth)


def test_cost_formula():
    snap = make_snapshot()
    sizes = np.array([[0.0, 5e5], [1e6, 0.0]])
    cost = cost_matrix(snap, sizes)
    assert cost[0, 1] == pytest.approx(0.01 + 0.5)
    assert cost[1, 0] == pytest.approx(0.02 + 0.5)


def test_diagonal_zero():
    snap = make_snapshot()
    cost = cost_matrix(snap, np.full((2, 2), 100.0))
    assert np.all(np.diag(cost) == 0.0)


def test_zero_size_means_no_message():
    snap = make_snapshot()
    sizes = np.array([[0.0, 0.0], [1e6, 0.0]])
    cost = cost_matrix(snap, sizes)
    # no message -> no start-up cost either
    assert cost[0, 1] == 0.0
    assert cost[1, 0] > 0.0


def test_size_spec_accepted():
    snap = make_snapshot()
    cost = cost_matrix(snap, UniformSizes(1e6))
    assert cost[0, 1] == pytest.approx(0.01 + 1.0)


def test_shape_mismatch_raises():
    snap = make_snapshot()
    with pytest.raises(ValueError):
        cost_matrix(snap, np.ones((3, 3)))


def test_negative_sizes_raise():
    snap = make_snapshot()
    with pytest.raises(ValueError):
        cost_matrix(snap, np.array([[0.0, -1.0], [0.0, 0.0]]))


class TestCommunicationModel:
    def test_transfer_time(self):
        model = CommunicationModel(make_snapshot())
        assert model.transfer_time(0, 1, 1e6) == pytest.approx(1.01)
        assert model.transfer_time(0, 0, 1e6) == 0.0

    def test_cost_matrix_wrapper(self):
        model = CommunicationModel(make_snapshot())
        cost = model.cost_matrix(UniformSizes(2e6))
        assert cost[1, 0] == pytest.approx(0.02 + 1.0)
        assert model.num_procs == 2
