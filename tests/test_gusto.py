"""GUSTO dataset tests (paper Tables 1-2)."""

import numpy as np
import pytest

from repro.network.gusto import (
    GUSTO_BANDWIDTH_KBIT_S,
    GUSTO_LATENCY_MS,
    GUSTO_SITES,
    gusto_parameters,
)


def test_five_sites():
    assert len(GUSTO_SITES) == 5
    assert GUSTO_SITES[0] == "AMES"
    assert "USC-ISI" in GUSTO_SITES


def test_tables_symmetric():
    assert np.allclose(GUSTO_LATENCY_MS, GUSTO_LATENCY_MS.T)
    assert np.allclose(GUSTO_BANDWIDTH_KBIT_S, GUSTO_BANDWIDTH_KBIT_S.T)


def test_table1_spot_values():
    # AMES <-> USC-ISI latency is 12 ms; IND <-> AMES is 89.5 ms.
    ames, ind, usc = 0, 2, 3
    assert GUSTO_LATENCY_MS[ames, usc] == 12.0
    assert GUSTO_LATENCY_MS[ind, ames] == 89.5


def test_table2_spot_values():
    # USC-ISI <-> NCSA is the fastest pair at 4976 kbit/s.
    usc, ncsa = 3, 4
    assert GUSTO_BANDWIDTH_KBIT_S[usc, ncsa] == 4976.0
    assert GUSTO_BANDWIDTH_KBIT_S.max() == 4976.0


def test_gusto_parameters_units():
    latency, bandwidth = gusto_parameters()
    # 34.5 ms -> seconds
    assert latency[0, 1] == pytest.approx(0.0345)
    # 512 kbit/s -> bytes/s
    assert bandwidth[0, 1] == pytest.approx(64_000.0)


def test_gusto_parameters_diagonal():
    latency, bandwidth = gusto_parameters()
    assert np.all(np.diag(latency) == 0.0)
    assert np.all(np.isinf(np.diag(bandwidth)))
