"""Scatter and gather collective tests."""

import numpy as np
import pytest

from repro.collectives.broadcast import binomial_tree
from repro.collectives.gather import gather_direct, gather_via_tree
from repro.collectives.scatter import (
    scatter_completion_per_destination,
    scatter_direct,
    scatter_via_tree,
)
from repro.directory.service import DirectorySnapshot
from repro.timing.validate import check_schedule


def make_snapshot(n=6, latency=0.01, bandwidth=1e6):
    lat = np.full((n, n), latency)
    np.fill_diagonal(lat, 0.0)
    bw = np.full((n, n), bandwidth)
    np.fill_diagonal(bw, np.inf)
    return DirectorySnapshot(latency=lat, bandwidth=bw)


class TestScatterDirect:
    def test_makespan_is_total_send_time(self):
        snap = make_snapshot(4)
        blocks = np.array([0.0, 1e6, 2e6, 5e5])
        schedule = scatter_direct(snap, blocks)
        expected = sum(
            snap.transfer_time(0, j, blocks[j]) for j in (1, 2, 3)
        )
        assert schedule.completion_time == pytest.approx(expected)
        check_schedule(schedule)

    def test_default_order_shortest_first(self):
        snap = make_snapshot(4)
        blocks = np.array([0.0, 3e6, 1e6, 2e6])
        schedule = scatter_direct(snap, blocks)
        order = [e.dst for e in sorted(schedule, key=lambda e: e.start)]
        assert order == [2, 3, 1]

    def test_custom_order(self):
        snap = make_snapshot(4)
        blocks = np.array([0.0, 1e6, 1e6, 1e6])
        schedule = scatter_direct(snap, blocks, order=[3, 1, 2])
        order = [e.dst for e in sorted(schedule, key=lambda e: e.start)]
        assert order == [3, 1, 2]

    def test_bad_order_rejected(self):
        snap = make_snapshot(4)
        blocks = np.array([0.0, 1e6, 1e6, 1e6])
        with pytest.raises(ValueError):
            scatter_direct(snap, blocks, order=[1, 2])

    def test_zero_blocks_skipped(self):
        snap = make_snapshot(3)
        schedule = scatter_direct(snap, [0.0, 0.0, 1e6])
        assert len(schedule) == 1

    def test_block_shape_checked(self):
        snap = make_snapshot(3)
        with pytest.raises(ValueError):
            scatter_direct(snap, [1.0, 2.0])


class TestScatterTree:
    def test_valid_and_complete(self):
        snap = make_snapshot(8)
        blocks = np.full(8, 1e6)
        blocks[0] = 0.0
        schedule = scatter_via_tree(snap, blocks, binomial_tree(8))
        check_schedule(schedule)
        arrivals = scatter_completion_per_destination(schedule)
        assert set(arrivals) == set(range(1, 8))

    def test_bundles_include_subtree_bytes(self):
        snap = make_snapshot(4)
        blocks = np.array([0.0, 1e6, 1e6, 1e6])
        tree = {0: [1], 1: [2, 3], 2: [], 3: []}
        schedule = scatter_via_tree(snap, blocks, tree)
        first = min(schedule, key=lambda e: e.start)
        # root ships node 1's bundle: 3 MB (its block + two children)
        assert first.size == pytest.approx(3e6)

    def test_tree_beats_direct_when_relay_has_better_paths(self):
        # The root's only fast link goes to node 1, which has fast links
        # to everyone; relaying the whole payload through node 1 beats
        # pushing each block over the root's slow direct paths.
        n = 6
        lat = np.full((n, n), 0.001)
        np.fill_diagonal(lat, 0.0)
        bw = np.full((n, n), 1e8)
        bw[0, :] = 1e5  # slow root paths ...
        bw[0, 1] = 1e8  # ... except to the relay
        np.fill_diagonal(bw, np.inf)
        snap = DirectorySnapshot(latency=lat, bandwidth=bw)
        blocks = np.full(n, 1e6)
        blocks[0] = 0.0
        direct = scatter_direct(snap, blocks).completion_time
        tree = {0: [1], 1: [2, 3, 4, 5], 2: [], 3: [], 4: [], 5: []}
        relayed = scatter_via_tree(snap, blocks, tree).completion_time
        assert relayed < direct / 10


class TestGather:
    def test_direct_makespan(self):
        snap = make_snapshot(4)
        blocks = np.array([0.0, 1e6, 2e6, 5e5])
        schedule = gather_direct(snap, blocks)
        expected = sum(
            snap.transfer_time(j, 0, blocks[j]) for j in (1, 2, 3)
        )
        assert schedule.completion_time == pytest.approx(expected)
        check_schedule(schedule)

    def test_direct_receives_serialise(self):
        snap = make_snapshot(3)
        schedule = gather_direct(snap, [0.0, 1e6, 1e6])
        events = sorted(schedule, key=lambda e: e.start)
        assert events[1].start == pytest.approx(events[0].finish)

    def test_tree_valid(self):
        snap = make_snapshot(8)
        blocks = np.full(8, 1e6)
        blocks[0] = 0.0
        schedule = gather_via_tree(snap, blocks, binomial_tree(8))
        check_schedule(schedule)
        # the root ends up receiving its direct children's bundles; total
        # bytes into the root equal all non-root blocks.
        into_root = sum(e.size for e in schedule if e.dst == 0)
        assert into_root == pytest.approx(7e6)

    def test_tree_respects_subtree_readiness(self):
        snap = make_snapshot(4)
        blocks = np.array([0.0, 1e6, 1e6, 1e6])
        tree = {0: [1], 1: [2, 3], 2: [], 3: []}
        schedule = gather_via_tree(snap, blocks, tree)
        upload = [e for e in schedule if e.src == 1][0]
        child_finishes = [e.finish for e in schedule if e.dst == 1]
        assert upload.start >= max(child_finishes) - 1e-9

    def test_custom_order(self):
        snap = make_snapshot(3)
        schedule = gather_direct(snap, [0.0, 1e6, 1e6], order=[2, 1])
        first = min(schedule, key=lambda e: e.start)
        assert first.src == 2
