"""Tests for the noisy-directory wrapper and heavy-tailed sizes."""

import numpy as np
import pytest

import repro
from repro.directory import NoisyDirectory, gusto_directory
from repro.model.messages import ParetoSizes


class TestNoisyDirectory:
    def test_snapshot_differs_from_truth(self):
        directory = NoisyDirectory(
            gusto_directory(), bandwidth_sigma=0.3, rng=0
        )
        noisy = directory.snapshot()
        truth = directory.true_snapshot()
        off = ~np.eye(5, dtype=bool)
        assert not np.allclose(noisy.bandwidth[off], truth.bandwidth[off])
        # latency untouched by default
        assert np.allclose(noisy.latency, truth.latency)

    def test_fresh_noise_per_query(self):
        directory = NoisyDirectory(
            gusto_directory(), bandwidth_sigma=0.3, rng=1
        )
        a = directory.snapshot()
        b = directory.snapshot()
        assert not np.allclose(a.bandwidth, b.bandwidth)

    def test_zero_sigma_is_transparent(self):
        directory = NoisyDirectory(
            gusto_directory(), bandwidth_sigma=0.0, latency_sigma=0.0
        )
        assert np.allclose(
            directory.snapshot().bandwidth,
            directory.true_snapshot().bandwidth,
        )

    def test_clock_delegates(self):
        directory = NoisyDirectory(gusto_directory())
        directory.advance(12.0)
        assert directory.time == pytest.approx(12.0)
        assert directory.num_procs == 5

    def test_plan_on_noise_execute_on_truth(self):
        directory = NoisyDirectory(
            gusto_directory(), bandwidth_sigma=0.5, rng=2
        )
        sizes = repro.UniformSizes(repro.MEGABYTE)
        measured = repro.TotalExchangeProblem.from_snapshot(
            directory.snapshot(), sizes
        )
        truth = repro.TotalExchangeProblem.from_snapshot(
            directory.true_snapshot(), sizes
        )
        plan = repro.schedule_openshop(measured)
        replayed = repro.replay_schedule(plan, truth)
        repro.check_schedule(replayed, truth.cost)
        assert replayed.completion_time >= truth.lower_bound() - 1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            NoisyDirectory(gusto_directory(), bandwidth_sigma=-1.0)


class TestParetoSizes:
    def test_bounds(self):
        sizes = ParetoSizes(
            minimum_bytes=1e3, alpha=1.3, cap_bytes=1e7
        ).sizes(20, rng=0)
        off = sizes[~np.eye(20, dtype=bool)]
        assert off.min() >= 1e3
        assert off.max() <= 1e7
        assert np.all(np.diag(sizes) == 0.0)

    def test_heavy_tail(self):
        sizes = ParetoSizes(minimum_bytes=1e3, alpha=1.1).sizes(30, rng=1)
        off = sizes[~np.eye(30, dtype=bool)]
        # the top percentile dwarfs the median — the defining property
        assert np.percentile(off, 99) > 20 * np.median(off)

    def test_deterministic(self):
        a = ParetoSizes().sizes(8, rng=5)
        b = ParetoSizes().sizes(8, rng=5)
        assert np.array_equal(a, b)

    def test_validation(self):
        with pytest.raises(ValueError):
            ParetoSizes(minimum_bytes=0.0)
        with pytest.raises(ValueError):
            ParetoSizes(minimum_bytes=10.0, cap_bytes=5.0)

    def test_schedulable(self):
        from repro.directory.service import DirectorySnapshot

        rng = np.random.default_rng(3)
        latency, bandwidth = repro.random_pairwise_parameters(8, rng=rng)
        snapshot = DirectorySnapshot(latency=latency, bandwidth=bandwidth)
        problem = repro.TotalExchangeProblem.from_snapshot(
            snapshot, ParetoSizes(), rng=rng
        )
        t = repro.schedule_openshop(problem).completion_time
        assert t <= 2 * problem.lower_bound()
