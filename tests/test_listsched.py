"""Additional list-scheduler tests."""

import numpy as np
import pytest

from repro.core.listsched import (
    schedule_local_search,
    schedule_lpt,
    schedule_random_order,
)
from repro.core.openshop import schedule_openshop
from repro.core.problem import example_problem
from repro.core.registry import get_scheduler
from repro.timing.validate import check_schedule
from tests.conftest import random_problem


class TestLpt:
    def test_valid_and_covering(self):
        problem = random_problem(7, seed=0)
        schedule = schedule_lpt(problem)
        check_schedule(schedule, problem.cost)

    def test_longest_event_first(self):
        problem = random_problem(5, seed=1)
        schedule = schedule_lpt(problem)
        longest = max(
            problem.positive_events(), key=lambda p: problem.cost[p]
        )
        event = schedule.event_map()[longest]
        assert event.start == 0.0

    def test_at_least_lower_bound(self):
        for seed in range(5):
            problem = random_problem(6, seed=seed)
            t = schedule_lpt(problem).completion_time
            assert t >= problem.lower_bound() - 1e-9


class TestRandomOrder:
    def test_valid(self):
        problem = random_problem(6, seed=2)
        schedule = schedule_random_order(problem, rng=0)
        check_schedule(schedule, problem.cost)

    def test_seeded_deterministic(self):
        problem = random_problem(6, seed=3)
        a = schedule_random_order(problem, rng=42)
        b = schedule_random_order(problem, rng=42)
        assert a == b

    def test_usually_worse_than_openshop(self):
        worse = 0
        for seed in range(8):
            problem = random_problem(10, seed=seed, low=0.1, high=20.0)
            rand = schedule_random_order(problem, rng=seed).completion_time
            smart = schedule_openshop(problem).completion_time
            if rand >= smart - 1e-9:
                worse += 1
        assert worse >= 7


class TestLocalSearch:
    def test_never_worse_than_seed(self):
        for seed in range(4):
            problem = random_problem(5, seed=seed)
            seeded = schedule_openshop(problem).completion_time
            improved = schedule_local_search(problem).completion_time
            # the FIFO re-execution of openshop orders may already differ
            # from the openshop times; local search only ever improves on
            # its own evaluation, so compare against the lower bound and
            # the seed with slack.
            assert improved <= seeded * 1.0 + 1e-9

    def test_reaches_lower_bound_on_example(self):
        problem = example_problem()
        schedule = schedule_local_search(problem)
        assert schedule.completion_time == pytest.approx(16.0)

    def test_valid_schedule(self):
        problem = random_problem(6, seed=5)
        check_schedule(schedule_local_search(problem), problem.cost)

    def test_invalid_passes(self):
        with pytest.raises(ValueError):
            schedule_local_search(example_problem(), max_passes=-1)


def test_registry_exposes_extras():
    problem = random_problem(4, seed=6)
    for name in ("lpt", "random_order", "local_search"):
        schedule = get_scheduler(name)(problem)
        check_schedule(schedule, problem.cost)
