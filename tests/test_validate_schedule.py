"""Schedule validity checking tests."""

import numpy as np
import pytest

from repro.timing.events import CommEvent, Schedule
from repro.timing.validate import ScheduleError, check_schedule, is_valid_schedule


def ev(start, src, dst, duration):
    return CommEvent(start=start, src=src, dst=dst, duration=duration)


def test_valid_schedule_passes():
    s = Schedule.from_events(3, [ev(0, 0, 1, 2), ev(0, 1, 2, 2), ev(2, 0, 2, 1)])
    check_schedule(s)


def test_sender_overlap_detected():
    s = Schedule.from_events(3, [ev(0, 0, 1, 2), ev(1, 0, 2, 2)])
    with pytest.raises(ScheduleError, match="sender conflict"):
        check_schedule(s)


def test_receiver_overlap_detected():
    s = Schedule.from_events(3, [ev(0, 0, 2, 2), ev(1, 1, 2, 2)])
    with pytest.raises(ScheduleError, match="receiver conflict"):
        check_schedule(s)


def test_zero_duration_overlap_allowed():
    s = Schedule.from_events(3, [ev(0, 0, 1, 2), ev(1, 0, 2, 0.0)])
    check_schedule(s)


def test_touching_intervals_allowed():
    s = Schedule.from_events(3, [ev(0, 0, 1, 2), ev(2, 0, 2, 2)])
    check_schedule(s)


def test_violations_collected():
    s = Schedule.from_events(
        4, [ev(0, 0, 1, 5), ev(1, 0, 2, 5), ev(2, 0, 3, 5)]
    )
    try:
        check_schedule(s)
    except ScheduleError as exc:
        assert len(exc.violations) >= 2
    else:
        pytest.fail("expected ScheduleError")


class TestCoverage:
    def setup_method(self):
        self.cost = np.array([[0.0, 1.0], [2.0, 0.0]])

    def test_full_coverage_passes(self):
        s = Schedule.from_events(2, [ev(0, 0, 1, 1), ev(1, 1, 0, 2)])
        check_schedule(s, self.cost)

    def test_missing_event_detected(self):
        s = Schedule.from_events(2, [ev(0, 0, 1, 1)])
        with pytest.raises(ScheduleError, match="missing event"):
            check_schedule(s, self.cost)

    def test_coverage_optional(self):
        s = Schedule.from_events(2, [ev(0, 0, 1, 1)])
        check_schedule(s, self.cost, require_coverage=False)

    def test_wrong_duration_detected(self):
        s = Schedule.from_events(2, [ev(0, 0, 1, 9), ev(9, 1, 0, 2)])
        with pytest.raises(ScheduleError, match="duration"):
            check_schedule(s, self.cost)

    def test_duplicate_pair_detected(self):
        s = Schedule.from_events(
            2, [ev(0, 0, 1, 1), ev(5, 0, 1, 1), ev(1, 1, 0, 2)]
        )
        with pytest.raises(ScheduleError, match="duplicate"):
            check_schedule(s, self.cost)

    def test_shape_mismatch_raises(self):
        s = Schedule.from_events(3, [ev(0, 0, 1, 1)])
        with pytest.raises(ScheduleError, match="shape"):
            check_schedule(s, self.cost)


def test_is_valid_schedule_bool():
    good = Schedule.from_events(2, [ev(0, 0, 1, 1)])
    bad = Schedule.from_events(2, [ev(0, 0, 1, 2), ev(1, 0, 1, 2)])
    assert is_valid_schedule(good)
    assert not is_valid_schedule(bad)
