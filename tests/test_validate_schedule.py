"""Schedule validity checking tests."""

import numpy as np
import pytest

from repro.timing.events import CommEvent, Schedule
from repro.timing.validate import ScheduleError, check_schedule, is_valid_schedule


def ev(start, src, dst, duration):
    return CommEvent(start=start, src=src, dst=dst, duration=duration)


def test_valid_schedule_passes():
    s = Schedule.from_events(3, [ev(0, 0, 1, 2), ev(0, 1, 2, 2), ev(2, 0, 2, 1)])
    check_schedule(s)


def test_sender_overlap_detected():
    s = Schedule.from_events(3, [ev(0, 0, 1, 2), ev(1, 0, 2, 2)])
    with pytest.raises(ScheduleError, match="sender conflict"):
        check_schedule(s)


def test_receiver_overlap_detected():
    s = Schedule.from_events(3, [ev(0, 0, 2, 2), ev(1, 1, 2, 2)])
    with pytest.raises(ScheduleError, match="receiver conflict"):
        check_schedule(s)


def test_zero_duration_overlap_allowed():
    s = Schedule.from_events(3, [ev(0, 0, 1, 2), ev(1, 0, 2, 0.0)])
    check_schedule(s)


def test_touching_intervals_allowed():
    s = Schedule.from_events(3, [ev(0, 0, 1, 2), ev(2, 0, 2, 2)])
    check_schedule(s)


def test_violations_collected():
    s = Schedule.from_events(
        4, [ev(0, 0, 1, 5), ev(1, 0, 2, 5), ev(2, 0, 3, 5)]
    )
    try:
        check_schedule(s)
    except ScheduleError as exc:
        assert len(exc.violations) >= 2
    else:
        pytest.fail("expected ScheduleError")


class TestCoverage:
    def setup_method(self):
        self.cost = np.array([[0.0, 1.0], [2.0, 0.0]])

    def test_full_coverage_passes(self):
        s = Schedule.from_events(2, [ev(0, 0, 1, 1), ev(1, 1, 0, 2)])
        check_schedule(s, self.cost)

    def test_missing_event_detected(self):
        s = Schedule.from_events(2, [ev(0, 0, 1, 1)])
        with pytest.raises(ScheduleError, match="missing event"):
            check_schedule(s, self.cost)

    def test_coverage_optional(self):
        s = Schedule.from_events(2, [ev(0, 0, 1, 1)])
        check_schedule(s, self.cost, require_coverage=False)

    def test_wrong_duration_detected(self):
        s = Schedule.from_events(2, [ev(0, 0, 1, 9), ev(9, 1, 0, 2)])
        with pytest.raises(ScheduleError, match="duration"):
            check_schedule(s, self.cost)

    def test_duplicate_pair_detected(self):
        s = Schedule.from_events(
            2, [ev(0, 0, 1, 1), ev(5, 0, 1, 1), ev(1, 1, 0, 2)]
        )
        with pytest.raises(ScheduleError, match="duplicate"):
            check_schedule(s, self.cost)

    def test_shape_mismatch_raises(self):
        s = Schedule.from_events(3, [ev(0, 0, 1, 1)])
        with pytest.raises(ScheduleError, match="shape"):
            check_schedule(s, self.cost)


class TestMixedKindBatch:
    """A schedule violating several conditions raises ONE ScheduleError
    carrying every violation in a deterministic kind-grouped order."""

    def setup_method(self):
        self.cost = np.array(
            [[0.0, 1.0, 2.0], [1.0, 0.0, 1.0], [1.0, 1.0, 0.0]]
        )
        # src 0 overlaps itself (sender conflict), 1->0 has the wrong
        # duration, and the three pairs of senders 1/2 never appear.
        self.schedule = Schedule.from_events(
            3, [ev(0, 0, 1, 1), ev(0.5, 0, 2, 2), ev(0, 1, 0, 5)]
        )

    def _error(self):
        with pytest.raises(ScheduleError) as excinfo:
            check_schedule(self.schedule, self.cost)
        return excinfo.value

    def test_all_kinds_collected_in_one_error(self):
        exc = self._error()
        assert len(exc.violations) == 5
        assert sum("sender conflict" in v for v in exc.violations) == 1
        assert sum("has duration" in v for v in exc.violations) == 1
        assert sum("missing event" in v for v in exc.violations) == 3

    def test_deterministic_kind_order(self):
        exc = self._error()
        assert "sender conflict" in exc.violations[0]
        assert "has duration 5" in exc.violations[1]
        assert exc.violations[2:] == [
            "missing event for pair (1, 2)",
            "missing event for pair (2, 0)",
            "missing event for pair (2, 1)",
        ]

    def test_message_leads_with_per_kind_counts(self):
        exc = self._error()
        message = str(exc)
        assert message.startswith(
            "invalid schedule "
            "(1 sender conflict, 1 wrong duration, 3 missing pairs): "
        )

    def test_message_previews_and_truncates(self):
        exc = self._error()
        message = str(exc)
        # 5 violations: all previewed, no "+N more" suffix.
        assert "more)" not in message
        # Add receiver-side noise to push past the preview window.
        crowded = Schedule.from_events(
            3,
            [ev(0, 0, 1, 1), ev(0.5, 0, 2, 2), ev(0, 1, 0, 5),
             ev(0.2, 2, 0, 1), ev(0.4, 2, 1, 1)],
        )
        with pytest.raises(ScheduleError) as excinfo:
            check_schedule(crowded, self.cost)
        longer = excinfo.value
        assert len(longer.violations) > 5
        assert f"(+{len(longer.violations) - 5} more)" in str(longer)

    def test_batch_identical_across_runs(self):
        assert self._error().violations == self._error().violations


def test_is_valid_schedule_bool():
    good = Schedule.from_events(2, [ev(0, 0, 1, 1)])
    bad = Schedule.from_events(2, [ev(0, 0, 1, 2), ev(1, 0, 1, 2)])
    assert is_valid_schedule(good)
    assert not is_valid_schedule(bad)
