"""Snapshot perturbation tests."""

import numpy as np
import pytest

from repro.directory.perturb import perturb_snapshot
from repro.directory.service import DirectorySnapshot


def make_snapshot(n=4):
    latency = np.full((n, n), 0.02)
    np.fill_diagonal(latency, 0.0)
    bandwidth = np.full((n, n), 1e6)
    np.fill_diagonal(bandwidth, np.inf)
    return DirectorySnapshot(latency=latency, bandwidth=bandwidth)


def test_identity_without_args():
    snap = make_snapshot()
    out = perturb_snapshot(snap)
    assert np.array_equal(out.latency, snap.latency)
    assert np.array_equal(out.bandwidth, snap.bandwidth)


def test_bandwidth_noise_changes_values():
    snap = make_snapshot()
    out = perturb_snapshot(snap, bandwidth_sigma=0.5, rng=0)
    off = ~np.eye(4, dtype=bool)
    assert not np.allclose(out.bandwidth[off], snap.bandwidth[off])
    # latencies untouched
    assert np.array_equal(out.latency, snap.latency)


def test_symmetric_noise():
    snap = make_snapshot()
    out = perturb_snapshot(snap, bandwidth_sigma=0.5, symmetric=True, rng=1)
    assert np.allclose(out.bandwidth, out.bandwidth.T)


def test_asymmetric_noise():
    snap = make_snapshot()
    out = perturb_snapshot(snap, bandwidth_sigma=0.5, symmetric=False, rng=1)
    off = ~np.eye(4, dtype=bool)
    assert not np.allclose(out.bandwidth[off], out.bandwidth.T[off])


def test_degrade_pairs():
    snap = make_snapshot()
    out = perturb_snapshot(snap, degrade_pairs=[(0, 1)], degrade_factor=4.0)
    assert out.bandwidth[0, 1] == pytest.approx(2.5e5)
    assert out.bandwidth[1, 0] == pytest.approx(2.5e5)  # symmetric
    assert out.bandwidth[0, 2] == pytest.approx(1e6)


def test_degrade_one_way():
    snap = make_snapshot()
    out = perturb_snapshot(
        snap, degrade_pairs=[(0, 1)], degrade_factor=4.0, symmetric=False
    )
    assert out.bandwidth[0, 1] == pytest.approx(2.5e5)
    assert out.bandwidth[1, 0] == pytest.approx(1e6)


def test_degrade_diagonal_raises():
    with pytest.raises(ValueError):
        perturb_snapshot(make_snapshot(), degrade_pairs=[(1, 1)])


def test_degrade_factor_below_one_raises():
    with pytest.raises(ValueError):
        perturb_snapshot(make_snapshot(), degrade_factor=0.5)


def test_time_delta():
    out = perturb_snapshot(make_snapshot(), time_delta=30.0)
    assert out.time == pytest.approx(30.0)


def test_diagonal_stays_clean():
    out = perturb_snapshot(
        make_snapshot(), bandwidth_sigma=1.0, latency_sigma=1.0, rng=2
    )
    assert np.all(np.diag(out.latency) == 0.0)
    assert np.all(np.isinf(np.diag(out.bandwidth)))


def test_deterministic_by_seed():
    snap = make_snapshot()
    a = perturb_snapshot(snap, bandwidth_sigma=0.3, rng=7)
    b = perturb_snapshot(snap, bandwidth_sigma=0.3, rng=7)
    assert np.array_equal(a.bandwidth, b.bandwidth)
