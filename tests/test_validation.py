"""Argument-validation helper tests."""

import numpy as np
import pytest

from repro.util.validation import (
    check_index,
    check_positive,
    check_probability,
    check_square_matrix,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive("x", 2.5) == 2.5

    def test_rejects_zero_by_default(self):
        with pytest.raises(ValueError, match="x"):
            check_positive("x", 0.0)

    def test_allow_zero(self):
        assert check_positive("x", 0.0, allow_zero=True) == 0.0

    def test_rejects_negative_with_allow_zero(self):
        with pytest.raises(ValueError):
            check_positive("x", -1.0, allow_zero=True)

    def test_rejects_nan_and_inf(self):
        with pytest.raises(ValueError):
            check_positive("x", float("nan"))
        with pytest.raises(ValueError):
            check_positive("x", float("inf"))


class TestCheckProbability:
    def test_bounds(self):
        assert check_probability("p", 0.0) == 0.0
        assert check_probability("p", 1.0) == 1.0

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            check_probability("p", 1.5)
        with pytest.raises(ValueError):
            check_probability("p", -0.1)


class TestCheckSquareMatrix:
    def test_coerces_lists(self):
        arr = check_square_matrix("m", [[1, 2], [3, 4]])
        assert isinstance(arr, np.ndarray)
        assert arr.dtype == float

    def test_rejects_non_square(self):
        with pytest.raises(ValueError, match="square"):
            check_square_matrix("m", np.zeros((2, 3)))

    def test_min_size(self):
        with pytest.raises(ValueError):
            check_square_matrix("m", np.zeros((1, 1)), min_size=2)

    def test_nonnegative(self):
        with pytest.raises(ValueError):
            check_square_matrix("m", [[0, -1], [1, 0]], nonnegative=True)

    def test_zero_diagonal(self):
        with pytest.raises(ValueError):
            check_square_matrix("m", [[1, 2], [3, 0]], zero_diagonal=True)
        check_square_matrix("m", [[0, 2], [3, 0]], zero_diagonal=True)

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            check_square_matrix("m", [[0, np.nan], [1, 0]])


class TestCheckIndex:
    def test_valid(self):
        assert check_index("i", 3, 5) == 3

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            check_index("i", 5, 5)
        with pytest.raises(ValueError):
            check_index("i", -1, 5)
