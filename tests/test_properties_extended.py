"""Property-based tests for the extension subsystems."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.collectives.broadcast import (
    binomial_tree,
    broadcast_lower_bound,
    schedule_broadcast_binomial,
    schedule_broadcast_fnf,
)
from repro.core.preemptive import balance_matrix, schedule_preemptive
from repro.core.problem import TotalExchangeProblem
from repro.io.serialize import (
    problem_from_dict,
    problem_to_dict,
    schedule_from_dict,
    schedule_to_dict,
)
from repro.network.sharing import max_min_fair_rates
from repro.sim.engine import execute_steps_barrier, execute_steps_strict
from repro.timing.validate import check_schedule
from tests.test_properties import SETTINGS, problems


@SETTINGS
@given(problem=problems(min_procs=2, max_procs=6))
def test_preemptive_always_meets_lower_bound(problem):
    schedule = schedule_preemptive(problem)
    assert schedule.completion_time == pytest.approx(
        problem.lower_bound(), rel=1e-6, abs=1e-9
    )
    check_schedule(schedule)


@SETTINGS
@given(problem=problems(min_procs=2, max_procs=6))
def test_balance_matrix_properties(problem):
    padded, r = balance_matrix(problem.cost)
    assert np.allclose(padded.sum(axis=1), r, atol=1e-9)
    assert np.allclose(padded.sum(axis=0), r, atol=1e-9)
    assert np.all(padded >= problem.cost - 1e-12)
    assert r == pytest.approx(problem.lower_bound())


@SETTINGS
@given(problem=problems(min_procs=2, max_procs=8, allow_zeros=False))
def test_broadcast_invariants(problem):
    cost = problem.cost
    lb = broadcast_lower_bound(cost)
    fnf = schedule_broadcast_fnf(cost)
    binomial = schedule_broadcast_binomial(cost)
    for schedule in (fnf, binomial):
        check_schedule(schedule)
        # every non-root node informed exactly once
        assert sorted(e.dst for e in schedule) == list(
            range(1, problem.num_procs)
        )
        assert schedule.completion_time >= lb - 1e-9
    # the sender of every event was informed before it sends
    informed_at = {0: 0.0}
    for event in sorted(fnf, key=lambda e: e.start):
        assert event.src in informed_at
        assert event.start >= informed_at[event.src] - 1e-9
        informed_at[event.dst] = event.finish


@SETTINGS
@given(problem=problems(min_procs=2, max_procs=6))
def test_barrier_dominates_strict(problem):
    n = problem.num_procs
    steps = [
        [(i, (i + j) % n) for i in range(n)] for j in range(n)
    ]
    barrier = execute_steps_barrier(problem.cost, steps)
    strict = execute_steps_strict(problem.cost, steps)
    assert strict.completion_time <= barrier.completion_time + 1e-9
    check_schedule(strict, problem.cost)
    check_schedule(barrier, problem.cost)


@SETTINGS
@given(problem=problems(min_procs=2, max_procs=6))
def test_serialization_roundtrip_property(problem):
    restored = problem_from_dict(problem_to_dict(problem))
    assert np.array_equal(restored.cost, problem.cost)
    from repro.core.openshop import schedule_openshop

    schedule = schedule_openshop(problem)
    assert schedule_from_dict(schedule_to_dict(schedule)) == schedule


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    sizes=st.lists(st.floats(1.0, 1e6), min_size=2, max_size=6),
    capacity=st.floats(0.5, 100.0),
)
def test_max_min_single_link_is_equal_split(sizes, capacity):
    edge = ("a", "b")
    flows = [[edge]] * len(sizes)
    rates = max_min_fair_rates(flows, {edge: capacity})
    assert all(
        r == pytest.approx(capacity / len(sizes)) for r in rates
    )
