"""Drift-storm traces and the drift scenario battery."""

import numpy as np
import pytest

from repro.check.drift import (
    check_decision_ladder,
    drift_scenarios,
    golden_zero_drift_violations,
    render_drift_check,
    run_drift_check,
)
from repro.directory.service import DirectorySnapshot
from repro.network.generators import random_pairwise_parameters
from repro.sim.replay import drift_storm_trace


def _base(n=16, seed=0):
    latency, bandwidth = random_pairwise_parameters(n, rng=seed)
    return DirectorySnapshot(latency=latency, bandwidth=bandwidth)


class TestDriftStormTrace:
    def test_deterministic_and_prefix_stable(self):
        base = _base()
        full = drift_storm_trace(base, ticks=12, seed=5)
        again = drift_storm_trace(base, ticks=12, seed=5)
        prefix = drift_storm_trace(base, ticks=8, seed=5)
        for a, b in zip(full.snapshots, again.snapshots):
            assert np.array_equal(a.latency, b.latency)
            assert np.array_equal(a.bandwidth, b.bandwidth)
        for a, b in zip(full.snapshots[:8], prefix.snapshots):
            assert np.array_equal(a.latency, b.latency)

    def test_storms_are_row_correlated(self):
        base = _base()
        trace = drift_storm_trace(
            base, ticks=9, storm_every=4, storm_nodes=2, calm_sigma=0.0,
            seed=1,
        )
        for step in range(1, 9):
            prev, cur = trace.snapshots[step - 1], trace.snapshots[step]
            changed = np.any(
                ~np.isclose(cur.latency, prev.latency), axis=1
            )
            if step % 4 == 0:
                # a storm reprices exactly the chosen contiguous rows
                assert changed.sum() == 2
                rows = np.flatnonzero(changed)
                assert rows[1] == rows[0] + 1
            else:
                # calm_sigma=0 leaves calm ticks bit-identical
                assert not changed.any()

    def test_storm_scales_cost_rows_uniformly(self):
        # latency x f and bandwidth / f: per-pair costs scale exactly
        # by the node's factor, the dirty-row semantics repair exploits
        base = _base(8, seed=2)
        trace = drift_storm_trace(
            base, ticks=5, storm_every=4, storm_nodes=1, calm_sigma=0.0,
            seed=2,
        )
        prev, cur = trace.snapshots[3], trace.snapshots[4]
        row = int(np.flatnonzero(
            np.any(~np.isclose(cur.latency, prev.latency), axis=1)
        )[0])
        ratio = cur.latency[row, :] / np.where(
            prev.latency[row, :] > 0, prev.latency[row, :], 1.0
        )
        factors = ratio[np.arange(8) != row]
        assert np.allclose(factors, factors[0])
        assert factors[0] > 1.0  # storms only congest
        off = np.arange(8) != row  # diagonal bandwidth stays inf
        assert np.allclose(
            prev.bandwidth[row, off] / cur.bandwidth[row, off], factors[0]
        )

    def test_validation(self):
        base = _base(4)
        with pytest.raises(ValueError):
            drift_storm_trace(base, ticks=0)
        with pytest.raises(ValueError):
            drift_storm_trace(base, ticks=4, dt=0.0)
        with pytest.raises(ValueError):
            drift_storm_trace(base, ticks=4, storm_nodes=0)
        with pytest.raises(ValueError):
            drift_storm_trace(base, ticks=4, storm_every=-1)


class TestDriftBattery:
    def test_golden_zero_drift(self):
        assert golden_zero_drift_violations() == []

    def test_decision_ladder_hits_all_four_tiers(self):
        assert check_decision_ladder() == []

    def test_full_battery_passes_and_renders(self):
        report = run_drift_check()
        assert report.ok, report.failures
        assert report.scenarios == 2 + len(drift_scenarios())
        text = render_drift_check(report)
        assert "PASS" in text
        # the localised storms repaired; the whole-fabric one never did
        assert report.decisions["p16-row-storms"].get("repair", 0) >= 1
        assert report.decisions["p16-whole-fabric"].get("repair", 0) == 0
