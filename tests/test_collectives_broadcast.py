"""Broadcast collective tests."""

import numpy as np
import pytest

from repro.collectives.broadcast import (
    binomial_tree,
    broadcast_lower_bound,
    schedule_broadcast_binomial,
    schedule_broadcast_fnf,
    schedule_broadcast_tree,
)
from repro.timing.validate import check_schedule
from tests.conftest import random_problem


def uniform_cost(n, value=1.0):
    cost = np.full((n, n), value)
    np.fill_diagonal(cost, 0.0)
    return cost


class TestBinomialTree:
    def test_spans_all_nodes(self):
        for n in (1, 2, 5, 8, 13):
            tree = binomial_tree(n)
            count = sum(len(children) for children in tree.values())
            assert count == n - 1

    def test_root_relabelling(self):
        tree = binomial_tree(4, root=2)
        assert len(tree[2]) == 2  # root sends log2(4) messages

    def test_rounds_on_homogeneous_network(self):
        # binomial broadcast takes ceil(log2 P) rounds of unit messages
        for n in (2, 4, 8):
            schedule = schedule_broadcast_binomial(uniform_cost(n))
            assert schedule.completion_time == pytest.approx(
                np.ceil(np.log2(n))
            )

    def test_invalid(self):
        with pytest.raises(ValueError):
            binomial_tree(0)
        with pytest.raises(ValueError):
            binomial_tree(4, root=7)


class TestTreeExecution:
    def test_each_node_receives_once(self):
        cost = random_problem(9, seed=0).cost
        schedule = schedule_broadcast_binomial(cost)
        receivers = [e.dst for e in schedule]
        assert sorted(receivers) == list(range(1, 9))
        check_schedule(schedule)

    def test_sends_serialise_in_child_order(self):
        cost = uniform_cost(4, 2.0)
        tree = {0: [1, 2, 3], 1: [], 2: [], 3: []}
        schedule = schedule_broadcast_tree(cost, tree)
        by_dst = {e.dst: e for e in schedule}
        assert by_dst[1].start == 0.0
        assert by_dst[2].start == pytest.approx(2.0)
        assert by_dst[3].start == pytest.approx(4.0)

    def test_rejects_non_spanning_tree(self):
        cost = uniform_cost(3)
        with pytest.raises(ValueError, match="missing"):
            schedule_broadcast_tree(cost, {0: [1], 1: [], 2: []})

    def test_rejects_double_reach(self):
        cost = uniform_cost(3)
        with pytest.raises(ValueError, match="twice"):
            schedule_broadcast_tree(cost, {0: [1, 2], 1: [2], 2: []})


class TestFnf:
    def test_valid_and_complete(self):
        cost = random_problem(10, seed=1).cost
        schedule = schedule_broadcast_fnf(cost)
        check_schedule(schedule)
        assert sorted(e.dst for e in schedule) == list(range(1, 10))

    def test_matches_binomial_on_homogeneous(self):
        for n in (4, 8):
            cost = uniform_cost(n)
            fnf = schedule_broadcast_fnf(cost)
            binomial = schedule_broadcast_binomial(cost)
            assert fnf.completion_time == pytest.approx(
                binomial.completion_time
            )

    def test_beats_binomial_on_heterogeneous(self):
        wins = 0
        for seed in range(8):
            cost = random_problem(12, seed=seed, low=0.1, high=20.0).cost
            fnf = schedule_broadcast_fnf(cost).completion_time
            binomial = schedule_broadcast_binomial(cost).completion_time
            if fnf <= binomial + 1e-9:
                wins += 1
        assert wins == 8

    def test_respects_lower_bound(self):
        for seed in range(6):
            cost = random_problem(8, seed=seed).cost
            t = schedule_broadcast_fnf(cost).completion_time
            assert t >= broadcast_lower_bound(cost) - 1e-9

    def test_single_node(self):
        schedule = schedule_broadcast_fnf(np.zeros((1, 1)))
        assert schedule.completion_time == 0.0


class TestLowerBound:
    def test_single_node_zero(self):
        assert broadcast_lower_bound(np.zeros((1, 1))) == 0.0

    def test_homogeneous_log_bound(self):
        # unit costs, 8 nodes: at least 3 rounds
        assert broadcast_lower_bound(uniform_cost(8)) == pytest.approx(3.0)

    def test_hardest_node_bound(self):
        cost = uniform_cost(4, 1.0)
        cost[:, 3] = 50.0  # node 3 is expensive to reach from anywhere
        np.fill_diagonal(cost, 0.0)
        assert broadcast_lower_bound(cost) == pytest.approx(50.0)

    def test_bounds_all_schedules(self):
        for seed in range(5):
            cost = random_problem(7, seed=seed).cost
            lb = broadcast_lower_bound(cost)
            assert schedule_broadcast_binomial(cost).completion_time >= lb - 1e-9
