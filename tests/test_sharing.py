"""Bandwidth-sharing allocation tests."""

import pytest

from repro.network.sharing import (
    equal_share_rates,
    max_min_fair_rates,
    shared_bandwidth_matrix,
)

E1 = ("a", "b")
E2 = ("b", "c")


class TestEqualShare:
    def test_single_flow_gets_bottleneck(self):
        rates = equal_share_rates([[E1, E2]], {E1: 10.0, E2: 4.0})
        assert rates == [4.0]

    def test_two_flows_split_shared_link(self):
        rates = equal_share_rates([[E1], [E1]], {E1: 10.0})
        assert rates == [5.0, 5.0]

    def test_disjoint_flows_unaffected(self):
        rates = equal_share_rates([[E1], [E2]], {E1: 10.0, E2: 4.0})
        assert rates == [10.0, 4.0]

    def test_empty_path_unconstrained(self):
        assert equal_share_rates([[]], {}) == [float("inf")]

    def test_paper_rule_division(self):
        # Three flows crossing one 9 MB/s link each get 3 MB/s.
        rates = equal_share_rates([[E1]] * 3, {E1: 9.0})
        assert rates == [3.0, 3.0, 3.0]


class TestMaxMinFair:
    def test_matches_equal_share_symmetric(self):
        rates = max_min_fair_rates([[E1], [E1]], {E1: 10.0})
        assert rates == pytest.approx([5.0, 5.0])

    def test_redistributes_leftover(self):
        # Flow 0 bottlenecked elsewhere at 2; flow 1 should get 10-2=8,
        # where equal share would only give it 5.
        flows = [[E1, E2], [E1]]
        caps = {E1: 10.0, E2: 2.0}
        rates = max_min_fair_rates(flows, caps)
        assert rates[0] == pytest.approx(2.0)
        assert rates[1] == pytest.approx(8.0)

    def test_dominates_equal_share(self):
        flows = [[E1, E2], [E1], [E2]]
        caps = {E1: 6.0, E2: 3.0}
        eq = equal_share_rates(flows, caps)
        mm = max_min_fair_rates(flows, caps)
        for a, b in zip(mm, eq):
            assert a >= b - 1e-9

    def test_capacity_respected(self):
        flows = [[E1, E2], [E1], [E2]]
        caps = {E1: 6.0, E2: 3.0}
        rates = max_min_fair_rates(flows, caps)
        # per-link sums never exceed capacity
        for edge, cap in caps.items():
            used = sum(
                r for r, path in zip(rates, flows) if edge in path
            )
            assert used <= cap + 1e-9

    def test_empty_flow_list(self):
        assert max_min_fair_rates([], {E1: 1.0}) == []

    def test_edgeless_flow_infinite(self):
        rates = max_min_fair_rates([[], [E1]], {E1: 4.0})
        assert rates[0] == float("inf")
        assert rates[1] == pytest.approx(4.0)


def test_shared_bandwidth_matrix():
    paths = {(0, 1): [E1], (2, 3): [E1], (4, 5): [E2]}
    result = shared_bandwidth_matrix(
        6, [(0, 1), (2, 3), (4, 5)], paths, {E1: 8.0, E2: 3.0}
    )
    assert result[(0, 1)] == pytest.approx(4.0)
    assert result[(4, 5)] == pytest.approx(3.0)
