"""CLI tests."""

import pytest

from repro.cli import build_parser, main


def test_example_command(capsys):
    assert main(["example"]) == 0
    out = capsys.readouterr().out
    assert "lower bound" in out
    assert "openshop" in out


def test_example_with_diagrams(capsys):
    assert main(["example", "--diagrams"]) == 0
    out = capsys.readouterr().out
    assert "--- baseline ---" in out
    assert "P0" in out


def test_gusto_command(capsys):
    assert main(["gusto"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out
    assert "NCSA" in out
    assert "total exchange" in out


def test_figure_command(capsys):
    assert main(["figure", "9", "--trials", "1"]) == 0
    out = capsys.readouterr().out
    assert "fig09-small" in out
    assert "speedup over baseline" in out


def test_quality_command(capsys):
    assert main(["quality", "--trials", "1"]) == 0
    out = capsys.readouterr().out
    assert "quality relative to the lower bound" in out


def test_zoo_command(capsys):
    assert main(["zoo", "--procs", "6", "--seed", "1"]) == 0
    out = capsys.readouterr().out
    assert "preemptive optimum" in out
    assert "openshop" in out


def test_adaptive_command(capsys):
    assert main(["adaptive", "--procs", "8", "--trials", "1"]) == 0
    out = capsys.readouterr().out
    assert "drift magnitude" in out
    assert "halving" in out


def test_broadcast_command(capsys):
    assert main(["broadcast", "--procs", "8"]) == 0
    out = capsys.readouterr().out
    assert "fastest-node-first" in out


def test_export_command(capsys, tmp_path):
    out_dir = tmp_path / "exported"
    assert main(["export", "--output-dir", str(out_dir)]) == 0
    assert (out_dir / "example_openshop.svg").exists()
    assert (out_dir / "example_openshop.json").exists()
    assert (out_dir / "example_openshop.trace.json").exists()


def test_export_custom_algorithm(tmp_path):
    out_dir = tmp_path / "exported"
    assert main(
        ["export", "--algorithm", "greedy", "--output-dir", str(out_dir)]
    ) == 0
    assert (out_dir / "example_greedy.svg").exists()


def test_claims_command(capsys):
    assert main(["claims", "--trials", "1"]) == 0
    out = capsys.readouterr().out
    assert "Theorem 2" in out
    assert "claims reproduced" in out
    assert "FAIL" not in out


def test_figure_rejects_unknown_id():
    with pytest.raises(SystemExit):
        main(["figure", "99"])


def test_requires_subcommand():
    with pytest.raises(SystemExit):
        main([])


def test_parser_prog_name():
    assert build_parser().prog == "repro-hetcomm"
