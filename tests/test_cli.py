"""CLI tests."""

import pytest

from repro.cli import build_parser, main


def test_example_command(capsys):
    assert main(["example"]) == 0
    out = capsys.readouterr().out
    assert "lower bound" in out
    assert "openshop" in out


def test_example_with_diagrams(capsys):
    assert main(["example", "--diagrams"]) == 0
    out = capsys.readouterr().out
    assert "--- baseline ---" in out
    assert "P0" in out


def test_gusto_command(capsys):
    assert main(["gusto"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out
    assert "NCSA" in out
    assert "total exchange" in out


def test_figure_command(capsys):
    assert main(["figure", "9", "--trials", "1"]) == 0
    out = capsys.readouterr().out
    assert "fig09-small" in out
    assert "speedup over baseline" in out


def test_quality_command(capsys):
    assert main(["quality", "--trials", "1"]) == 0
    out = capsys.readouterr().out
    assert "quality relative to the lower bound" in out


def test_zoo_command(capsys):
    assert main(["zoo", "--procs", "6", "--seed", "1"]) == 0
    out = capsys.readouterr().out
    assert "preemptive optimum" in out
    assert "openshop" in out


def test_adaptive_command(capsys):
    assert main(["adaptive", "--procs", "8", "--trials", "1"]) == 0
    out = capsys.readouterr().out
    assert "drift magnitude" in out
    assert "halving" in out


def test_broadcast_command(capsys):
    assert main(["broadcast", "--procs", "8"]) == 0
    out = capsys.readouterr().out
    assert "fastest-node-first" in out


def test_export_command(capsys, tmp_path):
    out_dir = tmp_path / "exported"
    assert main(["export", "--output-dir", str(out_dir)]) == 0
    assert (out_dir / "example_openshop.svg").exists()
    assert (out_dir / "example_openshop.json").exists()
    assert (out_dir / "example_openshop.trace.json").exists()


def test_export_custom_scheduler(tmp_path):
    out_dir = tmp_path / "exported"
    assert main(
        ["export", "--scheduler", "greedy", "--output-dir", str(out_dir)]
    ) == 0
    assert (out_dir / "example_greedy.svg").exists()


def test_export_algorithm_alias_removed(tmp_path):
    # --algorithm finished its deprecation cycle; argparse must reject it.
    with pytest.raises(SystemExit):
        main(
            [
                "export",
                "--algorithm",
                "greedy",
                "--output-dir",
                str(tmp_path / "exported"),
            ]
        )


def test_claims_command(capsys):
    assert main(["claims", "--trials", "1"]) == 0
    out = capsys.readouterr().out
    assert "Theorem 2" in out
    assert "claims reproduced" in out
    assert "FAIL" not in out


def test_figure_rejects_unknown_id():
    with pytest.raises(SystemExit):
        main(["figure", "99"])


def test_requires_subcommand():
    with pytest.raises(SystemExit):
        main([])


def test_parser_prog_name():
    assert build_parser().prog == "repro-hetcomm"


def test_export_scheduler_flag(tmp_path):
    out_dir = tmp_path / "exported"
    assert main(
        ["export", "--scheduler", "matching_min:auction",
         "--output-dir", str(out_dir)]
    ) == 0
    assert (out_dir / "example_matching_min-auction.svg").exists()


def test_zoo_scheduler_subset(capsys):
    assert main(
        ["zoo", "--procs", "5", "--scheduler", "openshop",
         "--scheduler", "greedy"]
    ) == 0
    out = capsys.readouterr().out
    assert "openshop" in out and "greedy" in out
    assert "baseline_nosync" not in out


def test_unknown_scheduler_exits_with_known_list(capsys):
    with pytest.raises(SystemExit):
        main(["zoo", "--scheduler", "quantum"])
    err = capsys.readouterr().err
    assert "unknown scheduler" in err and "openshop" in err


def test_check_scheduler_subset(capsys):
    assert main(
        ["check", "--smoke", "--seeds", "2", "--p-max", "5",
         "--scheduler", "openshop", "--out-dir", ""]
    ) == 0
    out = capsys.readouterr().out
    assert "schedulers: openshop" in out


def test_bench_scheduler_timings(capsys):
    assert main(
        ["bench", "--smoke", "--no-reference", "--output", "",
         "--scheduler", "greedy"]
    ) == 0
    out = capsys.readouterr().out
    assert "end-to-end scheduler timings" in out
    assert "greedy" in out


def test_serve_smoke_covers_all_decisions(capsys, tmp_path):
    import json

    metrics_path = tmp_path / "metrics.json"
    trace_path = tmp_path / "trace.json"
    assert main(
        ["serve", "--smoke", "--metrics-out", str(metrics_path),
         "--trace-out", str(trace_path)]
    ) == 0
    out = capsys.readouterr().out
    assert "per-tick serving log" in out
    dump = json.loads(metrics_path.read_text())
    summary = dump["summary"]
    # the CI acceptance bar: every decision kind exercised, the injected
    # timeout hit the fallback, and the headline rates are reported
    assert summary["decisions"]["reuse"] >= 1
    assert summary["decisions"]["refine"] >= 1
    assert summary["decisions"]["reschedule"] >= 1
    assert summary["fallback_activations"] >= 1
    assert 0.0 < summary["reschedule_rate"] < 1.0
    assert "cache_hit_rate" in summary
    assert "mean_regret_s" in summary
    assert dump["events"], "per-tick events must be present"
    assert json.loads(trace_path.read_text())["traceEvents"]


def test_serve_deterministic(capsys, tmp_path):
    import json

    dumps = []
    for k in range(2):
        path = tmp_path / f"m{k}.json"
        assert main(
            ["serve", "--smoke", "--metrics-out", str(path),
             "--trace-out", ""]
        ) == 0
        payload = json.loads(path.read_text())
        # wall-clock scheduler timings differ run to run; drop them
        for event in payload["events"]:
            event.pop("scheduler_elapsed")
        payload["histograms"].pop("scheduler_elapsed_s")
        dumps.append(payload["events"])
    capsys.readouterr()
    assert dumps[0] == dumps[1]

def test_serve_fault_profile_smoke(capsys, tmp_path):
    import json

    metrics_path = tmp_path / "fault_metrics.json"
    assert main(
        ["serve", "--smoke", "--fault-profile", "smoke",
         "--metrics-out", str(metrics_path), "--trace-out", ""]
    ) == 0
    out = capsys.readouterr().out
    assert "fault" in out and "faults=4" in out
    summary = json.loads(metrics_path.read_text())["summary"]
    # the CI faults-smoke acceptance bar: the blackout retried to
    # success, the dead link triggered a salvaging repair
    assert summary["faults_seen"] == 4
    assert summary["retry_successes"] >= 1
    assert summary["repair_episodes"] >= 1
    assert summary["messages_salvaged"] > 0
    assert summary["degraded_tick_ratio"] > 0


def test_serve_rejects_bad_fault_profile(capsys):
    with pytest.raises(SystemExit):
        main(["serve", "--ticks", "2", "--fault-profile",
              "meteor:src=0,dst=1"])
    assert "bad --fault-profile" in capsys.readouterr().err


def test_serve_directory_spec(capsys):
    assert main(
        ["serve", "--directory", "noisy:sigma=0.1", "--procs", "5",
         "--ticks", "3", "--metrics-out", ""]
    ) == 0
    assert "noisy:sigma=0.1" in capsys.readouterr().out


def test_check_faults_flag(capsys):
    assert main(
        ["check", "--seeds", "1", "--p-max", "4", "--faults",
         "--scheduler", "openshop", "--out-dir", ""]
    ) == 0
    out = capsys.readouterr().out
    assert "fault family" in out
    assert "all scenarios PASS" in out


def test_collective_command(capsys):
    assert main(["collective", "--procs", "5", "--seed", "1"]) == 0
    out = capsys.readouterr().out
    assert "alltoall" in out and "barrier_dissemination" in out


def test_collective_subset_and_options(capsys):
    assert main(
        ["collective", "--collective", "broadcast_fnf",
         "--collective", "allreduce_ring", "--directory", "gusto"]
    ) == 0
    out = capsys.readouterr().out
    assert "broadcast_fnf" in out and "allreduce_ring" in out
    assert "scatter_direct" not in out


def test_collective_unknown_name(capsys):
    with pytest.raises(SystemExit):
        main(["collective", "--collective", "telepathy"])
    assert "known:" in capsys.readouterr().err


def test_ops_soak_smoke_and_report(capsys, tmp_path):
    import json

    ops_dir = str(tmp_path / "ops")
    assert main(
        ["ops", "soak", "--smoke", "--ops-dir", ops_dir,
         "--tenants", "3", "--no-daemon-phase"]
    ) == 0
    out = capsys.readouterr().out
    assert "verdict: OK" in out
    assert "[FIRING]" in out and "[RESOLVED]" in out
    payload = json.loads((tmp_path / "ops" / "slo_report.json").read_text())
    assert payload["ok"] is True
    assert payload["oracle_violations"] == 0
    assert payload["alerts_fired"] >= 1
    assert payload["alerts_resolved"] >= 1

    assert main(["ops", "report", "--ops-dir", ops_dir, "--kind", "tick"]) == 0
    out = capsys.readouterr().out
    assert "last soak: ok=True" in out
    assert "records kind=tick" in out
    assert "alerts" in out


def test_ops_report_missing_dir(capsys, tmp_path):
    assert main(
        ["ops", "report", "--ops-dir", str(tmp_path / "nothing_here")]
    ) == 1
    assert "no ops directory" in capsys.readouterr().err


def test_ops_soak_rejects_bad_slo_spec(capsys, tmp_path):
    with pytest.raises(SystemExit):
        main(
            ["ops", "soak", "--smoke", "--ops-dir", str(tmp_path / "ops"),
             "--slo", "fallback_rate"]  # missing threshold
        )


def test_serve_ops_dir_collects_store_and_places_outputs(capsys, tmp_path):
    import json

    ops_dir = tmp_path / "ops"
    assert main(["serve", "--smoke", "--ops-dir", str(ops_dir)]) == 0
    out = capsys.readouterr().out
    assert "per-tick serving log" in out
    # bare default filenames land under the ops dir
    metrics = json.loads((ops_dir / "serve_metrics.json").read_text())
    assert metrics["summary"]["decisions"]
    # every tick event also streamed into the rotating store
    from repro.ops.store import MetricsStore

    store = MetricsStore(ops_dir / "store")
    ticks = store.query(kind="tick")
    assert len(ticks) == len(metrics["events"])
    store.close()
