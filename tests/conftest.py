"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.problem import TotalExchangeProblem


def random_problem(
    num_procs: int,
    *,
    seed: int = 0,
    low: float = 0.5,
    high: float = 10.0,
    zero_fraction: float = 0.0,
) -> TotalExchangeProblem:
    """A random off-diagonal-positive instance for tests."""
    rng = np.random.default_rng(seed)
    cost = rng.uniform(low, high, size=(num_procs, num_procs))
    if zero_fraction > 0:
        mask = rng.random((num_procs, num_procs)) < zero_fraction
        cost[mask] = 0.0
    np.fill_diagonal(cost, 0.0)
    return TotalExchangeProblem(cost=cost)


@pytest.fixture
def small_problem() -> TotalExchangeProblem:
    """A deterministic 4-processor instance."""
    return random_problem(4, seed=42)


@pytest.fixture
def medium_problem() -> TotalExchangeProblem:
    """A deterministic 10-processor instance."""
    return random_problem(10, seed=7)
