"""Message-size specification tests."""

import numpy as np
import pytest

from repro.model.messages import (
    MessageSizes,
    MixedSizes,
    ServerClientSizes,
    UniformSizes,
)
from repro.util.units import KILOBYTE, MEGABYTE


class TestUniformSizes:
    def test_values(self):
        sizes = UniformSizes(KILOBYTE).sizes(4)
        off = ~np.eye(4, dtype=bool)
        assert np.all(sizes[off] == KILOBYTE)
        assert np.all(np.diag(sizes) == 0.0)

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            UniformSizes(0)

    def test_rejects_bad_procs(self):
        with pytest.raises(ValueError):
            UniformSizes().sizes(0)


class TestMixedSizes:
    def test_only_two_values(self):
        sizes = MixedSizes(KILOBYTE, MEGABYTE).sizes(10, rng=0)
        off = ~np.eye(10, dtype=bool)
        assert set(np.unique(sizes[off])) <= {float(KILOBYTE), float(MEGABYTE)}

    def test_probability_extremes(self):
        all_small = MixedSizes(small_probability=1.0).sizes(5, rng=0)
        off = ~np.eye(5, dtype=bool)
        assert np.all(all_small[off] == KILOBYTE)
        all_large = MixedSizes(small_probability=0.0).sizes(5, rng=0)
        assert np.all(all_large[off] == MEGABYTE)

    def test_roughly_balanced(self):
        sizes = MixedSizes(small_probability=0.5).sizes(40, rng=1)
        off = ~np.eye(40, dtype=bool)
        frac_small = np.mean(sizes[off] == KILOBYTE)
        assert 0.4 < frac_small < 0.6

    def test_deterministic_by_seed(self):
        a = MixedSizes().sizes(8, rng=3)
        b = MixedSizes().sizes(8, rng=3)
        assert np.array_equal(a, b)

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            MixedSizes(small_probability=1.5)


class TestServerClientSizes:
    def test_server_count(self):
        spec = ServerClientSizes(server_fraction=0.2)
        assert spec.num_servers(25) == 5
        assert spec.num_servers(3) == 1  # at least one

    def test_pattern(self):
        spec = ServerClientSizes(server_fraction=0.25)
        sizes = spec.sizes(8)
        servers = spec.server_set(8)
        assert list(servers) == [0, 1]
        # server -> client is large
        assert sizes[0, 5] == MEGABYTE
        # server -> server, client -> client, client -> server are small
        assert sizes[0, 1] == KILOBYTE
        assert sizes[5, 6] == KILOBYTE
        assert sizes[5, 0] == KILOBYTE

    def test_server_load_balanced(self):
        # "Data is partitioned over the servers so that the load on the
        # servers is balanced": all server rows move equal volume.
        spec = ServerClientSizes(server_fraction=0.2)
        sizes = spec.sizes(20)
        servers = spec.server_set(20)
        volumes = sizes[servers].sum(axis=1)
        assert np.allclose(volumes, volumes[0])

    def test_random_server_placement(self):
        spec = ServerClientSizes(server_fraction=0.3, first_servers=False)
        servers = spec.server_set(10, rng=0)
        assert len(servers) == 3
        assert len(set(servers.tolist())) == 3

    def test_zero_fraction_rejected(self):
        with pytest.raises(ValueError):
            ServerClientSizes(server_fraction=0.0)


class TestMessageSizes:
    def test_fixed_matrix(self):
        matrix = np.array([[0.0, 5.0], [7.0, 0.0]])
        spec = MessageSizes(matrix)
        assert np.array_equal(spec.sizes(2), matrix)

    def test_diagonal_forced_zero(self):
        spec = MessageSizes(np.ones((2, 2)))
        assert np.all(np.diag(spec.sizes(2)) == 0.0)

    def test_wrong_procs_raises(self):
        spec = MessageSizes(np.ones((2, 2)))
        with pytest.raises(ValueError):
            spec.sizes(3)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            MessageSizes(np.array([[0.0, -1.0], [1.0, 0.0]]))

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            MessageSizes(np.ones((2, 3)))
