"""Dependence graph tests (paper Section 4.2 machinery)."""

import networkx as nx
import numpy as np
import pytest

from repro.core.baseline import schedule_baseline_nosync
from repro.core.problem import TotalExchangeProblem, tight_baseline_instance
from repro.timing.depgraph import (
    baseline_dependence_graph,
    critical_path,
    dependence_graph,
    longest_path_time,
)
from repro.timing.events import CommEvent, Schedule
from tests.conftest import random_problem


class TestBaselineDependenceGraph:
    def test_node_count(self):
        # Steps 1..P-1, P events each (step 0 self-messages are skipped).
        g = baseline_dependence_graph(5)
        assert g.number_of_nodes() == 5 * 4

    def test_structure_small(self):
        g = baseline_dependence_graph(3)
        # sender 0's step-2 event depends on its step-1 event...
        assert g.has_edge((0, 1), (0, 2))
        # ...and on the step-1 event received by its destination (node 2
        # received from sender 1 at step 1).
        assert g.has_edge((1, 2), (0, 2))

    def test_acyclic(self):
        assert nx.is_directed_acyclic_graph(baseline_dependence_graph(7))

    def test_invalid_procs(self):
        with pytest.raises(ValueError):
            baseline_dependence_graph(0)

    def test_longest_path_equals_nosync_execution(self):
        # Theorem 2's model: strict execution realises exactly the
        # longest node-weighted dependence path.
        for seed in range(5):
            problem = random_problem(6, seed=seed)
            g = baseline_dependence_graph(6)
            path_time = longest_path_time(g, problem.cost)
            executed = schedule_baseline_nosync(problem).completion_time
            assert executed == pytest.approx(path_time)

    def test_tight_instance_reaches_p_over_2(self):
        problem = tight_baseline_instance(1e-6)
        g = baseline_dependence_graph(4)
        # include the diagonal step-0 events by hand: the tight instance
        # relies on them, and strict execution includes them.
        executed = schedule_baseline_nosync(problem).completion_time
        ratio = executed / problem.lower_bound()
        assert ratio == pytest.approx(2.0, rel=1e-3)


class TestDependenceGraphFromSchedule:
    def test_chains(self):
        s = Schedule.from_events(
            3,
            [
                CommEvent(start=0, src=0, dst=1, duration=1),
                CommEvent(start=1, src=0, dst=2, duration=1),
                CommEvent(start=1, src=2, dst=1, duration=1),
            ],
        )
        g = dependence_graph(s)
        assert g.has_edge((0, 1), (0, 2))  # sender chain at P0
        assert g.has_edge((0, 1), (2, 1))  # receiver chain at P1

    def test_skips_zero_duration(self):
        s = Schedule.from_events(
            2, [CommEvent(start=0, src=0, dst=1, duration=0)]
        )
        assert dependence_graph(s).number_of_nodes() == 0


class TestLongestPath:
    def test_empty_graph(self):
        assert longest_path_time(nx.DiGraph(), np.zeros((2, 2))) == 0.0

    def test_rejects_cycles(self):
        g = nx.DiGraph()
        g.add_edge((0, 1), (1, 0))
        g.add_edge((1, 0), (0, 1))
        with pytest.raises(ValueError):
            longest_path_time(g, np.ones((2, 2)))

    def test_critical_path_weight_matches(self):
        problem = random_problem(5, seed=3)
        g = baseline_dependence_graph(5)
        path = critical_path(g, problem.cost)
        total = sum(problem.cost[src, dst] for src, dst in path)
        assert total == pytest.approx(longest_path_time(g, problem.cost))

    def test_critical_path_is_a_path(self):
        g = baseline_dependence_graph(4)
        problem = random_problem(4, seed=9)
        path = critical_path(g, problem.cost)
        for a, b in zip(path, path[1:]):
            assert g.has_edge(a, b)
