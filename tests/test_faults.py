"""Fault injection, salvage, repair, and degraded serving tests."""

import numpy as np
import pytest

import repro
from repro.core.openshop import schedule_openshop
from repro.core.problem import TotalExchangeProblem
from repro.core.registry import make_scheduler
from repro.directory.service import DirectorySnapshot
from repro.directory.static import StaticDirectory
from repro.faults import (
    BLACKOUT,
    BW_COLLAPSE,
    Fault,
    FaultProfile,
    FaultyDirectory,
    LINK_DEAD,
    NODE_DROP,
    apply_fault_to_snapshot,
    apply_fault_to_state,
    cut_execution,
    merge_with_salvaged,
    parse_fault_entry,
    parse_fault_profile,
    repair_schedule,
    smoke_fault_profile,
    split_routes,
)
from repro.model.messages import UniformSizes
from repro.runtime import AdaptiveSession, PolicyConfig
from repro.runtime.policy import decide_repair, retry_outcome
from repro.timing.validate import check_schedule


def _snapshot(n=8, seed=0):
    rng = np.random.default_rng(seed)
    latency, bandwidth = repro.random_pairwise_parameters(n, rng=rng)
    return DirectorySnapshot(latency=latency, bandwidth=bandwidth)


def _sizes(n, value=64.0):
    sizes = np.full((n, n), float(value))
    np.fill_diagonal(sizes, 0.0)
    return sizes


# ---------------------------------------------------------------------------
# Fault models and profiles.
# ---------------------------------------------------------------------------


class TestFaultModels:
    def test_kind_validation(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            Fault(kind="meteor", at=0.0)
        with pytest.raises(ValueError, match="needs src="):
            Fault(kind=LINK_DEAD, at=0.0, src=1)
        with pytest.raises(ValueError, match="needs node="):
            Fault(kind=NODE_DROP, at=0.0)
        with pytest.raises(ValueError, match="positive duration"):
            Fault(kind=BLACKOUT, at=0.0, src=0, dst=1)
        with pytest.raises(ValueError, match="factor > 1"):
            Fault(kind=BW_COLLAPSE, at=0.0, src=0, dst=1, factor=1.0)

    def test_mid_schedule_visibility(self):
        fault = Fault(kind=LINK_DEAD, at=3.0, src=0, dst=1, at_event=5)
        # invisible at its own fire time: the interrupted tick planned
        # in good faith
        assert not fault.visible_at(3.0)
        assert fault.visible_at(3.5)
        immediate = Fault(kind=LINK_DEAD, at=3.0, src=0, dst=1)
        assert immediate.visible_at(3.0)

    def test_blackout_recovers(self):
        fault = Fault(kind=BLACKOUT, at=2.0, src=0, dst=1, duration=3.0)
        assert fault.transient
        assert fault.active_at(2.0)
        assert fault.active_at(4.9)
        assert not fault.active_at(5.0)

    def test_profile_masks_compose(self):
        profile = FaultProfile(faults=(
            Fault(kind=LINK_DEAD, at=1.0, src=0, dst=1),
            Fault(kind=NODE_DROP, at=2.0, node=3),
        ))
        assert profile.link_ok(0.5, 5).all()
        ok = profile.link_ok(1.5, 5)
        assert not ok[0, 1] and not ok[1, 0]  # symmetric by default
        alive = profile.node_alive(2.5, 5)
        assert not alive[3] and alive.sum() == 4

    def test_striking_between_is_half_open(self):
        fault = Fault(kind=LINK_DEAD, at=4.0, src=0, dst=1, at_event=2)
        profile = FaultProfile(faults=(fault,))
        assert profile.striking_between(3.0, 4.0) == (fault,)
        assert profile.striking_between(4.0, 5.0) == ()

    def test_bandwidth_divisor(self):
        profile = FaultProfile(faults=(
            Fault(kind=BW_COLLAPSE, at=0.0, src=1, dst=2, factor=4.0),
        ))
        divisor = profile.bandwidth_divisor(1.0, 4)
        assert divisor[1, 2] == 4.0 and divisor[2, 1] == 4.0
        assert divisor[0, 1] == 1.0

    def test_parse_entry_and_profile(self):
        fault = parse_fault_entry(
            "blackout:src=0,dst=1,at=2,recover=4,at_event=3"
        )
        assert fault.kind == BLACKOUT and fault.duration == 4.0
        assert fault.at_event == 3
        profile = parse_fault_profile(
            "link_dead:src=0,dst=1,at=3;node_drop:node=2,at=5"
        )
        assert len(profile) == 2
        assert parse_fault_profile(None) == FaultProfile()
        assert parse_fault_profile("none") == FaultProfile()
        assert len(parse_fault_profile("smoke")) == 4

    def test_parse_rejects_bad_specs(self):
        with pytest.raises(ValueError):
            parse_fault_entry("link_dead:src=0,dst=1,flavour=bad")
        with pytest.raises(ValueError):
            parse_fault_entry("link_dead:src=zero,dst=1")


class TestFaultyDirectory:
    def test_degrades_bandwidth_only_for_collapse(self):
        inner = StaticDirectory(*repro.random_pairwise_parameters(4, rng=0))
        profile = FaultProfile(faults=(
            Fault(kind=BW_COLLAPSE, at=1.0, src=0, dst=1, factor=2.0),
            Fault(kind=LINK_DEAD, at=1.0, src=2, dst=3),
        ))
        directory = FaultyDirectory(inner, profile)
        before = directory.snapshot()
        assert np.allclose(before.bandwidth, inner.snapshot().bandwidth)
        directory.advance(1.0)
        after = directory.snapshot()
        assert after.bandwidth[0, 1] == inner.snapshot().bandwidth[0, 1] / 2
        # dead links keep their numeric bandwidth: availability is
        # carried out of band by the fault view, never as zeros
        assert after.bandwidth[2, 3] == inner.snapshot().bandwidth[2, 3]
        view = directory.fault_view()
        assert not view.link_ok[2, 3]
        assert view.alive.all()

    def test_transient_mask_clears_after_recovery(self):
        inner = StaticDirectory(*repro.random_pairwise_parameters(4, rng=0))
        profile = FaultProfile(faults=(
            Fault(kind=BLACKOUT, at=1.0, src=0, dst=1, duration=2.0),
        ))
        directory = FaultyDirectory(inner, profile)
        directory.advance(1.0)
        view = directory.fault_view()
        assert not view.link_ok[0, 1] and view.transient[0, 1]
        directory.advance(2.5)
        view = directory.fault_view()
        assert view.link_ok[0, 1] and not view.transient.any()


# ---------------------------------------------------------------------------
# Cutting an execution at a strike.
# ---------------------------------------------------------------------------


class TestCutExecution:
    def test_strict_salvage(self):
        snapshot = _snapshot(5)
        sizes = _sizes(5)
        schedule = schedule_openshop(
            TotalExchangeProblem.from_snapshot(snapshot, sizes)
        )
        partial = cut_execution(schedule, 7)
        assert partial.interrupted
        # ties at the cut instant salvage too, so >= the event index
        assert partial.salvaged_events >= 7
        positive = sum(1 for e in schedule if e.duration > 0)
        assert partial.salvaged_events + partial.cancelled_events == positive
        # every salvaged event finished at or before the strike
        cutoff = partial.strike_time + 1e-9
        assert all(e.finish <= cutoff for e in partial.salvaged)
        assert partial.delivered.sum() == len(partial.salvaged)

    def test_zero_event_strike_salvages_nothing_positive(self):
        snapshot = _snapshot(4)
        schedule = schedule_openshop(
            TotalExchangeProblem.from_snapshot(snapshot, _sizes(4))
        )
        partial = cut_execution(schedule, 0)
        assert partial.salvaged_events == 0
        assert partial.strike_time == 0.0

    def test_late_strike_is_not_an_interruption(self):
        snapshot = _snapshot(4)
        schedule = schedule_openshop(
            TotalExchangeProblem.from_snapshot(snapshot, _sizes(4))
        )
        partial = cut_execution(schedule, 10_000)
        assert not partial.interrupted
        assert partial.cancelled_events == 0

    def test_residual_orders_preserve_dispatch_order(self):
        snapshot = _snapshot(6, seed=3)
        schedule = schedule_openshop(
            TotalExchangeProblem.from_snapshot(snapshot, _sizes(6))
        )
        partial = cut_execution(schedule, 4)
        starts = {
            (e.src, e.dst): e.start for e in schedule if e.duration > 0
        }
        for src, dsts in enumerate(partial.residual_orders):
            times = [starts[(src, dst)] for dst in dsts]
            assert times == sorted(times)

    def test_merge_shifts_continuation(self):
        snapshot = _snapshot(4)
        sizes = _sizes(4)
        schedule = schedule_openshop(
            TotalExchangeProblem.from_snapshot(snapshot, sizes)
        )
        partial = cut_execution(schedule, 3)
        continuation = schedule_openshop(
            TotalExchangeProblem.from_snapshot(snapshot, sizes)
        )
        merged = merge_with_salvaged(
            partial.salvaged, continuation, offset=partial.strike_time
        )
        post = [e for e in merged if e.start >= partial.strike_time - 1e-12]
        assert len(post) >= len(continuation.events)


# ---------------------------------------------------------------------------
# Routing and repair.
# ---------------------------------------------------------------------------


class TestRepair:
    def test_golden_zero_fault_bit_identity(self):
        # ISSUE acceptance: repair-after-fault on a zero-fault trace is
        # bit-identical to the unrepaired schedule.
        for n, seed, scheduler in ((2, 0, "openshop"), (3, 1, "greedy"),
                                   (8, 2, "openshop")):
            snapshot = _snapshot(n, seed)
            sizes = _sizes(n)
            solve = make_scheduler(scheduler)
            baseline = solve(
                TotalExchangeProblem.from_snapshot(snapshot, sizes)
            )
            repaired = repair_schedule(snapshot, sizes, scheduler=solve)
            assert repaired.schedule.events == baseline.events
            assert repaired.undeliverable == 0

    def test_p2_partition_is_unreachable(self):
        snapshot = _snapshot(2)
        sizes = _sizes(2)
        link_ok = np.ones((2, 2), dtype=bool)
        link_ok[0, 1] = link_ok[1, 0] = False
        routes = split_routes(snapshot, sizes, link_ok=link_ok)
        assert set(routes.unreachable) == {(0, 1), (1, 0)}
        assert not routes.needs_relays
        result = repair_schedule(
            snapshot, sizes, link_ok=link_ok, scheduler=schedule_openshop
        )
        assert result.undeliverable == 2
        assert not [e for e in result.schedule if e.duration > 0]

    def test_p3_relay_triangle(self):
        snapshot = _snapshot(3, seed=1)
        sizes = _sizes(3)
        link_ok = np.ones((3, 3), dtype=bool)
        link_ok[0, 1] = link_ok[1, 0] = False
        result = repair_schedule(
            snapshot, sizes, link_ok=link_ok, scheduler=schedule_openshop
        )
        assert set(result.routes.relayed) == {(0, 2, 1), (1, 2, 0)}
        assert result.undeliverable == 0
        check_schedule(result.schedule)
        # both legs of each relayed message exist and are ordered
        events = {
            (e.src, e.dst): e for e in result.schedule if e.duration > 0
        }
        for src, relay, dst in result.routes.relayed:
            assert events[(relay, dst)].start >= (
                events[(src, relay)].finish - 1e-9
            )

    def test_node_drop_loses_its_pairs(self):
        snapshot = _snapshot(5)
        sizes = _sizes(5)
        alive = np.ones(5, dtype=bool)
        alive[2] = False
        link_ok = np.ones((5, 5), dtype=bool)
        link_ok[2, :] = link_ok[:, 2] = False
        result = repair_schedule(
            snapshot, sizes, alive=alive, link_ok=link_ok,
            scheduler=schedule_openshop,
        )
        assert len(result.routes.lost) == 8  # 2*(P-1) pairs touch node 2
        for event in result.schedule:
            assert event.src != 2 and event.dst != 2

    def test_repair_beats_naive_full_reschedule(self):
        # ISSUE acceptance: repair salvages more and stays within 1.5x
        # the naive restart's makespan.
        snapshot = _snapshot(8, seed=2)
        sizes = _sizes(8)
        schedule = schedule_openshop(
            TotalExchangeProblem.from_snapshot(snapshot, sizes)
        )
        partial = cut_execution(schedule, 30)
        fault = Fault(kind=LINK_DEAD, at=0.0, src=2, dst=5, at_event=30)
        alive, link_ok = apply_fault_to_state(
            np.ones(8, dtype=bool), np.ones((8, 8), dtype=bool), fault
        )
        after = apply_fault_to_snapshot(snapshot, fault)
        repaired = repair_schedule(
            after, sizes, delivered=partial.delivered,
            alive=alive, link_ok=link_ok, scheduler=schedule_openshop,
        )
        naive = repair_schedule(
            after, sizes, alive=alive, link_ok=link_ok,
            scheduler=schedule_openshop,
        )
        assert partial.salvaged_events > 0
        assert repaired.resent < naive.resent
        assert repaired.schedule.completion_time <= (
            1.5 * naive.schedule.completion_time
        )

    def test_start_time_shifts_events(self):
        snapshot = _snapshot(4)
        sizes = _sizes(4)
        link_ok = np.ones((4, 4), dtype=bool)
        link_ok[0, 1] = link_ok[1, 0] = False
        result = repair_schedule(
            snapshot, sizes, link_ok=link_ok,
            scheduler=schedule_openshop, start_time=7.5,
        )
        positive = [e for e in result.schedule if e.duration > 0]
        assert positive and min(e.start for e in positive) >= 7.5


# ---------------------------------------------------------------------------
# Retry/repair policy.
# ---------------------------------------------------------------------------


class TestFaultPolicy:
    def test_backoff_outwaits_short_outage(self):
        recovered, attempts, waited = retry_outcome(3.0, config=PolicyConfig())
        assert recovered
        assert attempts == 2  # waits 1 + 2 = 3 >= 3
        assert waited == pytest.approx(3.0)

    def test_backoff_gives_up_on_long_outage(self):
        recovered, attempts, waited = retry_outcome(1e9, config=PolicyConfig())
        assert not recovered
        assert attempts == 4  # the configured cap
        assert waited == pytest.approx(1.0 + 2.0 + 4.0 + 8.0)

    def test_decide_repair_threshold(self):
        action, _ = decide_repair(10, 56, config=PolicyConfig())
        assert action == "repair"
        action, _ = decide_repair(0, 56, config=PolicyConfig())
        assert action == "full"
        action, _ = decide_repair(1, 56, config=PolicyConfig(
            repair_salvage_threshold=0.5,
        ))
        assert action == "full"


# ---------------------------------------------------------------------------
# Degraded serving: the session end to end.
# ---------------------------------------------------------------------------


def _smoke_session(**kwargs):
    inner = StaticDirectory(*repro.random_pairwise_parameters(8, rng=7))
    directory = FaultyDirectory(inner, smoke_fault_profile())
    return AdaptiveSession(
        directory,
        UniformSizes(64.0),
        scheduler="openshop",
        clock=lambda: 0.0,
        **kwargs,
    )


class TestDegradedServing:
    def test_smoke_profile_end_to_end(self):
        session = _smoke_session()
        results = session.run(12, dt=1.0)
        events = [r.event for r in results]
        # the blackout strike is outwaited by backoff (a retry success)
        retried = [e for e in events if e.repair == "retry"]
        assert len(retried) == 1
        assert retried[0].retries >= 1
        assert retried[0].backoff_wait_s > 0
        # the permanent link death triggers a repair that salvages
        repaired = [e for e in events if e.repair == "repair"]
        assert len(repaired) == 1
        assert repaired[0].salvaged_events > 0
        assert repaired[0].resent_events > 0
        summary = session.summary()
        assert summary["faults_seen"] == 4
        assert summary["retry_successes"] >= 1
        assert summary["repair_episodes"] >= 1
        assert summary["messages_salvaged"] > 0
        assert 0.0 < summary["degraded_tick_ratio"] <= 1.0

    def test_smoke_profile_is_deterministic(self):
        dumps = []
        for _ in range(2):
            session = _smoke_session()
            session.run(12, dt=1.0)
            events = [
                {
                    k: v for k, v in vars(e).items()
                    if k not in ("scheduler_elapsed", "repair_latency_s")
                }
                for e in session.metrics.events
            ]
            dumps.append(events)
        assert dumps[0] == dumps[1]

    def test_node_drop_shrinks_demand(self):
        session = _smoke_session()
        results = session.run(12, dt=1.0)
        # node 6 drops at t=9: later exchanges never touch it
        for result in results[9:]:
            for event in result.schedule:
                assert event.src != 6 and event.dst != 6

    def test_every_degraded_schedule_is_port_valid(self):
        session = _smoke_session()
        for result in session.run(12, dt=1.0):
            check_schedule(result.schedule)

    def test_clean_profile_matches_faultless_run(self):
        inner = StaticDirectory(*repro.random_pairwise_parameters(6, rng=3))
        plain = AdaptiveSession(
            inner, UniformSizes(64.0), scheduler="openshop",
            clock=lambda: 0.0,
        )
        wrapped = AdaptiveSession(
            FaultyDirectory(
                StaticDirectory(*repro.random_pairwise_parameters(6, rng=3)),
                FaultProfile(),
            ),
            UniformSizes(64.0), scheduler="openshop", clock=lambda: 0.0,
        )
        a = [r.event for r in plain.run(5, dt=1.0)]
        b = [r.event for r in wrapped.run(5, dt=1.0)]
        for x, y in zip(a, b):
            assert x.decision == y.decision
            assert x.executed_makespan == pytest.approx(y.executed_makespan)
            assert not y.degraded

    def test_permanent_blackout_declares_link_dead(self):
        inner = StaticDirectory(*repro.random_pairwise_parameters(4, rng=1))
        # a blackout far longer than the backoff budget: retries fail,
        # the link is declared dead and stays avoided even after the
        # profile says it recovered
        profile = FaultProfile(faults=(
            Fault(kind=BLACKOUT, at=2.0, src=0, dst=1, duration=50.0,
                  at_event=2),
        ))
        session = AdaptiveSession(
            FaultyDirectory(inner, profile), UniformSizes(64.0),
            scheduler="openshop", clock=lambda: 0.0,
        )
        results = session.run(4, dt=1.0)
        strike = results[1].event
        assert strike.repair in ("repair", "full")
        assert "declared dead" in strike.reason
        assert session.summary()["retry_successes"] == 0


# ---------------------------------------------------------------------------
# The check-family entry points.
# ---------------------------------------------------------------------------


class TestFaultCheckFamily:
    def test_family_passes(self):
        from repro.check import render_fault_check, run_fault_check

        report = run_fault_check()
        assert report.ok, render_fault_check(report)
        assert report.scenarios == 7
        rendered = render_fault_check(report)
        assert "PASS" in rendered

    def test_scenarios_cover_partition_and_relay(self):
        from repro.check.faults import fault_scenarios

        names = [s.name for s in fault_scenarios()]
        assert "p2-partitioned" in names
        assert "p3-relay-triangle" in names
        assert {s.num_procs for s in fault_scenarios()} == {2, 3, 8}
