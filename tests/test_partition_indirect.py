"""Design-decision ablation tests: partitioning and indirect routing."""

import numpy as np
import pytest

import repro
from repro.core.indirect import (
    choose_relays,
    relayed_bytes_factor,
    relayed_volume_factor,
    schedule_openshop_indirect,
)
from repro.core.partition import (
    partitioned_chunks,
    partitioning_overhead,
    schedule_openshop_partitioned,
)
from repro.directory.service import DirectorySnapshot
from repro.timing.validate import check_schedule


def make_setup(n=6, seed=0):
    rng = np.random.default_rng(seed)
    latency, bandwidth = repro.random_pairwise_parameters(n, rng=rng)
    snapshot = DirectorySnapshot(latency=latency, bandwidth=bandwidth)
    sizes = repro.MixedSizes().sizes(n, rng=rng)
    return snapshot, sizes


class TestPartitioning:
    def test_chunk_cost_formula(self):
        snapshot, sizes = make_setup()
        chunk_cost, events = partitioned_chunks(snapshot, sizes, 4)
        i, j = 0, 1
        expected = snapshot.latency[i, j] + (
            sizes[i, j] / 4
        ) / snapshot.bandwidth[i, j]
        assert chunk_cost[i, j] == pytest.approx(expected)
        assert events.count((i, j)) == 4

    def test_one_chunk_matches_plain_openshop(self):
        snapshot, sizes = make_setup(seed=1)
        problem = repro.TotalExchangeProblem.from_snapshot(snapshot, sizes)
        plain = repro.schedule_openshop(problem).completion_time
        chunked = schedule_openshop_partitioned(
            snapshot, sizes, chunks=1
        ).completion_time
        assert chunked == pytest.approx(plain)

    def test_port_validity(self):
        snapshot, sizes = make_setup(seed=2)
        schedule = schedule_openshop_partitioned(snapshot, sizes, chunks=3)
        check_schedule(schedule)

    def test_total_transfer_time_grows_with_chunks(self):
        snapshot, sizes = make_setup(seed=3)
        t1 = sum(
            e.duration
            for e in schedule_openshop_partitioned(snapshot, sizes, chunks=1)
        )
        t4 = sum(
            e.duration
            for e in schedule_openshop_partitioned(snapshot, sizes, chunks=4)
        )
        assert t4 > t1  # extra start-ups, the paper's objection

    def test_overhead_formula(self):
        snapshot, sizes = make_setup(seed=4)
        n = snapshot.num_procs
        positive = (sizes > 0) & ~np.eye(n, dtype=bool)
        expected = 2 * snapshot.latency[positive].sum()
        assert partitioning_overhead(snapshot, sizes, 3) == pytest.approx(
            expected
        )

    def test_invalid_chunks(self):
        snapshot, sizes = make_setup()
        with pytest.raises(ValueError):
            partitioned_chunks(snapshot, sizes, 0)


class TestIndirectRouting:
    def test_no_relays_on_metric_network(self):
        # On a network satisfying the triangle inequality (uniform), no
        # relay can be 2x cheaper.
        n = 5
        latency = np.full((n, n), 0.01)
        np.fill_diagonal(latency, 0.0)
        bandwidth = np.full((n, n), 1e6)
        np.fill_diagonal(bandwidth, np.inf)
        snapshot = DirectorySnapshot(latency=latency, bandwidth=bandwidth)
        sizes = np.full((n, n), 1e6)
        np.fill_diagonal(sizes, 0.0)
        plan = choose_relays(snapshot, sizes, advantage=2.0)
        assert plan.relay_count == 0

    def test_degenerates_to_openshop_without_relays(self):
        snapshot, sizes = make_setup(seed=5)
        plan = choose_relays(snapshot, sizes, advantage=1e9)
        assert plan.relay_count == 0
        problem = repro.TotalExchangeProblem.from_snapshot(snapshot, sizes)
        direct = repro.schedule_openshop(problem).completion_time
        indirect = schedule_openshop_indirect(
            snapshot, sizes, plan=plan
        ).completion_time
        assert indirect == pytest.approx(direct)

    def test_relay_helps_on_violated_triangle(self):
        # One pathologically slow pair with a fast relay through node 2.
        n = 4
        latency = np.full((n, n), 0.001)
        np.fill_diagonal(latency, 0.0)
        bandwidth = np.full((n, n), 1e7)
        bandwidth[0, 1] = bandwidth[1, 0] = 1e4  # terrible direct link
        np.fill_diagonal(bandwidth, np.inf)
        snapshot = DirectorySnapshot(latency=latency, bandwidth=bandwidth)
        sizes = np.zeros((n, n))
        sizes[0, 1] = 1e6
        plan = choose_relays(snapshot, sizes, advantage=2.0)
        assert plan.relay_count == 1
        direct_time = snapshot.transfer_time(0, 1, 1e6)  # 100 s
        schedule = schedule_openshop_indirect(snapshot, sizes, plan=plan)
        assert schedule.completion_time < direct_time / 10

    def test_relayed_message_legs_sequenced(self):
        n = 4
        latency = np.full((n, n), 0.001)
        np.fill_diagonal(latency, 0.0)
        bandwidth = np.full((n, n), 1e7)
        bandwidth[0, 1] = bandwidth[1, 0] = 1e4
        np.fill_diagonal(bandwidth, np.inf)
        snapshot = DirectorySnapshot(latency=latency, bandwidth=bandwidth)
        sizes = np.zeros((n, n))
        sizes[0, 1] = 1e6
        schedule = schedule_openshop_indirect(snapshot, sizes, advantage=2.0)
        events = sorted(
            (e for e in schedule if e.duration > 0), key=lambda e: e.start
        )
        assert len(events) == 2
        assert events[0].src == 0 and events[1].dst == 1
        assert events[1].start >= events[0].finish - 1e-12

    def test_port_validity_full_exchange(self):
        snapshot, sizes = make_setup(seed=6)
        schedule = schedule_openshop_indirect(snapshot, sizes, advantage=1.5)
        check_schedule(schedule)

    def test_bytes_factor_at_least_one(self):
        snapshot, sizes = make_setup(seed=7)
        plan = choose_relays(snapshot, sizes, advantage=1.5)
        assert relayed_bytes_factor(sizes, plan) >= 1.0

    def test_volume_factor_below_one_when_bypassing(self):
        snapshot, sizes = make_setup(seed=7)
        plan = choose_relays(snapshot, sizes, advantage=1.5)
        if plan.relay_count > 0:
            # relays only chosen when the port-time gets cheaper
            assert relayed_volume_factor(snapshot, sizes, plan) < 1.0

    def test_invalid_advantage(self):
        snapshot, sizes = make_setup()
        with pytest.raises(ValueError):
            choose_relays(snapshot, sizes, advantage=0.5)
