"""Multi-network (PBPS / Aggregation) tests — paper refs [14, 15]."""

import numpy as np
import pytest

import repro
from repro.network.multinet import (
    Channel,
    MultiNetwork,
    aggregate_split,
    aggregate_time,
    best_technique_time,
    pbps_crossover,
    pbps_select,
    pbps_time,
)

#: An Ethernet-like channel: cheap start-up, modest rate.
ETHERNET = Channel("ethernet", latency=0.001, bandwidth=1.25e6)
#: An ATM-like channel: expensive start-up, high rate.
ATM = Channel("atm", latency=0.010, bandwidth=1.9e7)


class TestChannel:
    def test_transfer_time(self):
        assert ETHERNET.transfer_time(1.25e6) == pytest.approx(1.001)

    def test_validation(self):
        with pytest.raises(ValueError):
            Channel("x", latency=-1.0, bandwidth=1.0)
        with pytest.raises(ValueError):
            Channel("x", latency=0.0, bandwidth=0.0)
        with pytest.raises(ValueError):
            ETHERNET.transfer_time(-1.0)


class TestPbps:
    def test_small_messages_pick_low_latency(self):
        assert pbps_select([ETHERNET, ATM], 1_000).name == "ethernet"

    def test_large_messages_pick_high_bandwidth(self):
        assert pbps_select([ETHERNET, ATM], 10_000_000).name == "atm"

    def test_crossover_consistent_with_selection(self):
        crossover = pbps_crossover(ETHERNET, ATM)
        assert crossover is not None
        below = pbps_select([ETHERNET, ATM], crossover * 0.9)
        above = pbps_select([ETHERNET, ATM], crossover * 1.1)
        assert below.name == "ethernet"
        assert above.name == "atm"

    def test_crossover_none_when_dominated(self):
        slow = Channel("slow", latency=0.010, bandwidth=1e5)
        assert pbps_crossover(ETHERNET, slow) is None

    def test_empty_channels_raise(self):
        with pytest.raises(ValueError):
            pbps_time([], 1.0)


class TestAggregation:
    def test_split_conserves_bytes(self):
        split = aggregate_split([ETHERNET, ATM], 5e6)
        assert sum(split.values()) == pytest.approx(5e6)
        assert all(share >= 0 for share in split.values())

    def test_used_channels_finish_together(self):
        split = aggregate_split([ETHERNET, ATM], 5e6)
        times = [
            c.transfer_time(split[c.name])
            for c in (ETHERNET, ATM)
            if split[c.name] > 0
        ]
        assert max(times) - min(times) < 1e-9

    def test_small_message_uses_one_channel(self):
        # below the point where the ATM start-up pays, everything rides
        # the Ethernet
        split = aggregate_split([ETHERNET, ATM], 1_000)
        assert split["atm"] == 0.0
        assert split["ethernet"] == pytest.approx(1_000)

    def test_aggregate_never_slower_than_pbps(self):
        for size in (1e3, 1e5, 1e6, 1e7, 1e8):
            assert aggregate_time([ETHERNET, ATM], size) <= (
                pbps_time([ETHERNET, ATM], size) + 1e-12
            )

    def test_large_message_speedup_approaches_bandwidth_sum(self):
        size = 1e9
        t = aggregate_time([ETHERNET, ATM], size)
        ideal = size / (ETHERNET.bandwidth + ATM.bandwidth)
        assert t == pytest.approx(ideal, rel=0.01)

    def test_zero_size(self):
        assert aggregate_time([ETHERNET, ATM], 0.0) == 0.0

    def test_three_channels(self):
        fibre = Channel("fibre", latency=0.004, bandwidth=1e7)
        split = aggregate_split([ETHERNET, ATM, fibre], 2e7)
        assert sum(split.values()) == pytest.approx(2e7)
        assert all(share > 0 for share in split.values())

    def test_best_technique_labels(self):
        label_small, _ = best_technique_time([ETHERNET, ATM], 500)
        label_large, _ = best_technique_time([ETHERNET, ATM], 1e8)
        assert label_small == "pbps"  # one channel suffices
        assert label_large == "aggregate"


class TestMultiNetwork:
    def make_cluster(self, n=4):
        net = MultiNetwork(n)
        for i in range(n):
            for j in range(i + 1, n):
                net.add_channel(i, j, ETHERNET)
                net.add_channel(i, j, ATM)
        return net

    def test_channels_symmetric(self):
        net = self.make_cluster()
        assert len(net.channels(0, 1)) == 2
        assert len(net.channels(1, 0)) == 2

    def test_missing_pair_raises(self):
        net = MultiNetwork(3)
        with pytest.raises(KeyError):
            net.channels(0, 1)

    def test_validation(self):
        net = MultiNetwork(3)
        with pytest.raises(ValueError):
            net.add_channel(0, 0, ETHERNET)
        with pytest.raises(ValueError):
            net.add_channel(0, 9, ETHERNET)
        with pytest.raises(ValueError):
            MultiNetwork(0)

    def test_effective_snapshot_pbps(self):
        net = self.make_cluster()
        snap = net.effective_snapshot(1e7, technique="pbps")
        # large messages: ATM parameters everywhere
        assert snap.latency[0, 1] == pytest.approx(ATM.latency)
        assert snap.bandwidth[0, 1] == pytest.approx(ATM.bandwidth)

    def test_effective_snapshot_matches_technique_time(self):
        net = self.make_cluster()
        size = 5e6
        for technique, reference in (
            ("pbps", pbps_time([ETHERNET, ATM], size)),
            ("aggregate", aggregate_time([ETHERNET, ATM], size)),
        ):
            snap = net.effective_snapshot(size, technique=technique)
            assert snap.transfer_time(0, 1, size) == pytest.approx(
                reference, rel=1e-6
            )

    def test_schedulers_run_on_effective_snapshot(self):
        net = self.make_cluster(5)
        snap = net.effective_snapshot(1e6, technique="aggregate")
        problem = repro.TotalExchangeProblem.from_snapshot(
            snap, repro.UniformSizes(1e6)
        )
        schedule = repro.schedule_openshop(problem)
        repro.check_schedule(schedule, problem.cost)
        assert schedule.completion_time <= 2 * problem.lower_bound()

    def test_invalid_technique(self):
        net = self.make_cluster()
        with pytest.raises(ValueError):
            net.effective_snapshot(1e6, technique="magic")
