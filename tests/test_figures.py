"""Figure driver tests (small-scale versions of the paper's sweeps)."""

import pytest

from repro.experiments.figures import (
    FIGURE_DRIVERS,
    figure09_small_messages,
    figure10_large_messages,
    figure11_mixed_messages,
    figure12_servers,
)

SMALL = dict(proc_counts=(5, 10), trials=2, seed=0)


def test_driver_registry():
    assert set(FIGURE_DRIVERS) == {"9", "10", "11", "12"}


@pytest.mark.parametrize("fig_id", sorted(FIGURE_DRIVERS))
def test_driver_runs(fig_id):
    result = FIGURE_DRIVERS[fig_id](**SMALL)
    assert result.proc_counts == (5, 10)
    assert "openshop" in result.completion


def test_fig9_small_messages_latency_dominated():
    result = figure09_small_messages(**SMALL)
    # 1 kB at GUSTO bandwidths is startup-dominated: completion well
    # under a second per event, so a 10-processor exchange finishes in
    # seconds, not minutes.
    assert result.completion["openshop"][-1] < 10.0


def test_fig10_larger_than_fig9():
    small = figure09_small_messages(**SMALL)
    large = figure10_large_messages(**SMALL)
    assert (
        large.completion["openshop"][-1]
        > 10 * small.completion["openshop"][-1]
    )


def test_fig11_between_9_and_10():
    small = figure09_small_messages(**SMALL)
    mixed = figure11_mixed_messages(**SMALL)
    large = figure10_large_messages(**SMALL)
    assert (
        small.completion["openshop"][-1]
        < mixed.completion["openshop"][-1]
        < large.completion["openshop"][-1]
    )


def test_fig12_baseline_suffers():
    result = figure12_servers(proc_counts=(10, 20), trials=2, seed=0)
    # the paper's headline: adaptive schedules clearly beat the baseline
    # in the server scenario.
    speedup = result.improvement_over_baseline("openshop")[-1]
    assert speedup > 1.3


def test_completion_grows_with_procs():
    result = figure10_large_messages(proc_counts=(5, 15), trials=2, seed=0)
    for name, series in result.completion.items():
        assert series[1] > series[0]
