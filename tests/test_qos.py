"""QoS scheduling tests (paper Section 6.4)."""

import numpy as np
import pytest

from repro.core.openshop import schedule_openshop
from repro.core.problem import TotalExchangeProblem
from repro.qos.critical import critical_finish_time, schedule_critical_first
from repro.qos.deadlines import (
    QoSMessage,
    QoSProblem,
    schedule_edf,
    schedule_priority,
)
from repro.qos.metrics import evaluate_qos
from repro.timing.validate import check_schedule
from tests.conftest import random_problem


class TestQoSMessage:
    def test_defaults(self):
        msg = QoSMessage(src=0, dst=1)
        assert msg.deadline == float("inf")
        assert msg.priority == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            QoSMessage(src=-1, dst=0)
        with pytest.raises(ValueError):
            QoSMessage(src=0, dst=1, priority=-2.0)


class TestQoSProblem:
    def test_uniform_deadlines(self):
        base = random_problem(4, seed=0)
        problem = QoSProblem.uniform_deadlines(base, slack_factor=2.0)
        assert len(problem.messages) == 12
        assert all(
            m.deadline == pytest.approx(2.0 * base.lower_bound())
            for m in problem.messages
        )

    def test_duplicate_rejected(self):
        base = random_problem(3, seed=1)
        msgs = (QoSMessage(0, 1), QoSMessage(0, 1))
        with pytest.raises(ValueError):
            QoSProblem(base=base, messages=msgs)

    def test_out_of_range_rejected(self):
        base = random_problem(3, seed=2)
        with pytest.raises(ValueError):
            QoSProblem(base=base, messages=(QoSMessage(0, 9),))


class TestSchedulers:
    def test_edf_valid(self):
        base = random_problem(6, seed=3)
        problem = QoSProblem.uniform_deadlines(base)
        schedule = schedule_edf(problem)
        check_schedule(schedule, base.cost)

    def test_priority_valid(self):
        base = random_problem(6, seed=4)
        problem = QoSProblem.uniform_deadlines(base)
        schedule = schedule_priority(problem)
        check_schedule(schedule, base.cost)

    def test_makespan_still_within_theorem3(self):
        base = random_problem(7, seed=5)
        problem = QoSProblem.uniform_deadlines(base)
        for scheduler in (schedule_edf, schedule_priority):
            t = scheduler(problem).completion_time
            assert t <= 2.0 * base.lower_bound() + 1e-9

    def test_edf_prioritises_urgent_messages(self):
        # Mark one pair urgent; EDF should finish it no later than the
        # QoS-blind open shop schedule does.
        rng = np.random.default_rng(0)
        improvements = 0
        for seed in range(5):
            base = random_problem(8, seed=seed, low=1.0, high=10.0)
            urgent = (int(rng.integers(8)), int(rng.integers(8)))
            while urgent[0] == urgent[1]:
                urgent = (int(rng.integers(8)), int(rng.integers(8)))
            msgs = [
                QoSMessage(src=s, dst=d,
                           deadline=0.0 if (s, d) == urgent else float("inf"))
                for s, d in base.positive_events()
            ]
            problem = QoSProblem(base=base, messages=tuple(msgs))
            edf_finish = schedule_edf(problem).event_map()[urgent].finish
            blind_finish = (
                schedule_openshop(base).event_map()[urgent].finish
            )
            if edf_finish <= blind_finish + 1e-9:
                improvements += 1
        assert improvements >= 4

    def test_edf_reduces_misses_vs_blind(self):
        # Tiered deadlines: EDF should miss fewer than the blind schedule
        # (aggregated over instances).
        better_or_equal = 0
        for seed in range(6):
            base = random_problem(8, seed=seed, low=0.5, high=8.0)
            lb = base.lower_bound()
            rng = np.random.default_rng(seed)
            msgs = tuple(
                QoSMessage(
                    src=s,
                    dst=d,
                    deadline=(0.6 if rng.random() < 0.3 else 1.5) * lb,
                )
                for s, d in base.positive_events()
            )
            problem = QoSProblem(base=base, messages=msgs)
            edf = evaluate_qos(problem, schedule_edf(problem))
            blind = evaluate_qos(problem, schedule_openshop(base))
            if edf.missed <= blind.missed:
                better_or_equal += 1
        assert better_or_equal >= 5


class TestMetrics:
    def test_counts(self):
        base = TotalExchangeProblem(
            cost=np.array([[0.0, 2.0], [3.0, 0.0]])
        )
        msgs = (
            QoSMessage(0, 1, deadline=1.0),   # will miss (finish 2)
            QoSMessage(1, 0, deadline=10.0),  # fine
        )
        problem = QoSProblem(base=base, messages=msgs)
        schedule = schedule_edf(problem)
        report = evaluate_qos(problem, schedule)
        assert report.total_messages == 2
        assert report.missed == 1
        assert report.miss_rate == pytest.approx(0.5)
        assert report.max_tardiness == pytest.approx(1.0)
        assert report.weighted_tardiness == pytest.approx(1.0)

    def test_missing_event_raises(self):
        from repro.timing.events import Schedule

        base = random_problem(3, seed=6)
        problem = QoSProblem.uniform_deadlines(base)
        empty = Schedule(num_procs=3)
        with pytest.raises(ValueError):
            evaluate_qos(problem, empty)


class TestCriticalResource:
    def test_schedule_valid(self):
        problem = random_problem(6, seed=7)
        schedule = schedule_critical_first(problem, 2)
        check_schedule(schedule, problem.cost)

    def test_critical_finishes_no_later(self):
        for seed in range(6):
            problem = random_problem(7, seed=seed)
            critical = seed % 7
            favoured = schedule_critical_first(problem, critical)
            plain = schedule_openshop(problem)
            assert critical_finish_time(favoured, critical) <= (
                critical_finish_time(plain, critical) + 1e-9
            )

    def test_critical_phase_tight(self):
        # In phase 1 only the critical processor's events run, so its
        # finish time is bounded by its own send+recv work (serialised at
        # worst).
        problem = random_problem(5, seed=8)
        critical = 3
        favoured = schedule_critical_first(problem, critical)
        bound = (
            problem.send_totals()[critical] + problem.recv_totals()[critical]
        )
        assert critical_finish_time(favoured, critical) <= bound + 1e-9

    def test_invalid_index(self):
        problem = random_problem(4, seed=9)
        with pytest.raises(ValueError):
            schedule_critical_first(problem, 9)
