"""Directory factory tests: spec parsing and every flavour."""

import numpy as np
import pytest

from repro.directory import (
    DIRECTORY_FLAVOURS,
    ForecastDirectory,
    LoadDirectory,
    NoisyDirectory,
    StaticDirectory,
    make_directory,
    parse_directory_spec,
)


class TestSpecParsing:
    def test_bare_name(self):
        assert parse_directory_spec("static") == ("static", {})

    def test_options_are_typed(self):
        name, options = parse_directory_spec(
            "noisy:sigma=0.1,symmetric=false,inner=gusto"
        )
        assert name == "noisy"
        assert options == {
            "sigma": 0.1, "symmetric": False, "inner": "gusto",
        }

    def test_unknown_flavour(self):
        with pytest.raises(KeyError, match="unknown directory flavour"):
            parse_directory_spec("quantum")

    def test_malformed_option(self):
        with pytest.raises(ValueError, match="key=value"):
            parse_directory_spec("noisy:sigma")

    def test_empty_spec(self):
        with pytest.raises(ValueError, match="empty"):
            parse_directory_spec("  ")


class TestFlavours:
    def test_every_flavour_builds(self):
        for name in DIRECTORY_FLAVOURS:
            directory = make_directory(name, num_procs=5, rng=0)
            snapshot = directory.snapshot()
            assert snapshot.num_procs in (5,)
            directory.advance(1.0)

    def test_gusto_ignores_num_procs(self):
        directory = make_directory("gusto", num_procs=12)
        assert directory.num_procs == 5

    def test_static_is_deterministic_per_seed(self):
        a = make_directory("static", num_procs=6, rng=3).snapshot()
        b = make_directory("static", num_procs=6, rng=3).snapshot()
        c = make_directory("static", num_procs=6, rng=4).snapshot()
        assert np.array_equal(a.bandwidth, b.bandwidth)
        assert not np.array_equal(a.bandwidth, c.bandwidth)

    def test_noisy_exposes_truth(self):
        directory = make_directory("noisy:sigma=0.3", num_procs=5, rng=1)
        assert isinstance(directory, NoisyDirectory)
        observed = directory.snapshot()
        truth = directory.true_snapshot()
        assert not np.allclose(observed.bandwidth, truth.bandwidth)

    def test_noisy_inner_gusto(self):
        directory = make_directory("noisy:inner=gusto", num_procs=12)
        assert directory.num_procs == 5

    def test_perturb_is_one_shot_static(self):
        directory = make_directory(
            "perturb:sigma=0.4,degrade_factor=4", num_procs=5, rng=2
        )
        assert isinstance(directory, StaticDirectory)
        base = make_directory("static", num_procs=5, rng=2).snapshot()
        assert not np.allclose(
            directory.snapshot().bandwidth, base.bandwidth
        )

    def test_dynamics_varies_over_time(self):
        directory = make_directory(
            "dynamics:process=diurnal,period=40,amplitude=0.5",
            num_procs=5, rng=0,
        )
        assert isinstance(directory, LoadDirectory)
        before = directory.snapshot().bandwidth.copy()
        directory.advance(10.0)
        after = directory.snapshot().bandwidth
        off = ~np.eye(5, dtype=bool)
        assert not np.allclose(before[off], after[off])

    def test_dynamics_unknown_process(self):
        with pytest.raises(KeyError, match="unknown load process"):
            make_directory("dynamics:process=tides", num_procs=4)

    def test_dynamics_bad_process_option(self):
        with pytest.raises(TypeError, match="bad option"):
            make_directory("dynamics:process=diurnal,sigma=1", num_procs=4)

    def test_forecast_wraps_and_delegates_truth(self):
        directory = make_directory(
            "forecast:mode=linear,horizon=2", num_procs=5, rng=0
        )
        assert isinstance(directory, ForecastDirectory)
        directory.snapshot()
        truth = directory.true_snapshot()
        assert truth.num_procs == 5

    def test_drift_trace(self):
        directory = make_directory(
            "drift:ticks=6,burst_every=3", num_procs=4, rng=0
        )
        first = directory.snapshot().bandwidth.copy()
        directory.advance(1.0)
        assert not np.allclose(first, directory.snapshot().bandwidth)

    def test_keyword_overrides_beat_spec_options(self):
        quiet = make_directory("noisy:sigma=0.5", num_procs=5, rng=1,
                               sigma=0.0)
        observed = quiet.snapshot()
        truth = quiet.true_snapshot()
        assert np.allclose(observed.bandwidth, truth.bandwidth)

    def test_unknown_option_rejected(self):
        with pytest.raises(TypeError, match="unknown option"):
            make_directory("static:sigma=1", num_procs=4)
        with pytest.raises(TypeError, match="unknown option"):
            make_directory("gusto:sigma=1")

    def test_bad_inner_rejected(self):
        with pytest.raises(ValueError, match="inner"):
            make_directory("noisy:inner=topology", num_procs=4)
