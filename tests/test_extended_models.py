"""Extended model parameter tests (paper Section 6.1)."""

import pytest

from repro.model.extended import FiniteBufferModel, InterleavedReceiveModel


class TestInterleavedReceiveModel:
    def test_batch_time_formula(self):
        model = InterleavedReceiveModel(alpha=0.1, max_streams=3)
        # (1 + alpha) * (t1 + t2)
        assert model.batch_time([2.0, 3.0]) == pytest.approx(1.1 * 5.0)

    def test_single_receive_no_overhead(self):
        model = InterleavedReceiveModel(alpha=0.5, max_streams=2)
        assert model.batch_time([4.0]) == pytest.approx(4.0)

    def test_batch_over_streams_raises(self):
        model = InterleavedReceiveModel(alpha=0.1, max_streams=2)
        with pytest.raises(ValueError):
            model.batch_time([1.0, 1.0, 1.0])

    def test_rate_factor_consistent_with_batch(self):
        # k equal messages at the batch rate finish in (1+a)*k*t.
        model = InterleavedReceiveModel(alpha=0.2, max_streams=4)
        k, t = 3, 2.0
        rate = model.effective_rate_factor(k)
        elapsed = t / rate
        assert elapsed == pytest.approx(model.batch_time([t] * k))

    def test_rate_factor_solo(self):
        model = InterleavedReceiveModel(alpha=0.9)
        assert model.effective_rate_factor(1) == 1.0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            InterleavedReceiveModel(alpha=-0.1)
        with pytest.raises(ValueError):
            InterleavedReceiveModel(max_streams=0)
        with pytest.raises(ValueError):
            InterleavedReceiveModel().effective_rate_factor(0)


class TestFiniteBufferModel:
    def test_drain_time(self):
        model = FiniteBufferModel(capacity_bytes=1e6, drain_rate=5e5)
        assert model.drain_time(1e6) == pytest.approx(2.0)
        assert model.drain_time(0.0) == 0.0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            FiniteBufferModel(capacity_bytes=-1.0)
        with pytest.raises(ValueError):
            FiniteBufferModel(drain_rate=0.0)
        with pytest.raises(ValueError):
            FiniteBufferModel().drain_time(-5.0)
