"""Collective registry tests: specs, the factory, and spec strings."""

import numpy as np
import pytest

import repro
from repro.collectives import (
    collective_names,
    get_collective,
    get_collective_spec,
    iter_collective_specs,
    make_collective,
)
from repro.directory.service import DirectorySnapshot
from repro.timing.validate import check_schedule


def make_snapshot(n=6, seed=0):
    rng = np.random.default_rng(seed)
    latency, bandwidth = repro.random_pairwise_parameters(n, rng=rng)
    return DirectorySnapshot(latency=latency, bandwidth=bandwidth)


class TestRegistry:
    def test_families_partition_the_registry(self):
        names = collective_names()
        assert len(names) == len(set(names))
        by_family = [
            spec.name
            for family in ("rooted", "allreduce", "barrier", "exchange")
            for spec in iter_collective_specs(family=family)
        ]
        assert sorted(by_family) == sorted(names)

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError, match="unknown family"):
            list(iter_collective_specs(family="gossip"))

    def test_unknown_name_lists_known(self):
        with pytest.raises(KeyError, match="known:"):
            get_collective_spec("broadcast_psychic")

    def test_every_spec_runs_and_validates(self):
        snapshot = make_snapshot()
        for spec in iter_collective_specs():
            result = spec.fn(snapshot, 1e5)
            # the dissemination barrier intentionally lets zero-byte
            # signals overlap at a receiver (flags, not transfers)
            if spec.name != "barrier_dissemination":
                check_schedule(result.schedule)
            assert result.completion_time > 0
            # completion can exceed the schedule makespan (reduction
            # combine time) but never precede it
            assert result.completion_time >= (
                result.schedule.completion_time - 1e-9
            )

    def test_uniform_signature(self):
        snapshot = make_snapshot()
        fn = get_collective("barrier_dissemination")
        result = fn(snapshot, 0.0)
        assert result.schedule.num_procs == snapshot.num_procs


class TestFactory:
    def test_root_option(self):
        snapshot = make_snapshot()
        for name in ("broadcast_binomial", "broadcast_fnf", "scatter_direct",
                     "gather_direct", "reduce_direct"):
            fn = make_collective(name, root=3)
            result = fn(snapshot, 1e5)
            sources = {e.src for e in result.schedule if e.duration > 0}
            sinks = {e.dst for e in result.schedule if e.duration > 0}
            assert 3 in sources | sinks

    def test_exchange_scheduler_option(self):
        snapshot = make_snapshot()
        default = make_collective("alltoall")(snapshot, 1e5)
        greedy = make_collective("alltoall", scheduler="greedy")(
            snapshot, 1e5
        )
        check_schedule(greedy.schedule)
        assert default.schedule.num_procs == greedy.schedule.num_procs

    def test_options_change_results(self):
        snapshot = make_snapshot()
        a = make_collective("broadcast_fnf", root=0)(snapshot, 1e6)
        b = make_collective("broadcast_fnf", root=4)(snapshot, 1e6)
        assert a.completion_time != pytest.approx(b.completion_time)

    def test_unknown_option_rejected(self):
        with pytest.raises(TypeError, match="option"):
            make_collective("broadcast_fnf", fanout=3)

    def test_no_factory_specs_reject_options(self):
        for spec in iter_collective_specs():
            if spec.factory is None:
                with pytest.raises(TypeError):
                    spec.build(root=1)

    def test_built_name_is_descriptive(self):
        fn = make_collective("broadcast_fnf", root=2)
        assert "broadcast_fnf" in fn.__name__ and "root=2" in fn.__name__


class TestShimRemoved:
    def test_all_collectives_is_gone(self):
        # The ALL_COLLECTIVES deprecation cycle is over.
        import repro.collectives
        import repro.collectives.registry as registry

        assert not hasattr(repro.collectives, "ALL_COLLECTIVES")
        assert not hasattr(registry, "ALL_COLLECTIVES")

    def test_registry_covers_names(self):
        assert set(collective_names()) == {
            spec.name for spec in iter_collective_specs()
        }
