"""Baseline caterpillar scheduler tests."""

import numpy as np
import pytest

from repro.core.baseline import (
    baseline_orders,
    baseline_steps,
    schedule_baseline,
    schedule_baseline_nosync,
)
from repro.core.problem import (
    TotalExchangeProblem,
    example_problem,
    tight_baseline_instance,
)
from repro.timing.validate import check_schedule
from tests.conftest import random_problem


class TestBaselineStructure:
    def test_orders_pattern(self):
        orders = baseline_orders(4)
        assert orders[0] == [0, 1, 2, 3]
        assert orders[2] == [2, 3, 0, 1]

    def test_steps_are_permutations(self):
        for step in baseline_steps(6):
            srcs = [s for s, _ in step]
            dsts = [d for _, d in step]
            assert sorted(srcs) == list(range(6))
            assert sorted(dsts) == list(range(6))

    def test_invalid_procs(self):
        with pytest.raises(ValueError):
            baseline_orders(0)
        with pytest.raises(ValueError):
            baseline_steps(-1)


class TestBarrierExecution:
    def test_completion_is_sum_of_step_maxima(self):
        problem = random_problem(5, seed=1)
        expected = sum(
            max(problem.cost[i, (i + j) % 5] for i in range(5))
            for j in range(5)
        )
        schedule = schedule_baseline(problem)
        assert schedule.completion_time == pytest.approx(expected)

    def test_valid_and_covering(self):
        problem = random_problem(6, seed=2)
        schedule = schedule_baseline(problem)
        check_schedule(schedule, problem.cost)

    def test_homogeneous_network_is_optimal(self):
        # With uniform costs the caterpillar meets the lower bound.
        cost = np.full((5, 5), 2.0)
        np.fill_diagonal(cost, 0.0)
        problem = TotalExchangeProblem(cost=cost)
        schedule = schedule_baseline(problem)
        assert schedule.completion_time == pytest.approx(problem.lower_bound())

    def test_example_problem_value(self):
        assert schedule_baseline(example_problem()).completion_time == 24.0


class TestNosyncExecution:
    def test_valid_and_covering(self):
        problem = random_problem(6, seed=3)
        schedule = schedule_baseline_nosync(problem)
        check_schedule(schedule, problem.cost)

    def test_never_slower_than_barrier(self):
        for seed in range(6):
            problem = random_problem(7, seed=seed)
            nosync = schedule_baseline_nosync(problem).completion_time
            barrier = schedule_baseline(problem).completion_time
            assert nosync <= barrier + 1e-9

    def test_theorem2_bound(self):
        # Strict (dependence-graph) baseline is within P/2 of the bound.
        for seed in range(8):
            problem = random_problem(6, seed=seed)
            t = schedule_baseline_nosync(problem).completion_time
            assert t <= 3.0 * problem.lower_bound() + 1e-9

    def test_theorem2_tightness(self):
        problem = tight_baseline_instance(1e-5)
        t = schedule_baseline_nosync(problem).completion_time
        assert t / problem.lower_bound() == pytest.approx(2.0, rel=1e-4)

    def test_tight_instance_completion_is_four(self):
        problem = tight_baseline_instance(1e-5)
        # The critical path chains all four unit entries (paper Eq. 5).
        t = schedule_baseline_nosync(problem).completion_time
        assert t == pytest.approx(4.0, rel=1e-3)

    def test_self_messages_respected(self):
        # With a self-message, node 1's ports are both busy at step 0.
        problem = tight_baseline_instance(0.25)
        schedule = schedule_baseline_nosync(problem)
        self_event = [
            e for e in schedule if e.src == 1 and e.dst == 1
        ][0]
        assert self_event.duration == 1.0
        # node 1's next send starts only after the self-message.
        step1 = [e for e in schedule if e.src == 1 and e.dst == 2][0]
        assert step1.start >= self_event.finish - 1e-12
