"""Wire-protocol codec tests: round-trips for every message type plus
fuzzing — malformed frames, truncated JSON, version skew, type confusion
— must all produce clean :class:`ProtocolError`\\ s, never a crash."""

import json
import string

import pytest

from repro.serve import protocol
from repro.serve.protocol import (
    ERROR_CODES,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ErrorResponse,
    ProtocolError,
    ScheduleRequest,
    ScheduleResponse,
    decode_request,
    decode_response,
    encode_message,
)

REQUESTS = [
    protocol.HelloRequest(),
    protocol.OpenRequest(tenant="t-0001"),
    protocol.OpenRequest(
        tenant="t-0002",
        procs=12,
        scheduler="greedy",
        directory="noisy:sigma=0.1",
        workload="ps:block_bytes=65536,servers=2",
        seed=7,
        policy={"reuse_threshold": 0.01},
    ),
    ScheduleRequest(tenant="t-0001", dt=0.5),
    protocol.StatsRequest(),
    protocol.SnapshotRequest(path="/tmp/state.json"),
    protocol.DrainRequest(),
    protocol.ShutdownRequest(),
]

RESPONSES = [
    protocol.HelloResponse(tenants=3, uptime_s=1.25, draining=True),
    protocol.OpenResponse(tenant="t-0001", procs=8, tick=4, restored=True),
    ScheduleResponse(
        tenant="t-0001",
        tick=9,
        decision="reuse",
        predicted_s=1.5,
        executed_s=1.6,
        regret_s=0.1,
        cache_hit=True,
        batched=True,
        decision_latency_s=0.002,
        queue_depth=3,
        backpressure=True,
    ),
    protocol.StatsResponse(stats={"counters": {"served": 10}}),
    protocol.SnapshotResponse(tenants=5, path="/tmp/x"),
    protocol.DrainResponse(tenants=5, path="/tmp/x", flushed=2),
    protocol.ShutdownResponse(served=123),
    ErrorResponse(code="saturated", message="queue full", retry_after_s=0.05),
    ErrorResponse(code="internal", message="boom"),
]


# -- round trips ------------------------------------------------------------


@pytest.mark.parametrize("message", REQUESTS, ids=lambda m: type(m).__name__)
def test_request_round_trip(message):
    line = encode_message(message)
    assert line.endswith(b"\n")
    assert decode_request(line[:-1]) == message
    # idempotent: re-encode the decoded object bit-identically
    assert encode_message(decode_request(line)) == line


@pytest.mark.parametrize("message", RESPONSES, ids=lambda m: type(m).__name__)
def test_response_round_trip(message):
    line = encode_message(message)
    assert decode_response(line) == message
    assert encode_message(decode_response(line)) == line


def test_encoded_frame_shape():
    payload = json.loads(encode_message(ScheduleRequest(tenant="a")))
    assert payload["v"] == PROTOCOL_VERSION
    assert payload["type"] == "schedule"
    assert payload["tenant"] == "a"


def test_request_types_listing():
    assert "schedule" in protocol.request_types()
    assert "open" in protocol.request_types()


def test_encode_rejects_non_message():
    with pytest.raises(TypeError):
        encode_message({"v": 1, "type": "schedule"})


# -- fuzz: malformed frames -------------------------------------------------


GARBAGE = [
    b"",
    b"\x00\xff\xfe",
    b"not json at all",
    b"{",                                      # truncated JSON
    b'{"v":1,"type":"schedule","tenant":',     # truncated mid-field
    b'[1,2,3]',                                # not an object
    b'"just a string"',
    b'42',
    b'null',
    b'{"v":1}',                                # no type
    '{"v":1,"type":"schedule","tenant":"t"'.encode()[:-5],
    b'\xf0\x28\x8c\x28',                       # invalid UTF-8
]


@pytest.mark.parametrize("line", GARBAGE, ids=range(len(GARBAGE)))
def test_garbage_frames_raise_protocol_error(line):
    with pytest.raises(ProtocolError) as info:
        decode_request(line)
    assert info.value.code in ERROR_CODES


def test_truncations_never_crash():
    """Every prefix of a valid frame is a clean error, not an exception
    escape."""
    line = encode_message(REQUESTS[2]).rstrip(b"\n")
    for cut in range(len(line)):
        prefix = line[:cut]
        try:
            decode_request(prefix)
        except ProtocolError:
            pass  # the only acceptable failure mode


def test_random_json_objects_never_crash():
    """Deterministic pseudo-random JSON objects: decode either succeeds
    or raises ProtocolError."""
    import random

    rng = random.Random(1234)
    alphabet = string.ascii_letters + string.digits + "_:"
    for _ in range(500):
        payload = {}
        if rng.random() < 0.9:
            payload["v"] = rng.choice([1, 2, 0, "1", None, True])
        if rng.random() < 0.9:
            payload["type"] = rng.choice(
                list(protocol.request_types())
                + ["nope", "", "schedule ", 3]
            )
        for _ in range(rng.randrange(4)):
            key = "".join(
                rng.choice(alphabet) for _ in range(rng.randrange(1, 9))
            )
            payload[key] = rng.choice(
                ["x", 1, 1.5, True, None, {"a": 1}, [1]]
            )
        try:
            decode_request(json.dumps(payload))
        except ProtocolError as exc:
            assert exc.code in ERROR_CODES


# -- version skew -----------------------------------------------------------


@pytest.mark.parametrize("version", [0, 2, "1", None, True, 1.0])
def test_version_skew_is_version_error(version):
    payload = {"v": version, "type": "hello"}
    if version == 1.0:
        # JSON 1.0 decodes as float 1.0 != int 1 in our strict check…
        # except json.loads("1.0") is a float and 1.0 == 1 in Python.
        # Pin the actual behaviour: floats equal to the version pass.
        decode_request(json.dumps(payload))
        return
    with pytest.raises(ProtocolError) as info:
        decode_request(json.dumps(payload))
    assert info.value.code == "version"


def test_missing_version_is_version_error():
    with pytest.raises(ProtocolError) as info:
        decode_request(b'{"type":"hello"}')
    assert info.value.code == "version"


# -- type and field strictness ----------------------------------------------


def test_unknown_type():
    with pytest.raises(ProtocolError) as info:
        decode_request(b'{"v":1,"type":"frobnicate"}')
    assert info.value.code == "unknown_type"


def test_unknown_field_rejected():
    with pytest.raises(ProtocolError) as info:
        decode_request(b'{"v":1,"type":"schedule","tenant":"t","bogus":1}')
    assert info.value.code == "malformed"
    assert "bogus" in str(info.value)


def test_missing_required_field():
    with pytest.raises(ProtocolError) as info:
        decode_request(b'{"v":1,"type":"schedule"}')
    assert info.value.code == "malformed"
    assert "tenant" in str(info.value)


def test_bool_is_not_int():
    with pytest.raises(ProtocolError):
        decode_request(b'{"v":1,"type":"open","tenant":"t","procs":true}')


def test_bool_is_not_float():
    with pytest.raises(ProtocolError):
        decode_request(b'{"v":1,"type":"schedule","tenant":"t","dt":true}')


def test_int_promotes_to_float():
    request = decode_request(b'{"v":1,"type":"schedule","tenant":"t","dt":2}')
    assert request.dt == 2.0 and isinstance(request.dt, float)


def test_string_field_rejects_number():
    with pytest.raises(ProtocolError):
        decode_request(b'{"v":1,"type":"schedule","tenant":17}')


def test_policy_must_be_object():
    with pytest.raises(ProtocolError):
        decode_request(
            b'{"v":1,"type":"open","tenant":"t","policy":[1,2]}'
        )


def test_oversized_frame_rejected():
    filler = "x" * MAX_FRAME_BYTES
    line = json.dumps(
        {"v": 1, "type": "schedule", "tenant": filler}
    ).encode()
    with pytest.raises(ProtocolError) as info:
        decode_request(line)
    assert info.value.code == "malformed"


def test_error_response_requires_known_code():
    with pytest.raises(ValueError):
        ErrorResponse(code="whatever", message="x")
    with pytest.raises(ProtocolError):
        decode_response(b'{"v":1,"type":"error","code":"nope","message":"m"}')


def test_retry_after_optional_float():
    decoded = decode_response(
        b'{"v":1,"type":"error","code":"saturated","message":"m",'
        b'"retry_after_s":null}'
    )
    assert decoded.retry_after_s is None
    decoded = decode_response(
        b'{"v":1,"type":"error","code":"saturated","message":"m",'
        b'"retry_after_s":1}'
    )
    assert decoded.retry_after_s == 1.0
