"""Execution engine tests (FIFO, strict, and barrier semantics)."""

import numpy as np
import pytest

from repro.core.problem import TotalExchangeProblem
from repro.sim.engine import (
    check_orders,
    execute_orders,
    execute_orders_on_cost,
    execute_steps_barrier,
    execute_steps_strict,
)
from repro.timing.validate import check_schedule
from tests.conftest import random_problem


class TestCheckOrders:
    def test_valid(self):
        cost = np.array([[0.0, 1.0], [1.0, 0.0]])
        check_orders([[1], [0]], cost)

    def test_invalid_destination(self):
        cost = np.zeros((2, 2))
        with pytest.raises(ValueError, match="invalid destination"):
            check_orders([[5], []], cost)

    def test_duplicate_destination(self):
        cost = np.zeros((2, 2))
        with pytest.raises(ValueError, match="twice"):
            check_orders([[1, 1], []], cost)

    def test_missing_coverage(self):
        cost = np.array([[0.0, 1.0], [1.0, 0.0]])
        with pytest.raises(ValueError, match="never sends"):
            check_orders([[], [0]], cost)

    def test_wrong_sender_count(self):
        with pytest.raises(ValueError):
            check_orders([[]], np.zeros((2, 2)))


class TestFifoExecution:
    def test_receiver_contention_serialises(self):
        # Both senders target receiver 2 immediately; FIFO by request
        # time, tie broken by sender index: P0 goes first.
        cost = np.array(
            [
                [0.0, 0.0, 2.0],
                [0.0, 0.0, 3.0],
                [0.0, 0.0, 0.0],
            ]
        )
        schedule = execute_orders_on_cost(cost, [[2], [2], []])
        by_pair = schedule.event_map()
        assert by_pair[(0, 2)].start == 0.0
        assert by_pair[(1, 2)].start == pytest.approx(2.0)

    def test_sender_serialises(self):
        cost = np.array([[0.0, 2.0, 3.0], [0.0] * 3, [0.0] * 3])
        schedule = execute_orders_on_cost(cost, [[1, 2], [], []])
        by_pair = schedule.event_map()
        assert by_pair[(0, 2)].start == pytest.approx(2.0)

    def test_zero_cost_skipped_free(self):
        cost = np.array([[0.0, 0.0, 5.0], [0.0] * 3, [0.0] * 3])
        schedule = execute_orders_on_cost(cost, [[1, 2], [], []])
        by_pair = schedule.event_map()
        assert by_pair[(0, 1)].duration == 0.0
        assert by_pair[(0, 2)].start == 0.0  # not delayed by the free event

    def test_waiting_sender_blocks(self):
        # P1 waits for receiver 2 (busy with P0's long send) before it
        # can proceed to its second message.
        cost = np.array(
            [
                [0.0, 0.0, 10.0],
                [0.0, 0.0, 1.0],
                [0.0, 0.0, 0.0],
            ]
        )
        cost[1, 0] = 1.0
        schedule = execute_orders_on_cost(cost, [[2], [2, 0], []])
        by_pair = schedule.event_map()
        assert by_pair[(1, 2)].start == pytest.approx(10.0)
        assert by_pair[(1, 0)].start == pytest.approx(11.0)

    def test_valid_for_random_instances(self):
        problem = random_problem(8, seed=0)
        orders = [
            [d for d in range(8) if d != s] for s in range(8)
        ]
        schedule = execute_orders(problem, orders)
        check_schedule(schedule, problem.cost)

    def test_deterministic(self):
        problem = random_problem(6, seed=1)
        orders = [[d for d in range(6) if d != s] for s in range(6)]
        assert execute_orders(problem, orders) == execute_orders(problem, orders)


class TestStrictExecution:
    def test_respects_planned_receive_order(self):
        # Receiver 2 must serve P0 (step 0) before P1 (step 1), even
        # though P1 is ready at t=0 and P0's message is long.
        cost = np.array(
            [
                [0.0, 0.0, 10.0],
                [0.0, 0.0, 1.0],
                [0.0, 0.0, 0.0],
            ]
        )
        steps = [[(0, 2)], [(1, 2)]]
        schedule = execute_steps_strict(cost, steps)
        by_pair = schedule.event_map()
        assert by_pair[(1, 2)].start == pytest.approx(10.0)

    def test_port_uniqueness_enforced(self):
        with pytest.raises(ValueError, match="repeats"):
            execute_steps_strict(np.zeros((3, 3)), [[(0, 2), (1, 2)]])

    def test_out_of_range_proc(self):
        with pytest.raises(ValueError):
            execute_steps_strict(np.zeros((2, 2)), [[(0, 5)]])

    def test_matches_fifo_when_no_contention(self):
        cost = np.array([[0.0, 2.0], [3.0, 0.0]])
        strict = execute_steps_strict(cost, [[(0, 1), (1, 0)]])
        fifo = execute_orders_on_cost(cost, [[1], [0]])
        assert strict.completion_time == pytest.approx(fifo.completion_time)

    def test_self_message(self):
        cost = np.array([[2.0, 1.0], [1.0, 0.0]])
        schedule = execute_steps_strict(cost, [[(0, 0)], [(0, 1)]])
        by_pair = schedule.event_map()
        assert by_pair[(0, 1)].start == pytest.approx(2.0)


class TestBarrierExecution:
    def test_each_step_costs_its_maximum(self):
        cost = np.array(
            [
                [0.0, 1.0, 5.0],
                [2.0, 0.0, 1.0],
                [3.0, 4.0, 0.0],
            ]
        )
        steps = [[(0, 1), (1, 2), (2, 0)], [(0, 2), (1, 0), (2, 1)]]
        schedule = execute_steps_barrier(cost, steps)
        # step 0 max = 3, step 1 max = 5
        assert schedule.completion_time == pytest.approx(8.0)
        by_pair = schedule.event_map()
        assert by_pair[(0, 2)].start == pytest.approx(3.0)

    def test_barrier_never_faster_than_strict(self):
        problem = random_problem(6, seed=2)
        steps = [
            [(i, (i + j) % 6) for i in range(6)] for j in range(1, 6)
        ]
        barrier = execute_steps_barrier(problem.cost, steps)
        strict = execute_steps_strict(problem.cost, steps)
        assert barrier.completion_time >= strict.completion_time - 1e-9

    def test_valid_schedules(self):
        problem = random_problem(5, seed=3)
        steps = [
            [(i, (i + j) % 5) for i in range(5)] for j in range(1, 5)
        ]
        check_schedule(execute_steps_barrier(problem.cost, steps), problem.cost)
        check_schedule(execute_steps_strict(problem.cost, steps), problem.cost)
