"""Stencil workload tests."""

import numpy as np
import pytest

from repro.workloads.stencil import grid_coords, stencil_sizes


class TestGridCoords:
    def test_row_major(self):
        assert grid_coords(0, (2, 3)) == (0, 0)
        assert grid_coords(4, (2, 3)) == (1, 1)

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            grid_coords(6, (2, 3))


class TestStencilSizes:
    def test_interior_rank_has_four_neighbours(self):
        sizes = stencil_sizes((3, 3), halo_bytes=100.0)
        centre = 4  # (1, 1)
        assert np.count_nonzero(sizes[centre]) == 4
        assert sizes[centre].sum() == pytest.approx(400.0)

    def test_corner_rank_has_two_neighbours(self):
        sizes = stencil_sizes((3, 3), halo_bytes=100.0)
        assert np.count_nonzero(sizes[0]) == 2

    def test_symmetric(self):
        sizes = stencil_sizes((4, 5), halo_bytes=64.0)
        assert np.allclose(sizes, sizes.T)

    def test_periodic_torus_uniform_degree(self):
        sizes = stencil_sizes((3, 3), halo_bytes=10.0, periodic=True)
        for rank in range(9):
            assert np.count_nonzero(sizes[rank]) == 4

    def test_periodic_1d_row_wraps(self):
        sizes = stencil_sizes((1, 4), halo_bytes=1.0, periodic=True)
        assert sizes[0, 3] > 0

    def test_nine_point_corners(self):
        sizes = stencil_sizes((3, 3), halo_bytes=100.0, diagonal_bytes=5.0)
        centre = 4
        assert np.count_nonzero(sizes[centre]) == 8
        assert sizes[centre, 0] == pytest.approx(5.0)

    def test_single_rank_no_traffic(self):
        assert stencil_sizes((1, 1), halo_bytes=1.0).sum() == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            stencil_sizes((0, 2), halo_bytes=1.0)
        with pytest.raises(ValueError):
            stencil_sizes((2, 2), halo_bytes=-1.0)


class TestStencilPlacement:
    def test_placement_heals_scattered_grid(self):
        """On a clustered network, mapping grid rows to sites wins."""
        from repro.directory import TopologyDirectory
        from repro.network.topology import Metacomputer
        from repro.placement import greedy_swap_placement
        from repro.util.units import GBIT_PER_S, MBIT_PER_S, seconds_from_ms

        system = Metacomputer.build(
            {"a": 4, "b": 4},
            access_latency=seconds_from_ms(0.2),
            access_bandwidth=GBIT_PER_S,
            backbone=[("a", "b", seconds_from_ms(30), 5 * MBIT_PER_S)],
        )
        snapshot = TopologyDirectory(system).snapshot()
        sizes = stencil_sizes((2, 4), halo_bytes=2e6)
        # adversarial start: interleave the two sites across the grid
        scattered = [0, 4, 1, 5, 2, 6, 3, 7]
        from repro.placement import evaluate_placement

        bad = evaluate_placement(snapshot, sizes, scattered)
        result = greedy_swap_placement(snapshot, sizes, start=scattered)
        assert result.score < bad * 0.75