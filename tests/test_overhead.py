"""Scheduling-overhead analysis tests."""

import pytest

import repro
from repro.experiments.overhead import (
    OverheadPoint,
    measure_scheduling_seconds,
    run_overhead_analysis,
)
from tests.conftest import random_problem


def test_measure_scheduling_positive():
    problem = random_problem(8, seed=0)
    cost = measure_scheduling_seconds(repro.schedule_openshop, problem)
    assert 0 < cost < 5.0


def test_measure_reps_validation():
    problem = random_problem(4, seed=1)
    with pytest.raises(ValueError):
        measure_scheduling_seconds(repro.schedule_openshop, problem, reps=0)


def test_point_properties():
    point = OverheadPoint(
        num_procs=10,
        message_bytes=1e6,
        scheduling_seconds=0.01,
        baseline_comm=5.0,
        adaptive_comm=3.0,
    )
    assert point.savings == pytest.approx(2.0)
    assert point.net_benefit == pytest.approx(1.99)
    assert point.pays_off


def test_point_not_paying():
    point = OverheadPoint(
        num_procs=4,
        message_bytes=10.0,
        scheduling_seconds=1.0,
        baseline_comm=0.5,
        adaptive_comm=0.4,
    )
    assert not point.pays_off


def test_run_analysis_shapes():
    points = run_overhead_analysis(
        proc_counts=(5,), message_sizes=(1e4, 1e6), trials=1
    )
    assert len(points) == 2
    for point in points:
        assert point.adaptive_comm <= point.baseline_comm + 1e-9
        assert point.scheduling_seconds > 0


def test_run_analysis_validation():
    with pytest.raises(ValueError):
        run_overhead_analysis(trials=0)
    with pytest.raises(KeyError):
        run_overhead_analysis(algorithm="nonexistent", trials=1)
