"""Fluid (flow-level) simulator tests."""

import numpy as np
import pytest

from repro.network.topology import Metacomputer
from repro.sim.fluid import analytical_equivalent_cost, fluid_execute_orders
from repro.timing.validate import check_schedule


def build_system(backbone_bw=1e6):
    return Metacomputer.build(
        {"a": 2, "b": 2},
        access_latency=0.001,
        access_bandwidth=1e9,
        backbone=[("a", "b", 0.030, backbone_bw)],
    )


def test_single_flow_matches_analytical():
    system = build_system()
    sizes = np.zeros((4, 4))
    sizes[0, 2] = 1e6  # a-0 -> b-0 across the backbone
    schedule = fluid_execute_orders(system, [[2], [], [], []], sizes)
    event = [e for e in schedule if e.duration > 0][0]
    # latency 0.032 + 1e6 bytes at 1e6 B/s = 1.032
    assert event.duration == pytest.approx(0.032 + 1.0)


def test_two_flows_share_backbone():
    system = build_system()
    sizes = np.zeros((4, 4))
    sizes[0, 2] = 1e6
    sizes[1, 3] = 1e6
    schedule = fluid_execute_orders(
        system, [[2], [3], [], []], sizes
    )
    events = {(e.src, e.dst): e for e in schedule if e.duration > 0}
    # both flows get half the 1e6 backbone: ~2s transfer each
    assert events[(0, 2)].duration == pytest.approx(0.032 + 2.0, rel=0.01)
    assert events[(1, 3)].duration == pytest.approx(0.032 + 2.0, rel=0.01)


def test_sharing_releases_capacity():
    system = build_system()
    sizes = np.zeros((4, 4))
    sizes[0, 2] = 1e6
    sizes[1, 3] = 2e6  # longer flow keeps going after the first finishes
    schedule = fluid_execute_orders(system, [[2], [3], [], []], sizes)
    events = {(e.src, e.dst): e for e in schedule if e.duration > 0}
    # flow 1: shares (rate .5 MB/s) until flow 0 finishes ~2s, then full
    # rate for the remaining 1 MB -> ~3s total.
    assert events[(1, 3)].duration == pytest.approx(0.032 + 3.0, rel=0.02)


def test_receiver_port_serialises():
    system = build_system()
    sizes = np.zeros((4, 4))
    sizes[0, 2] = 1e6
    sizes[1, 2] = 1e6  # same receiver: must wait for the port
    schedule = fluid_execute_orders(system, [[2], [2], [], []], sizes)
    events = {(e.src, e.dst): e for e in schedule if e.duration > 0}
    assert events[(1, 2)].start >= events[(0, 2)].finish - 1e-9


def test_intra_site_flow_fast():
    system = build_system()
    sizes = np.zeros((4, 4))
    sizes[0, 1] = 1e6  # within site a at 1 GB/s access links
    schedule = fluid_execute_orders(system, [[1], [], [], []], sizes)
    event = [e for e in schedule if e.duration > 0][0]
    assert event.duration == pytest.approx(0.002 + 1e-3, rel=0.05)


def test_self_and_zero_messages_free():
    system = build_system()
    sizes = np.zeros((4, 4))
    schedule = fluid_execute_orders(system, [[1], [], [], []], sizes)
    assert schedule.completion_time == 0.0


def test_schedule_is_valid():
    system = build_system()
    rng = np.random.default_rng(0)
    sizes = rng.uniform(1e5, 1e6, (4, 4))
    np.fill_diagonal(sizes, 0.0)
    orders = [[d for d in range(4) if d != s] for s in range(4)]
    schedule = fluid_execute_orders(system, orders, sizes)
    check_schedule(schedule)  # port overlap rules hold
    assert len([e for e in schedule if e.duration > 0]) == 12


def test_fluid_at_least_analytical_under_contention():
    # Link sharing can only slow things down relative to the contention-
    # free analytical model executed with the same orders.
    from repro.sim.engine import execute_orders_on_cost

    system = build_system()
    rng = np.random.default_rng(1)
    sizes = rng.uniform(1e5, 1e6, (4, 4))
    np.fill_diagonal(sizes, 0.0)
    orders = [[d for d in range(4) if d != s] for s in range(4)]
    fluid_time = fluid_execute_orders(system, orders, sizes).completion_time
    cost = analytical_equivalent_cost(system, sizes)
    analytical_time = execute_orders_on_cost(cost, orders).completion_time
    assert fluid_time >= analytical_time - 1e-6


def test_background_flow_halves_rate():
    system = build_system()
    sizes = np.zeros((4, 4))
    sizes[0, 2] = 1e6
    quiet = fluid_execute_orders(system, [[2], [], [], []], sizes)
    busy = fluid_execute_orders(
        system, [[2], [], [], []], sizes, background_flows=[(1, 3)]
    )
    # the persistent competitor shares the backbone: ~half the rate
    quiet_event = [e for e in quiet if e.duration > 0][0]
    busy_event = [e for e in busy if e.duration > 0][0]
    assert busy_event.duration == pytest.approx(
        0.032 + 2.0, rel=0.02
    )
    assert busy_event.duration > 1.8 * quiet_event.duration


def test_background_flow_validation():
    system = build_system()
    with pytest.raises(ValueError):
        fluid_execute_orders(
            system, [[], [], [], []], np.zeros((4, 4)),
            background_flows=[(1, 1)],
        )


def test_size_shape_checked():
    system = build_system()
    with pytest.raises(ValueError):
        fluid_execute_orders(system, [[], [], [], []], np.zeros((3, 3)))


def test_analytical_equivalent_cost():
    system = build_system()
    sizes = np.zeros((4, 4))
    sizes[0, 2] = 1e6
    cost = analytical_equivalent_cost(system, sizes)
    assert cost[0, 2] == pytest.approx(0.032 + 1.0)
    assert cost[0, 1] == 0.0  # zero-size messages are free
