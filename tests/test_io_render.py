"""SVG and Chrome-trace export tests."""

import json
import xml.etree.ElementTree as ET

import pytest

import repro
from repro.core.problem import example_problem
from repro.io.svg import render_svg, save_svg
from repro.io.trace import save_trace, schedule_to_trace
from repro.timing.events import CommEvent, Schedule


@pytest.fixture
def schedule():
    return repro.schedule_openshop(example_problem())


class TestSvg:
    def test_valid_xml(self, schedule):
        svg = render_svg(schedule, title="example")
        root = ET.fromstring(svg)
        assert root.tag.endswith("svg")

    def test_one_rect_per_real_event(self, schedule):
        svg = render_svg(schedule)
        real = [e for e in schedule if e.duration > 0]
        # background rect + one per event
        assert svg.count("<rect") == len(real) + 1

    def test_headers_present(self, schedule):
        svg = render_svg(schedule)
        for proc in range(5):
            assert f">P{proc}</text>" in svg

    def test_title_escaped(self, schedule):
        svg = render_svg(schedule, title="a < b & c")
        assert "a &lt; b &amp; c" in svg
        ET.fromstring(svg)

    def test_empty_schedule(self):
        svg = render_svg(Schedule(num_procs=2))
        ET.fromstring(svg)

    def test_save(self, schedule, tmp_path):
        path = tmp_path / "diagram.svg"
        save_svg(schedule, path, title="saved")
        assert path.read_text().startswith("<svg")


class TestTrace:
    def test_structure(self, schedule):
        trace = schedule_to_trace(schedule)
        assert "traceEvents" in trace
        kinds = {e["ph"] for e in trace["traceEvents"]}
        assert kinds == {"M", "X"}

    def test_two_tracks_per_event(self, schedule):
        trace = schedule_to_trace(schedule)
        complete = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        real = [e for e in schedule if e.duration > 0]
        assert len(complete) == 2 * len(real)

    def test_microsecond_timestamps(self):
        s = Schedule.from_events(
            2, [CommEvent(start=1.5, src=0, dst=1, duration=0.25)]
        )
        trace = schedule_to_trace(s)
        event = [e for e in trace["traceEvents"] if e["ph"] == "X"][0]
        assert event["ts"] == pytest.approx(1.5e6)
        assert event["dur"] == pytest.approx(0.25e6)

    def test_json_serialisable(self, schedule, tmp_path):
        path = tmp_path / "trace.json"
        save_trace(schedule, path)
        loaded = json.loads(path.read_text())
        assert loaded["displayTimeUnit"] == "ms"
