"""Tests for the ``repro.perf`` benchmark subsystem."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.greedy import schedule_greedy
from repro.perf import (
    KernelTimer,
    ScheduleCache,
    cost_digest,
    problem_digest,
    lower_bound_cached,
    run_bench,
    update_bench_json,
)
from repro.perf.bench import bench_instance, render_bench, write_bench_json
from tests.conftest import random_problem


class TestKernelTimer:
    def test_records_best_and_mean(self):
        timer = KernelTimer(repeats=3)
        result = timer.time("add", lambda a, b: a + b, 2, 3)
        assert result == 5
        timing = timer.timings["add"]
        assert timing.repeats == 3
        assert len(timing.times) == 3
        assert timing.best <= timing.mean
        assert timing.best == min(timing.times)

    def test_speedup_and_summary(self):
        timer = KernelTimer(repeats=1)
        timer.time("fast", lambda: None)
        timer.time("slow", sum, range(200_000))
        assert timer.speedup("slow", "fast") > 1.0
        summary = timer.summary()
        assert set(summary) == {"fast", "slow"}
        assert set(summary["fast"]) == {"best_s", "mean_s", "repeats"}

    def test_measure_context_manager(self):
        timer = KernelTimer()
        with timer.measure("block"):
            sum(range(1000))
        assert timer.timings["block"].best >= 0.0


class TestDigests:
    def test_digest_sensitive_to_values_and_shape(self):
        cost = np.arange(9.0).reshape(3, 3)
        base = cost_digest(cost)
        assert base == cost_digest(cost.copy())
        bumped = cost.copy()
        bumped[0, 1] += 1e-12
        assert cost_digest(bumped) != base
        assert cost_digest(cost.reshape(1, 9)) != base

    def test_digest_includes_sizes(self):
        cost = np.ones((2, 2))
        sizes = np.full((2, 2), 5.0)
        assert cost_digest(cost) != cost_digest(cost, sizes)

    def test_problem_digest_stable_across_instances(self):
        a = random_problem(5, seed=3)
        b = random_problem(5, seed=3)
        assert problem_digest(a) == problem_digest(b)
        assert problem_digest(a) != problem_digest(random_problem(5, seed=4))


class TestScheduleCache:
    def test_hit_returns_same_object(self):
        cache = ScheduleCache()
        problem = random_problem(5, seed=0)
        first = cache.get_or_compute(problem, schedule_greedy)
        second = cache.get_or_compute(problem, schedule_greedy)
        assert second is first
        assert cache.hits == 1 and cache.misses == 1

    def test_distinct_schedulers_do_not_collide(self):
        from repro.core.openshop import schedule_openshop

        cache = ScheduleCache()
        problem = random_problem(5, seed=0)
        greedy = cache.get_or_compute(problem, schedule_greedy)
        openshop = cache.get_or_compute(problem, schedule_openshop)
        assert cache.misses == 2 and len(cache) == 2
        assert cache.get_or_compute(problem, schedule_greedy) is greedy
        assert cache.get_or_compute(problem, schedule_openshop) is openshop

    def test_lru_eviction(self):
        cache = ScheduleCache(maxsize=2)
        for seed in range(3):
            cache.get_or_compute(random_problem(4, seed=seed), schedule_greedy)
        assert len(cache) == 2
        # seed=0 was evicted: recomputing it is a miss.
        cache.get_or_compute(random_problem(4, seed=0), schedule_greedy)
        assert cache.misses == 4

    def test_wrap_and_put(self):
        cache = ScheduleCache()
        problem = random_problem(5, seed=1)
        schedule = schedule_greedy(problem)
        cache.put(problem, schedule_greedy, schedule)
        wrapped = cache.wrap(schedule_greedy)
        assert wrapped(problem) is schedule
        assert cache.hits == 1 and cache.misses == 0

    def test_stats_and_clear(self):
        cache = ScheduleCache()
        cache.get_or_compute(random_problem(4, seed=0), schedule_greedy)
        stats = cache.stats()
        assert stats["entries"] == 1 and stats["misses"] == 1
        cache.clear()
        assert len(cache) == 0 and cache.stats()["hit_rate"] == 0.0

    def test_lower_bound_cached_matches_direct(self):
        problem = random_problem(6, seed=2)
        assert lower_bound_cached(problem) == problem.lower_bound()
        assert lower_bound_cached(problem) == problem.lower_bound()


class TestBenchRunner:
    def test_smoke_bench_writes_valid_json(self, tmp_path):
        out = tmp_path / "BENCH_core.json"
        result = run_bench(
            (8,), smoke=True, include_reference=True, output=out
        )
        loaded = json.loads(out.read_text())
        assert loaded["meta"]["proc_counts"] == [8]
        assert "greedy_end_to_end" in loaded["kernels"]["8"]
        assert "greedy_end_to_end" in loaded["speedups_vs_reference"]["8"]
        assert result["kernels"]["8"]["greedy_steps"]["best_s"] > 0.0
        # Table rendering should mention every kernel.
        table = render_bench(result)
        assert "greedy_end_to_end" in table and "speedup" in table

    def test_bench_instance_is_deterministic(self):
        a = bench_instance(16, seed=0)
        b = bench_instance(16, seed=0)
        assert (a.cost == b.cost).all() and (a.sizes == b.sizes).all()
        assert not (a.cost == bench_instance(16, seed=1).cost).all()

    def test_matching_excluded_above_cap(self):
        result = run_bench(
            (8,), smoke=True, include_reference=False, matching_max_p=4
        )
        assert "matching_rounds_scipy" not in result["kernels"]["8"]

    def test_update_bench_json_merges_section(self, tmp_path):
        out = tmp_path / "BENCH_core.json"
        write_bench_json({"kernels": {}}, out)
        update_bench_json("scale_p256", {"greedy": 1.25}, out)
        update_bench_json("other", {"x": 1}, out)
        data = json.loads(out.read_text())
        assert data["extra"]["scale_p256"] == {"greedy": 1.25}
        assert data["extra"]["other"] == {"x": 1}
        assert data["kernels"] == {}

    def test_update_bench_json_starts_fresh_on_garbage(self, tmp_path):
        out = tmp_path / "BENCH_core.json"
        out.write_text("not json{")
        update_bench_json("s", {"v": 2}, out)
        assert json.loads(out.read_text())["extra"]["s"] == {"v": 2}


class TestBenchCli:
    def test_cli_bench_smoke(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "bench.json"
        code = main([
            "bench", "--smoke", "--sizes", "8", "--output", str(out),
        ])
        assert code == 0
        assert json.loads(out.read_text())["meta"]["smoke"] is True
        captured = capsys.readouterr()
        assert "kernel" in captured.out
