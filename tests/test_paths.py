"""Routing and end-to-end parameter tests."""

import numpy as np
import pytest

from repro.network.paths import all_paths, end_to_end_matrices, path_info
from repro.network.topology import Metacomputer


def system_three_sites() -> Metacomputer:
    # a -- b -- c plus a slow shortcut a -- c
    return Metacomputer.build(
        {"a": 1, "b": 1, "c": 1},
        access_latency=0.001,
        access_bandwidth=1e9,
        backbone=[
            ("a", "b", 0.010, 2e6),
            ("b", "c", 0.010, 5e6),
            ("a", "c", 0.100, 8e6),
        ],
    )


class TestPathInfo:
    def test_same_site_path(self):
        system = Metacomputer.build(
            {"a": 2},
            access_latency=0.002,
            access_bandwidth=1e8,
            backbone=[],
        )
        info = path_info(system, 0, 1)
        # node -> hub -> node: two access links
        assert info.latency == pytest.approx(0.004)
        assert info.bandwidth == pytest.approx(1e8)

    def test_cross_site_latency_sums(self):
        system = system_three_sites()
        info = path_info(system, 0, 1)  # a to b
        assert info.latency == pytest.approx(0.001 + 0.010 + 0.001)

    def test_bottleneck_bandwidth(self):
        system = system_three_sites()
        info = path_info(system, 0, 1)
        assert info.bandwidth == pytest.approx(2e6)

    def test_routing_prefers_low_latency(self):
        system = system_three_sites()
        # a -> c via b is 22 ms; direct link is 102 ms.
        info = path_info(system, 0, 2)
        assert info.latency == pytest.approx(0.001 + 0.010 + 0.010 + 0.001)
        assert info.bandwidth == pytest.approx(2e6)

    def test_self_path(self):
        system = system_three_sites()
        info = path_info(system, 1, 1)
        assert info.latency == 0.0
        assert info.bandwidth == float("inf")

    def test_edges_canonical(self):
        system = system_three_sites()
        info = path_info(system, 0, 1)
        for u, v in info.edges:
            assert u <= v


def test_all_paths_covers_pairs():
    system = system_three_sites()
    paths = all_paths(system)
    assert len(paths) == 3 * 2


def test_end_to_end_matrices():
    system = system_three_sites()
    latency, bandwidth = end_to_end_matrices(system, software_overhead=0.010)
    assert latency.shape == (3, 3)
    assert np.all(np.diag(latency) == 0.0)
    assert np.all(np.isinf(np.diag(bandwidth)))
    # symmetric system -> symmetric matrices
    assert np.allclose(latency, latency.T)
    # software overhead added once per pair
    assert latency[0, 1] == pytest.approx(0.012 + 0.010)
