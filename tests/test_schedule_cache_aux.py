"""ScheduleCache aux-store edges: the cluster-assignment reuse path.

The hierarchical scheduler keeps its detected ``ClusterAssignment``
in two places: a local basis reused while drift stays within
``drift_tolerance``, and the bound :class:`ScheduleCache`'s aux store
keyed by exact cost digest.  These tests pin the edges: the tolerance
boundary is inclusive, digests cannot collide across availability
masks or with schedule entries, and LRU eviction of a stale assignment
degrades to re-detection (never a wrong answer).
"""

import numpy as np

from repro.core.hierarchical import HierarchicalScheduler, _relative_drift
from repro.core.problem import TotalExchangeProblem
from repro.perf.memo import ScheduleCache, cost_digest
from tests.test_hierarchical import planted_problem


def _shifted(problem, src, dst, factor):
    cost = problem.cost.copy()
    cost[src, dst] *= factor
    return TotalExchangeProblem(cost=cost, sizes=problem.sizes)


class TestDriftToleranceBoundary:
    def test_exact_boundary_hit_reuses(self):
        # one entry shrunk to 0.75x: max relative change is exactly
        # 0.25 (scale is the larger old value; 0.75 and 0.25 are exact
        # in binary), which must reuse under the inclusive <= contract
        scheduler = HierarchicalScheduler(drift_tolerance=0.25)
        problem = planted_problem(24, 6, seed=0)
        first = scheduler.assignment_for(problem)
        assert scheduler.clusterings == 1

        boundary = _shifted(problem, 1, 9, 0.75)
        assert _relative_drift(problem.cost, boundary.cost) == 0.25
        assert scheduler.assignment_for(boundary) is first
        assert scheduler.cluster_reuses == 1
        assert scheduler.clusterings == 1

    def test_just_past_boundary_redetects(self):
        scheduler = HierarchicalScheduler(drift_tolerance=0.25)
        problem = planted_problem(24, 6, seed=0)
        scheduler.assignment_for(problem)
        past = _shifted(problem, 1, 9, 0.74)
        assert _relative_drift(problem.cost, past.cost) > 0.25
        scheduler.assignment_for(past)
        assert scheduler.cluster_reuses == 0
        assert scheduler.clusterings == 2

    def test_reuse_does_not_rebase_the_basis(self):
        # drift is measured against the *detection* basis, not the last
        # query: two half-tolerance steps in the same direction must
        # re-detect on the second step, or drift could creep forever
        scheduler = HierarchicalScheduler(drift_tolerance=0.25)
        problem = planted_problem(24, 6, seed=1)
        scheduler.assignment_for(problem)
        step1 = _shifted(problem, 2, 10, 0.80)
        scheduler.assignment_for(step1)
        assert scheduler.cluster_reuses == 1
        step2 = _shifted(problem, 2, 10, 0.64)
        scheduler.assignment_for(step2)
        assert scheduler.clusterings == 2


class TestDigestMaskSeparation:
    def test_mask_changes_digest(self):
        problem = planted_problem(12, 3, seed=2)
        mask = np.ones((12, 12), dtype=bool)
        masked = mask.copy()
        masked[3, 7] = False
        plain = cost_digest(problem.cost)
        assert cost_digest(problem.cost, mask=mask) != plain
        assert cost_digest(problem.cost, mask=masked) != cost_digest(
            problem.cost, mask=mask
        )
        assert cost_digest(problem.cost, mask=masked) == cost_digest(
            problem.cost, mask=masked.copy()
        )

    def test_aux_entries_keyed_per_mask_digest(self):
        # a blackout flips availability without moving one cost number;
        # assignments published under the two worlds must not collide
        cache = ScheduleCache()
        problem = planted_problem(12, 3, seed=2)
        mask = np.ones((12, 12), dtype=bool)
        mask[3, 7] = False
        healthy = cost_digest(problem.cost)
        degraded = cost_digest(problem.cost, mask=mask)
        cache.aux_put("clusters", healthy, "healthy-assignment")
        cache.aux_put("clusters", degraded, "degraded-assignment")
        assert cache.aux_lookup("clusters", healthy) == "healthy-assignment"
        assert cache.aux_lookup("clusters", degraded) == "degraded-assignment"

    def test_aux_namespace_never_collides_with_schedules(self):
        # schedule keys are (digest, label); aux keys are
        # ("aux:kind", digest) — even an adversarial label equal to
        # "aux:clusters" lands in a different slot
        cache = ScheduleCache()
        problem = planted_problem(12, 3, seed=3)
        digest = cost_digest(problem.cost, problem.sizes)
        cache.aux_put("clusters", digest, "assignment")

        def fake_scheduler(p):
            raise AssertionError("must not be called on a hit")

        assert (
            cache.lookup(problem, fake_scheduler, name="aux:clusters")
            is None
        )
        assert cache.aux_lookup("clusters", digest) == "assignment"


class TestAuxEviction:
    def test_lru_evicts_stale_assignments(self):
        cache = ScheduleCache(maxsize=2)
        cache.aux_put("clusters", "d0", "a0")
        cache.aux_put("clusters", "d1", "a1")
        cache.aux_put("clusters", "d2", "a2")
        assert cache.aux_lookup("clusters", "d0") is None  # evicted
        assert cache.aux_lookup("clusters", "d1") == "a1"
        assert cache.aux_lookup("clusters", "d2") == "a2"

    def test_lookup_refreshes_recency(self):
        cache = ScheduleCache(maxsize=2)
        cache.aux_put("clusters", "d0", "a0")
        cache.aux_put("clusters", "d1", "a1")
        assert cache.aux_lookup("clusters", "d0") == "a0"  # refresh d0
        cache.aux_put("clusters", "d2", "a2")
        assert cache.aux_lookup("clusters", "d0") == "a0"
        assert cache.aux_lookup("clusters", "d1") is None  # d1 was LRU

    def test_eviction_degrades_to_redetection(self):
        # publisher fills the cache, an unrelated flood evicts the
        # assignment, and a fresh scheduler must silently re-detect
        cache = ScheduleCache(maxsize=1)
        problem = planted_problem(24, 6, seed=4)
        publisher = HierarchicalScheduler()
        publisher.bind_cluster_cache(cache)
        published = publisher.assignment_for(problem)
        assert cache.aux_lookup("clusters", cost_digest(problem.cost)) is (
            published
        )
        cache.aux_put("clusters", "unrelated", "flood")

        fresh = HierarchicalScheduler()
        fresh.bind_cluster_cache(cache)
        again = fresh.assignment_for(problem)
        assert fresh.cluster_cache_hits == 0
        assert fresh.clusterings == 1
        assert again.labels.tolist() == published.labels.tolist()

    def test_cache_hit_skips_detection_across_schedulers(self):
        cache = ScheduleCache()
        problem = planted_problem(24, 6, seed=5)
        publisher = HierarchicalScheduler()
        publisher.bind_cluster_cache(cache)
        published = publisher.assignment_for(problem)

        fresh = HierarchicalScheduler()
        fresh.bind_cluster_cache(cache)
        exact = TotalExchangeProblem(
            cost=problem.cost.copy(), sizes=problem.sizes
        )
        assert fresh.assignment_for(exact) is published
        assert fresh.cluster_cache_hits == 1
        assert fresh.clusterings == 0
