"""Golden pins: byte-stable schedule digests for the new collectives.

Satellite of the collectives tentpole: ``broadcast_log``,
``allreduce`` (RS+AG ring) and ``alltoall_direct`` plans are pinned by
the sha256 of their event columns (:func:`repro.perf.memo.schedule_digest`)
at P in {2, 8, 64} on a fixed seed, plus degenerate instances
(P = 1 self-only, P = 2 over zero-cost links).  Any refactor that
perturbs event ordering, timing arithmetic or tie-breaking shows up
here as a digest change and must be a deliberate re-pin.
"""

import numpy as np
import pytest

from repro.collectives import (
    allreduce_rs_ag,
    alltoall_direct_plan,
    broadcast_log_plan,
)
from repro.directory.factory import make_directory
from repro.directory.service import DirectorySnapshot
from repro.perf.memo import schedule_digest

SIZE = 64 * 1024.0

# sha256 over (num_procs, event count) + the packed
# (start, src, dst, duration, size) float64 columns, row-major.
GOLDEN = {
    ("broadcast_log", 2):
        "be2db6d90443979d67f3ed07bfacf2043d5ca3beaba27ec0368765d457eb7723",
    ("broadcast_log", 8):
        "b6adca00bfd9dd35f11a20a94dcb2c7715e328ed474dde94ffe4c71fa5121ea6",
    ("broadcast_log", 64):
        "228fdc72c8d5d2a77da91908eb72d7bc864c9d22b0250cd639a27bd36465bb2b",
    ("allreduce", 2):
        "ecbec2cf56dcd07314e9d42bef70c643386e0629c65567bda1975b9d072607db",
    ("allreduce", 8):
        "efd19c142e576d9b7b70276830164ff5fa9a1393d647b5365d2d12f5d87327fc",
    ("allreduce", 64):
        "9d034631bf37006c4cf8143430d866ea136b8968739197f4d5d3a95942a518e0",
    ("alltoall_direct", 2):
        "febf6ba7c70c0fb4fc5592d68aaf51ab48b784dce84cefc916180542a4bc848c",
    ("alltoall_direct", 8):
        "0b546b836b58101bbbe3acd364502afa316f93e23c2797d5a0d129a18544d6b3",
    ("alltoall_direct", 64):
        "ec754544e01bee02133752b735efe2f566871b1554d9dfa9e8337b752fe47c47",
}

# All three planners emit zero events at P = 1, so the digest collapses
# to the hash of the empty (1, 0) schedule -- pinned once.
EMPTY_P1 = "e348257ed6d00ef430391febb897b529694897eefec945a8e16f20bcee055a74"

ZERO_COST_P2 = {
    "broadcast_log":
        "42499636300d890dc11f4f9d5fa0d3184931a07a24f9a62e4ea8f2369f97c3f1",
    "allreduce":
        "6ceecf1da50886855d30c1a756f98f3448f3fad6bf3f4d40334432fa4e1d55f7",
    "alltoall_direct":
        "32752d23b022f62b89b729c38a672e3309c6651538aab7523fbea686bae92710",
}

PLANNERS = {
    "broadcast_log": lambda s: broadcast_log_plan(s, SIZE),
    "allreduce": lambda s: allreduce_rs_ag(s, SIZE),
    "alltoall_direct": lambda s: alltoall_direct_plan(
        s, SIZE, topology="torus"
    ),
}


def pinned_snapshot(n):
    return make_directory("static", num_procs=n, rng=0).snapshot()


class TestGoldenDigests:
    @pytest.mark.parametrize(
        "name,p", sorted(GOLDEN), ids=[f"{n}-p{p}" for n, p in sorted(GOLDEN)]
    )
    def test_pinned(self, name, p):
        plan = PLANNERS[name](pinned_snapshot(p))
        assert schedule_digest(plan.schedule) == GOLDEN[(name, p)]

    @pytest.mark.parametrize("name", sorted(PLANNERS))
    def test_digest_is_deterministic_across_rebuilds(self, name):
        first = PLANNERS[name](pinned_snapshot(8))
        second = PLANNERS[name](pinned_snapshot(8))
        assert schedule_digest(first.schedule) == schedule_digest(
            second.schedule
        )


class TestDegenerate:
    @pytest.mark.parametrize("name", sorted(PLANNERS))
    def test_single_rank_is_the_empty_schedule(self, name):
        plan = PLANNERS[name](pinned_snapshot(1))
        assert plan.completion_time == 0.0
        assert schedule_digest(plan.schedule) == EMPTY_P1

    @pytest.mark.parametrize("name", sorted(ZERO_COST_P2))
    def test_zero_cost_links(self, name):
        # Free links: every event collapses to zero duration but the
        # round structure (event count, src/dst pattern) survives, so
        # the digest still pins the plan shape.
        snapshot = DirectorySnapshot(
            latency=np.zeros((2, 2)),
            bandwidth=np.full((2, 2), np.inf),
        )
        plan = PLANNERS[name](snapshot)
        # all wire time vanishes (allreduce still pays combine time,
        # which shifts its later round starts)
        assert all(e.duration == 0.0 for e in plan.schedule.events)
        assert schedule_digest(plan.schedule) == ZERO_COST_P2[name]

    def test_digest_discriminates(self):
        # Sanity: different plans on the same snapshot produce
        # different digests (the pin actually carries information).
        snapshot = pinned_snapshot(8)
        digests = {
            schedule_digest(PLANNERS[name](snapshot).schedule)
            for name in PLANNERS
        }
        assert len(digests) == 3
