"""End-to-end daemon tests: admission control, backpressure, batching,
drain/restart resume, and crash-resistance against hostile frames.

Every test runs a real :class:`SchedulerDaemon` event loop in a thread
against a unix socket in ``tmp_path`` and speaks the actual wire
protocol through :class:`DaemonClient`.
"""

import json
import threading

import pytest

from repro.serve import (
    DaemonClient,
    DaemonConfig,
    SchedulerDaemon,
)
from repro.serve.protocol import (
    ErrorResponse,
    ScheduleRequest,
    ScheduleResponse,
)
from repro.serve.tenants import TenantProfile, TenantState
from repro.timing.validate import check_schedule


def start_daemon(tmp_path, **overrides):
    sock = str(tmp_path / "daemon.sock")
    config = DaemonConfig(socket_path=sock, **overrides)
    daemon = SchedulerDaemon(config)
    daemon.bind()
    thread = threading.Thread(target=daemon.serve_forever, daemon=True)
    thread.start()
    return daemon, thread, sock


def stop_daemon(daemon, thread):
    daemon.request_stop()
    thread.join(timeout=10)
    assert not thread.is_alive()


# -- basic flow -------------------------------------------------------------


def test_hello_open_schedule(tmp_path):
    daemon, thread, sock = start_daemon(tmp_path)
    try:
        with DaemonClient(sock) as client:
            hello = client.hello()
            assert hello.tenants == 0 and not hello.draining
            opened = client.open("alpha", procs=5, seed=3)
            assert opened.tenant == "alpha"
            assert opened.procs == 5
            assert opened.tick == 0 and not opened.restored
            first = client.schedule("alpha")
            assert isinstance(first, ScheduleResponse)
            assert first.tick == 0
            assert first.decision in (
                "reuse", "refine", "repair", "reschedule"
            )
            assert first.executed_s > 0
            second = client.schedule("alpha")
            assert second.tick == 1
            assert client.hello().tenants == 1
    finally:
        stop_daemon(daemon, thread)
    assert daemon.counters["served"] == 2


def test_open_is_idempotent(tmp_path):
    daemon, thread, sock = start_daemon(tmp_path)
    try:
        with DaemonClient(sock) as client:
            client.open("alpha", procs=5)
            client.schedule("alpha")
            reopened = client.open("alpha", procs=5)
            assert reopened.tick == 1
            assert daemon.counters["opened"] == 1
    finally:
        stop_daemon(daemon, thread)


def test_open_bad_spec_is_clean_error(tmp_path):
    daemon, thread, sock = start_daemon(tmp_path)
    try:
        with DaemonClient(sock) as client:
            with pytest.raises(RuntimeError, match="malformed"):
                client.open("alpha", scheduler="frobnicator")
            with pytest.raises(RuntimeError, match="malformed"):
                client.open("beta", directory="drift:sigma=huh")
            # the daemon is still serving and neither tenant leaked in
            assert client.hello().tenants == 0
    finally:
        stop_daemon(daemon, thread)


def test_unknown_tenant(tmp_path):
    daemon, thread, sock = start_daemon(tmp_path)
    try:
        with DaemonClient(sock) as client:
            response = client.schedule("ghost")
            assert isinstance(response, ErrorResponse)
            assert response.code == "unknown_tenant"
            assert response.retry_after_s is None
    finally:
        stop_daemon(daemon, thread)


# -- admission control and backpressure -------------------------------------


def test_saturated_rejection_carries_retry_after(tmp_path):
    daemon, thread, sock = start_daemon(tmp_path, max_queue=1)
    burst = 32
    try:
        with DaemonClient(sock) as client:
            client.open("alpha", procs=4)
            for _ in range(burst):
                client.send(ScheduleRequest(tenant="alpha"))
            responses = [client.recv() for _ in range(burst)]
    finally:
        stop_daemon(daemon, thread)
    rejected = [r for r in responses if isinstance(r, ErrorResponse)]
    served = [r for r in responses if isinstance(r, ScheduleResponse)]
    assert rejected, "a 1-deep queue must shed most of a 32-burst"
    assert len(served) + len(rejected) == burst
    for error in rejected:
        assert error.code == "saturated"
        assert error.retry_after_s is not None and error.retry_after_s > 0
    assert daemon.counters["rejected_saturated"] == len(rejected)
    assert daemon.counters["accepted"] == daemon.counters["served"]


def test_backpressure_flag_past_high_watermark(tmp_path):
    # batch_max=2 keeps later requests sitting in the queue while the
    # early ones are answered, so those responses see a real depth
    daemon, thread, sock = start_daemon(
        tmp_path, max_queue=64, high_watermark=0.05, batch_max=2
    )
    burst = 16
    try:
        with DaemonClient(sock) as client:
            client.open("alpha", procs=4)
            for _ in range(burst):
                client.send(ScheduleRequest(tenant="alpha"))
            responses = [client.recv() for _ in range(burst)]
    finally:
        stop_daemon(daemon, thread)
    assert all(isinstance(r, ScheduleResponse) for r in responses)
    # the early responses see the rest of the burst still queued
    assert any(r.queue_depth > 0 for r in responses)
    assert any(r.backpressure for r in responses)
    # depth drains monotonically within one pipelined burst
    assert responses[-1].queue_depth == 0


def test_draining_rejects_with_retry_after(tmp_path):
    state_file = str(tmp_path / "state.json")
    daemon, thread, sock = start_daemon(tmp_path)
    try:
        with DaemonClient(sock) as client:
            client.open("alpha", procs=4)
            client.schedule("alpha")
            drained = client.drain(state_file)
            assert drained.tenants == 1
            response = client.schedule("alpha")
            assert isinstance(response, ErrorResponse)
            assert response.code == "draining"
            assert response.retry_after_s is not None
            assert client.hello().draining
    finally:
        stop_daemon(daemon, thread)
    assert daemon.counters["rejected_draining"] == 1
    assert daemon.counters["accepted"] == daemon.counters["served"]


def test_snapshot_keeps_serving(tmp_path):
    state_file = str(tmp_path / "snap.json")
    daemon, thread, sock = start_daemon(tmp_path)
    try:
        with DaemonClient(sock) as client:
            client.open("alpha", procs=4)
            client.schedule("alpha")
            snap = client.snapshot(state_file)
            assert snap.tenants == 1 and snap.path == state_file
            # unlike drain, snapshot leaves admission open
            assert isinstance(client.schedule("alpha"), ScheduleResponse)
            assert not client.hello().draining
    finally:
        stop_daemon(daemon, thread)
    payload = json.loads((tmp_path / "snap.json").read_text())
    assert payload["format"] == "repro/daemon-state"
    assert len(payload["tenants"]) == 1


# -- cross-tenant batching --------------------------------------------------


def test_same_cohort_requests_batch(tmp_path):
    daemon, thread, sock = start_daemon(tmp_path)
    cohort = ["a", "b", "c", "d"]
    try:
        with DaemonClient(sock) as client:
            for tenant in cohort:
                client.open(tenant, procs=6, seed=42)
            for tenant in cohort:
                client.send(ScheduleRequest(tenant=tenant))
            responses = [client.recv() for _ in cohort]
    finally:
        stop_daemon(daemon, thread)
    assert all(isinstance(r, ScheduleResponse) for r in responses)
    # same specs + same seed + same clock => one planning digest: the
    # whole burst runs as one group and says so
    assert all(r.batched for r in responses)
    assert daemon.counters["batched"] >= len(cohort) - 1
    # and batching must not change the answer: identical decisions
    assert len({r.decision for r in responses}) == 1
    assert len({r.predicted_s for r in responses}) == 1
    assert len({r.executed_s for r in responses}) == 1


def test_batched_equals_unbatched(tmp_path):
    """The batched cohort's responses are bit-identical to a lone
    control session ticked the ordinary way."""
    daemon, thread, sock = start_daemon(tmp_path)
    try:
        with DaemonClient(sock) as client:
            for tenant in ("a", "b", "c"):
                client.open(tenant, procs=6, seed=7)
            ticks = 3
            per_tick = []
            for _ in range(ticks):
                for tenant in ("a", "b", "c"):
                    client.send(ScheduleRequest(tenant=tenant))
                per_tick.append([client.recv() for _ in range(3)])
    finally:
        stop_daemon(daemon, thread)
    control = TenantState(TenantProfile(tenant="control", procs=6, seed=7))
    for tick, responses in enumerate(per_tick):
        result = control.session.tick(dt=1.0)
        check_schedule(result.schedule, require_coverage=False)
        for response in responses:
            assert response.tick == tick
            assert response.decision == result.event.decision
            assert response.predicted_s == result.event.predicted_makespan
            assert response.executed_s == result.event.executed_makespan


def test_noisy_tenants_never_batch(tmp_path):
    daemon, thread, sock = start_daemon(tmp_path)
    try:
        with DaemonClient(sock) as client:
            for tenant in ("a", "b"):
                client.open(
                    tenant, procs=4, directory="noisy:sigma=0.1", seed=7
                )
            for tenant in ("a", "b"):
                client.send(ScheduleRequest(tenant=tenant))
            responses = [client.recv() for _ in range(2)]
    finally:
        stop_daemon(daemon, thread)
    assert all(isinstance(r, ScheduleResponse) for r in responses)
    assert not any(r.batched for r in responses)
    assert daemon.counters["batched"] == 0


# -- drain / restart --------------------------------------------------------


def test_drain_restart_is_bit_identical(tmp_path):
    state_file = str(tmp_path / "state.json")
    ticks_before = 4
    daemon1, thread1, sock = start_daemon(tmp_path)
    try:
        with DaemonClient(sock) as client:
            client.open("alpha", procs=6, seed=11)
            before = [
                client.schedule("alpha") for _ in range(ticks_before)
            ]
            drained = client.drain(state_file)
            assert drained.tenants == 1
    finally:
        stop_daemon(daemon1, thread1)
    assert daemon1.counters["accepted"] == daemon1.counters["served"]
    assert all(isinstance(r, ScheduleResponse) for r in before)

    daemon2, thread2, sock = start_daemon(tmp_path, resume_from=state_file)
    assert daemon2.counters["restored"] == 1
    try:
        with DaemonClient(sock) as client:
            reopened = client.open("alpha", procs=6, seed=11)
            assert reopened.restored
            assert reopened.tick == ticks_before
            after = [client.schedule("alpha") for _ in range(3)]
    finally:
        stop_daemon(daemon2, thread2)

    # Control: one uninterrupted session, same profile, same dt stream.
    control = TenantState(TenantProfile(tenant="alpha", procs=6, seed=11))
    for response in before + after:
        result = control.session.tick(dt=1.0)
        check_schedule(result.schedule, require_coverage=False)
        assert response.tick == result.event.tick
        assert response.decision == result.event.decision
        assert response.predicted_s == result.event.predicted_makespan
        assert response.executed_s == result.event.executed_makespan


def test_resume_rejects_foreign_state_file(tmp_path):
    bogus = tmp_path / "bogus.json"
    bogus.write_text(json.dumps({"format": "something-else"}))
    with pytest.raises(ValueError, match="not a daemon state file"):
        SchedulerDaemon(
            DaemonConfig(
                socket_path=str(tmp_path / "d.sock"),
                resume_from=str(bogus),
            )
        )


def test_non_resumable_flavour_fails_snapshot_cleanly(tmp_path):
    state_file = str(tmp_path / "state.json")
    daemon, thread, sock = start_daemon(tmp_path)
    try:
        with DaemonClient(sock) as client:
            client.open("noisy", procs=4, directory="noisy:sigma=0.1")
            with pytest.raises(RuntimeError, match="internal"):
                client.snapshot(state_file)
            # an un-snapshotable tenant must not kill the daemon
            assert client.hello().tenants == 1
    finally:
        stop_daemon(daemon, thread)


# -- hostile input ----------------------------------------------------------


def test_garbage_frames_get_error_responses(tmp_path):
    daemon, thread, sock = start_daemon(tmp_path)
    garbage = [
        b"not json",
        b"{",
        b'{"v":99,"type":"hello"}',
        b'{"v":1,"type":"frobnicate"}',
        b'{"v":1,"type":"schedule"}',
        b'{"v":1,"type":"schedule","tenant":"t","dt":"fast"}',
        b'{"v":1,"type":"open","tenant":"t","procs":true}',
        b'[1,2,3]',
    ]
    try:
        with DaemonClient(sock) as client:
            for line in garbage:
                response = client.send_raw(line)
                assert isinstance(response, ErrorResponse), line
                assert response.code in (
                    "malformed", "version", "unknown_type"
                ), line
            # after all that abuse, normal service continues
            client.open("alpha", procs=4)
            assert isinstance(client.schedule("alpha"), ScheduleResponse)
    finally:
        stop_daemon(daemon, thread)
    assert daemon.counters["protocol_errors"] == len(garbage)


def test_oversized_frame_does_not_kill_daemon(tmp_path):
    daemon, thread, sock = start_daemon(tmp_path)
    from repro.serve.protocol import MAX_FRAME_BYTES

    try:
        client = DaemonClient(sock)
        try:
            client.send_raw(b"x" * (MAX_FRAME_BYTES + 4096))
        except (ConnectionError, BrokenPipeError, OSError):
            pass  # the daemon may slam the door mid-send; that is fine
        finally:
            client.close()
        # the invariant: the daemon survives and serves fresh clients
        with DaemonClient(sock) as fresh:
            assert fresh.hello().tenants == 0
    finally:
        stop_daemon(daemon, thread)


# -- ops wiring: rejection hints, metrics store, backups ---------------------


def test_open_during_drain_rejected_with_retry_after(tmp_path):
    # A tenant opened after the drain snapshot would be silently lost
    # across the restart; the daemon must reject it like any other
    # admission rejection, backoff hint included.
    from repro.serve.protocol import OpenRequest

    state_file = str(tmp_path / "state.json")
    daemon, thread, sock = start_daemon(tmp_path)
    try:
        with DaemonClient(sock) as client:
            client.open("alpha", procs=4)
            client.drain(state_file)
            client.send(OpenRequest(tenant="latecomer", procs=4))
            response = client.recv()
            assert isinstance(response, ErrorResponse)
            assert response.code == "draining"
            assert response.retry_after_s is not None
            assert response.retry_after_s > 0
            # ...and the tenant did not leak into the drained state
            assert client.hello().tenants == 1
    finally:
        stop_daemon(daemon, thread)
    assert daemon.counters["rejected_draining"] == 1


def test_every_admission_rejection_carries_retry_after(tmp_path):
    # Saturated and draining rejections both carry the hint; only
    # unknown_tenant (a caller bug, not a capacity signal) omits it.
    daemon, thread, sock = start_daemon(tmp_path, max_queue=1)
    try:
        with DaemonClient(sock) as client:
            client.open("alpha", procs=4)
            for _ in range(16):
                client.send(ScheduleRequest(tenant="alpha"))
            responses = [client.recv() for _ in range(16)]
            rejected = [
                r for r in responses if isinstance(r, ErrorResponse)
            ]
            assert rejected
            assert all(r.retry_after_s is not None for r in rejected)
            client.drain(str(tmp_path / "state.json"))
            drain_reject = client.schedule("alpha")
            assert isinstance(drain_reject, ErrorResponse)
            assert drain_reject.retry_after_s is not None
    finally:
        stop_daemon(daemon, thread)


def test_daemon_counters_property_is_a_snapshot(tmp_path):
    daemon, thread, sock = start_daemon(tmp_path)
    try:
        with DaemonClient(sock) as client:
            client.open("alpha", procs=4)
            client.schedule("alpha")
        counters = daemon.counters
        assert counters["served"] == 1
        # mutating the snapshot must not touch the daemon's metrics
        counters["served"] = 999
        assert daemon.counters["served"] == 1
        assert set(SchedulerDaemon.COUNTER_NAMES) <= set(daemon.counters)
    finally:
        stop_daemon(daemon, thread)


def test_ops_dir_writes_store_and_backup(tmp_path):
    from repro.ops import BackupManager, MetricsStore

    ops_dir = tmp_path / "ops"
    state_file = str(tmp_path / "state.json")
    daemon, thread, sock = start_daemon(tmp_path, ops_dir=str(ops_dir))
    try:
        with DaemonClient(sock) as client:
            client.open("alpha", procs=4)
            for _ in range(3):
                client.schedule("alpha")
            stats = client.stats()
            assert "ops" in stats
            assert stats["ops"]["store"]["records_written"] >= 3
            client.drain(state_file)
    finally:
        stop_daemon(daemon, thread)
    # the drain snapshot also landed as a verified, retained backup
    backups = BackupManager(ops_dir / "backups")
    assert backups.latest() is not None
    verdict = backups.verify()
    assert verdict["bit_identical"] and verdict["tenants"] == 1
    # shutdown sealed the store; every response left a persisted record
    store = MetricsStore(ops_dir / "store")
    responses = list(store.iter_records(kind="daemon.response"))
    assert len(responses) == 3
    assert all("ts" in r and "decision" in r for r in responses)
    counters = [
        r for r in store.iter_records(kind="counters")
    ]
    assert counters and counters[-1]["counters"]["served"] == 3
    store.close()


def test_external_sink_sees_daemon_rejections(tmp_path):
    from repro.ops.sink import MetricsSink

    class Capture(MetricsSink):
        def __init__(self):
            self.records = []

        def emit(self, event):
            self.records.append(dict(event))

    capture = Capture()
    sock = str(tmp_path / "daemon.sock")
    daemon = SchedulerDaemon(
        DaemonConfig(socket_path=sock, max_queue=1), sink=capture
    )
    daemon.bind()
    thread = threading.Thread(target=daemon.serve_forever, daemon=True)
    thread.start()
    try:
        with DaemonClient(sock) as client:
            client.open("alpha", procs=4)
            for _ in range(8):
                client.send(ScheduleRequest(tenant="alpha"))
            for _ in range(8):
                client.recv()
    finally:
        stop_daemon(daemon, thread)
    kinds = {r["kind"] for r in capture.records}
    assert "daemon.response" in kinds
    assert "daemon.reject" in kinds
    assert all("ts" in r for r in capture.records)
