"""Differential battery: every registered collective vs naive references.

Satellite of the collectives tentpole: 100% of
``iter_collective_specs()`` runs on seeded heterogeneous and noisy
directories at P in {1, 2, 3, 8, 64}, with

* the per-family delivery audit (fan-out / fan-in / gossip closure /
  exchange oracle) on every schedule;
* the guarantee caps (``ceil(log2 P)`` rounds, ``2 (P-1)`` ring steps,
  ``2 (P-1)/P`` per-node volume, fabric-factorization rounds);
* bit-exact agreement between the vectorized planners and independent
  scalar reference executors.
"""

import numpy as np
import pytest

from repro.check.collectives import (
    audit_collective,
    check_allbroadcast,
    check_allreduce,
    check_alltoall_direct,
    check_broadcast_log,
    check_reduction,
    differential_violations,
    reference_allbroadcast,
    reference_allreduce_rs_ag,
    reference_alltoall_direct,
    reference_broadcast_log,
    reference_reduction_log,
)
from repro.collectives import (
    allbroadcast_plan,
    allreduce_rs_ag,
    alltoall_direct_plan,
    broadcast_log_plan,
    iter_collective_specs,
    reduction_log_plan,
)
from repro.directory.factory import make_directory

P_VALUES = (1, 2, 3, 8, 64)
DIRECTORIES = ("static", "noisy:sigma=0.3")
SIZE = 64 * 1024.0

SPECS = list(iter_collective_specs())


def snapshot_for(directory, n, seed=0):
    return make_directory(directory, num_procs=n, rng=seed).snapshot()


@pytest.mark.parametrize("directory", DIRECTORIES)
@pytest.mark.parametrize("p", P_VALUES)
@pytest.mark.parametrize(
    "spec", SPECS, ids=[spec.name for spec in SPECS]
)
def test_every_spec_delivers(spec, p, directory):
    snapshot = snapshot_for(directory, p)
    size = 0.0 if spec.family == "barrier" else SIZE
    result = spec.fn(snapshot, size)
    assert audit_collective(
        spec.name, result.schedule, snapshot, size
    ) == []
    assert (
        result.completion_time
        >= result.schedule.completion_time - 1e-9
    )


def test_battery_covers_the_whole_registry():
    # The parametrization above must never silently skip a spec: every
    # registered name maps to an audit family.
    assert len(SPECS) == 19
    names = {spec.name for spec in SPECS}
    for expected in (
        "broadcast_log", "allbroadcast", "reduction", "allreduce",
        "alltoall_direct",
    ):
        assert expected in names


@pytest.mark.parametrize("directory", DIRECTORIES)
@pytest.mark.parametrize("p", [p for p in P_VALUES if p > 1])
def test_new_family_guarantees(p, directory):
    snapshot = snapshot_for(directory, p)
    assert check_broadcast_log(snapshot, SIZE) == []
    assert check_allbroadcast(snapshot, SIZE) == []
    assert check_reduction(snapshot, SIZE) == []
    assert check_allreduce(snapshot, SIZE) == []
    assert check_alltoall_direct(snapshot, SIZE, topology="ring") == []
    assert check_alltoall_direct(snapshot, SIZE, topology="torus") == []
    if p & (p - 1) == 0:
        assert check_alltoall_direct(
            snapshot, SIZE, topology="hypercube"
        ) == []


class TestReferenceExecutorsBitExact:
    """The scalar references must reproduce planner timings exactly."""

    @pytest.mark.parametrize("p", [2, 3, 8, 64])
    def test_broadcast(self, p):
        snapshot = snapshot_for("noisy:sigma=0.5", p, seed=3)
        plan = broadcast_log_plan(snapshot, SIZE)
        planned = [
            (e.round, e.start, e.src, e.dst, e.duration)
            for e in plan.entries
        ]
        assert planned == reference_broadcast_log(snapshot, SIZE)

    @pytest.mark.parametrize("p", [2, 3, 8, 64])
    def test_allbroadcast(self, p):
        snapshot = snapshot_for("noisy:sigma=0.5", p, seed=3)
        plan = allbroadcast_plan(snapshot, SIZE)
        planned = [
            (e.round, e.start, e.src, e.dst, e.duration)
            for e in plan.entries
        ]
        assert planned == reference_allbroadcast(snapshot, SIZE)

    @pytest.mark.parametrize("p", [2, 3, 8, 64])
    def test_reduction(self, p):
        snapshot = snapshot_for("noisy:sigma=0.5", p, seed=3)
        plan = reduction_log_plan(snapshot, SIZE)
        planned = [
            (e.round, e.start, e.src, e.dst, e.duration)
            for e in plan.entries
        ]
        assert planned == reference_reduction_log(snapshot, SIZE)

    @pytest.mark.parametrize("p", [2, 3, 8, 64])
    def test_allreduce(self, p):
        snapshot = snapshot_for("noisy:sigma=0.5", p, seed=3)
        plan = allreduce_rs_ag(snapshot, SIZE)
        planned = list(zip(
            plan.step_index.tolist(), plan.starts.tolist(),
            plan.srcs.tolist(), plan.dsts.tolist(),
            plan.durations.tolist(),
        ))
        assert planned == reference_allreduce_rs_ag(
            snapshot, SIZE, plan.ring
        )

    @pytest.mark.parametrize("topology,p", [
        ("ring", 8), ("torus", 8), ("hypercube", 8),
        ("torus", 64), ("hypercube", 64),
    ])
    def test_alltoall_direct(self, topology, p):
        snapshot = snapshot_for("noisy:sigma=0.5", p, seed=3)
        plan = alltoall_direct_plan(snapshot, SIZE, topology=topology)
        planned = [
            (e.round, e.start, e.src, e.dst, e.duration, e.payload)
            for e in plan.entries
        ]
        assert planned == reference_alltoall_direct(
            snapshot, SIZE, topology=topology
        )


class TestDifferentialHelper:
    def test_reports_length_mismatch(self):
        out = differential_violations("x", [(0, 1)], [])
        assert out == ["x: planner emits 1 events, reference 0"]

    def test_reports_first_divergence(self):
        out = differential_violations("x", [(0, 1.0)], [(0, 2.0)])
        assert len(out) == 1
        assert "diverges" in out[0]

    def test_empty_match(self):
        assert differential_violations("x", [], []) == []
