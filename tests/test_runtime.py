"""Adaptive serving runtime tests: policy, session, metrics, traces."""

import numpy as np
import pytest

from repro.directory.service import DirectorySnapshot
from repro.perf.memo import ScheduleCache
from repro.runtime import (
    AdaptiveSession,
    PolicyConfig,
    REFINE,
    REPAIR,
    RESCHEDULE,
    REUSE,
    RuntimeMetrics,
    TickEvent,
    decide,
    drift_magnitude,
)
from repro.sim.replay import DriftTrace, TraceDirectory, synthetic_drift_trace


def _base_snapshot(num_procs=6, seed=0):
    import repro

    rng = np.random.default_rng(seed)
    latency, bandwidth = repro.random_pairwise_parameters(num_procs, rng=rng)
    return DirectorySnapshot(latency=latency, bandwidth=bandwidth)


def _sizes(num_procs=6, value=1000.0):
    sizes = np.full((num_procs, num_procs), value)
    np.fill_diagonal(sizes, 0.0)
    return sizes


def _scaled_trace(factors, num_procs=4):
    """A trace whose tick-k costs are exactly ``factors[k]`` times the
    base costs: zero latency, bandwidth divided by the factor."""
    bandwidth = np.full((num_procs, num_procs), 1e6)
    np.fill_diagonal(bandwidth, np.inf)
    latency = np.zeros((num_procs, num_procs))
    snapshots = tuple(
        DirectorySnapshot(
            latency=latency, bandwidth=bandwidth / f, time=float(k)
        )
        for k, f in enumerate(factors)
    )
    times = tuple(float(k) for k in range(len(factors)))
    return DriftTrace(times=times, snapshots=snapshots)


# -- policy unit behaviour ---------------------------------------------------


def test_decide_thresholds():
    config = PolicyConfig(reuse_threshold=0.05, refine_threshold=0.25)
    common = dict(config=config, reuse_streak=0, ticks_since_reschedule=1)
    assert decide(0.01, **common)[0] == REUSE
    assert decide(0.10, **common)[0] == REFINE
    assert decide(0.30, **common)[0] == RESCHEDULE


def test_decide_staleness_caps():
    config = PolicyConfig(max_reuse_ticks=2, max_plan_age_ticks=5)
    decision, reason = decide(
        0.0, config=config, reuse_streak=2, ticks_since_reschedule=3
    )
    assert decision == REFINE and "staleness" in reason
    decision, reason = decide(
        0.0, config=config, reuse_streak=0, ticks_since_reschedule=5
    )
    assert decision == RESCHEDULE and "staleness" in reason


def test_decide_budget_demotes_reschedule():
    config = PolicyConfig(min_ticks_between_reschedules=4)
    decision, reason = decide(
        0.9, config=config, reuse_streak=0, ticks_since_reschedule=2
    )
    assert decision == REFINE and "budget" in reason
    decision, _ = decide(
        0.9, config=config, reuse_streak=0, ticks_since_reschedule=4
    )
    assert decision == RESCHEDULE


def test_decide_repair_tier():
    config = PolicyConfig(
        reuse_threshold=0.05,
        refine_threshold=0.25,
        repair_threshold=0.75,
        repair_max_dirty_fraction=0.25,
    )
    common = dict(config=config, reuse_streak=0, ticks_since_reschedule=1)
    # localised drift repairs in both middle bands...
    assert decide(0.10, dirty_fraction=0.02, **common)[0] == REPAIR
    assert decide(0.40, dirty_fraction=0.25, **common)[0] == REPAIR
    # ...but widespread repricing keeps the classic ladder...
    assert decide(0.10, dirty_fraction=0.9, **common)[0] == REFINE
    assert decide(0.40, dirty_fraction=0.9, **common)[0] == RESCHEDULE
    # ...extreme drift always rebuilds, and no signal means no repair.
    assert decide(0.80, dirty_fraction=0.02, **common)[0] == RESCHEDULE
    assert decide(0.40, dirty_fraction=None, **common)[0] == RESCHEDULE
    assert decide(0.40, **common)[0] == RESCHEDULE
    # below the reuse threshold the plan is fine as-is: no repair.
    assert decide(0.01, dirty_fraction=0.02, **common)[0] == REUSE


def test_policy_config_validation():
    with pytest.raises(ValueError):
        PolicyConfig(reuse_threshold=0.5, refine_threshold=0.1)
    with pytest.raises(ValueError):
        PolicyConfig(max_reuse_ticks=0)
    with pytest.raises(ValueError):
        PolicyConfig(scheduler_deadline_s=0.0)
    with pytest.raises(ValueError):
        PolicyConfig(refine_threshold=0.5, repair_threshold=0.25)
    with pytest.raises(ValueError):
        PolicyConfig(repair_max_dirty_fraction=1.5)


def test_drift_magnitude():
    basis = np.array([[0.0, 2.0], [4.0, 0.0]])
    assert drift_magnitude(basis, basis * 1.5) == pytest.approx(0.5)
    appeared = np.array([[0.0, 2.0], [4.0, 0.0]])
    basis_zero = np.array([[0.0, 0.0], [4.0, 0.0]])
    # one unchanged pair (0 drift... actually 2.0 appeared from zero)
    assert drift_magnitude(basis_zero, appeared) == pytest.approx(0.5)
    with pytest.raises(ValueError):
        drift_magnitude(basis, np.zeros((3, 3)))


# -- scripted serving decisions ---------------------------------------------


def test_session_reuse_refine_reschedule_on_scripted_drift():
    # factors: 1.0 (cold start), 1.0 (reuse), 1.1 (refine: drift 0.1),
    # 2.2 (reschedule: drift vs the refined basis ~ 1.0)
    trace = _scaled_trace([1.0, 1.0, 1.1, 2.2])
    session = AdaptiveSession(
        TraceDirectory(trace), _sizes(4), scheduler="openshop"
    )
    results = [session.tick(dt=0.0)]
    results += [session.tick(dt=1.0) for _ in range(3)]
    assert [r.decision for r in results] == [
        RESCHEDULE, REUSE, REFINE, RESCHEDULE,
    ]
    # drift is measured against the basis the active plan was (re)built on
    assert results[1].event.drift == pytest.approx(0.0)
    assert results[2].event.drift == pytest.approx(0.1, rel=1e-6)
    assert results[3].event.drift == pytest.approx(2.2 / 1.1 - 1, rel=1e-6)
    # perfectly predicted: executed == predicted on the replan ticks
    assert results[3].event.regret == pytest.approx(0.0, abs=1e-9)


def test_session_summary_counts_match_events():
    trace = _scaled_trace([1.0, 1.0, 1.1, 2.2])
    session = AdaptiveSession(
        TraceDirectory(trace), _sizes(4), scheduler="greedy"
    )
    session.tick(dt=0.0)
    for _ in range(3):
        session.tick(dt=1.0)
    summary = session.summary()
    assert summary["ticks"] == 4
    assert summary["decisions"] == {
        "reuse": 1, "refine": 1, "repair": 0, "reschedule": 2,
    }
    assert summary["reschedule_rate"] == pytest.approx(0.5)
    assert summary["refine_evaluations"] > 0


# -- deadline / exception fallback ------------------------------------------


class _SteppingClock:
    """A fake monotonic clock advancing a fixed step per reading."""

    def __init__(self, step):
        self.step = step
        self.now = 0.0

    def __call__(self):
        self.now += self.step
        return self.now


def test_deadline_fallback_with_fake_clock():
    trace = _scaled_trace([1.0])
    session = AdaptiveSession(
        TraceDirectory(trace),
        _sizes(4),
        scheduler="openshop",
        policy=PolicyConfig(scheduler_deadline_s=1.0),
        clock=_SteppingClock(10.0),  # every invocation "takes" 10s
    )
    result = session.tick()
    assert result.event.fallback
    assert "deadline" in result.event.reason
    assert session.summary()["fallback_activations"] == 1
    # the fallback is the baseline caterpillar: its plan still executes
    assert result.schedule.completion_time > 0


def test_exception_fallback_keeps_serving():
    def exploding(problem):
        raise RuntimeError("boom")

    trace = _scaled_trace([1.0, 1.0])
    session = AdaptiveSession(
        TraceDirectory(trace), _sizes(4), scheduler=exploding
    )
    first = session.tick()
    assert first.event.fallback and "RuntimeError" in first.event.reason
    second = session.tick(dt=1.0)  # plan exists now; low drift reuses it
    assert second.decision == REUSE
    assert session.summary()["ticks"] == 2


def test_injected_timeout_forces_fallback_reschedule():
    trace = _scaled_trace([1.0, 1.0, 1.0])
    session = AdaptiveSession(
        TraceDirectory(trace),
        _sizes(4),
        scheduler="openshop",
        force_timeout_ticks=[1],
    )
    session.tick()
    forced = session.tick(dt=1.0)
    assert forced.decision == RESCHEDULE
    assert forced.event.fallback
    assert "chaos" in forced.event.reason
    # fallback results must not poison the cache for the real scheduler
    after = session.tick(dt=1.0)
    assert not after.event.fallback


# -- cache behaviour ---------------------------------------------------------


def test_cache_hit_on_revisited_conditions():
    trace = _scaled_trace([1.0] * 4)
    cache = ScheduleCache()
    session = AdaptiveSession(
        TraceDirectory(trace),
        _sizes(4),
        scheduler="openshop",
        # zero thresholds: every tick demands a full reschedule
        policy=PolicyConfig(
            reuse_threshold=0.0,
            refine_threshold=0.0,
            repair_threshold=0.0,
        ),
        cache=cache,
    )
    session.tick(dt=0.0)
    for _ in range(3):
        session.tick(dt=1.0)
    summary = session.summary()
    assert summary["decisions"]["reschedule"] == 4
    assert summary["cache_hit_rate"] == pytest.approx(3 / 4)
    assert [e.cache_hit for e in session.metrics.events] == [
        False, True, True, True,
    ]


def test_fallback_results_never_cached():
    trace = _scaled_trace([1.0, 1.0])
    cache = ScheduleCache()
    session = AdaptiveSession(
        TraceDirectory(trace),
        _sizes(4),
        scheduler="openshop",
        policy=PolicyConfig(
            reuse_threshold=0.0,
            refine_threshold=0.0,
            repair_threshold=0.0,
        ),
        cache=cache,
        force_timeout_ticks=[0],
    )
    session.tick()  # fallback; must not populate the cache
    second = session.tick(dt=1.0)  # same costs, forced reschedule
    assert not second.event.cache_hit  # a hit would mean the fallback leaked


# -- determinism -------------------------------------------------------------


def test_session_deterministic_under_fixed_seed():
    def run_once():
        base = _base_snapshot(num_procs=6, seed=3)
        trace = synthetic_drift_trace(
            base, ticks=8, base_sigma=0.05, burst_sigma=0.5, burst_every=3,
            seed=7,
        )
        session = AdaptiveSession(
            TraceDirectory(trace), _sizes(6), scheduler="openshop"
        )
        session.tick(dt=0.0)
        for _ in range(7):
            session.tick(dt=1.0)
        return [
            (e.decision, round(e.executed_makespan, 9), round(e.drift, 9))
            for e in session.metrics.events
        ]

    assert run_once() == run_once()


def test_noisy_directory_produces_regret():
    from repro.directory.noisy import NoisyDirectory
    from repro.directory.static import StaticDirectory

    base = _base_snapshot(num_procs=5, seed=1)
    inner = StaticDirectory(base.latency, base.bandwidth)
    noisy = NoisyDirectory(inner, bandwidth_sigma=0.4, rng=5)
    session = AdaptiveSession(noisy, _sizes(5), scheduler="openshop")
    result = session.tick()
    # planned on noisy readings, executed on the truth: regret is real
    assert result.event.regret != pytest.approx(0.0)


# -- trace plumbing ----------------------------------------------------------


def test_synthetic_trace_prefix_stable():
    base = _base_snapshot(num_procs=4, seed=2)
    short = synthetic_drift_trace(base, ticks=4, seed=9)
    long = synthetic_drift_trace(base, ticks=7, seed=9)
    for a, b in zip(short.snapshots, long.snapshots):
        np.testing.assert_allclose(a.bandwidth, b.bandwidth)


def test_drift_trace_at_clamps():
    trace = _scaled_trace([1.0, 2.0, 3.0])
    assert trace.at(-5.0) is trace.snapshots[0]
    assert trace.at(1.5) is trace.snapshots[1]
    assert trace.at(99.0) is trace.snapshots[-1]
    assert trace.duration == pytest.approx(2.0)


def test_trace_directory_advances():
    trace = _scaled_trace([1.0, 2.0])
    directory = TraceDirectory(trace)
    before = directory.snapshot().bandwidth.copy()
    directory.advance(1.0)
    after = directory.snapshot().bandwidth
    finite = np.isfinite(before)
    assert np.all(after[finite] < before[finite])
    with pytest.raises(ValueError):
        directory.advance(-1.0)


def test_drift_trace_validation():
    snap = _scaled_trace([1.0]).snapshots[0]
    with pytest.raises(ValueError):
        DriftTrace(times=(0.0, 0.0), snapshots=(snap, snap))
    with pytest.raises(ValueError):
        DriftTrace(times=(), snapshots=())


# -- metrics -----------------------------------------------------------------


def _event(**overrides):
    payload = dict(
        tick=0, time=0.0, decision="reuse", reason="r", drift=0.0,
        predicted_makespan=1.0, executed_makespan=1.5, regret=0.5,
    )
    payload.update(overrides)
    return TickEvent(**payload)


def test_metrics_rejects_unknown_decision():
    metrics = RuntimeMetrics()
    with pytest.raises(ValueError, match="unknown decision"):
        metrics.record_tick(_event(decision="panic"))


def test_metrics_rates_and_json():
    metrics = RuntimeMetrics()
    metrics.record_tick(_event(tick=0, decision="reschedule"))
    metrics.record_tick(_event(tick=1, decision="reuse"))
    metrics.record_tick(
        _event(tick=2, decision="reschedule", cache_hit=True, fallback=True)
    )
    assert metrics.reschedule_rate == pytest.approx(2 / 3)
    assert metrics.cache_hit_rate == pytest.approx(1 / 2)
    dump = metrics.to_json()
    assert dump["summary"]["fallback_activations"] == 1
    assert len(dump["events"]) == 3
    assert dump["counters"]["decision.reschedule"] == 2
    assert dump["histograms"]["regret_s"]["count"] == 3


def test_metrics_chrome_trace_shape():
    metrics = RuntimeMetrics()
    metrics.record_tick(_event(tick=0, time=2.0, decision="refine"))
    trace = metrics.to_chrome_trace()
    spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
    assert len(spans) == 1
    assert spans[0]["ts"] == pytest.approx(2.0 * 1e6)
    assert spans[0]["args"]["decision"] == "refine"
    names = {
        e["args"]["name"]
        for e in trace["traceEvents"]
        if e["ph"] == "M" and e["name"] == "thread_name"
    }
    assert names == {"reuse", "refine", "reschedule"}


def test_metrics_save_roundtrip(tmp_path):
    import json

    metrics = RuntimeMetrics()
    metrics.record_tick(_event())
    json_path = tmp_path / "metrics.json"
    trace_path = tmp_path / "trace.json"
    metrics.save_json(json_path)
    metrics.save_chrome_trace(trace_path)
    assert json.loads(json_path.read_text())["summary"]["ticks"] == 1
    assert json.loads(trace_path.read_text())["traceEvents"]


def test_run_helper_and_validation():
    trace = _scaled_trace([1.0, 1.0, 1.0])
    session = AdaptiveSession(
        TraceDirectory(trace), _sizes(4), scheduler="openshop"
    )
    results = session.run(3, dt=1.0)
    assert len(results) == 3
    assert session.tick_index == 3
    with pytest.raises(ValueError):
        session.run(0)


# -- the sweep ----------------------------------------------------------------


def test_runtime_sweep_smoke():
    from repro.experiments import run_runtime_sweep

    result = run_runtime_sweep(
        sigmas=(0.0, 0.3), num_procs=5, ticks=5, trials=1
    )
    assert set(result.executed) == {"never", "adaptive", "always"}
    # with zero drift everything is equal; effort still differs
    assert result.executed["never"][0] == pytest.approx(
        result.executed["always"][0]
    )
    assert result.effort["never"][0] == 1.0
    assert result.effort["always"][0] == 5.0
    # under drift the stale plan is no better than the adaptive one
    assert result.executed["adaptive"][1] <= result.executed["never"][1] + 1e-9
    gains = result.gain()
    assert len(gains) == 2
