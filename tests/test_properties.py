"""Property-based tests (hypothesis) for core invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.baseline import schedule_baseline, schedule_baseline_nosync
from repro.core.exact import branch_and_bound
from repro.core.greedy import schedule_greedy
from repro.core.matching import matching_rounds, schedule_matching_max
from repro.core.matching import schedule_matching_min
from repro.core.openshop import schedule_openshop
from repro.core.problem import TotalExchangeProblem
from repro.network.sharing import equal_share_rates, max_min_fair_rates
from repro.sim.engine import execute_orders
from repro.timing.validate import check_schedule

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def problems(draw, min_procs=2, max_procs=7, allow_zeros=True):
    """Random total-exchange instances with a zero diagonal."""
    n = draw(st.integers(min_procs, max_procs))
    cells = draw(
        st.lists(
            st.one_of(
                st.floats(0.01, 100.0, allow_nan=False),
                *([st.just(0.0)] if allow_zeros else []),
            ),
            min_size=n * n,
            max_size=n * n,
        )
    )
    cost = np.array(cells).reshape(n, n)
    np.fill_diagonal(cost, 0.0)
    return TotalExchangeProblem(cost=cost)


ALL = [
    ("baseline", schedule_baseline),
    ("baseline_nosync", schedule_baseline_nosync),
    ("max_matching", schedule_matching_max),
    ("min_matching", schedule_matching_min),
    ("greedy", schedule_greedy),
    ("openshop", schedule_openshop),
]


@SETTINGS
@given(problem=problems())
def test_every_scheduler_emits_valid_covering_schedules(problem):
    for _, scheduler in ALL:
        schedule = scheduler(problem)
        check_schedule(schedule, problem.cost)


@SETTINGS
@given(problem=problems())
def test_completion_at_least_lower_bound(problem):
    lb = problem.lower_bound()
    for _, scheduler in ALL:
        assert scheduler(problem).completion_time >= lb - 1e-9


@SETTINGS
@given(problem=problems())
def test_openshop_within_twice_lower_bound(problem):
    t = schedule_openshop(problem).completion_time
    assert t <= 2.0 * problem.lower_bound() + 1e-9


@SETTINGS
@given(problem=problems())
def test_baseline_nosync_within_half_p_lower_bound(problem):
    t = schedule_baseline_nosync(problem).completion_time
    bound = (problem.num_procs / 2.0) * problem.lower_bound()
    assert t <= bound + 1e-9


@SETTINGS
@given(problem=problems(allow_zeros=False))
def test_matching_rounds_partition(problem):
    n = problem.num_procs
    seen = set()
    for perm in matching_rounds(problem.cost):
        assert sorted(perm.tolist()) == list(range(n))
        for src, dst in enumerate(perm):
            assert (src, int(dst)) not in seen
            seen.add((src, int(dst)))
    assert len(seen) == n * n


@SETTINGS
@given(problem=problems(max_procs=4))
def test_exact_optimal_dominates_heuristics(problem):
    optimal = branch_and_bound(problem).completion_time
    assert optimal >= problem.lower_bound() - 1e-9
    for _, scheduler in ALL:
        assert optimal <= scheduler(problem).completion_time + 1e-9


@SETTINGS
@given(problem=problems(), data=st.data())
def test_engine_respects_any_order_permutation(problem, data):
    n = problem.num_procs
    orders = []
    for src in range(n):
        dsts = [d for d in range(n) if d != src]
        orders.append(data.draw(st.permutations(dsts)))
    schedule = execute_orders(problem, orders)
    check_schedule(schedule, problem.cost)
    assert schedule.completion_time >= problem.lower_bound() - 1e-9


@SETTINGS
@given(
    n_flows=st.integers(1, 6),
    n_edges=st.integers(1, 4),
    data=st.data(),
)
def test_max_min_dominates_equal_share(n_flows, n_edges, data):
    edges = [("n%d" % i, "n%d" % (i + 1)) for i in range(n_edges)]
    capacities = {
        e: data.draw(st.floats(0.5, 100.0), label=f"cap{e}") for e in edges
    }
    paths = []
    for _ in range(n_flows):
        subset = data.draw(st.sets(st.sampled_from(edges), min_size=1))
        paths.append(sorted(subset))
    eq = equal_share_rates(paths, capacities)
    mm = max_min_fair_rates(paths, capacities)
    for a, b in zip(mm, eq):
        assert a >= b - 1e-6
    # capacities respected
    for edge, cap in capacities.items():
        used = sum(r for r, path in zip(mm, paths) if edge in path)
        assert used <= cap + 1e-6


@SETTINGS
@given(problem=problems())
def test_schedulers_deterministic(problem):
    for _, scheduler in ALL:
        assert scheduler(problem) == scheduler(problem)
