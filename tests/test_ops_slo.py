"""SLO machinery: spec grammar, window math, transitions, notifiers.

Every record carries an explicit ``time`` so window eviction and the
ok/firing state machine are exercised deterministically — the same
sim-time evaluation the soak harness relies on.
"""

import json

import pytest

from repro.ops.slo import (
    DEFAULT_SLOS,
    FileNotifier,
    LogNotifier,
    SLO_KINDS,
    SloMonitor,
    SloSpec,
    SloTracker,
    WebhookNotifier,
    format_slo_spec,
    make_notifier,
    parse_slo_spec,
)


def fallback_records(values, start=0.0, dt=1.0):
    return [
        {"time": start + i * dt, "fallback": bool(v)}
        for i, v in enumerate(values)
    ]


# -- spec grammar ------------------------------------------------------------


def test_parse_spec_full():
    spec = parse_slo_spec("fallback_rate:threshold=0.2,window=8,min_samples=3")
    assert spec == SloSpec(
        "fallback_rate", threshold=0.2, window_s=8.0, min_samples=3
    )


def test_parse_spec_defaults_and_roundtrip():
    spec = parse_slo_spec("p99_decision_latency:threshold=0.05")
    assert spec.window_s == 30.0 and spec.min_samples == 5
    for original in DEFAULT_SLOS:
        assert parse_slo_spec(format_slo_spec(original)) == original


def test_parse_spec_errors():
    with pytest.raises(ValueError, match="threshold"):
        parse_slo_spec("fallback_rate")
    with pytest.raises(ValueError, match="unknown SLO option"):
        parse_slo_spec("fallback_rate:threshold=0.2,bogus=1")
    with pytest.raises((KeyError, ValueError)):
        parse_slo_spec("no_such_slo:threshold=1")
    with pytest.raises(ValueError, match="window_s"):
        SloSpec("fallback_rate", threshold=0.1, window_s=0.0)
    with pytest.raises(ValueError, match="min_samples"):
        SloSpec("fallback_rate", threshold=0.1, min_samples=0)
    with pytest.raises(KeyError, match="unknown SLO"):
        SloSpec("bogus", threshold=0.1)


def test_parse_spec_passthrough():
    spec = SloSpec("repair_rate", threshold=0.5)
    assert parse_slo_spec(spec) is spec


# -- window math and transitions ---------------------------------------------


def test_no_evaluation_below_min_samples():
    tracker = SloTracker(
        SloSpec("fallback_rate", threshold=0.1, window_s=100, min_samples=5)
    )
    for record in fallback_records([1, 1, 1, 1]):
        assert tracker.observe(record) is None
    assert tracker.last_value is None and not tracker.firing


def test_fires_then_resolves_as_window_drains():
    tracker = SloTracker(
        SloSpec("fallback_rate", threshold=0.5, window_s=4.0, min_samples=2)
    )
    alerts = [
        tracker.observe(r)
        for r in fallback_records([0, 1, 1, 1, 0, 0, 0, 0])
    ]
    transitions = [a for a in alerts if a is not None]
    assert [a.state for a in transitions] == ["firing", "resolved"]
    fired, resolved = transitions
    assert fired.value > 0.5 and resolved.value <= 0.5
    assert fired.time < resolved.time
    assert not tracker.firing


def test_window_eviction_is_strict_horizon():
    # samples at t and t - window_s are *evicted*; only newer survive
    tracker = SloTracker(
        SloSpec("fallback_rate", threshold=0.9, window_s=2.0, min_samples=1)
    )
    tracker.observe({"time": 0.0, "fallback": True})
    tracker.observe({"time": 1.0, "fallback": True})
    tracker.observe({"time": 3.0, "fallback": False})
    # horizon is 1.0: the t=0 and t=1 samples are gone
    assert len(tracker.window) == 1
    assert tracker.last_value == 0.0


def test_sampleless_records_still_advance_the_window():
    # a quiet stream (no fallback field) must still let a firing SLO
    # resolve as its samples age out
    tracker = SloTracker(
        SloSpec("fallback_rate", threshold=0.5, window_s=3.0, min_samples=1)
    )
    tracker.observe({"time": 0.0, "fallback": True})
    assert tracker.firing
    alert = tracker.observe({"time": 10.0, "other": 1})
    # window drained below min_samples: no evaluation, still firing
    assert alert is None and tracker.firing
    alert = tracker.observe({"time": 10.5, "fallback": False})
    assert alert is not None and alert.state == "resolved"


def test_untimed_records_are_ignored():
    tracker = SloTracker(SloSpec("fallback_rate", threshold=0.5))
    assert tracker.observe({"fallback": True}) is None
    assert len(tracker.window) == 0


def test_p99_latency_aggregate():
    tracker = SloTracker(
        SloSpec(
            "p99_decision_latency", threshold=0.9, window_s=1000,
            min_samples=10,
        )
    )
    alert = None
    for i in range(100):
        record = {"time": float(i), "decision_latency_s": i / 100.0}
        alert = tracker.observe(record) or alert
    assert alert is not None and alert.state == "firing"
    assert tracker.last_value == pytest.approx(0.98, abs=0.02)


def test_latency_sample_falls_back_to_scheduler_elapsed():
    select = SLO_KINDS["p99_decision_latency"].select
    assert select({"decision_latency_s": 0.5}) == 0.5
    assert select({"scheduler_elapsed": 0.25}) == 0.25
    assert select({"other": 1}) is None


def test_saturation_sample_reads_daemon_records():
    select = SLO_KINDS["queue_saturation_rate"].select
    assert select({"kind": "daemon.reject", "code": "saturated"}) == 1.0
    assert select({"kind": "daemon.reject", "code": "draining"}) == 0.0
    assert select({"kind": "daemon.response"}) == 0.0
    assert select({"kind": "tick"}) is None


def test_repair_sample_reads_decision_or_flag():
    select = SLO_KINDS["repair_rate"].select
    assert select({"decision": "repair"}) == 1.0
    assert select({"decision": "reuse"}) == 0.0
    assert select({"repair": True}) == 1.0
    assert select({"other": 1}) is None


# -- monitor and notifiers ---------------------------------------------------


def test_monitor_dispatches_to_notifiers_and_reports():
    captured = []

    class Probe(LogNotifier):
        def notify(self, alert):
            captured.append(alert)

    monitor = SloMonitor(
        ["fallback_rate:threshold=0.5,window=4,min_samples=2"],
        notifiers=[Probe()],
    )
    for record in fallback_records([0, 1, 1, 1, 0, 0, 0, 0]):
        monitor.emit(record)
    assert monitor.fired == 1 and monitor.resolved == 1
    assert [a.state for a in captured] == ["firing", "resolved"]
    report = monitor.report()
    assert report["alerts_fired"] == 1
    assert report["alerts_resolved"] == 1
    assert len(report["alerts"]) == 2
    (status,) = report["slos"]
    assert status["state"] == "ok"
    assert status["fired"] == 1 and status["resolved"] == 1


def test_monitor_is_a_sink_with_protocol_observe():
    # MetricsSink.observe keeps its (name, value) signature — a scalar
    # sample without a record is simply ignored, not a crash
    monitor = SloMonitor(["fallback_rate:threshold=0.5"])
    monitor.observe("decision_latency_s", 0.1)
    monitor.flush()
    assert monitor.alerts == []


def test_file_notifier_appends_jsonl(tmp_path):
    path = tmp_path / "alerts.jsonl"
    monitor = SloMonitor(
        ["fallback_rate:threshold=0.5,window=4,min_samples=2"],
        notifiers=[FileNotifier(path)],
    )
    for record in fallback_records([0, 1, 1, 1, 0, 0, 0, 0]):
        monitor.emit(record)
    lines = [json.loads(l) for l in path.read_text().splitlines()]
    assert [l["state"] for l in lines] == ["firing", "resolved"]
    assert all("value" in l and "threshold" in l for l in lines)


def test_webhook_notifier_spools_payloads():
    hook = WebhookNotifier(url="https://example.invalid/hook")
    monitor = SloMonitor(
        ["fallback_rate:threshold=0.5,window=4,min_samples=2"],
        notifiers=[hook],
    )
    for record in fallback_records([0, 1, 1, 1]):
        monitor.emit(record)
    assert len(hook.sent) == 1
    payload = hook.sent[0]
    assert payload["url"] == "https://example.invalid/hook"
    assert payload["alert"]["state"] == "firing"


def test_webhook_notifier_custom_transport():
    delivered = []
    hook = WebhookNotifier(
        url="u", transport=lambda url, payload: delivered.append(payload)
    )
    monitor = SloMonitor(
        ["fallback_rate:threshold=0.5,min_samples=1"], notifiers=[hook]
    )
    monitor.emit({"time": 0.0, "fallback": True})
    assert len(delivered) == 1 and not hook.sent


def test_log_notifier_stream_mode(capsys):
    import io

    stream = io.StringIO()
    monitor = SloMonitor(
        ["fallback_rate:threshold=0.5,min_samples=1"],
        notifiers=[LogNotifier(stream=stream)],
    )
    monitor.emit({"time": 0.0, "fallback": True})
    monitor.emit({"time": 0.5, "fallback": False})
    out = stream.getvalue()
    assert "[FIRING]" in out and "[RESOLVED]" in out


def test_make_notifier_specs(tmp_path):
    assert isinstance(make_notifier("log"), LogNotifier)
    file_notifier = make_notifier(f"file:path={tmp_path}/a.jsonl")
    assert isinstance(file_notifier, FileNotifier)
    assert isinstance(make_notifier("webhook"), WebhookNotifier)
    with pytest.raises(KeyError, match="unknown notifier"):
        make_notifier("carrier_pigeon")
