"""Grand-tour integration test: every subsystem in one realistic flow.

A metacomputer with drifting background load is monitored through a
noisy directory; snapshot history feeds a forecast; a schedule is
planned, hits drifted reality, gets checkpoint-rescheduled; the outcome
is analysed, explained, serialised, and rendered.  One scenario, every
layer — the way a downstream user would actually wire the library.
"""

import numpy as np
import pytest

import repro
from repro.adaptive import (
    HalvingCheckpoints,
    NoCheckpoints,
    piecewise_cost_provider,
    run_adaptive,
)
from repro.analysis import analyze_schedule, explain_schedule
from repro.directory import (
    NoisyDirectory,
    SnapshotHistory,
    TopologyDirectory,
    linear_forecast,
)
from repro.directory.dynamics import RandomWalkLoad
from repro.io import (
    problem_from_dict,
    problem_to_dict,
    render_svg,
    schedule_to_trace,
)
from repro.network.topology import Metacomputer
from repro.util.units import GBIT_PER_S, MBIT_PER_S, seconds_from_ms
from repro.workloads import transpose_sizes


@pytest.fixture(scope="module")
def scenario():
    system = Metacomputer.build(
        {"west": 4, "east": 4},
        access_latency=seconds_from_ms(0.3),
        access_bandwidth=GBIT_PER_S,
        backbone=[("west", "east", seconds_from_ms(35), 20 * MBIT_PER_S)],
    )
    truth = TopologyDirectory(
        system,
        load_factory=lambda edge: RandomWalkLoad(
            mean=1.0, volatility=0.4, step=10.0,
            rng=abs(hash(edge)) % (2**31),
        ),
        software_overhead=seconds_from_ms(8),
    )
    directory = NoisyDirectory(truth, bandwidth_sigma=0.1, rng=7)
    return system, truth, directory


def test_monitor_forecast_plan_adapt_explain(scenario):
    system, truth, directory = scenario
    sizes = transpose_sizes(2_000, system.num_procs)

    # 1. monitor: collect a history of (noisy) measurements over time
    history = SnapshotHistory(maxlen=8)
    for _ in range(4):
        history.push(directory.snapshot())
        directory.advance(60.0)

    # 2. forecast and plan
    forecast = linear_forecast(history, horizon=30.0)
    planned_problem = repro.TotalExchangeProblem.from_snapshot(
        forecast, sizes
    )
    plan = repro.schedule_openshop(planned_problem)
    repro.check_schedule(plan, planned_problem.cost)

    # 3. reality: the true network has moved on
    directory.advance(120.0)
    actual_problem = repro.TotalExchangeProblem.from_snapshot(
        directory.true_snapshot(), sizes
    )
    drift_at = 0.2 * plan.completion_time
    provider = piecewise_cost_provider(
        [0.0, drift_at], [planned_problem.cost, actual_problem.cost]
    )

    # 4. adaptive execution beats (or ties) the stale plan
    stale = run_adaptive(planned_problem, provider, policy=NoCheckpoints())
    adaptive = run_adaptive(
        planned_problem, provider, policy=HalvingCheckpoints()
    )
    assert adaptive.completion_time <= stale.completion_time * 1.05

    # 5. the executed schedule is coherent and analysable
    executed = adaptive.schedule
    positive = {(e.src, e.dst) for e in executed if e.duration > 0}
    assert positive == set(planned_problem.positive_events())
    stats = analyze_schedule(executed)
    assert stats.completion_time == pytest.approx(
        adaptive.completion_time
    )
    explanation = explain_schedule(actual_problem, plan)
    assert explanation.summary()

    # 6. artefacts: serialisation round-trips and rendering works
    restored = problem_from_dict(problem_to_dict(actual_problem))
    assert np.array_equal(restored.cost, actual_problem.cost)
    svg = render_svg(executed, title="grand tour")
    assert svg.startswith("<svg")
    trace = schedule_to_trace(executed)
    assert any(e["ph"] == "X" for e in trace["traceEvents"])


def test_truth_vs_noise_gap_is_bounded(scenario):
    system, truth, directory = scenario
    from repro.directory.forecast import forecast_error

    error = forecast_error(directory.snapshot(), directory.true_snapshot())
    # sigma 0.1 measurement noise: relative error ~ e^0.1 - 1
    assert 0.0 < error < 0.5
