"""Backup manager: atomic writes, retention, and bit-identity verify.

The verify contract is the important one: a backup is only good if
restoring every tenant from it and re-snapshotting reproduces the
payload byte for byte under the canonical serialisation — the same
drain/resume identity the daemon tests pin over the wire, checked here
offline through :func:`verify_backup_payload`.
"""

import json

import pytest

from repro.ops.backup import (
    BackupManager,
    canonical_json,
    roundtrip_payload,
    verify_backup_payload,
)
from repro.serve.tenants import TenantProfile, TenantState


def live_payload(tenants=2, ticks=3):
    """A real daemon-state payload built from live tenant sessions."""
    entries = []
    for i in range(tenants):
        state = TenantState(TenantProfile(tenant=f"t{i}", procs=4, seed=i))
        for _ in range(ticks):
            state.session.tick(dt=1.0)
            state.requests_served += 1
        entries.append(state.snapshot())
    return {
        "format": "repro/daemon-state",
        "version": 1,
        "tenants": entries,
    }


class FakeClock:
    def __init__(self, start=100.0):
        self.now = start

    def __call__(self):
        self.now += 1.0
        return self.now


# -- verification ------------------------------------------------------------


def test_roundtrip_is_bit_identical():
    payload = live_payload()
    assert canonical_json(roundtrip_payload(payload)) == canonical_json(
        payload
    )
    verdict = verify_backup_payload(payload)
    assert verdict == {
        "tenants": 2,
        "bit_identical": True,
        "bytes": len(canonical_json(payload)),
    }


def test_verify_rejects_tampered_payload():
    # a field restore does not honour cannot survive the round trip —
    # exactly the drift verify exists to catch
    payload = live_payload(tenants=1)
    payload["tenants"][0]["corrupted_by_bitrot"] = 1
    with pytest.raises(ValueError, match="bit-identity"):
        verify_backup_payload(payload)


def test_empty_payload_verifies():
    verdict = verify_backup_payload({"tenants": []})
    assert verdict["tenants"] == 0 and verdict["bit_identical"]


# -- manager lifecycle -------------------------------------------------------


def test_write_load_roundtrip_strips_stamp(tmp_path):
    manager = BackupManager(tmp_path, clock=FakeClock())
    payload = live_payload(tenants=1)
    path = manager.write(payload)
    assert path.name == "backup-000000.json"
    on_disk = json.loads(path.read_text())
    assert "backup_ts" in on_disk
    loaded = manager.load()
    assert "backup_ts" not in loaded
    assert canonical_json(loaded) == canonical_json(payload)
    assert manager.verify()["bit_identical"]


def test_sequence_numbers_and_retention(tmp_path):
    manager = BackupManager(tmp_path, retention=3, clock=FakeClock())
    for i in range(6):
        manager.write({"tenants": [], "run": i})
    names = [path.name for path in manager.paths()]
    assert names == [
        "backup-000003.json", "backup-000004.json", "backup-000005.json"
    ]
    assert manager.load()["run"] == 5
    assert manager.latest().name == "backup-000005.json"


def test_sequence_survives_manager_restart(tmp_path):
    BackupManager(tmp_path, clock=FakeClock()).write({"tenants": []})
    manager = BackupManager(tmp_path, clock=FakeClock())
    path = manager.write({"tenants": []})
    assert path.name == "backup-000001.json"


def test_load_without_backups_raises(tmp_path):
    manager = BackupManager(tmp_path)
    with pytest.raises(FileNotFoundError, match="no backup"):
        manager.load()
    assert manager.latest() is None


def test_no_tmp_litter_after_write(tmp_path):
    manager = BackupManager(tmp_path, clock=FakeClock())
    manager.write(live_payload(tenants=1))
    leftovers = [p for p in tmp_path.iterdir() if p.suffix == ".tmp"]
    assert leftovers == []


def test_constructor_validation(tmp_path):
    with pytest.raises(ValueError, match="retention"):
        BackupManager(tmp_path, retention=0)
    with pytest.raises(ValueError, match="prefix"):
        BackupManager(tmp_path, prefix="a-b")


def test_verify_specific_older_backup(tmp_path):
    manager = BackupManager(tmp_path, clock=FakeClock())
    old = manager.write(live_payload(tenants=1, ticks=1))
    manager.write(live_payload(tenants=2, ticks=2))
    assert manager.verify(old)["tenants"] == 1
    assert manager.verify()["tenants"] == 2
