"""Smoke tests: every shipped example must run cleanly."""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(path, capsys, monkeypatch):
    # examples import siblings via their own directory
    monkeypatch.syspath_prepend(str(path.parent))
    # examples parse sys.argv (e.g. an output dir); don't leak pytest's
    monkeypatch.setattr(sys, "argv", [str(path)])
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert len(out) > 100  # produced a real report


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 3
