"""ASCII table rendering tests."""

import pytest

from repro.util.tables import (
    format_ratio_summary,
    format_series,
    format_table,
)


def test_format_table_contains_cells():
    out = format_table(["a", "bb"], [[1, 2.5], [30, 4.125]], precision=2)
    assert "bb" in out
    assert "2.50" in out
    assert "30" in out


def test_format_table_title():
    out = format_table(["x"], [[1]], title="hello")
    assert out.splitlines()[0] == "hello"


def test_format_table_ragged_rows_raise():
    with pytest.raises(ValueError):
        format_table(["a", "b"], [[1]])


def test_format_table_alignment():
    out = format_table(["col"], [[1], [100]])
    lines = out.splitlines()
    assert all(len(line) == len(lines[0]) for line in lines)


def test_format_series_shapes():
    out = format_series("P", [5, 10], {"alg": [1.0, 2.0]})
    assert "P" in out and "alg" in out
    assert "2.000" in out


def test_format_series_length_mismatch_raises():
    with pytest.raises(ValueError):
        format_series("P", [5, 10], {"alg": [1.0]})


def test_format_ratio_summary():
    out = format_ratio_summary({"openshop": [1.0, 1.1, 1.05]})
    assert "openshop" in out
    assert "1.050" in out  # mean


def test_format_ratio_summary_empty_raises():
    with pytest.raises(ValueError):
        format_ratio_summary({"x": []})
