"""Checkpoint rescheduling tests (paper Section 6.3)."""

import numpy as np
import pytest

import repro
from repro.adaptive.checkpoint import (
    EveryKEvents,
    HalvingCheckpoints,
    NoCheckpoints,
    PiecewiseCosts,
    piecewise_cost_provider,
    run_adaptive,
)
from repro.core.openshop import schedule_openshop
from repro.directory.service import DirectorySnapshot
from tests.conftest import random_problem


class TestPiecewiseCosts:
    def test_cost_at_segments(self):
        a = np.full((2, 2), 1.0)
        b = np.full((2, 2), 3.0)
        pc = PiecewiseCosts([0.0, 10.0], [a, b])
        assert pc.cost_at(5.0)[0, 1] == 1.0
        assert pc.cost_at(10.0)[0, 1] == 3.0
        assert pc.cost_at(1e9)[0, 1] == 3.0

    def test_transfer_within_segment(self):
        pc = PiecewiseCosts([0.0], [np.full((2, 2), 4.0)])
        assert pc.transfer_time(0, 1, 7.0) == pytest.approx(4.0)

    def test_transfer_across_boundary(self):
        # cost 4 before t=2, cost 8 after; start at 0: half done by t=2,
        # the other half takes 4 more seconds -> total 6.
        a = np.full((2, 2), 4.0)
        b = np.full((2, 2), 8.0)
        pc = PiecewiseCosts([0.0, 2.0], [a, b])
        assert pc.transfer_time(0, 1, 0.0) == pytest.approx(6.0)

    def test_transfer_speeding_up(self):
        # cost 8 before t=2, cost 2 after: quarter done by 2, remaining
        # 3/4 at cost 2 takes 1.5 -> total 3.5.
        a = np.full((2, 2), 8.0)
        b = np.full((2, 2), 2.0)
        pc = PiecewiseCosts([0.0, 2.0], [a, b])
        assert pc.transfer_time(0, 1, 0.0) == pytest.approx(3.5)

    def test_zero_cost_instant(self):
        pc = PiecewiseCosts([0.0], [np.zeros((2, 2))])
        assert pc.transfer_time(0, 1, 5.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            PiecewiseCosts([], [])
        with pytest.raises(ValueError):
            PiecewiseCosts([1.0], [np.zeros((2, 2))])
        with pytest.raises(ValueError):
            PiecewiseCosts([0.0, 0.0], [np.zeros((2, 2))] * 2)
        with pytest.raises(ValueError):
            PiecewiseCosts([0.0, 1.0], [np.zeros((2, 2)), np.zeros((3, 3))])


class TestPolicies:
    def test_every_k(self):
        policy = EveryKEvents(5)
        assert policy.next_checkpoint(20) == 5
        assert policy.next_checkpoint(5) is None  # would cover everything

    def test_every_k_validation(self):
        with pytest.raises(ValueError):
            EveryKEvents(0)

    def test_halving(self):
        policy = HalvingCheckpoints()
        assert policy.next_checkpoint(20) == 10
        assert policy.next_checkpoint(1) is None

    def test_none(self):
        assert NoCheckpoints().next_checkpoint(100) is None


class TestRunAdaptive:
    def test_static_conditions_match_planned_schedule(self):
        problem = random_problem(6, seed=0)
        provider = piecewise_cost_provider([0.0], [problem.cost])
        result = run_adaptive(problem, provider, policy=NoCheckpoints())
        planned = schedule_openshop(problem)
        assert result.completion_time == pytest.approx(
            planned.completion_time
        )
        assert result.reschedules == 0

    def test_all_events_executed_once(self):
        problem = random_problem(5, seed=1)
        provider = piecewise_cost_provider([0.0], [problem.cost])
        result = run_adaptive(
            problem, provider, policy=EveryKEvents(3)
        )
        pairs = [(e.src, e.dst) for e in result.schedule]
        assert sorted(set(pairs)) == sorted(pairs)
        positive = {(e.src, e.dst) for e in result.schedule if e.duration > 0}
        assert positive == set(problem.positive_events())

    def test_checkpoints_recorded(self):
        problem = random_problem(5, seed=2)
        provider = piecewise_cost_provider([0.0], [problem.cost])
        result = run_adaptive(problem, provider, policy=EveryKEvents(4))
        assert result.reschedules == len(result.checkpoint_times)
        assert list(result.checkpoint_times) == sorted(result.checkpoint_times)

    def test_threshold_suppresses_rescheduling(self):
        problem = random_problem(5, seed=3)
        provider = piecewise_cost_provider([0.0], [problem.cost])
        result = run_adaptive(
            problem,
            provider,
            policy=EveryKEvents(4),
            reschedule_threshold=0.05,  # nothing changed: skip every time
        )
        assert result.reschedules == 0
        assert result.skipped_reschedules > 0

    def test_rescheduling_helps_under_reshuffle(self):
        # Aggregate over seeds: adaptive should win on average when the
        # network reshuffles early and strongly.
        rng_master = np.random.default_rng(99)
        wins = 0
        trials = 6
        for _ in range(trials):
            seed = int(rng_master.integers(1 << 30))
            rng = np.random.default_rng(seed)
            latency, bandwidth = repro.random_pairwise_parameters(10, rng=rng)
            snapshot = DirectorySnapshot(latency=latency, bandwidth=bandwidth)
            sizes = repro.MixedSizes().sizes(10, rng=rng)
            estimate = repro.TotalExchangeProblem.from_snapshot(snapshot, sizes)
            drift_at = 0.1 * schedule_openshop(estimate).completion_time
            moved = repro.perturb_snapshot(
                snapshot, bandwidth_sigma=1.2, rng=rng
            )
            actual = repro.TotalExchangeProblem.from_snapshot(moved, sizes)
            provider = piecewise_cost_provider(
                [0.0, drift_at], [estimate.cost, actual.cost]
            )
            stale = run_adaptive(estimate, provider, policy=NoCheckpoints())
            adaptive = run_adaptive(
                estimate, provider, policy=HalvingCheckpoints()
            )
            if adaptive.completion_time <= stale.completion_time + 1e-9:
                wins += 1
        assert wins >= trials - 1

    def test_callable_provider_accepted(self):
        problem = random_problem(4, seed=4)
        result = run_adaptive(
            problem, lambda t: problem.cost, policy=NoCheckpoints()
        )
        assert result.completion_time > 0
