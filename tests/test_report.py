"""Report rendering tests."""

from repro.experiments.harness import run_sweep
from repro.experiments.quality import quality_stats
from repro.experiments.report import (
    render_improvement,
    render_quality,
    render_sweep,
)
from repro.model.messages import UniformSizes


def sweep():
    return run_sweep(
        "report-test", UniformSizes(1000.0), proc_counts=(4, 6), trials=1
    )


def test_render_sweep_contains_series():
    out = render_sweep(sweep())
    assert "lower_bound" in out
    assert "openshop" in out
    assert "report-test" in out
    lines = out.splitlines()
    assert len(lines) == 3 + 2  # title + header + rule + two P rows


def test_render_improvement_excludes_baseline():
    out = render_improvement(sweep())
    assert "baseline" not in out.splitlines()[1]
    assert "greedy" in out


def test_render_quality():
    stats = quality_stats([sweep()])
    out = render_quality(stats)
    assert "worst % over LB" in out
    assert "openshop" in out
