"""Tests for barrier collectives and the least-laxity QoS scheduler."""

import math

import numpy as np
import pytest

from repro.collectives.barrier import (
    dissemination_barrier,
    tournament_barrier,
)
from repro.directory.service import DirectorySnapshot
from repro.qos.deadlines import (
    QoSMessage,
    QoSProblem,
    schedule_edf,
    schedule_llf,
)
from repro.qos.metrics import evaluate_qos
from repro.timing.validate import check_schedule
from tests.conftest import random_problem


def uniform_snapshot(n=8, latency=0.01):
    lat = np.full((n, n), latency)
    np.fill_diagonal(lat, 0.0)
    bw = np.full((n, n), 1e9)
    np.fill_diagonal(bw, np.inf)
    return DirectorySnapshot(latency=lat, bandwidth=bw)


class TestDisseminationBarrier:
    def test_log_rounds_on_uniform_network(self):
        for n in (2, 4, 8, 16):
            snap = uniform_snapshot(n)
            _, done = dissemination_barrier(snap)
            assert done == pytest.approx(0.01 * math.ceil(math.log2(n)))

    def test_signal_count(self):
        snap = uniform_snapshot(8)
        schedule, _ = dissemination_barrier(snap)
        assert len(schedule) == 8 * 3  # P signals per round, log2 P rounds

    def test_single_node_free(self):
        snap = uniform_snapshot(1)
        _, done = dissemination_barrier(snap)
        assert done == 0.0

    def test_non_power_of_two(self):
        snap = uniform_snapshot(6)
        _, done = dissemination_barrier(snap)
        assert done == pytest.approx(0.01 * 3)  # ceil(log2 6) = 3

    def test_slow_node_taxes_everyone(self):
        n = 8
        lat = np.full((n, n), 0.001)
        lat[5, :] = 0.1  # node 5 signals slowly
        np.fill_diagonal(lat, 0.0)
        bw = np.full((n, n), 1e9)
        np.fill_diagonal(bw, np.inf)
        snap = DirectorySnapshot(latency=lat, bandwidth=bw)
        _, done = dissemination_barrier(snap)
        # node 5's slow signals sit on some chain in every realisation
        assert done > 0.1


class TestTournamentBarrier:
    def test_uniform_round_trip(self):
        snap = uniform_snapshot(8)
        schedule, done = tournament_barrier(snap)
        # gather up 3 levels + release down 3 levels, but the champion's
        # serialised ports make it a bit worse than 6 latencies
        assert done >= 0.06 - 1e-12
        assert len(schedule) == 2 * 7  # P-1 up, P-1 down
        check_schedule(schedule)

    def test_every_node_released(self):
        snap = uniform_snapshot(8)
        schedule, done = tournament_barrier(snap)
        released = {e.dst for e in schedule if e.start > 0}
        assert released >= set(range(1, 8))

    def test_divergence_on_heterogeneous_network(self):
        # one terribly slow node: the tournament can schedule around it
        # less often than dissemination must (it appears in every round
        # of dissemination, only ~once per phase of the tournament)
        n = 16
        rng = np.random.default_rng(3)
        lat = rng.uniform(0.001, 0.02, (n, n))
        lat = (lat + lat.T) / 2
        np.fill_diagonal(lat, 0.0)
        bw = np.full((n, n), 1e9)
        np.fill_diagonal(bw, np.inf)
        snap = DirectorySnapshot(latency=lat, bandwidth=bw)
        _, diss = dissemination_barrier(snap)
        _, tour = tournament_barrier(snap)
        assert diss != pytest.approx(tour, rel=0.01)  # genuinely different

    def test_single_node(self):
        snap = uniform_snapshot(1)
        _, done = tournament_barrier(snap)
        assert done == 0.0


class TestLeastLaxity:
    def test_valid_schedule(self):
        base = random_problem(6, seed=0)
        problem = QoSProblem.uniform_deadlines(base)
        schedule = schedule_llf(problem)
        check_schedule(schedule, base.cost)

    def test_within_theorem3(self):
        base = random_problem(7, seed=1)
        problem = QoSProblem.uniform_deadlines(base)
        t = schedule_llf(problem).completion_time
        assert t <= 2 * base.lower_bound() + 1e-9

    def test_llf_orders_by_laxity_not_deadline(self):
        # two messages from one sender: A has the earlier deadline but
        # is instant (huge laxity); B has a later deadline but is long
        # (tiny laxity) — LLF sends B first, EDF sends A first.
        cost = np.zeros((3, 3))
        cost[0, 1] = 1.0    # message A
        cost[0, 2] = 10.0   # message B
        from repro.core.problem import TotalExchangeProblem

        base = TotalExchangeProblem(cost=cost)
        msgs = (
            QoSMessage(0, 1, deadline=5.0),
            QoSMessage(0, 2, deadline=10.5),
        )
        problem = QoSProblem(base=base, messages=msgs)
        llf_first = min(
            (e for e in schedule_llf(problem) if e.duration > 0),
            key=lambda e: e.start,
        )
        edf_first = min(
            (e for e in schedule_edf(problem) if e.duration > 0),
            key=lambda e: e.start,
        )
        assert llf_first.dst == 2
        assert edf_first.dst == 1

    def test_edf_dominates_llf_without_preemption(self):
        # the documented caveat: non-preemptive LLF front-loads long
        # transfers and starves urgent small ones; EDF wins on tiered
        # workloads.  (LLF's optimality results are preemptive.)
        for seed in range(6):
            base = random_problem(8, seed=seed, low=0.5, high=8.0)
            lb = base.lower_bound()
            rng = np.random.default_rng(seed)
            msgs = tuple(
                QoSMessage(
                    src=s, dst=d,
                    deadline=(0.6 if rng.random() < 0.3 else 1.5) * lb,
                )
                for s, d in base.positive_events()
            )
            problem = QoSProblem(base=base, messages=msgs)
            llf = evaluate_qos(problem, schedule_llf(problem)).missed
            edf = evaluate_qos(problem, schedule_edf(problem)).missed
            assert edf <= llf
