"""Placement optimisation and FFT butterfly tests."""

import numpy as np
import pytest

import repro
from repro.directory import TopologyDirectory
from repro.network.topology import Metacomputer
from repro.placement import (
    apply_placement,
    evaluate_placement,
    greedy_swap_placement,
    random_search_placement,
)
from repro.util.units import GBIT_PER_S, MBIT_PER_S, seconds_from_ms
from repro.workloads.fft import (
    butterfly_sizes,
    butterfly_stages,
    butterfly_time,
)


def clustered_snapshot():
    """Two fast sites joined by a slow backbone (placement matters)."""
    system = Metacomputer.build(
        {"a": 4, "b": 4},
        access_latency=seconds_from_ms(0.2),
        access_bandwidth=GBIT_PER_S,
        backbone=[("a", "b", seconds_from_ms(40), 5 * MBIT_PER_S)],
    )
    return TopologyDirectory(system).snapshot()


class TestButterfly:
    def test_stage_structure(self):
        stages = butterfly_stages(8)
        assert len(stages) == 3
        assert all(len(stage) == 4 for stage in stages)
        assert (0, 1) in stages[0]
        assert (0, 4) in stages[2]

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            butterfly_stages(6)

    def test_sizes_symmetric_with_log_p_partners(self):
        sizes = butterfly_sizes(8, 1e6)
        assert np.allclose(sizes, sizes.T)
        assert np.count_nonzero(sizes[0]) == 3

    def test_time_under_identity(self):
        snap = clustered_snapshot()
        t = butterfly_time(snap, 1e6, list(range(8)))
        assert t > 0

    def test_rejects_non_permutation(self):
        snap = clustered_snapshot()
        with pytest.raises(ValueError):
            butterfly_time(snap, 1e6, [0] * 8)


class TestApplyPlacement:
    def test_identity(self):
        sizes = np.arange(16.0).reshape(4, 4)
        assert np.array_equal(apply_placement(sizes, [0, 1, 2, 3]), sizes)

    def test_permutes_pairs(self):
        sizes = np.zeros((3, 3))
        sizes[0, 1] = 7.0
        placed = apply_placement(sizes, [2, 0, 1])
        # rank 0 runs on node 2, rank 1 on node 0
        assert placed[2, 0] == 7.0
        assert placed[0, 1] == 0.0

    def test_rejects_non_permutation(self):
        with pytest.raises(ValueError):
            apply_placement(np.zeros((3, 3)), [0, 0, 1])


class TestOptimisers:
    def bad_identity_workload(self):
        """Heavy traffic between rank pairs split across the backbone."""
        sizes = np.zeros((8, 8))
        # under identity, rank i on node i: pair (0,4),(1,5),... cross
        # the slow a-b backbone
        for i in range(4):
            sizes[i, i + 4] = 5e6
            sizes[i + 4, i] = 5e6
        return sizes

    def test_random_search_never_worse_than_identity(self):
        snap = clustered_snapshot()
        sizes = self.bad_identity_workload()
        result = random_search_placement(snap, sizes, trials=30, rng=0)
        assert result.score <= result.identity_score + 1e-9
        assert result.evaluations == 31

    def test_greedy_swap_finds_clustered_placement(self):
        # ... actually the heavy pairs NEED the backbone (they connect
        # distinct ranks that could be co-located!).  Greedy swap should
        # co-locate each heavy pair inside one site, dodging the slow
        # link almost entirely.
        snap = clustered_snapshot()
        sizes = self.bad_identity_workload()
        result = greedy_swap_placement(snap, sizes)
        assert result.score < 0.2 * result.identity_score

    def test_greedy_improvement_property(self):
        snap = clustered_snapshot()
        sizes = self.bad_identity_workload()
        result = greedy_swap_placement(snap, sizes)
        assert 0.0 <= result.improvement <= 1.0

    def test_openshop_objective(self):
        snap = clustered_snapshot()
        sizes = self.bad_identity_workload()
        result = greedy_swap_placement(
            snap, sizes, max_passes=1, objective="openshop"
        )
        assert result.score <= result.identity_score + 1e-9

    def test_invalid_objective(self):
        snap = clustered_snapshot()
        with pytest.raises(ValueError):
            evaluate_placement(
                snap, np.zeros((8, 8)), list(range(8)), objective="magic"
            )

    def test_invalid_args(self):
        snap = clustered_snapshot()
        with pytest.raises(ValueError):
            random_search_placement(snap, np.zeros((8, 8)), trials=-1)
        with pytest.raises(ValueError):
            greedy_swap_placement(snap, np.zeros((8, 8)), max_passes=-1)

    def test_butterfly_placement_gains(self):
        # identity places stage-3 partners (i, i+4) across the backbone;
        # a good placement cannot avoid the backbone entirely (every
        # rank pairs across it in SOME stage) but balances the damage.
        snap = clustered_snapshot()
        identity = butterfly_time(snap, 1e6, list(range(8)))
        result = greedy_swap_placement(snap, butterfly_sizes(8, 1e6))
        optimised = butterfly_time(snap, 1e6, list(result.placement))
        # the aggregate-traffic objective is a proxy; it should not make
        # the butterfly worse
        assert optimised <= identity * 1.05