"""TopologyDirectory tests."""

import numpy as np
import pytest

from repro.directory.dynamics import StaticLoad
from repro.directory.network_directory import TopologyDirectory
from repro.network.paths import end_to_end_matrices
from repro.network.topology import Metacomputer


def build_system() -> Metacomputer:
    return Metacomputer.build(
        {"a": 2, "b": 2},
        access_latency=0.001,
        access_bandwidth=1e9,
        backbone=[("a", "b", 0.030, 1e6)],
    )


def test_snapshot_matches_static_paths_without_load():
    system = build_system()
    directory = TopologyDirectory(system)
    snap = directory.snapshot()
    latency, bandwidth = end_to_end_matrices(system)
    assert np.allclose(snap.latency, latency)
    off = ~np.eye(4, dtype=bool)
    assert np.allclose(snap.bandwidth[off], bandwidth[off])


def test_software_overhead_added():
    system = build_system()
    directory = TopologyDirectory(system, software_overhead=0.010)
    snap = directory.snapshot()
    base, _ = end_to_end_matrices(system)
    assert snap.latency[0, 1] == pytest.approx(base[0, 1] + 0.010)
    assert snap.latency[0, 0] == 0.0


def test_constant_load_deflates_bandwidth():
    system = build_system()
    loaded = TopologyDirectory(system, load_factory=lambda e: StaticLoad(1.0))
    unloaded = TopologyDirectory(system)
    b_loaded = loaded.snapshot().bandwidth[0, 2]
    b_unloaded = unloaded.snapshot().bandwidth[0, 2]
    assert b_loaded == pytest.approx(b_unloaded / 2)


def test_constant_load_inflates_latency():
    system = build_system()
    loaded = TopologyDirectory(system, load_factory=lambda e: StaticLoad(1.0))
    unloaded = TopologyDirectory(system)
    assert loaded.snapshot().latency[0, 2] == pytest.approx(
        2 * unloaded.snapshot().latency[0, 2]
    )


def test_advance_moves_clock():
    directory = TopologyDirectory(build_system())
    directory.advance(12.5)
    assert directory.time == pytest.approx(12.5)
    assert directory.snapshot().time == pytest.approx(12.5)
    with pytest.raises(ValueError):
        directory.advance(-1.0)


def test_rejects_disconnected_system():
    system = Metacomputer()
    system.add_site("a")
    system.add_site("b")
    system.add_node("a", access_latency=0.001, access_bandwidth=1e6)
    system.add_node("b", access_latency=0.001, access_bandwidth=1e6)
    with pytest.raises(ValueError):
        TopologyDirectory(system)


def test_rejects_empty_system():
    system = Metacomputer()
    with pytest.raises(ValueError):
        TopologyDirectory(system)


def test_link_conditions_query():
    system = build_system()
    directory = TopologyDirectory(system, load_factory=lambda e: StaticLoad(0.0))
    backbone = [
        (u, v) for u, v, link in system.links() if link.kind == "backbone"
    ][0]
    lat, bw = directory.link_conditions(backbone)
    assert lat == pytest.approx(0.030)
    assert bw == pytest.approx(1e6)
