"""Tests for schedule explanation and statistics helpers."""

import numpy as np
import pytest

import repro
from repro.analysis import explain_schedule
from repro.core.problem import example_problem
from repro.util.stats import MeanCI, geometric_mean, mean_ci
from tests.conftest import random_problem


class TestExplainSchedule:
    def test_port_bound_schedule(self):
        problem = example_problem()
        explanation = explain_schedule(
            problem, repro.schedule_openshop(problem)
        )
        assert explanation.is_port_bound
        assert explanation.ratio == pytest.approx(1.0)
        assert (explanation.bottleneck_proc, explanation.bottleneck_port) == (
            0, "send",
        )
        assert "port-bound" in explanation.summary()

    def test_stalled_schedule_names_critical_path(self):
        problem = example_problem()
        explanation = explain_schedule(
            problem, repro.schedule_baseline(problem)
        )
        assert not explanation.is_port_bound
        assert explanation.ratio == pytest.approx(1.5)
        assert len(explanation.critical_events) >= 2
        assert "critical path" in explanation.summary()
        assert "waits" in explanation.summary()

    def test_critical_path_length_consistent(self):
        problem = random_problem(6, seed=0)
        schedule = repro.schedule_greedy(problem)
        explanation = explain_schedule(problem, schedule)
        # the critical path never exceeds the completion time and is a
        # genuine chain of this schedule's events
        assert explanation.critical_length <= explanation.completion_time + 1e-9
        pairs = {(e.src, e.dst) for e in schedule}
        assert set(explanation.critical_events) <= pairs

    def test_summary_mentions_ratio(self):
        problem = random_problem(5, seed=1)
        explanation = explain_schedule(
            problem, repro.schedule_baseline(problem)
        )
        assert f"{explanation.ratio:.3f}" in explanation.summary()


class TestMeanCI:
    def test_basic(self):
        ci = mean_ci([1.0, 2.0, 3.0])
        assert ci.mean == pytest.approx(2.0)
        assert ci.n == 3
        assert ci.low < 2.0 < ci.high

    def test_single_sample_zero_width(self):
        ci = mean_ci([5.0])
        assert ci.half_width == 0.0
        assert ci.low == ci.high == 5.0

    def test_wider_at_higher_confidence(self):
        samples = [1.0, 2.0, 4.0, 3.0]
        assert (
            mean_ci(samples, confidence=0.99).half_width
            > mean_ci(samples, confidence=0.9).half_width
        )

    def test_contains_truth_usually(self):
        rng = np.random.default_rng(0)
        hits = 0
        for _ in range(200):
            samples = rng.normal(10.0, 2.0, size=8)
            ci = mean_ci(samples, confidence=0.95)
            if ci.low <= 10.0 <= ci.high:
                hits += 1
        assert hits >= 180  # ~95% coverage, generous slack

    def test_validation(self):
        with pytest.raises(ValueError):
            mean_ci([])
        with pytest.raises(ValueError):
            mean_ci([1.0], confidence=1.5)

    def test_str(self):
        assert "±" in str(mean_ci([1.0, 2.0]))


class TestGeometricMean:
    def test_value(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_ratio_friendly(self):
        # geo-mean of x and 1/x is 1 — arithmetic mean overstates
        assert geometric_mean([2.0, 0.5]) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])
