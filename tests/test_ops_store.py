"""Rotating metrics store: rotation, sealing, crash recovery, queries.

The store is the persistence layer under every :class:`StoreSink`; these
tests pin the on-disk contract — segment naming, gzip sealing, retention
pruning, torn-tail truncation — against an injected clock so rotation by
age is deterministic.
"""

import gzip
import json

import pytest

from repro.ops.store import MetricsStore


class FakeClock:
    def __init__(self, start=1000.0):
        self.now = start

    def __call__(self):
        return self.now

    def tick(self, dt=1.0):
        self.now += dt


def write_n(store, n, **extra):
    for i in range(n):
        store.append({"kind": "tick", "i": i, **extra})


# -- append and query --------------------------------------------------------


def test_append_stamps_ts_from_clock(tmp_path):
    clock = FakeClock(5.0)
    with MetricsStore(tmp_path, clock=clock) as store:
        store.append({"kind": "tick"})
        clock.tick(2.0)
        store.append({"kind": "tick"})
        store.append({"kind": "tick", "ts": 99.0})
        stamps = [r["ts"] for r in store.iter_records()]
    assert stamps == [5.0, 7.0, 99.0]


def test_window_query_half_open(tmp_path):
    clock = FakeClock(0.0)
    with MetricsStore(tmp_path, clock=clock) as store:
        for _ in range(10):
            store.append({"kind": "tick"})
            clock.tick()
        got = store.query(start=3.0, end=7.0)
        assert [r["ts"] for r in got] == [3.0, 4.0, 5.0, 6.0]
        assert store.query(kind="nope") == []
        assert len(store.query(kind="tick")) == 10


def test_records_are_compact_sorted_json_lines(tmp_path):
    with MetricsStore(tmp_path, clock=FakeClock()) as store:
        store.append({"z": 1, "a": 2, "kind": "tick"})
        active = tmp_path / "metrics-000000.jsonl"
        line = active.read_text().strip()
    assert line == '{"a":2,"kind":"tick","ts":1000.0,"z":1}'


# -- rotation, sealing, retention --------------------------------------------


def test_rotation_by_size_seals_gzip_segments(tmp_path):
    store = MetricsStore(tmp_path, max_segment_bytes=256, clock=FakeClock())
    write_n(store, 50)
    store.rotate()
    infos = store.segments()
    assert all(info.sealed for info in infos)
    assert len(infos) > 1
    assert all(info.path.suffix == ".gz" for info in infos)
    # every record survives rotation, in append order
    got = [r["i"] for r in store.iter_records()]
    assert got == list(range(50))
    store.close()


def test_rotation_by_age(tmp_path):
    clock = FakeClock(0.0)
    store = MetricsStore(
        tmp_path, max_segment_age_s=10.0, clock=clock
    )
    write_n(store, 3)
    clock.tick(11.0)
    store.append({"kind": "tick", "i": 3})
    stats = store.stats()
    assert stats["sealed_segments"] == 1
    assert stats["segments"] == 2
    store.close()


def test_rotate_with_empty_active_segment_is_a_noop(tmp_path):
    store = MetricsStore(tmp_path, clock=FakeClock())
    assert store.rotate() is None
    assert store.rotate() is None
    store.append({"kind": "tick"})
    assert store.rotate() is not None
    store.close()


def test_retention_prunes_oldest_sealed(tmp_path):
    store = MetricsStore(
        tmp_path, max_segment_bytes=64, max_segments=2, clock=FakeClock()
    )
    write_n(store, 40)
    store.rotate()
    sealed = [info for info in store.segments() if info.sealed]
    assert len(sealed) == 2
    # the survivors are the *newest* two
    seqs = [info.seq for info in sealed]
    assert seqs == sorted(seqs)
    got = [r["i"] for r in store.iter_records()]
    assert got[-1] == 39 and 0 not in got
    store.close()


def test_uncompressed_mode(tmp_path):
    store = MetricsStore(
        tmp_path, max_segment_bytes=64, compress=False, clock=FakeClock()
    )
    write_n(store, 10)
    store.rotate()
    assert all(
        info.path.suffix == ".jsonl" for info in store.segments()
    )
    assert [r["i"] for r in store.iter_records()] == list(range(10))
    store.close()


def test_bad_constructor_args(tmp_path):
    with pytest.raises(ValueError, match="max_segment_bytes"):
        MetricsStore(tmp_path, max_segment_bytes=0)
    with pytest.raises(ValueError, match="prefix"):
        MetricsStore(tmp_path, prefix="has-dash")


# -- crash recovery ----------------------------------------------------------


def test_reopen_adopts_existing_directory(tmp_path):
    clock = FakeClock()
    store = MetricsStore(tmp_path, max_segment_bytes=128, clock=clock)
    write_n(store, 20)
    store.close()

    reopened = MetricsStore(tmp_path, max_segment_bytes=128, clock=clock)
    write_n(reopened, 5, run=2)
    got = [r["i"] for r in reopened.iter_records()]
    assert got == list(range(20)) + list(range(5))
    reopened.close()


def test_torn_final_line_is_truncated_on_open(tmp_path):
    store = MetricsStore(tmp_path, clock=FakeClock())
    write_n(store, 3)
    store.close()
    active = tmp_path / "metrics-000000.jsonl"
    # simulate a crash mid-append: a partial record with no newline
    with open(active, "ab") as handle:
        handle.write(b'{"kind":"tick","i":3,"tr')

    recovered = MetricsStore(tmp_path, clock=FakeClock())
    assert [r["i"] for r in recovered.iter_records()] == [0, 1, 2]
    # the torn bytes are gone from disk, not just skipped on read
    assert active.read_bytes().endswith(b"\n")
    recovered.append({"kind": "tick", "i": 99})
    assert [r["i"] for r in recovered.iter_records()] == [0, 1, 2, 99]
    recovered.close()


def test_torn_complete_garbage_line_is_truncated(tmp_path):
    store = MetricsStore(tmp_path, clock=FakeClock())
    write_n(store, 2)
    store.close()
    active = tmp_path / "metrics-000000.jsonl"
    with open(active, "ab") as handle:
        handle.write(b"not json at all\n")

    recovered = MetricsStore(tmp_path, clock=FakeClock())
    assert [r["i"] for r in recovered.iter_records()] == [0, 1]
    recovered.close()


def test_stale_plain_segments_sealed_on_recovery(tmp_path):
    # a crash between rotate and seal can leave several plain segments;
    # recovery must converge the directory to one active segment
    for seq in range(3):
        path = tmp_path / f"metrics-{seq:06d}.jsonl"
        path.write_text(json.dumps({"kind": "tick", "i": seq, "ts": 0.0}) + "\n")
    store = MetricsStore(tmp_path, clock=FakeClock())
    infos = store.segments()
    assert sum(1 for info in infos if not info.sealed) == 1
    assert [r["i"] for r in store.iter_records()] == [0, 1, 2]
    store.close()


def test_live_reader_skips_foreign_files_and_torn_tail(tmp_path):
    (tmp_path / "unrelated.txt").write_text("hi")
    (tmp_path / "other-000000.jsonl").write_text('{"kind":"x","ts":0}\n')
    store = MetricsStore(tmp_path, clock=FakeClock())
    write_n(store, 2)
    assert len(list(store.iter_records())) == 2
    store.close()


def test_sealed_segment_content_is_the_plain_lines(tmp_path):
    store = MetricsStore(tmp_path, clock=FakeClock())
    write_n(store, 4)
    sealed = store.rotate()
    with gzip.open(sealed, "rt") as stream:
        lines = [json.loads(line) for line in stream]
    assert [r["i"] for r in lines] == [0, 1, 2, 3]
    store.close()
