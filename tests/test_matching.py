"""Matching-based scheduler tests."""

import numpy as np
import pytest

from repro.core.matching import (
    matching_orders,
    matching_rounds,
    schedule_matching,
    schedule_matching_max,
    schedule_matching_min,
)
from repro.core.problem import TotalExchangeProblem, example_problem
from repro.timing.validate import check_schedule
from tests.conftest import random_problem


class TestMatchingRounds:
    def test_rounds_are_permutations(self):
        problem = random_problem(6, seed=0)
        for perm in matching_rounds(problem.cost):
            assert sorted(perm.tolist()) == list(range(6))

    def test_rounds_partition_all_pairs(self):
        problem = random_problem(7, seed=1)
        seen = set()
        for perm in matching_rounds(problem.cost):
            for src, dst in enumerate(perm):
                pair = (src, int(dst))
                assert pair not in seen
                seen.add(pair)
        assert len(seen) == 49

    def test_first_max_round_is_max_assignment(self):
        problem = random_problem(5, seed=2)
        rounds = matching_rounds(problem.cost, objective="max")
        first_weight = sum(
            problem.cost[src, dst] for src, dst in enumerate(rounds[0])
        )
        # no other permutation in later rounds weighs more
        for perm in rounds[1:]:
            weight = sum(problem.cost[src, dst] for src, dst in enumerate(perm))
            assert weight <= first_weight + 1e-9

    def test_min_rounds_increasing(self):
        problem = random_problem(5, seed=3)
        rounds = matching_rounds(problem.cost, objective="min")
        weights = [
            sum(problem.cost[src, dst] for src, dst in enumerate(perm))
            for perm in rounds
        ]
        assert weights == sorted(weights)

    def test_backends_agree_on_round_weights(self):
        problem = random_problem(5, seed=4)
        for objective in ("max", "min"):
            w_scipy = [
                sum(problem.cost[s, d] for s, d in enumerate(perm))
                for perm in matching_rounds(
                    problem.cost, objective=objective, backend="scipy"
                )
            ]
            w_nx = [
                sum(problem.cost[s, d] for s, d in enumerate(perm))
                for perm in matching_rounds(
                    problem.cost, objective=objective, backend="networkx"
                )
            ]
            assert w_scipy == pytest.approx(w_nx)

    def test_invalid_objective(self):
        with pytest.raises(ValueError):
            matching_rounds(np.zeros((3, 3)), objective="median")

    def test_invalid_backend(self):
        with pytest.raises(ValueError):
            matching_rounds(np.zeros((3, 3)), backend="magic")

    def test_rejects_negative_costs(self):
        with pytest.raises(ValueError):
            matching_rounds(np.array([[0.0, -1.0], [1.0, 0.0]]))


class TestMatchingSchedules:
    def test_max_valid_and_covering(self):
        problem = random_problem(6, seed=5)
        schedule = schedule_matching_max(problem)
        check_schedule(schedule, problem.cost)

    def test_min_valid_and_covering(self):
        problem = random_problem(6, seed=6)
        schedule = schedule_matching_min(problem)
        check_schedule(schedule, problem.cost)

    def test_orders_cover_everything(self):
        problem = random_problem(5, seed=7)
        orders = matching_orders(problem)
        for src, order in enumerate(orders):
            assert sorted(order) == list(range(5))

    def test_example_problem_values(self):
        problem = example_problem()
        assert schedule_matching_max(problem).completion_time == 18.0
        assert schedule_matching_min(problem).completion_time == 18.0

    def test_beats_baseline_on_heterogeneous_instances(self):
        from repro.core.baseline import schedule_baseline

        wins = 0
        for seed in range(10):
            problem = random_problem(10, seed=seed, low=0.1, high=20.0)
            match = schedule_matching_max(problem).completion_time
            base = schedule_baseline(problem).completion_time
            if match <= base + 1e-9:
                wins += 1
        assert wins >= 8  # overwhelmingly better under heterogeneity

    def test_max_groups_similar_lengths(self):
        # Bimodal instance: max matching should meet the LB, since it can
        # pack all-long rounds together.
        cost = np.full((4, 4), 1.0)
        cost[0, 1] = cost[1, 2] = cost[2, 3] = cost[3, 0] = 10.0
        np.fill_diagonal(cost, 0.0)
        problem = TotalExchangeProblem(cost=cost)
        schedule = schedule_matching_max(problem)
        assert schedule.completion_time == pytest.approx(problem.lower_bound())


class TestAuctionDegenerate:
    """Auction backend on the degenerate inputs where tie-breaking and
    penalty arithmetic are most fragile."""

    def test_all_equal_weights_match_scipy_per_round(self):
        for p in (2, 5):
            cost = np.full((p, p), 3.0)
            np.fill_diagonal(cost, 0.0)
            rows = np.arange(p)
            for objective in ("max", "min"):
                ref = matching_rounds(cost, objective=objective, backend="scipy")
                auc = matching_rounds(
                    cost, objective=objective, backend="auction"
                )
                for k, (rp, ap) in enumerate(zip(ref, auc)):
                    assert sorted(ap.tolist()) == list(range(p))
                    assert cost[rows, ap].sum() == pytest.approx(
                        cost[rows, rp].sum()
                    ), f"round {k} weight diverges"
                pairs = {
                    (src, int(dst))
                    for perm in auc
                    for src, dst in enumerate(perm)
                }
                assert len(pairs) == p * p

    def test_penalty_scale_rows_stay_optimal_per_round(self):
        # Rows pinned at a value dominating everything else — the regime
        # the masked (already-matched) entries create internally.  Each
        # auction round must stay optimal for its own residual, judged by
        # re-solving with scipy.
        from repro.check.differential import matching_differential_violations

        rng = np.random.default_rng(0)
        cost = rng.uniform(1.0, 2.0, size=(6, 6))
        cost[1, :] = 1e12
        cost[4, :] = 1e12
        np.fill_diagonal(cost, 0.0)
        for objective in ("max", "min"):
            assert matching_differential_violations(
                cost, objective, backends=("auction",)
            ) == []

    def test_single_processor(self):
        for objective in ("max", "min"):
            rounds = matching_rounds(
                np.zeros((1, 1)), objective=objective, backend="auction"
            )
            assert [perm.tolist() for perm in rounds] == [[0]]
