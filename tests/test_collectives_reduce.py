"""Reduction collective tests."""

import numpy as np
import pytest

from repro.collectives.broadcast import binomial_tree
from repro.collectives.reduce import (
    allreduce_tree,
    reduce_direct,
    reduce_via_tree,
)
from repro.directory.service import DirectorySnapshot
from repro.timing.validate import check_schedule


def make_snapshot(n=8, latency=0.01, bandwidth=1e6):
    lat = np.full((n, n), latency)
    np.fill_diagonal(lat, 0.0)
    bw = np.full((n, n), bandwidth)
    np.fill_diagonal(bw, np.inf)
    return DirectorySnapshot(latency=lat, bandwidth=bw)


class TestReduceDirect:
    def test_completion_includes_combines(self):
        snap = make_snapshot(3)
        schedule, done = reduce_direct(
            snap, 1e6, combine_rate=1e6
        )
        # two serial receives of ~1.01 s each, plus one combine (1 s)
        # after each receive, overlapping receive of the next message:
        # r1 ends 1.01, c1 ends 2.01; r2 ends 2.02, c2 ends 3.02
        assert done == pytest.approx(3.02, abs=0.01)
        check_schedule(schedule)

    def test_infinite_combine_rate(self):
        snap = make_snapshot(4)
        schedule, done = reduce_direct(snap, 1e6, combine_rate=1e18)
        assert done == pytest.approx(schedule.completion_time, abs=1e-6)

    def test_validation(self):
        snap = make_snapshot(3)
        with pytest.raises(ValueError):
            reduce_direct(snap, 0.0)
        with pytest.raises(ValueError):
            reduce_direct(snap, 1e6, root=5)


class TestReduceTree:
    def test_forwarded_payload_stays_one_block(self):
        snap = make_snapshot(8)
        schedule, _ = reduce_via_tree(snap, 1e6, binomial_tree(8))
        assert all(e.size == pytest.approx(1e6) for e in schedule)

    def test_valid_schedule(self):
        snap = make_snapshot(8)
        schedule, done = reduce_via_tree(snap, 1e6, binomial_tree(8))
        check_schedule(schedule)
        assert done >= schedule.completion_time - 1e-9

    def test_tree_beats_direct_at_scale(self):
        # Tree reduction parallelises receive-port work: the root only
        # receives log2(P) blocks instead of P-1.
        snap = make_snapshot(16)
        _, direct_done = reduce_direct(snap, 1e6, combine_rate=1e9)
        _, tree_done = reduce_via_tree(
            snap, 1e6, binomial_tree(16), combine_rate=1e9
        )
        assert tree_done < direct_done

    def test_rejects_bad_tree(self):
        snap = make_snapshot(3)
        with pytest.raises(ValueError):
            reduce_via_tree(snap, 1e6, {0: [1], 1: [], 2: []})


class TestAllreduceRing:
    def test_step_count_and_validity(self):
        from repro.collectives.reduce import allreduce_ring
        from repro.timing.validate import check_schedule

        snap = make_snapshot(6)
        schedule, total = allreduce_ring(snap, 6e6)
        # 2(P-1) steps of P chunk transfers each
        assert len(schedule) == 2 * 5 * 6
        check_schedule(schedule)
        assert total >= schedule.completion_time - 1e-9

    def test_bandwidth_optimal_on_homogeneous(self):
        from repro.collectives.reduce import allreduce_ring, allreduce_tree
        from repro.collectives.broadcast import binomial_tree

        # homogeneous: ring moves 2(P-1)/P blocks per node vs the
        # tree's ~2 log2 P whole-block hops — ring wins at scale
        snap = make_snapshot(16, latency=1e-4, bandwidth=1e6)
        _, ring_total = allreduce_ring(snap, 8e6, combine_rate=1e12)
        _, tree_total = allreduce_tree(
            snap, 8e6, binomial_tree(16), combine_rate=1e12
        )
        assert ring_total < tree_total

    def test_slow_link_taxes_every_step(self):
        from repro.collectives.reduce import allreduce_ring

        n = 8
        lat = np.full((n, n), 1e-4)
        np.fill_diagonal(lat, 0.0)
        bw = np.full((n, n), 1e7)
        bw[0, 1] = bw[1, 0] = 1e4  # one terrible ring edge
        np.fill_diagonal(bw, np.inf)
        snap = DirectorySnapshot(latency=lat, bandwidth=bw)
        fast = make_snapshot(n, latency=1e-4, bandwidth=1e7)
        _, slow_total = allreduce_ring(snap, 8e6)
        _, fast_total = allreduce_ring(fast, 8e6)
        # all 2(P-1) steps pay the slow edge: ~1000x bandwidth gap
        assert slow_total > 50 * fast_total

    def test_ring_order_matters(self):
        from repro.collectives.reduce import allreduce_ring

        n = 4
        lat = np.full((n, n), 1e-4)
        np.fill_diagonal(lat, 0.0)
        bw = np.full((n, n), 1e7)
        bw[0, 2] = bw[2, 0] = 1e4
        bw[1, 3] = bw[3, 1] = 1e4
        np.fill_diagonal(bw, np.inf)
        snap = DirectorySnapshot(latency=lat, bandwidth=bw)
        # identity ring 0-1-2-3 avoids both slow diagonals; the
        # interleaved ring 0-2-1-3 (wait: 0->2 slow) hits them
        _, good = allreduce_ring(snap, 4e6, ring=[0, 1, 2, 3])
        _, bad = allreduce_ring(snap, 4e6, ring=[0, 2, 1, 3])
        assert good < bad / 10

    def test_single_node(self):
        from repro.collectives.reduce import allreduce_ring

        snap = make_snapshot(1)
        schedule, total = allreduce_ring(snap, 1e6)
        assert total == 0.0

    def test_invalid_ring(self):
        from repro.collectives.reduce import allreduce_ring

        snap = make_snapshot(4)
        with pytest.raises(ValueError):
            allreduce_ring(snap, 1e6, ring=[0, 0, 1, 2])


class TestAllreduce:
    def test_composition_time(self):
        snap = make_snapshot(8)
        tree = binomial_tree(8)
        _, reduce_done = reduce_via_tree(snap, 1e6, tree)
        schedule, total = allreduce_tree(snap, 1e6, tree)
        assert total > reduce_done
        # every non-root node receives the result in the broadcast phase
        down = [e for e in schedule if e.start >= reduce_done - 1e-9]
        assert sorted({e.dst for e in down}) == list(range(1, 8))

    def test_valid_schedule(self):
        snap = make_snapshot(8)
        schedule, _ = allreduce_tree(snap, 1e6, binomial_tree(8))
        check_schedule(schedule)
