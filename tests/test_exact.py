"""Exact branch-and-bound tests."""

import numpy as np
import pytest

from repro.core.exact import (
    MAX_EXACT_PROCS,
    SearchBudgetExceeded,
    branch_and_bound,
    schedule_optimal,
)
from repro.core.openshop import schedule_openshop
from repro.core.problem import TotalExchangeProblem, example_problem
from repro.core.registry import iter_specs
from repro.timing.validate import check_schedule
from tests.conftest import random_problem


def test_optimal_at_least_lower_bound():
    for seed in range(5):
        problem = random_problem(3, seed=seed)
        result = branch_and_bound(problem)
        assert result.completion_time >= problem.lower_bound() - 1e-9


def test_optimal_no_worse_than_heuristics():
    for seed in range(5):
        problem = random_problem(4, seed=seed)
        optimal = branch_and_bound(problem).completion_time
        for spec in iter_specs(tier="paper"):
            scheduler = spec.fn
            assert optimal <= scheduler(problem).completion_time + 1e-9


def test_optimal_schedule_is_valid():
    problem = random_problem(4, seed=9)
    result = branch_and_bound(problem)
    check_schedule(result.schedule, problem.cost)


def test_known_instance():
    # Uniform 3x3: optimal = lower bound = 2 (two rounds of matchings).
    cost = np.full((3, 3), 1.0)
    np.fill_diagonal(cost, 0.0)
    problem = TotalExchangeProblem(cost=cost)
    result = branch_and_bound(problem)
    assert result.completion_time == pytest.approx(2.0)


def test_example_problem_optimal_is_lb():
    result = branch_and_bound(example_problem())
    assert result.completion_time == pytest.approx(16.0)
    assert result.proven_optimal


def test_instance_where_lb_not_achievable():
    # One dominant sender: its events serialise; LB is its row sum, and
    # it is achievable; but a 2-processor exchange with asymmetric costs
    # has optimal == LB as well.  Construct a gap instance instead:
    # P=3 with a heavy diagonal-free triangle forcing idle time.
    cost = np.array(
        [
            [0.0, 1.0, 1.0],
            [1.0, 0.0, 1.0],
            [1.0, 1.0, 0.0],
        ]
    )
    # perturb one entry: open shop with unit tasks and one long task
    cost[0, 1] = 3.0
    problem = TotalExchangeProblem(cost=cost)
    result = branch_and_bound(problem)
    assert result.completion_time >= problem.lower_bound()
    check_schedule(result.schedule, problem.cost)


def test_budget_exceeded_raises():
    problem = random_problem(4, seed=1)
    with pytest.raises(SearchBudgetExceeded):
        branch_and_bound(problem, node_budget=3)


def test_too_many_procs_rejected():
    problem = random_problem(MAX_EXACT_PROCS + 1, seed=0)
    with pytest.raises(ValueError):
        branch_and_bound(problem)


def test_schedule_optimal_wrapper():
    problem = random_problem(3, seed=2)
    schedule = schedule_optimal(problem)
    check_schedule(schedule, problem.cost)


def test_openshop_within_2x_of_true_optimal():
    # Theorem 3 relative to the *optimum*, not just the lower bound.
    for seed in range(5):
        problem = random_problem(4, seed=seed, low=0.1, high=10.0)
        optimal = branch_and_bound(problem).completion_time
        heuristic = schedule_openshop(problem).completion_time
        assert heuristic <= 2.0 * optimal + 1e-9
