"""Delta-rescheduling tests: flat event-level repair, hierarchical
block-level repair, the session's repair tier, and the vectorized drift
metric micro-guards.

Every repaired schedule here goes through the *full* invariant oracle
(:func:`repro.check.oracle.oracle_violations`), not just the inline
fast check the production path runs.
"""

import time

import numpy as np
import pytest

from repro.adaptive.delta import (
    DeltaRepairResult,
    repair_plan,
    repair_schedule_delta,
)
from repro.adaptive.incremental import changed_mask, dirty_fraction
from repro.check.oracle import oracle_violations
from repro.core.hierarchical import HierarchicalScheduler
from repro.core.openshop import schedule_openshop
from repro.core.problem import TotalExchangeProblem
from repro.directory.service import DirectorySnapshot
from repro.runtime import AdaptiveSession, PolicyConfig, drift_magnitude
from repro.sim.replay import DriftTrace, TraceDirectory
from repro.timing.validate import check_schedule
from tests.conftest import random_problem
from tests.test_hierarchical import planted_problem


def _oracle_clean(schedule, problem):
    check_schedule(schedule, problem.cost)
    violations = oracle_violations(problem, schedule)
    assert violations == [], violations


def _reprice(problem, pairs, factor, seed=None):
    """A copy of ``problem`` with ``pairs`` scaled by ``factor``."""
    cost = problem.cost.copy()
    for src, dst in pairs:
        cost[src, dst] *= factor
    return TotalExchangeProblem(cost=cost, sizes=problem.sizes)


class TestFlatRepair:
    def test_zero_drift_is_bit_identical_to_reuse(self):
        problem = random_problem(8, seed=1)
        schedule = schedule_openshop(problem)
        result = repair_schedule_delta(schedule, problem.cost, problem)
        assert result.identical
        assert result.schedule is schedule  # the same object, not a copy
        assert result.reinserted == 0

    @pytest.mark.parametrize("factor", [3.0, 0.2])
    def test_repriced_pairs_repair_valid(self, factor):
        for seed in range(4):
            problem = random_problem(10, seed=seed)
            schedule = schedule_openshop(problem)
            new = _reprice(problem, [(0, 1), (3, 7), (5, 2)], factor)
            result = repair_schedule_delta(schedule, problem.cost, new)
            _oracle_clean(result.schedule, new)
            assert not result.identical
            assert result.frozen + result.reinserted >= len(schedule)

    def test_shrunk_pairs_keep_old_starts(self):
        problem = random_problem(8, seed=3)
        schedule = schedule_openshop(problem)
        new = _reprice(problem, [(1, 2)], 0.5)
        result = repair_schedule_delta(schedule, problem.cost, new)
        _oracle_clean(result.schedule, new)
        # nothing grew, so nothing was re-inserted
        assert result.reinserted == 0
        old_starts = {(e.src, e.dst): e.start for e in schedule}
        for e in result.schedule:
            assert e.start == old_starts[(e.src, e.dst)]

    def test_pair_repriced_to_zero(self):
        problem = random_problem(7, seed=4)
        schedule = schedule_openshop(problem)
        cost = problem.cost.copy()
        cost[2, 5] = 0.0
        new = TotalExchangeProblem(cost=cost)
        result = repair_schedule_delta(schedule, problem.cost, new)
        _oracle_clean(result.schedule, new)

    def test_appeared_diagonal_self_message(self):
        problem = random_problem(6, seed=5)
        schedule = schedule_openshop(problem)
        cost = problem.cost.copy()
        cost[3, 3] = 4.0  # a self-message appears on node 3
        new = TotalExchangeProblem(cost=cost)
        result = repair_schedule_delta(schedule, problem.cost, new)
        _oracle_clean(result.schedule, new)
        assert any(
            e.src == 3 and e.dst == 3 and e.duration == 4.0
            for e in result.schedule
        )

    def test_makespan_close_to_from_scratch(self):
        worst = 0.0
        for seed in range(5):
            problem = random_problem(16, seed=seed)
            schedule = schedule_openshop(problem)
            rng = np.random.default_rng(seed + 50)
            pairs = [
                (int(a), int(b))
                for a, b in rng.integers(0, 16, size=(6, 2))
                if a != b
            ]
            new = _reprice(problem, pairs, 2.0)
            repaired = repair_schedule_delta(schedule, problem.cost, new)
            scratch = schedule_openshop(new)
            worst = max(
                worst,
                repaired.completion_time / scratch.completion_time,
            )
        # at P=16 with pairs doubled outright, the frozen per-port
        # orders cost a visible premium over re-packing from scratch;
        # the bench asserts the <= 1.05x contract at serving scale
        # under the moderate jitter the policy routes to this tier
        assert worst <= 1.25

    def test_shape_mismatch_raises(self):
        problem = random_problem(6, seed=0)
        schedule = schedule_openshop(problem)
        with pytest.raises(ValueError):
            repair_schedule_delta(
                schedule, problem.cost, random_problem(7, seed=0)
            )
        with pytest.raises(ValueError):
            repair_schedule_delta(
                schedule, np.zeros((4, 4)), problem
            )


class TestRepairPlanDispatch:
    def test_falls_back_to_flat_without_hook(self):
        problem = random_problem(6, seed=2)
        schedule = schedule_openshop(problem)
        new = _reprice(problem, [(0, 2)], 2.0)
        result = repair_plan(schedule, problem.cost, new, scheduler=None)
        assert isinstance(result, DeltaRepairResult)
        _oracle_clean(result.schedule, new)

    def test_returns_none_when_nothing_to_repair(self):
        problem = random_problem(6, seed=2)
        assert repair_plan(None, problem.cost, problem) is None

    def test_prefers_scheduler_hook(self):
        problem = random_problem(6, seed=2)
        schedule = schedule_openshop(problem)
        sentinel = DeltaRepairResult(
            schedule=schedule, dirty_pairs=1, reinserted=0, frozen=1
        )

        class Hooked:
            def delta_repair(self, problem, *, validate=True):
                return sentinel

        result = repair_plan(
            schedule, problem.cost, problem, scheduler=Hooked()
        )
        assert result is sentinel

    def test_broken_hook_falls_back(self):
        problem = random_problem(6, seed=2)
        schedule = schedule_openshop(problem)
        new = _reprice(problem, [(1, 3)], 2.0)

        class Broken:
            def delta_repair(self, problem, *, validate=True):
                raise RuntimeError("boom")

        result = repair_plan(
            schedule, problem.cost, new, scheduler=Broken()
        )
        assert result is not None
        _oracle_clean(result.schedule, new)


class TestHierarchicalRepair:
    def _scheduler_with_plan(self, problem):
        scheduler = HierarchicalScheduler()
        schedule = scheduler(problem)
        assert scheduler._plan_state is not None
        return scheduler, schedule

    def test_zero_drift_identity(self):
        problem = planted_problem(24, 6, seed=1)
        scheduler, schedule = self._scheduler_with_plan(problem)
        result = scheduler.delta_repair(problem)
        assert result.identical
        assert result.schedule is schedule

    def test_dirty_block_repair_valid(self):
        problem = planted_problem(24, 6, seed=2)
        scheduler, _ = self._scheduler_with_plan(problem)
        new = _reprice(problem, [(1, 9), (2, 10)], 1.2)
        result = scheduler.delta_repair(new)
        assert result is not None and not result.identical
        _oracle_clean(result.schedule, new)
        # only the touched blocks were re-solved: 6x6 blocks, 2 dirty
        assert result.reinserted <= 2 * 36
        assert scheduler.delta_repairs == 1

    def test_repair_chain_stays_valid(self):
        problem = planted_problem(24, 6, seed=3)
        scheduler, _ = self._scheduler_with_plan(problem)
        current = problem
        for step, pair in enumerate([(0, 7), (13, 20), (5, 11)]):
            cost = current.cost.copy()
            cost[pair] = cost[pair] * 1.15
            current = TotalExchangeProblem(cost=cost)
            result = scheduler.delta_repair(current)
            assert result is not None, f"step {step} refused"
            _oracle_clean(result.schedule, current)

    def test_excessive_drift_refuses(self):
        problem = planted_problem(24, 6, seed=4)
        scheduler, _ = self._scheduler_with_plan(problem)
        new = TotalExchangeProblem(cost=problem.cost * 10.0)
        assert scheduler.delta_repair(new) is None

    def test_degenerate_flat_plan_has_no_state(self):
        problem = random_problem(8, seed=5)  # one flat cluster
        scheduler = HierarchicalScheduler()
        scheduler(problem)
        assert scheduler._plan_state is None
        assert scheduler.delta_repair(problem) is None


class TestSessionRepairTier:
    def _trace(self, base_cost, repriced_cost):
        bandwidth = np.full(base_cost.shape, np.inf)
        snapshots = []
        times = []
        for k, cost in enumerate(
            [base_cost, base_cost, repriced_cost, repriced_cost]
        ):
            snapshots.append(
                DirectorySnapshot(
                    latency=cost, bandwidth=bandwidth, time=float(k)
                )
            )
            times.append(float(k))
        return DriftTrace(times=tuple(times), snapshots=tuple(snapshots))

    def test_localized_drift_repairs(self):
        problem = random_problem(8, seed=6)
        repriced = problem.cost.copy()
        repriced[0, 1] *= 8.0  # one pair, huge drift -> localised
        trace = self._trace(problem.cost, repriced)
        sizes = np.full((8, 8), 100.0)
        np.fill_diagonal(sizes, 0.0)
        session = AdaptiveSession(
            TraceDirectory(trace),
            sizes,
            scheduler="openshop",
            policy=PolicyConfig(reuse_threshold=0.01),
        )
        decisions = [session.tick(dt=(1.0 if k else 0.0)).decision
                     for k in range(4)]
        assert decisions[0] == "reschedule"
        assert "repair" in decisions
        repair_tick = session.metrics.events[decisions.index("repair")]
        assert repair_tick.dirty_fraction <= 0.25
        assert repair_tick.repaired_events >= 1
        summary = session.summary()
        assert summary["decisions"]["repair"] >= 1

    def test_repair_tick_schedule_passes_oracle(self):
        problem = random_problem(8, seed=7)
        repriced = problem.cost.copy()
        repriced[2, 4] *= 8.0
        trace = self._trace(problem.cost, repriced)
        sizes = np.full((8, 8), 100.0)
        np.fill_diagonal(sizes, 0.0)
        session = AdaptiveSession(
            TraceDirectory(trace),
            sizes,
            scheduler="openshop",
            policy=PolicyConfig(reuse_threshold=0.01),
        )
        results = [session.tick(dt=(1.0 if k else 0.0)) for k in range(4)]
        repairs = [r for r in results if r.decision == "repair"]
        assert repairs
        new = TotalExchangeProblem(cost=repriced, sizes=sizes)
        for r in repairs:
            _oracle_clean(r.schedule, new)


class TestVectorizedDriftGuards:
    def test_changed_mask_matches_loop(self):
        rng = np.random.default_rng(0)
        old = rng.uniform(0.5, 5.0, (12, 12))
        new = old.copy()
        new[2, 3] *= 2.0
        new[7, 1] *= 0.5
        mask = changed_mask(old, new)
        assert {(int(a), int(b)) for a, b in zip(*np.nonzero(mask))} == {
            (2, 3), (7, 1),
        }

    def test_dirty_fraction_bounds(self):
        p = random_problem(10, seed=8)
        assert dirty_fraction(p.cost, p.cost) == 0.0
        doubled = p.cost * 2.0
        assert dirty_fraction(p.cost, doubled) == pytest.approx(1.0)
        one = p.cost.copy()
        one[0, 1] *= 2.0
        assert 0.0 < dirty_fraction(p.cost, one) < 0.05

    def test_drift_metrics_are_fast_at_scale(self):
        # regression guard: these run on every serving tick, so they
        # must stay vectorized (no per-pair Python).  The bound is very
        # generous; a Python loop over 1024^2 pairs takes seconds.
        rng = np.random.default_rng(1)
        basis = rng.uniform(0.5, 5.0, (1024, 1024))
        current = basis * rng.uniform(0.9, 1.1, basis.shape)
        for fn in (
            lambda: drift_magnitude(basis, current),
            lambda: changed_mask(basis, current),
            lambda: dirty_fraction(basis, current),
        ):
            fn()  # warm-up
            started = time.perf_counter()
            fn()
            assert time.perf_counter() - started < 0.25
