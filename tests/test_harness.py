"""Experiment harness tests."""

import numpy as np
import pytest

from repro.experiments.harness import SweepResult, run_sweep
from repro.experiments.quality import quality_stats
from repro.model.messages import UniformSizes

PROCS = (4, 6)


def small_sweep(seed=0, trials=2):
    return run_sweep(
        "test",
        UniformSizes(1000.0),
        proc_counts=PROCS,
        trials=trials,
        seed=seed,
    )


def test_shapes():
    result = small_sweep()
    assert result.proc_counts == PROCS
    assert set(result.completion) == {
        "baseline", "max_matching", "min_matching", "greedy", "openshop",
    }
    for series in result.completion.values():
        assert len(series) == len(PROCS)
    assert len(result.lower_bound) == len(PROCS)
    for samples in result.ratio_samples.values():
        assert len(samples) == len(PROCS) * result.trials


def test_deterministic():
    a = small_sweep(seed=5)
    b = small_sweep(seed=5)
    assert a.completion == b.completion


def test_seed_changes_results():
    a = small_sweep(seed=1)
    b = small_sweep(seed=2)
    assert a.completion != b.completion


def test_ratios_at_least_one():
    result = small_sweep()
    for samples in result.ratio_samples.values():
        assert all(r >= 1.0 - 1e-9 for r in samples)


def test_openshop_within_theorem_bound():
    result = small_sweep()
    assert result.max_ratio("openshop") <= 2.0


def test_improvement_over_baseline():
    result = small_sweep()
    speedups = result.improvement_over_baseline("openshop")
    assert len(speedups) == len(PROCS)
    assert all(s > 0 for s in speedups)


def test_improvement_requires_baseline():
    result = run_sweep(
        "nobase",
        UniformSizes(1000.0),
        proc_counts=(4,),
        trials=1,
        algorithms={"openshop": __import__("repro").schedule_openshop},
    )
    with pytest.raises(KeyError):
        result.improvement_over_baseline("openshop")


def test_custom_algorithms():
    import repro

    result = run_sweep(
        "custom",
        UniformSizes(1000.0),
        proc_counts=(4,),
        trials=1,
        algorithms={"openshop": repro.schedule_openshop},
    )
    assert set(result.completion) == {"openshop"}


def test_invalid_trials():
    with pytest.raises(ValueError):
        run_sweep("x", UniformSizes(1.0), trials=0)


def test_raw_samples_behind_means():
    result = small_sweep(trials=3)
    for name, per_p in result.raw.items():
        assert len(per_p) == len(PROCS)
        for k, samples in enumerate(per_p):
            assert len(samples) == 3
            assert sum(samples) / 3 == pytest.approx(
                result.completion[name][k]
            )


def test_completion_interval():
    result = small_sweep(trials=3)
    intervals = result.completion_interval("openshop")
    assert len(intervals) == len(PROCS)
    for ci, mean in zip(intervals, result.completion["openshop"]):
        assert ci.mean == pytest.approx(mean)
        assert ci.low <= ci.mean <= ci.high


def test_quality_stats_pooling():
    a = small_sweep(seed=1)
    b = small_sweep(seed=2)
    stats = quality_stats([a, b])
    for s in stats.values():
        assert s.samples == 2 * len(PROCS) * 2
        assert s.min_ratio <= s.mean_ratio <= s.max_ratio
    assert stats["openshop"].max_excess_percent == pytest.approx(
        (stats["openshop"].max_ratio - 1) * 100
    )
