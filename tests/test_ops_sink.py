"""MetricsSink protocol: fan-out, store persistence, the runtime port.

The sink is the one publishing surface (emit / counter / observe /
flush); these tests pin the protocol conformance of every
implementation and the ``SessionMetrics -> RuntimeMetrics`` migration
shim.
"""

import dataclasses

import pytest

from repro.ops.sink import (
    Counter,
    MetricsSink,
    MultiSink,
    NullSink,
    StoreSink,
    as_sink,
    event_record,
)
from repro.ops.store import MetricsStore
from repro.runtime.metrics import RuntimeMetrics, SessionMetrics, TickEvent


class Recorder(MetricsSink):
    def __init__(self):
        self.events = []
        self.observations = []
        self.flushes = 0

    def emit(self, event):
        self.events.append(event_record(event))

    def observe(self, name, value):
        self.observations.append((name, value))

    def flush(self):
        self.flushes += 1


# -- protocol basics ---------------------------------------------------------


def test_base_sink_defaults_are_noops():
    sink = MetricsSink()
    sink.emit({"kind": "tick"})
    sink.observe("x", 1.0)
    sink.flush()
    counter = sink.counter("served")
    counter.inc()
    assert counter.value == 1


def test_counter_rejects_negative_increments():
    counter = Counter("served")
    counter.inc(3)
    with pytest.raises(ValueError, match="must be >= 0"):
        counter.inc(-1)
    assert counter.value == 3


def test_event_record_accepts_dataclasses_and_mappings():
    record = event_record({"kind": "tick", "i": 1})
    assert record == {"kind": "tick", "i": 1}
    event = TickEvent(
        tick=3, time=1.0, decision="reuse", reason="drift<threshold",
        drift=0.0, predicted_makespan=1.0, executed_makespan=1.0,
        regret=0.0,
    )
    record = event_record(event)
    assert record["tick"] == 3 and record["decision"] == "reuse"
    with pytest.raises(TypeError, match="event"):
        event_record(42)


def test_as_sink_null_fallback():
    assert isinstance(as_sink(None), NullSink)
    sink = Recorder()
    assert as_sink(sink) is sink


# -- MultiSink fan-out -------------------------------------------------------


def test_multisink_fans_out_everything():
    left, right = Recorder(), Recorder()
    multi = MultiSink([left, right])
    multi.emit({"kind": "tick"})
    multi.observe("latency", 0.5)
    counter = multi.counter("served")
    counter.inc(2)
    multi.flush()
    for sink in (left, right):
        assert sink.events == [{"kind": "tick"}]
        assert sink.observations == [("latency", 0.5)]
        assert sink.flushes == 1
    # the fan-out counter increments each member's counter
    assert multi.counter("served") is counter


def test_multisink_counter_reaches_runtime_metrics():
    metrics = RuntimeMetrics()
    multi = MultiSink([metrics, Recorder()])
    multi.counter("served").inc(5)
    assert metrics.counter("served").value == 5


# -- StoreSink persistence ---------------------------------------------------


def test_store_sink_tags_events(tmp_path):
    store = MetricsStore(tmp_path)
    sink = StoreSink(store, source="tenant-3", kind="tick")
    sink.emit({"decision": "reuse", "ts": 1.0})
    sink.emit({"decision": "repair", "kind": "custom", "ts": 2.0})
    records = store.query()
    assert [r["kind"] for r in records] == ["tick", "custom"]
    assert all(r["source"] == "tenant-3" for r in records)
    store.close()


def test_store_sink_observe_and_counter_snapshot(tmp_path):
    store = MetricsStore(tmp_path, clock=lambda: 7.0)
    sink = StoreSink(store, source="daemon")
    sink.observe("decision_latency_s", 0.25)
    sink.counter("served").inc(3)
    sink.counter("accepted").inc(4)
    # counters buffer in memory; only flush writes the snapshot record
    assert store.query(kind="counters") == []
    sink.flush()
    (snapshot,) = store.query(kind="counters")
    assert snapshot["counters"] == {"accepted": 4, "served": 3}
    (observed,) = store.query(kind="observe")
    assert observed["name"] == "decision_latency_s"
    assert observed["value"] == 0.25
    store.close()


# -- the runtime port --------------------------------------------------------


def test_runtime_metrics_is_a_sink():
    metrics = RuntimeMetrics()
    assert isinstance(metrics, MetricsSink)
    event = TickEvent(
        tick=0, time=0.0, decision="reuse", reason="drift<threshold",
        drift=0.0, predicted_makespan=1.0, executed_makespan=1.0,
        regret=0.0,
    )
    metrics.emit(event)
    metrics.emit(dataclasses.asdict(event))  # mappings work too
    assert metrics.counter("ticks").value == 2
    metrics.observe("decision_latency_s", 0.5)
    assert metrics.histogram("decision_latency_s").count == 1


def test_session_metrics_shim_warns_once_per_instance():
    with pytest.warns(DeprecationWarning, match="RuntimeMetrics"):
        shim = SessionMetrics()
    assert isinstance(shim, RuntimeMetrics)
