"""Timing diagram rendering tests."""

import pytest

from repro.core.problem import example_problem
from repro.core.openshop import schedule_openshop
from repro.timing.diagram import describe_schedule, render_timing_diagram
from repro.timing.events import CommEvent, Schedule


def test_render_has_processor_headers():
    s = Schedule.from_events(3, [CommEvent(start=0, src=0, dst=1, duration=1)])
    out = render_timing_diagram(s)
    assert "P0" in out and "P2" in out


def test_render_labels_destination():
    s = Schedule.from_events(3, [CommEvent(start=0, src=0, dst=2, duration=1)])
    out = render_timing_diagram(s, rows=10)
    assert "| 2  |" in out


def test_render_skips_zero_duration():
    s = Schedule.from_events(3, [CommEvent(start=0, src=0, dst=2, duration=0)])
    out = render_timing_diagram(s, rows=10)
    assert "| 2  |" not in out


def test_render_rows_validation():
    s = Schedule.from_events(2, [CommEvent(start=0, src=0, dst=1, duration=1)])
    with pytest.raises(ValueError):
        render_timing_diagram(s, rows=1)


def test_render_empty_schedule():
    out = render_timing_diagram(Schedule(num_procs=2))
    assert "P0" in out


def test_render_real_schedule():
    schedule = schedule_openshop(example_problem())
    out = render_timing_diagram(schedule, rows=30)
    # every processor column appears, with time scale
    for proc in range(5):
        assert f"P{proc}" in out


def test_describe_schedule():
    s = Schedule.from_events(
        3,
        [
            CommEvent(start=0, src=0, dst=1, duration=2),
            CommEvent(start=0, src=1, dst=2, duration=0),
        ],
    )
    out = describe_schedule(s)
    assert "P0 -> P1" in out
    assert "completion time" in out
    # zero-duration marker is not listed
    assert "P1 -> P2" not in out
