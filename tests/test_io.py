"""Serialization round-trip tests."""

import numpy as np
import pytest

import repro
from repro.directory.static import gusto_directory
from repro.io import (
    load_json,
    problem_from_dict,
    problem_to_dict,
    save_json,
    schedule_from_dict,
    schedule_to_dict,
    snapshot_from_dict,
    snapshot_to_dict,
)
from tests.conftest import random_problem


def test_problem_roundtrip():
    problem = random_problem(6, seed=0)
    restored = problem_from_dict(problem_to_dict(problem))
    assert np.array_equal(restored.cost, problem.cost)
    assert restored.sizes is None


def test_problem_with_sizes_roundtrip():
    directory = gusto_directory()
    problem = repro.TotalExchangeProblem.from_snapshot(
        directory.snapshot(), repro.UniformSizes(1e6)
    )
    restored = problem_from_dict(problem_to_dict(problem))
    assert np.array_equal(restored.cost, problem.cost)
    assert np.array_equal(restored.sizes, problem.sizes)


def test_snapshot_roundtrip_preserves_infinity():
    snapshot = gusto_directory().snapshot()
    restored = snapshot_from_dict(snapshot_to_dict(snapshot))
    assert np.array_equal(restored.latency, snapshot.latency)
    assert np.all(np.isinf(np.diag(restored.bandwidth)))
    assert np.array_equal(restored.bandwidth, snapshot.bandwidth)


def test_schedule_roundtrip():
    problem = random_problem(5, seed=1)
    schedule = repro.schedule_openshop(problem)
    restored = schedule_from_dict(schedule_to_dict(schedule))
    assert restored == schedule


def test_json_is_strict(tmp_path):
    import json

    snapshot = gusto_directory().snapshot()
    path = tmp_path / "snap.json"
    save_json(path, snapshot_to_dict(snapshot))
    payload = json.loads(path.read_text())  # must parse as strict JSON
    restored = snapshot_from_dict(payload)
    assert restored.num_procs == 5


def test_file_roundtrip(tmp_path):
    problem = random_problem(4, seed=2)
    path = tmp_path / "problem.json"
    save_json(path, problem_to_dict(problem))
    restored = problem_from_dict(load_json(path))
    assert np.array_equal(restored.cost, problem.cost)


def test_wrong_format_rejected():
    problem = random_problem(3, seed=3)
    payload = problem_to_dict(problem)
    with pytest.raises(ValueError, match="format"):
        snapshot_from_dict(payload)


def test_wrong_version_rejected():
    payload = problem_to_dict(random_problem(3, seed=4))
    payload["version"] = 999
    with pytest.raises(ValueError, match="version"):
        problem_from_dict(payload)
