"""Scheduler registry tests."""

import pytest

from repro.core.registry import (
    ALL_SCHEDULERS,
    EXTRA_SCHEDULERS,
    get_scheduler,
    scheduler_names,
)
from repro.core.problem import example_problem
from repro.timing.events import Schedule


def test_paper_schedulers_present():
    assert set(scheduler_names()) == {
        "baseline",
        "max_matching",
        "min_matching",
        "greedy",
        "openshop",
    }


def test_extras_present():
    assert "optimal" in EXTRA_SCHEDULERS
    assert "baseline_nosync" in EXTRA_SCHEDULERS


def test_lookup_returns_working_scheduler():
    problem = example_problem()
    for name in scheduler_names():
        schedule = get_scheduler(name)(problem)
        assert isinstance(schedule, Schedule)


def test_extra_lookup():
    assert get_scheduler("baseline_nosync") is EXTRA_SCHEDULERS["baseline_nosync"]


def test_unknown_name_raises_with_known_list():
    with pytest.raises(KeyError, match="openshop"):
        get_scheduler("quantum")
