"""Scheduler registry tests: specs, factory, and legacy shims."""

import warnings

import pytest

from repro.core.problem import example_problem
from repro.core.registry import (
    ALL_SCHEDULERS,
    EXTRA_SCHEDULERS,
    SchedulerSpec,
    get_scheduler,
    get_spec,
    iter_specs,
    make_scheduler,
    scheduler_names,
)
from repro.timing.events import Schedule


# -- legacy surface (unchanged behaviour) -----------------------------------


def test_paper_schedulers_present():
    assert set(scheduler_names()) == {
        "baseline",
        "max_matching",
        "min_matching",
        "greedy",
        "openshop",
    }


def test_extras_present():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        assert "optimal" in EXTRA_SCHEDULERS
        assert "baseline_nosync" in EXTRA_SCHEDULERS


def test_lookup_returns_working_scheduler():
    problem = example_problem()
    for name in scheduler_names():
        schedule = get_scheduler(name)(problem)
        assert isinstance(schedule, Schedule)


def test_extra_lookup():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        assert (
            get_scheduler("baseline_nosync")
            is EXTRA_SCHEDULERS["baseline_nosync"]
        )


def test_unknown_name_raises_with_known_list():
    with pytest.raises(KeyError, match="openshop"):
        get_scheduler("quantum")


# -- spec metadata -----------------------------------------------------------


def test_specs_enumerate_unique_names_by_tier():
    names = [spec.name for spec in iter_specs()]
    assert len(names) == len(set(names))
    tiers = {spec.tier for spec in iter_specs()}
    assert tiers == {"paper", "extra", "variant"}
    paper = [spec.name for spec in iter_specs(tier="paper")]
    assert paper == list(scheduler_names())
    # the tiers partition the full listing
    split = [
        spec.name
        for tier in ("paper", "extra", "variant")
        for spec in iter_specs(tier=tier)
    ]
    assert sorted(split) == sorted(names)


def test_iter_specs_rejects_unknown_tier():
    with pytest.raises(ValueError, match="tier"):
        list(iter_specs(tier="bogus"))


def test_spec_metadata_populated():
    for spec in iter_specs():
        assert isinstance(spec, SchedulerSpec)
        assert spec.complexity
        assert spec.paper_section
        assert spec.summary


def test_guarantees_match_oracle_caps():
    """The invariant oracle's bound table is exactly the specs' claims."""
    from repro.check.oracle import GUARANTEED_BOUNDS

    claimed = {
        spec.name: spec.guarantee
        for spec in iter_specs()
        if spec.guarantee is not None
    }
    assert claimed.keys() == GUARANTEED_BOUNDS.keys()
    for name, bound in GUARANTEED_BOUNDS.items():
        assert claimed[name] is bound


def test_guarantees_hold_on_example():
    problem = example_problem()
    lb = problem.lower_bound()
    for spec in iter_specs():
        if spec.guarantee is None:
            continue
        ratio = spec.fn(problem).completion_time / lb
        assert ratio <= spec.guarantee(problem.num_procs) + 1e-9


# -- make_scheduler ----------------------------------------------------------


def test_make_scheduler_builds_every_registered_name():
    problem = example_problem()
    for spec in iter_specs():
        schedule = make_scheduler(spec.name)(problem)
        assert isinstance(schedule, Schedule)
        assert schedule.num_procs == problem.num_procs


def test_make_scheduler_options_roundtrip():
    problem = example_problem()
    configured = make_scheduler("min_matching", backend="auction")
    variant = make_scheduler("matching_min:auction")
    assert (
        configured(problem).completion_time
        == variant(problem).completion_time
    )
    chunked = make_scheduler("openshop_partitioned", chunks=3)
    assert isinstance(chunked(problem), Schedule)


def test_make_scheduler_unknown_name_lists_known():
    with pytest.raises(KeyError, match="known:"):
        make_scheduler("quantum")


def test_make_scheduler_rejects_unknown_option():
    with pytest.raises(TypeError, match="unknown option"):
        make_scheduler("min_matching", flavour="spicy")


def test_make_scheduler_rejects_options_on_plain_scheduler():
    with pytest.raises(TypeError, match="takes no options"):
        make_scheduler("baseline", backend="auction")


def test_get_spec_exposes_default_callable():
    spec = get_spec("openshop")
    assert get_scheduler("openshop") is spec.fn
    assert make_scheduler("openshop") is spec.fn


# -- deprecation shims -------------------------------------------------------


def test_legacy_dict_getitem_warns():
    with pytest.warns(DeprecationWarning, match="ALL_SCHEDULERS"):
        fn = ALL_SCHEDULERS["openshop"]
    assert fn is get_scheduler("openshop")


def test_legacy_dict_iteration_and_contains_warn():
    with pytest.warns(DeprecationWarning):
        names = list(ALL_SCHEDULERS)
    assert names == list(scheduler_names())
    with pytest.warns(DeprecationWarning):
        assert "optimal" in EXTRA_SCHEDULERS


def test_legacy_dicts_cover_their_tiers():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        assert set(ALL_SCHEDULERS.keys()) == set(scheduler_names())
        assert set(EXTRA_SCHEDULERS.keys()) == {
            spec.name for spec in iter_specs(tier="extra")
        }
