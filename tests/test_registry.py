"""Scheduler registry tests: specs, factory, and spec strings."""

import pytest

from repro.core.problem import example_problem
from repro.core.registry import (
    SchedulerSpec,
    format_scheduler_spec,
    get_scheduler,
    get_spec,
    iter_specs,
    make_scheduler,
    parse_scheduler_spec,
    scheduler_names,
)
from repro.timing.events import Schedule


# -- legacy surface (unchanged behaviour) -----------------------------------


def test_paper_schedulers_present():
    assert set(scheduler_names()) == {
        "baseline",
        "max_matching",
        "min_matching",
        "greedy",
        "openshop",
    }


def test_extras_present():
    extras = {spec.name for spec in iter_specs(tier="extra")}
    assert "optimal" in extras
    assert "baseline_nosync" in extras


def test_lookup_returns_working_scheduler():
    problem = example_problem()
    for name in scheduler_names():
        schedule = get_scheduler(name)(problem)
        assert isinstance(schedule, Schedule)


def test_extra_lookup():
    assert (
        get_scheduler("baseline_nosync")
        is get_spec("baseline_nosync").fn
    )


def test_unknown_name_raises_with_known_list():
    with pytest.raises(KeyError, match="openshop"):
        get_scheduler("quantum")


# -- spec metadata -----------------------------------------------------------


def test_specs_enumerate_unique_names_by_tier():
    names = [spec.name for spec in iter_specs()]
    assert len(names) == len(set(names))
    tiers = {spec.tier for spec in iter_specs()}
    assert tiers == {"paper", "extra", "variant"}
    paper = [spec.name for spec in iter_specs(tier="paper")]
    assert paper == list(scheduler_names())
    # the tiers partition the full listing
    split = [
        spec.name
        for tier in ("paper", "extra", "variant")
        for spec in iter_specs(tier=tier)
    ]
    assert sorted(split) == sorted(names)


def test_iter_specs_rejects_unknown_tier():
    with pytest.raises(ValueError, match="tier"):
        list(iter_specs(tier="bogus"))


def test_spec_metadata_populated():
    for spec in iter_specs():
        assert isinstance(spec, SchedulerSpec)
        assert spec.complexity
        assert spec.paper_section
        assert spec.summary


def test_guarantees_match_oracle_caps():
    """The invariant oracle's bound table is exactly the specs' claims."""
    from repro.check.oracle import GUARANTEED_BOUNDS

    claimed = {
        spec.name: spec.guarantee
        for spec in iter_specs()
        if spec.guarantee is not None
    }
    assert claimed.keys() == GUARANTEED_BOUNDS.keys()
    for name, bound in GUARANTEED_BOUNDS.items():
        assert claimed[name] is bound


def test_guarantees_hold_on_example():
    problem = example_problem()
    lb = problem.lower_bound()
    for spec in iter_specs():
        if spec.guarantee is None:
            continue
        ratio = spec.fn(problem).completion_time / lb
        assert ratio <= spec.guarantee(problem.num_procs) + 1e-9


# -- make_scheduler ----------------------------------------------------------


def test_make_scheduler_builds_every_registered_name():
    problem = example_problem()
    for spec in iter_specs():
        schedule = make_scheduler(spec.name)(problem)
        assert isinstance(schedule, Schedule)
        assert schedule.num_procs == problem.num_procs


def test_make_scheduler_options_roundtrip():
    problem = example_problem()
    configured = make_scheduler("min_matching", backend="auction")
    variant = make_scheduler("matching_min:auction")
    assert (
        configured(problem).completion_time
        == variant(problem).completion_time
    )
    chunked = make_scheduler("openshop_partitioned", chunks=3)
    assert isinstance(chunked(problem), Schedule)


def test_make_scheduler_unknown_name_lists_known():
    with pytest.raises(KeyError, match="known:"):
        make_scheduler("quantum")


def test_make_scheduler_rejects_unknown_option():
    with pytest.raises(TypeError, match="unknown option"):
        make_scheduler("min_matching", flavour="spicy")


def test_make_scheduler_rejects_options_on_plain_scheduler():
    with pytest.raises(TypeError, match="takes no options"):
        make_scheduler("baseline", backend="auction")


def test_get_spec_exposes_default_callable():
    spec = get_spec("openshop")
    assert get_scheduler("openshop") is spec.fn
    assert make_scheduler("openshop") is spec.fn


# -- shims removed + spec strings --------------------------------------------


def test_legacy_dicts_are_gone():
    # The ALL_SCHEDULERS / EXTRA_SCHEDULERS deprecation cycle is over.
    import repro
    import repro.core
    import repro.core.registry as registry

    for module in (repro, repro.core, registry):
        assert not hasattr(module, "ALL_SCHEDULERS")
        assert not hasattr(module, "EXTRA_SCHEDULERS")


def test_make_scheduler_accepts_spec_strings():
    problem = example_problem()
    built = make_scheduler("openshop_partitioned:chunks=4")
    reference = make_scheduler("openshop_partitioned", chunks=4)
    assert (
        built(problem).completion_time
        == reference(problem).completion_time
    )


def test_spec_string_kwargs_override():
    built = make_scheduler("local_search:max_passes=5", max_passes=2)
    reference = make_scheduler("local_search", max_passes=2)
    problem = example_problem()
    assert (
        built(problem).completion_time
        == reference(problem).completion_time
    )


def test_parse_scheduler_spec_prefers_registered_names():
    # "matching_min:auction" is itself a registered name; the parser
    # must not split it into name + bogus options.
    name, options = parse_scheduler_spec("matching_min:auction")
    assert name == "matching_min:auction"
    assert options == {}


def test_scheduler_spec_round_trip():
    name, options = parse_scheduler_spec("openshop_partitioned:chunks=4")
    spec = format_scheduler_spec(name, options)
    assert parse_scheduler_spec(spec) == (name, options)


def test_parse_scheduler_spec_unknown_name():
    with pytest.raises(KeyError, match="openshop"):
        parse_scheduler_spec("quantum:qubits=3")
