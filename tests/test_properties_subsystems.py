"""Property-based tests for the multinet, placement, and QoS subsystems."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.openshop import schedule_openshop
from repro.core.problem import TotalExchangeProblem
from repro.directory.service import DirectorySnapshot
from repro.network.multinet import (
    Channel,
    aggregate_split,
    aggregate_time,
    pbps_time,
)
from repro.placement.optimize import apply_placement, evaluate_placement
from repro.qos.deadlines import QoSMessage, QoSProblem, schedule_edf
from repro.qos.metrics import evaluate_qos
from tests.test_properties import SETTINGS, problems

channels_strategy = st.lists(
    st.builds(
        Channel,
        name=st.uuids().map(str),
        latency=st.floats(0.0, 0.1),
        bandwidth=st.floats(1e3, 1e9),
    ),
    min_size=1,
    max_size=5,
)


@SETTINGS
@given(channels=channels_strategy, size=st.floats(0.0, 1e8))
def test_aggregation_dominates_pbps(channels, size):
    agg = aggregate_time(channels, size)
    pbps = pbps_time(channels, size)
    assert agg <= pbps + 1e-9 * max(1.0, pbps)


@SETTINGS
@given(channels=channels_strategy, size=st.floats(1.0, 1e8))
def test_aggregation_split_is_consistent(channels, size):
    split = aggregate_split(channels, size)
    assert sum(split.values()) == pytest.approx(size, rel=1e-9)
    assert all(share >= -1e-9 for share in split.values())
    # used channels finish within the reported completion time
    total = aggregate_time(channels, size)
    by_name = {c.name: c for c in channels}
    for name, share in split.items():
        if share > 1e-9:
            assert by_name[name].transfer_time(share) <= total + 1e-6


@SETTINGS
@given(problem=problems(min_procs=2, max_procs=6), data=st.data())
def test_placement_permutes_conservatively(problem, data):
    n = problem.num_procs
    perm = data.draw(st.permutations(range(n)))
    sizes = problem.cost  # any nonnegative matrix works as "sizes"
    placed = apply_placement(sizes, perm)
    # total traffic is conserved and the multiset of entries unchanged
    assert placed.sum() == pytest.approx(sizes.sum())
    assert sorted(placed.flatten()) == pytest.approx(
        sorted(sizes.flatten())
    )


@SETTINGS
@given(problem=problems(min_procs=2, max_procs=5))
def test_identity_placement_scores_the_instance(problem):
    latency = np.zeros((problem.num_procs,) * 2)
    bandwidth = np.full((problem.num_procs,) * 2, 1.0)
    np.fill_diagonal(bandwidth, np.inf)
    snapshot = DirectorySnapshot(latency=latency, bandwidth=bandwidth)
    # with unit bandwidth and zero latency, cost == sizes
    score = evaluate_placement(
        snapshot, problem.cost, list(range(problem.num_procs))
    )
    assert score == pytest.approx(problem.lower_bound())


@SETTINGS
@given(problem=problems(min_procs=2, max_procs=6), data=st.data())
def test_edf_respects_model_invariants(problem, data):
    slack = data.draw(st.floats(0.3, 3.0))
    qos = QoSProblem.uniform_deadlines(problem, slack_factor=slack)
    schedule = schedule_edf(qos)
    report = evaluate_qos(qos, schedule)
    assert 0 <= report.missed <= report.total_messages
    assert report.weighted_tardiness >= 0
    assert schedule.completion_time <= 2 * problem.lower_bound() + 1e-9
    # generous slack means no message misses
    if slack >= 2.0:
        assert report.missed == 0
