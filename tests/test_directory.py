"""Directory service tests (static + snapshots)."""

import numpy as np
import pytest

from repro.directory.service import DirectorySnapshot
from repro.directory.static import StaticDirectory, gusto_directory


def snap_matrices(n=3):
    latency = np.full((n, n), 0.02)
    np.fill_diagonal(latency, 0.0)
    bandwidth = np.full((n, n), 1e6)
    np.fill_diagonal(bandwidth, np.inf)
    return latency, bandwidth


class TestDirectorySnapshot:
    def test_pair_query(self):
        latency, bandwidth = snap_matrices()
        snap = DirectorySnapshot(latency=latency, bandwidth=bandwidth)
        t, b = snap.pair(0, 1)
        assert t == pytest.approx(0.02)
        assert b == pytest.approx(1e6)

    def test_transfer_time_model(self):
        latency, bandwidth = snap_matrices()
        snap = DirectorySnapshot(latency=latency, bandwidth=bandwidth)
        # T + m/B = 0.02 + 1e6/1e6 = 1.02
        assert snap.transfer_time(0, 1, 1e6) == pytest.approx(1.02)

    def test_transfer_time_self_is_free(self):
        latency, bandwidth = snap_matrices()
        snap = DirectorySnapshot(latency=latency, bandwidth=bandwidth)
        assert snap.transfer_time(1, 1, 1e9) == 0.0

    def test_immutable(self):
        latency, bandwidth = snap_matrices()
        snap = DirectorySnapshot(latency=latency, bandwidth=bandwidth)
        with pytest.raises(ValueError):
            snap.latency[0, 1] = 99.0

    def test_source_mutation_does_not_leak(self):
        latency, bandwidth = snap_matrices()
        snap = DirectorySnapshot(latency=latency, bandwidth=bandwidth)
        latency[0, 1] = 123.0
        assert snap.latency[0, 1] == pytest.approx(0.02)

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            DirectorySnapshot(latency=np.zeros((2, 3)), bandwidth=np.ones((2, 3)))
        with pytest.raises(ValueError):
            DirectorySnapshot(latency=np.zeros((2, 2)), bandwidth=np.ones((3, 3)))

    def test_rejects_nonpositive_bandwidth(self):
        latency, bandwidth = snap_matrices()
        bandwidth[0, 1] = 0.0
        with pytest.raises(ValueError):
            DirectorySnapshot(latency=latency, bandwidth=bandwidth)

    def test_rejects_negative_latency(self):
        latency, bandwidth = snap_matrices()
        latency[0, 1] = -1.0
        with pytest.raises(ValueError):
            DirectorySnapshot(latency=latency, bandwidth=bandwidth)

    def test_index_validation(self):
        latency, bandwidth = snap_matrices()
        snap = DirectorySnapshot(latency=latency, bandwidth=bandwidth)
        with pytest.raises(ValueError):
            snap.pair(5, 0)


class TestStaticDirectory:
    def test_snapshot_constant_over_time(self):
        latency, bandwidth = snap_matrices()
        directory = StaticDirectory(latency=latency, bandwidth=bandwidth)
        before = directory.snapshot()
        directory.advance(100.0)
        after = directory.snapshot()
        assert np.array_equal(before.latency, after.latency)
        assert after.time == pytest.approx(100.0)

    def test_advance_negative_raises(self):
        latency, bandwidth = snap_matrices()
        directory = StaticDirectory(latency=latency, bandwidth=bandwidth)
        with pytest.raises(ValueError):
            directory.advance(-1.0)

    def test_convenience_queries(self):
        latency, bandwidth = snap_matrices()
        directory = StaticDirectory(latency=latency, bandwidth=bandwidth)
        assert directory.latency(0, 1) == pytest.approx(0.02)
        assert directory.bandwidth(0, 1) == pytest.approx(1e6)
        assert directory.num_procs == 3


def test_gusto_directory():
    directory = gusto_directory()
    assert directory.num_procs == 5
    # AMES -> USC-ISI: 12 ms, 2044 kbit/s
    assert directory.latency(0, 3) == pytest.approx(0.012)
    assert directory.bandwidth(0, 3) == pytest.approx(2044 * 125.0)
