"""Extended-model executor tests (paper Section 6.1)."""

import numpy as np
import pytest

from repro.core.problem import TotalExchangeProblem
from repro.model.extended import FiniteBufferModel, InterleavedReceiveModel
from repro.sim.engine import execute_orders_on_cost
from repro.sim.variants import (
    execute_orders_buffered,
    execute_orders_interleaved,
)
from tests.conftest import random_problem


def fan_in_problem():
    """Two senders, one receiver: the receive bottleneck in miniature."""
    cost = np.array(
        [
            [0.0, 0.0, 4.0],
            [0.0, 0.0, 4.0],
            [0.0, 0.0, 0.0],
        ]
    )
    sizes = np.where(cost > 0, 1e6, 0.0)
    return TotalExchangeProblem(cost=cost, sizes=sizes)


class TestInterleaved:
    def test_single_stream_matches_base(self):
        problem = random_problem(5, seed=0)
        orders = [[d for d in range(5) if d != s] for s in range(5)]
        base = execute_orders_on_cost(problem.cost, orders)
        model = InterleavedReceiveModel(alpha=0.0, max_streams=1)
        inter = execute_orders_interleaved(problem, orders, model)
        assert inter.completion_time == pytest.approx(base.completion_time)

    def test_two_streams_fan_in_batch_time(self):
        # Two simultaneous equal receives finish together at
        # (1 + alpha) * (t1 + t2) = 1.1 * 8 = 8.8.
        problem = fan_in_problem()
        model = InterleavedReceiveModel(alpha=0.1, max_streams=2)
        schedule = execute_orders_interleaved(problem, [[2], [2], []], model)
        assert schedule.completion_time == pytest.approx(8.8)

    def test_alpha_zero_two_streams_no_gain_on_fan_in(self):
        # Interleaving two messages at a single port cannot beat serial
        # receive without extra ports: both take t1 + t2 total.
        problem = fan_in_problem()
        model = InterleavedReceiveModel(alpha=0.0, max_streams=2)
        schedule = execute_orders_interleaved(problem, [[2], [2], []], model)
        assert schedule.completion_time == pytest.approx(8.0)

    def test_interleaving_helps_unequal_senders(self):
        # A short message no longer waits behind a long one: it shares
        # the port and finishes early, freeing its sender.
        cost = np.array(
            [
                [0.0, 0.0, 10.0],
                [0.0, 0.0, 1.0],
                [0.0, 0.0, 0.0],
            ]
        )
        cost[1, 0] = 1.0
        problem = TotalExchangeProblem(cost=cost)
        base = execute_orders_on_cost(problem.cost, [[2], [2, 0], []])
        base_p1_done = max(
            e.finish for e in base if e.src == 1 and e.duration > 0
        )
        model = InterleavedReceiveModel(alpha=0.1, max_streams=2)
        inter = execute_orders_interleaved(problem, [[2], [2, 0], []], model)
        inter_p1_done = max(
            e.finish for e in inter if e.src == 1 and e.duration > 0
        )
        assert inter_p1_done < base_p1_done

    def test_queueing_beyond_streams(self):
        # Three senders into one receiver with 2 streams: the third
        # request waits for a slot.
        cost = np.zeros((4, 4))
        cost[0, 3] = cost[1, 3] = cost[2, 3] = 2.0
        problem = TotalExchangeProblem(cost=cost)
        model = InterleavedReceiveModel(alpha=0.0, max_streams=2)
        schedule = execute_orders_interleaved(
            problem, [[3], [3], [3], []], model
        )
        # first two share (finish at 4), third runs solo 4..6
        assert schedule.completion_time == pytest.approx(6.0)

    def test_zero_cost_markers(self):
        cost = np.zeros((2, 2))
        cost[0, 1] = 0.0
        problem = TotalExchangeProblem(cost=cost)
        model = InterleavedReceiveModel()
        schedule = execute_orders_interleaved(problem, [[1], []], model)
        assert schedule.completion_time == 0.0


class TestBuffered:
    def test_requires_sizes(self):
        problem = random_problem(3, seed=1)  # no sizes
        orders = [[d for d in range(3) if d != s] for s in range(3)]
        with pytest.raises(ValueError, match="sizes"):
            execute_orders_buffered(problem, orders, FiniteBufferModel())

    def test_oversized_message_rejected(self):
        problem = fan_in_problem()
        model = FiniteBufferModel(capacity_bytes=1e3)
        with pytest.raises(ValueError, match="capacity"):
            execute_orders_buffered(problem, [[2], [2], []], model)

    def test_large_buffer_decouples_senders(self):
        # With ample buffer and a fast drain, both deposits overlap: the
        # makespan approaches the wire time of one message plus drains.
        problem = fan_in_problem()
        model = FiniteBufferModel(capacity_bytes=1e9, drain_rate=1e9)
        schedule = execute_orders_buffered(problem, [[2], [2], []], model)
        base = execute_orders_on_cost(
            problem.cost, [[2], [2], []]
        ).completion_time  # 8.0 serial
        assert schedule.completion_time < base
        assert schedule.completion_time == pytest.approx(4.0, rel=0.01)

    def test_blocked_sender_waits_for_space(self):
        # Buffer fits one message: the second deposit waits for the
        # first drain to free space.
        problem = fan_in_problem()
        model = FiniteBufferModel(capacity_bytes=1e6, drain_rate=1e6)
        schedule = execute_orders_buffered(problem, [[2], [2], []], model)
        by_pair = {(e.src, e.dst): e for e in schedule if e.duration > 0}
        # first deposit 0..4, drain 4..5 frees space; second deposit 5..9
        assert by_pair[(1, 2)].start == pytest.approx(5.0)

    def test_drain_serialisation(self):
        # Drains are one-at-a-time: two simultaneous deposits finish
        # their drains back to back.
        problem = fan_in_problem()
        model = FiniteBufferModel(capacity_bytes=1e9, drain_rate=5e5)
        schedule = execute_orders_buffered(problem, [[2], [2], []], model)
        finishes = sorted(
            e.finish for e in schedule if e.duration > 0
        )
        # deposits end at 4; drains take 2 each, serialised: 6 and 8.
        assert finishes == [pytest.approx(6.0), pytest.approx(8.0)]

    def test_sizes_override(self):
        problem = TotalExchangeProblem(
            cost=np.array([[0.0, 1.0], [1.0, 0.0]])
        )
        sizes = np.array([[0.0, 100.0], [100.0, 0.0]])
        model = FiniteBufferModel(capacity_bytes=1e6, drain_rate=1e6)
        schedule = execute_orders_buffered(
            problem, [[1], [0]], model, sizes=sizes
        )
        assert schedule.completion_time > 0
