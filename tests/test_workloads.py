"""Application workload tests."""

import numpy as np
import pytest

from repro.workloads.blockcyclic import block_cyclic_sizes
from repro.workloads.mltraining import (
    allreduce_ring_sizes,
    parameter_server_sizes,
)
from repro.workloads.transpose import block_lengths, transpose_sizes


class TestBlockLengths:
    def test_even_split(self):
        assert block_lengths(12, 4).tolist() == [3, 3, 3, 3]

    def test_uneven_split(self):
        assert block_lengths(10, 4).tolist() == [3, 3, 2, 2]

    def test_total_conserved(self):
        for total in (0, 1, 7, 100):
            assert block_lengths(total, 6).sum() == total

    def test_invalid(self):
        with pytest.raises(ValueError):
            block_lengths(10, 0)
        with pytest.raises(ValueError):
            block_lengths(-1, 2)


class TestTransposeSizes:
    def test_geometry(self):
        sizes = transpose_sizes(12, 3, itemsize=8)
        # each off-diagonal block is 4x4 elements = 128 bytes
        assert sizes[0, 1] == 128.0
        assert np.all(np.diag(sizes) == 0.0)

    def test_total_volume(self):
        n, p = 10, 4
        sizes = transpose_sizes(n, p, itemsize=8)
        rows = block_lengths(n, p)
        expected = 8 * (n * n - np.sum(rows * rows))
        assert sizes.sum() == pytest.approx(expected)

    def test_uneven_blocks_heterogeneous(self):
        sizes = transpose_sizes(10, 4, itemsize=1)
        # blocks are 3,3,2,2: messages range from 3*3=9 down to 2*2=4
        off = sizes[~np.eye(4, dtype=bool)]
        assert off.min() == 4.0
        assert off.max() == 9.0

    def test_invalid(self):
        with pytest.raises(ValueError):
            transpose_sizes(0, 4)
        with pytest.raises(ValueError):
            transpose_sizes(10, 4, itemsize=0)


class TestBlockCyclicSizes:
    def test_volume_conserved(self):
        n, p = 100, 4
        sizes = block_cyclic_sizes(n, p, old_block=2, new_block=5, itemsize=1)
        # total moved = elements whose owner changes
        old_owner = (np.arange(n) // 2) % p
        new_owner = (np.arange(n) // 5) % p
        moved = np.sum(old_owner != new_owner)
        assert sizes.sum() == pytest.approx(moved)

    def test_same_blocks_no_traffic(self):
        sizes = block_cyclic_sizes(64, 4, old_block=4, new_block=4)
        assert sizes.sum() == 0.0

    def test_itemsize_scales(self):
        a = block_cyclic_sizes(50, 3, old_block=1, new_block=7, itemsize=1)
        b = block_cyclic_sizes(50, 3, old_block=1, new_block=7, itemsize=8)
        assert np.array_equal(b, 8 * a)

    def test_empty_array(self):
        sizes = block_cyclic_sizes(0, 3, old_block=2, new_block=3)
        assert sizes.sum() == 0.0

    def test_invalid(self):
        with pytest.raises(ValueError):
            block_cyclic_sizes(10, 0, old_block=1, new_block=2)
        with pytest.raises(ValueError):
            block_cyclic_sizes(10, 2, old_block=0, new_block=2)
        with pytest.raises(ValueError):
            block_cyclic_sizes(-1, 2, old_block=1, new_block=2)


class TestAllreduceRingSizes:
    def test_ring_edges_only(self):
        n, block = 8, float(1 << 20)
        sizes = allreduce_ring_sizes(n, block)
        per_edge = 2 * (n - 1) / n * block
        for i in range(n):
            assert sizes[i, (i + 1) % n] == per_edge
        assert np.count_nonzero(sizes) == n
        assert sizes.sum() == pytest.approx(2 * (n - 1) * block)

    def test_custom_ring_permutes_edges(self):
        ring = [2, 0, 3, 1]
        sizes = allreduce_ring_sizes(4, 1000.0, ring=ring)
        for a, b in zip(ring, ring[1:] + ring[:1]):
            assert sizes[a, b] > 0.0
        assert np.count_nonzero(sizes) == 4

    def test_single_rank_is_silent(self):
        assert allreduce_ring_sizes(1, 1e6).sum() == 0.0

    def test_invalid(self):
        with pytest.raises(ValueError, match="num_procs"):
            allreduce_ring_sizes(0, 1.0)
        with pytest.raises(ValueError, match="block_bytes"):
            allreduce_ring_sizes(4, -1.0)
        with pytest.raises(ValueError, match="permutation"):
            allreduce_ring_sizes(4, 1.0, ring=[0, 1, 2, 2])


class TestParameterServerSizes:
    def test_single_server_incast(self):
        n, block = 6, 900.0
        sizes = parameter_server_sizes(n, block)
        # every worker pushes the full block to rank 0 and pulls it back
        assert np.all(sizes[1:, 0] == block)
        assert np.all(sizes[0, 1:] == block)
        assert sizes.sum() == pytest.approx(2 * (n - 1) * block)

    def test_sharded_servers_split_volume(self):
        sizes = parameter_server_sizes(8, 1000.0, servers=2)
        # workers 2..7 send 500 to each of ranks 0 and 1
        assert np.all(sizes[2:, :2] == 500.0)
        assert np.all(sizes[:2, 2:] == 500.0)
        assert np.all(sizes[:2, :2] == 0.0)

    def test_invalid(self):
        with pytest.raises(ValueError, match="num_procs"):
            parameter_server_sizes(0, 1.0)
        with pytest.raises(ValueError, match="block_bytes"):
            parameter_server_sizes(4, -1.0)
        with pytest.raises(ValueError, match="servers"):
            parameter_server_sizes(4, 1.0, servers=5)
        with pytest.raises(ValueError, match="servers"):
            parameter_server_sizes(4, 1.0, servers=0)
