"""Network topology tests."""

import pytest

from repro.network.topology import Link, Metacomputer


def two_site_system() -> Metacomputer:
    return Metacomputer.build(
        {"a": 2, "b": 2},
        access_latency=0.001,
        access_bandwidth=1e9,
        backbone=[("a", "b", 0.030, 1e6)],
    )


class TestLink:
    def test_valid(self):
        link = Link(latency=0.01, bandwidth=1e6, kind="backbone")
        assert link.kind == "backbone"

    def test_zero_latency_allowed(self):
        Link(latency=0.0, bandwidth=1.0)

    def test_rejects_zero_bandwidth(self):
        with pytest.raises(ValueError):
            Link(latency=0.0, bandwidth=0.0)

    def test_rejects_negative_latency(self):
        with pytest.raises(ValueError):
            Link(latency=-1.0, bandwidth=1.0)


class TestMetacomputer:
    def test_build(self):
        system = two_site_system()
        assert system.num_procs == 4
        assert set(system.sites) == {"a", "b"}
        assert system.is_connected()

    def test_node_indices_sequential(self):
        system = two_site_system()
        assert [n.index for n in system.nodes] == [0, 1, 2, 3]

    def test_node_labels(self):
        system = two_site_system()
        assert system.nodes[0].label() == "a-0"

    def test_duplicate_site_raises(self):
        system = Metacomputer()
        system.add_site("x")
        with pytest.raises(ValueError):
            system.add_site("x")

    def test_unknown_site_raises(self):
        system = Metacomputer()
        with pytest.raises(ValueError):
            system.add_node("nope", access_latency=0, access_bandwidth=1)

    def test_self_connection_raises(self):
        system = Metacomputer()
        system.add_site("x")
        with pytest.raises(ValueError):
            system.connect_sites("x", "x", latency=0.1, bandwidth=1.0)

    def test_connect_unknown_site_raises(self):
        system = Metacomputer()
        system.add_site("x")
        with pytest.raises(ValueError):
            system.connect_sites("x", "y", latency=0.1, bandwidth=1.0)

    def test_links_listing(self):
        system = two_site_system()
        kinds = sorted(link.kind for _, _, link in system.links())
        assert kinds == ["access"] * 4 + ["backbone"]

    def test_node_vertex_range(self):
        system = two_site_system()
        with pytest.raises(ValueError):
            system.node_vertex(99)

    def test_set_link(self):
        system = two_site_system()
        u, v, link = [x for x in system.links() if x[2].kind == "backbone"][0]
        system.set_link(u, v, Link(latency=1.0, bandwidth=5.0, kind="backbone"))
        assert system.link(u, v).latency == 1.0

    def test_set_link_missing_edge_raises(self):
        system = two_site_system()
        with pytest.raises(ValueError):
            system.set_link("node:0", "node:1", Link(latency=1, bandwidth=1))

    def test_disconnected_detection(self):
        system = Metacomputer()
        system.add_site("a")
        system.add_site("b")
        system.add_node("a", access_latency=0.001, access_bandwidth=1e6)
        system.add_node("b", access_latency=0.001, access_bandwidth=1e6)
        assert not system.is_connected()
