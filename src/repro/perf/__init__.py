"""Performance subsystem: kernel timing, memoization, and benchmarks.

The scheduling algorithms only "pay off" at run time when computing a
schedule is cheap relative to the communication it saves (paper Section
6.2; see :mod:`repro.experiments.overhead`).  This package makes
schedule-construction cost a first-class, measured quantity:

* :mod:`repro.perf.timer` — :class:`KernelTimer`, a tiny wall-clock
  harness for best-of-N kernel timing;
* :mod:`repro.perf.reference` — the original scalar-Python kernels,
  frozen as golden references for equivalence tests and before/after
  benchmarking;
* :mod:`repro.perf.memo` — schedule and lower-bound memoization keyed by
  a cost-matrix digest, for repeated-instance experiment paths;
* :mod:`repro.perf.bench` — the micro-benchmark runner behind
  ``python -m repro.cli bench``, which writes ``BENCH_core.json``.
"""

from repro.perf.bench import run_bench, update_bench_json
from repro.perf.memo import (
    ScheduleCache,
    cost_digest,
    default_schedule_cache,
    lower_bound_cached,
    problem_digest,
    schedule_digest,
)
from repro.perf.timer import KernelTimer, KernelTiming

__all__ = [
    "KernelTimer",
    "KernelTiming",
    "ScheduleCache",
    "cost_digest",
    "default_schedule_cache",
    "lower_bound_cached",
    "problem_digest",
    "run_bench",
    "schedule_digest",
    "update_bench_json",
]
