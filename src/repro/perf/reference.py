"""Seed (pre-optimization) kernel implementations, frozen verbatim.

When the greedy/executor/matching hot paths were rewritten as vectorized
or asymptotically better kernels, the original scalar implementations
moved here.  They serve two purposes:

* **golden references** — ``tests/test_golden_equivalence.py`` asserts
  the optimized kernels reproduce these schedules *exactly*
  (event-for-event) on randomized instances;
* **before/after benchmarking** — :mod:`repro.perf.bench` times both
  versions so ``BENCH_core.json`` records the speedup trajectory.

Do not "fix" or optimize this module: its value is bit-level fidelity to
the seed behavior.  Semantics are documented on the live counterparts in
:mod:`repro.core.greedy`, :mod:`repro.sim.engine`, and
:mod:`repro.core.matching`.
"""

from __future__ import annotations

import heapq
from typing import Iterable, List, Optional, Sequence, Set, Tuple

import networkx as nx
import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.core.problem import TotalExchangeProblem
from repro.timing.events import CommEvent, Schedule
from repro.util.validation import check_square_matrix

SendOrders = List[List[int]]


# -- core/greedy.py seed kernels --------------------------------------------


def greedy_steps_reference(cost: np.ndarray) -> List[List[tuple]]:
    """Seed ``greedy_steps``: linear scans over shrinking Python lists."""
    cost = np.asarray(cost, dtype=float)
    n = cost.shape[0]

    remaining: List[List[int]] = []
    for src in range(n):
        dsts = [dst for dst in range(n) if cost[src, dst] > 0]
        dsts.sort(key=lambda dst: (-cost[src, dst], dst))
        remaining.append(dsts)

    order = list(range(n))
    steps: List[List[tuple]] = []
    while any(remaining):
        taken_dsts = set()
        picks: List[tuple] = []
        idled: List[int] = []
        last_picker = None
        for src in order:
            if not remaining[src]:
                continue  # exhausted senders neither pick nor count as idle
            choice = None
            for dst in remaining[src]:
                if dst not in taken_dsts:
                    choice = dst
                    break
            if choice is None:
                idled.append(src)
                continue
            remaining[src].remove(choice)
            taken_dsts.add(choice)
            picks.append((src, choice))
            last_picker = src
        steps.append(picks)
        if idled:
            rest = [src for src in order if src not in idled]
            order = idled + rest
        elif last_picker is not None:
            order = [last_picker] + [src for src in order if src != last_picker]
    return steps


def greedy_orders_reference(problem: TotalExchangeProblem) -> SendOrders:
    """Seed ``greedy_orders``: per-sender ``present`` set plus a P-scan."""
    steps = greedy_steps_reference(problem.cost)
    orders: SendOrders = [[] for _ in range(problem.num_procs)]
    for picks in steps:
        for src, dst in picks:
            orders[src].append(dst)
    cost = problem.cost
    for src in range(problem.num_procs):
        present = set(orders[src])
        for dst in range(problem.num_procs):
            if dst != src and dst not in present and cost[src, dst] == 0:
                orders[src].append(dst)
    return orders


def schedule_greedy_reference(problem: TotalExchangeProblem) -> Schedule:
    """Seed ``schedule_greedy`` on top of the seed step executor."""
    steps = greedy_steps_reference(problem.cost)
    cost = problem.cost
    present = {pair for step in steps for pair in step}
    free_step = [
        (src, dst)
        for src in range(problem.num_procs)
        for dst in range(problem.num_procs)
        if src != dst and cost[src, dst] == 0 and (src, dst) not in present
    ]
    all_steps = steps + [[pair] for pair in free_step]
    return execute_steps_strict_reference(cost, all_steps, sizes=problem.sizes)


# -- sim/engine.py seed kernels ---------------------------------------------


def execute_orders_on_cost_reference(
    cost: np.ndarray,
    orders: Sequence[Sequence[int]],
    *,
    sizes: Optional[np.ndarray] = None,
    validate: bool = True,
) -> Schedule:
    """Seed FIFO executor: per-event numpy indexing, 4-tuple heap entries."""
    from repro.sim.engine import check_orders

    cost = check_square_matrix("cost", cost, nonnegative=True)
    if validate:
        check_orders(orders, cost, require_coverage=False)
    n = cost.shape[0]

    next_index = [0] * n
    recv_free = [0.0] * n
    events: List[CommEvent] = []

    def event_size(src: int, dst: int) -> float:
        return float(sizes[src, dst]) if sizes is not None else 0.0

    heap: List[tuple] = []

    def push_request(src: int, at_time: float) -> None:
        while next_index[src] < len(orders[src]):
            dst = orders[src][next_index[src]]
            next_index[src] += 1
            duration = float(cost[src, dst])
            if duration > 0:
                heapq.heappush(heap, (at_time, src, dst, duration))
                return
            events.append(
                CommEvent(
                    start=at_time,
                    src=src,
                    dst=dst,
                    duration=0.0,
                    size=event_size(src, dst),
                )
            )

    for src in range(n):
        push_request(src, 0.0)

    while heap:
        request_time, src, dst, duration = heapq.heappop(heap)
        start = max(request_time, recv_free[dst])
        finish = start + duration
        recv_free[dst] = finish
        events.append(
            CommEvent(
                start=start,
                src=src,
                dst=dst,
                duration=duration,
                size=event_size(src, dst),
            )
        )
        push_request(src, finish)

    return Schedule.from_events(n, events)


def execute_steps_strict_reference(
    cost: np.ndarray,
    steps,
    *,
    sizes: Optional[np.ndarray] = None,
) -> Schedule:
    """Seed strict step executor: scalar per-event relaxation."""
    from repro.sim.engine import _check_steps

    cost = check_square_matrix("cost", cost, nonnegative=True)
    n = cost.shape[0]
    _check_steps(steps, n)
    send_free = np.zeros(n)
    recv_free = np.zeros(n)
    events: List[CommEvent] = []
    for step in steps:
        placed = []
        for src, dst in step:
            start = max(send_free[src], recv_free[dst])
            duration = float(cost[src, dst])
            placed.append((src, dst, start, duration))
        for src, dst, start, duration in placed:
            if duration > 0:
                send_free[src] = start + duration
                recv_free[dst] = start + duration
            events.append(
                CommEvent(
                    start=start,
                    src=src,
                    dst=dst,
                    duration=duration,
                    size=float(sizes[src, dst]) if sizes is not None else 0.0,
                )
            )
    return Schedule.from_events(n, events)


def execute_steps_barrier_reference(
    cost: np.ndarray,
    steps,
    *,
    sizes: Optional[np.ndarray] = None,
) -> Schedule:
    """Seed barrier step executor: scalar per-event max tracking."""
    from repro.sim.engine import _check_steps

    cost = check_square_matrix("cost", cost, nonnegative=True)
    n = cost.shape[0]
    _check_steps(steps, n)
    events: List[CommEvent] = []
    clock = 0.0
    for step in steps:
        longest = 0.0
        for src, dst in step:
            duration = float(cost[src, dst])
            longest = max(longest, duration)
            events.append(
                CommEvent(
                    start=clock,
                    src=src,
                    dst=dst,
                    duration=duration,
                    size=float(sizes[src, dst]) if sizes is not None else 0.0,
                )
            )
        clock += longest
    return Schedule.from_events(n, events)


# -- core/openshop.py seed kernels ------------------------------------------


def openshop_events_reference(
    cost: np.ndarray,
    pairs: Iterable[Tuple[int, int]],
    sendavail: List[float],
    recvavail: List[float],
    *,
    sizes: Optional[np.ndarray] = None,
) -> List[CommEvent]:
    """Seed ``openshop_events``: per-event ``min`` scan over a Python set."""
    n = len(sendavail)
    recv_sets: List[Set[int]] = [set() for _ in range(n)]
    for src, dst in pairs:
        recv_sets[src].add(dst)
    events: List[CommEvent] = []

    heap = [(sendavail[src], src) for src in range(n) if recv_sets[src]]
    heapq.heapify(heap)

    while heap:
        avail, src = heapq.heappop(heap)
        if avail < sendavail[src] or not recv_sets[src]:
            continue  # stale entry
        receivers = recv_sets[src]
        dst = min(receivers, key=lambda j: (recvavail[j], j))
        start = max(sendavail[src], recvavail[dst])
        duration = float(cost[src, dst])
        finish = start + duration
        events.append(
            CommEvent(
                start=start,
                src=src,
                dst=dst,
                duration=duration,
                size=float(sizes[src, dst]) if sizes is not None else 0.0,
            )
        )
        sendavail[src] = finish
        recvavail[dst] = finish
        receivers.discard(dst)
        if receivers:
            heapq.heappush(heap, (finish, src))
    return events


def schedule_openshop_reference(problem: TotalExchangeProblem) -> Schedule:
    """Seed ``schedule_openshop``: scalar marker loop + eager event build."""
    cost = problem.cost
    n = problem.num_procs
    events: List[CommEvent] = []

    for src in range(n):
        for dst in range(n):
            if src != dst and cost[src, dst] == 0:
                events.append(
                    CommEvent(start=0.0, src=src, dst=dst, duration=0.0,
                              size=problem.size_of(src, dst))
                )

    events += openshop_events_reference(
        cost,
        problem.positive_events(),
        [0.0] * n,
        [0.0] * n,
        sizes=problem.sizes,
    )
    return Schedule.from_events(n, events)


# -- core/matching.py seed kernels ------------------------------------------


def assignment_networkx_reference(weights: np.ndarray, objective) -> np.ndarray:
    """Seed networkx assignment: ``P^2`` scalar ``add_edge`` calls."""
    n = weights.shape[0]
    graph = nx.Graph()
    left = [("s", i) for i in range(n)]
    right = [("r", j) for j in range(n)]
    graph.add_nodes_from(left, bipartite=0)
    graph.add_nodes_from(right, bipartite=1)
    sign = -1.0 if objective == "max" else 1.0
    for i in range(n):
        for j in range(n):
            graph.add_edge(("s", i), ("r", j), weight=sign * weights[i, j])
    matching = nx.bipartite.minimum_weight_full_matching(graph, top_nodes=left)
    permutation = np.empty(n, dtype=int)
    for i in range(n):
        permutation[i] = matching[("s", i)][1]
    return permutation


def _assignment_scipy(weights: np.ndarray, objective) -> np.ndarray:
    rows, cols = linear_sum_assignment(weights, maximize=(objective == "max"))
    permutation = np.empty(weights.shape[0], dtype=int)
    permutation[rows] = cols
    return permutation


def matching_rounds_reference(
    cost: np.ndarray,
    *,
    objective="max",
    backend="scipy",
) -> List[np.ndarray]:
    """Seed ``matching_rounds`` (including its late backend validation)."""
    cost = np.asarray(cost, dtype=float)
    n = cost.shape[0]
    if cost.shape != (n, n):
        raise ValueError(f"cost must be square, got {cost.shape}")
    if np.any(cost < 0):
        raise ValueError("cost entries must be non-negative")
    solve = (
        _assignment_scipy if backend == "scipy" else assignment_networkx_reference
    )
    if backend not in ("scipy", "networkx"):
        raise ValueError(f"unknown backend {backend!r}")

    weights = cost.copy()
    penalty = float(cost.max()) * n + 1.0
    if objective == "max":
        used_value = -penalty
    elif objective == "min":
        used_value = penalty
    else:
        raise ValueError(f"objective must be 'max' or 'min', got {objective!r}")

    rounds: List[np.ndarray] = []
    for _ in range(n):
        permutation = solve(weights, objective)
        rounds.append(permutation)
        weights[np.arange(n), permutation] = used_value
    return rounds
