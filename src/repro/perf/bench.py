"""Micro-benchmark runner for the scheduling kernels.

Times the optimized greedy/executor/matching kernels against the frozen
seed implementations (:mod:`repro.perf.reference`) on deterministic
mixed-workload instances, and writes the machine-readable
``BENCH_core.json`` that records the perf trajectory across PRs.

Invoke as ``python -m repro.cli bench`` (``--smoke`` for a seconds-long
CI variant).  Matching is excluded above ``matching_max_p`` — its
``O(P^4)`` round extraction is not a P=1024 kernel, which is exactly why
the scale study leans on greedy + open shop there.  The frozen seed
kernels stop at ``reference_max_p``: the seed open shop scan alone needs
tens of seconds per repeat at ``P = 512``, so above the cap only the
optimized kernels are timed and the speedup column goes blank rather
than the bench budget exploding.
"""

from __future__ import annotations

import json
import pathlib
import platform
import time
from typing import Any, Dict, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.greedy import greedy_orders, greedy_steps, schedule_greedy
from repro.core.matching import matching_rounds
from repro.core.openshop import schedule_openshop
from repro.core.problem import TotalExchangeProblem
from repro.directory.service import DirectorySnapshot
from repro.model.messages import MixedSizes
from repro.network.generators import random_pairwise_parameters
from repro.perf import reference
from repro.perf.timer import KernelTimer
from repro.sim.engine import execute_orders_on_cost, execute_steps_strict
from repro.util.rng import stable_seed, to_rng

#: The scale ladder: the paper's P=50, the seed repo's P=100 headroom
#: point, the PR-1 P=256 target, and the new P=512 / P=1024 tiers.
DEFAULT_PROC_COUNTS: Tuple[int, ...] = (50, 100, 256, 512, 1024)

#: Small sizes for the CI smoke run.
SMOKE_PROC_COUNTS: Tuple[int, ...] = (16, 32)

#: Kernel name -> its seed-reference counterpart in the timing tables.
REFERENCE_OF: Dict[str, str] = {
    "greedy_steps": "greedy_steps_reference",
    "greedy_end_to_end": "greedy_end_to_end_reference",
    "execute_orders": "execute_orders_reference",
    "execute_steps_strict": "execute_steps_strict_reference",
    "openshop": "openshop_reference",
}

#: Largest size at which the frozen seed kernels are timed.
DEFAULT_REFERENCE_MAX_P = 256

#: Largest size at which the matching backends are timed.  The scipy
#: round extraction alone is ~16 s at P=512; past that the ladder relies
#: on greedy + open shop.
DEFAULT_MATCHING_MAX_P = 512

PathLike = Union[str, pathlib.Path]


def bench_instance(num_procs: int, *, seed: int = 0) -> TotalExchangeProblem:
    """The deterministic mixed-workload instance benched at ``num_procs``."""
    rng = to_rng(stable_seed("bench", seed, num_procs))
    latency, bandwidth = random_pairwise_parameters(num_procs, rng=rng)
    snapshot = DirectorySnapshot(latency=latency, bandwidth=bandwidth)
    return TotalExchangeProblem.from_snapshot(snapshot, MixedSizes(), rng=rng)


def clustered_instance(
    num_procs: int, *, cluster_size: int = 64, seed: int = 0
) -> TotalExchangeProblem:
    """The deterministic cluster-structured instance for the scale ladder.

    A :func:`~repro.network.generators.clustered_pairwise_parameters`
    platform carrying uniform 1 MB messages — the workload the
    hierarchical scheduler targets at ``P > 1024``.
    """
    from repro.model.messages import UniformSizes
    from repro.network.generators import clustered_pairwise_parameters

    rng = to_rng(stable_seed("bench.hier", seed, num_procs, cluster_size))
    latency, bandwidth = clustered_pairwise_parameters(
        num_procs, cluster_size=cluster_size, rng=rng
    )
    snapshot = DirectorySnapshot(latency=latency, bandwidth=bandwidth)
    return TotalExchangeProblem.from_snapshot(
        snapshot, UniformSizes(1e6), rng=rng
    )


def run_hier_scale(
    proc_counts: Sequence[int] = (1024, 2048, 4096, 8192),
    *,
    cluster_size: int = 64,
    seed: int = 0,
    flat_max_p: int = 1024,
    validate: bool = False,
    output: Optional[PathLike] = None,
) -> Dict[str, Dict[str, Any]]:
    """Bench the hierarchical scheduler on the extended scale ladder.

    For each ``P`` the deterministic :func:`clustered_instance` is
    scheduled by the hierarchical scheduler — and, up to ``flat_max_p``,
    by the flat open shop for comparison — recording wall-clock seconds
    and the makespan ratio to the lower bound.  With ``output``, each
    tier lands in that bench JSON under ``extra["scale_p{P}"]``
    (``extra["scale_hier_p{P}"]`` for the tiers the flat benchmarks
    already own).  ``validate`` additionally runs the vectorized
    schedule checker on every result (off by default: checking is
    slower than scheduling at these sizes).
    """
    from repro.core.hierarchical import schedule_hierarchical
    from repro.timing.validate import check_schedule_fast

    results: Dict[str, Dict[str, Any]] = {}
    for num_procs in proc_counts:
        num_procs = int(num_procs)
        problem = clustered_instance(
            num_procs, cluster_size=cluster_size, seed=seed
        )
        lower_bound = problem.lower_bound()
        tier: Dict[str, Any] = {
            "meta": {
                "cluster_size": cluster_size,
                "seed": seed,
                "workload": "uniform 1 MB, clustered platform",
                "lower_bound_s": lower_bound,
            }
        }
        contenders = [("hierarchical", schedule_hierarchical)]
        if num_procs <= flat_max_p:
            contenders.append(("openshop", schedule_openshop))
        for name, scheduler in contenders:
            t0 = time.perf_counter()
            schedule = scheduler(problem)
            makespan = schedule.completion_time
            elapsed = time.perf_counter() - t0
            if validate:
                check_schedule_fast(schedule, problem.cost)
            tier[name] = {
                "seconds": elapsed,
                "ratio_to_lb": makespan / lower_bound if lower_bound else 1.0,
                "events": len(schedule),
            }
        results[str(num_procs)] = tier
        if output is not None:
            section = (
                f"scale_p{num_procs}"
                if num_procs > 1024
                else f"scale_hier_p{num_procs}"
            )
            update_bench_json(section, tier, output)
    return results


def run_drift_response(
    proc_counts: Sequence[int] = (256, 1024, 4096),
    *,
    ticks: int = 8,
    dirty_node_fraction: float = 0.05,
    cluster_size: int = 64,
    hier_min_p: int = 2048,
    seed: int = 0,
    output: Optional[PathLike] = None,
) -> Dict[str, Dict[str, Any]]:
    """Drift-tick latency: delta repair vs. a full reschedule.

    For each ``P`` the deterministic :func:`clustered_instance` is
    planned once; each subsequent tick congests a different contiguous
    ~5% window of nodes (every outgoing link of an affected node
    repriced by its own factor in [0.9, 1.15] — a moving congestion
    spot relative to the plan's basis, the moderate-drift regime the
    policy routes to the repair tier) and the plan is updated both
    ways under a wall clock:

    * **repair** — :mod:`repro.adaptive.delta` event-level repair below
      ``hier_min_p`` (the flat open shop tiers), block-level
      :meth:`HierarchicalScheduler.delta_repair` at and above it; both
      validated inline with the fast checker, exactly like the serving
      hot path;
    * **full** — the matching from-scratch scheduler on the same costs.

    Every repair splices the *anchored* plan — exactly what the session
    does on its repair tier — so the first tick pays the splice's
    one-time level pass and later ticks show the warm steady state the
    p50 reports.  Results land under ``extra["drift_response_p{P}"]``
    with p50/p99 latencies for both paths, the p50 speedup, and the
    worst repaired/from-scratch makespan ratio across the ticks.
    """
    from repro.adaptive.delta import repair_schedule_delta
    from repro.core.hierarchical import HierarchicalScheduler
    from repro.timing.validate import check_schedule_fast

    if ticks < 2:
        raise ValueError(f"ticks must be >= 2, got {ticks}")

    results: Dict[str, Dict[str, Any]] = {}
    for num_procs in proc_counts:
        num_procs = int(num_procs)
        hierarchical = num_procs >= hier_min_p
        problem = clustered_instance(
            num_procs, cluster_size=cluster_size, seed=seed
        )
        dirty_nodes = max(1, round(dirty_node_fraction * num_procs))
        rng = to_rng(stable_seed("bench.drift", seed, num_procs))

        if hierarchical:
            scheduler = HierarchicalScheduler()
            incumbent = scheduler(problem)
        else:
            incumbent = schedule_openshop(problem)
        basis = problem.cost

        repair_s, full_s, ratios = [], [], []
        dirty_fracs, repaired_events = [], []
        for _ in range(ticks - 1):
            start = int(rng.integers(0, num_procs - dirty_nodes + 1))
            factors = rng.uniform(0.9, 1.15, size=(dirty_nodes, num_procs))
            cost = basis.copy()
            cost[start:start + dirty_nodes, :] *= factors
            np.fill_diagonal(cost, basis.diagonal())
            current = TotalExchangeProblem(cost=cost, sizes=problem.sizes)

            t0 = time.perf_counter()
            if hierarchical:
                result = scheduler.delta_repair(current, validate=True)
            else:
                result = repair_schedule_delta(
                    incumbent, basis, current, validate=True
                )
            repair_s.append(time.perf_counter() - t0)
            assert result is not None, "repair refused a moderate storm"

            t0 = time.perf_counter()
            if hierarchical:
                scratch = HierarchicalScheduler()(current)
            else:
                scratch = schedule_openshop(current)
            full_s.append(time.perf_counter() - t0)
            check_schedule_fast(scratch, current.cost)

            ratios.append(
                result.completion_time / scratch.completion_time
            )
            relevant = (basis > 0) | (cost > 0)
            dirty_fracs.append(
                float(((basis != cost) & relevant).sum() / relevant.sum())
            )
            repaired_events.append(result.reinserted)

        def _stats(samples) -> Dict[str, float]:
            values = np.asarray(samples, dtype=float)
            return {
                "p50_s": float(np.quantile(values, 0.50)),
                "p99_s": float(np.quantile(values, 0.99)),
                "mean_s": float(values.mean()),
            }

        repair_stats = _stats(repair_s)
        full_stats = _stats(full_s)
        tier: Dict[str, Any] = {
            "meta": {
                "ticks": ticks,
                "dirty_nodes": dirty_nodes,
                "cluster_size": cluster_size,
                "seed": seed,
                "scheduler": (
                    "hierarchical" if hierarchical else "openshop"
                ),
                "workload": "uniform 1 MB, clustered platform",
            },
            "repair": repair_stats,
            "full": full_stats,
            "speedup_p50": full_stats["p50_s"] / repair_stats["p50_s"],
            "makespan_ratio_max": float(max(ratios)),
            "dirty_fraction_mean": float(np.mean(dirty_fracs)),
            "repaired_events_mean": float(np.mean(repaired_events)),
        }
        results[str(num_procs)] = tier
        if output is not None:
            update_bench_json(
                f"drift_response_p{num_procs}", tier, output
            )
    return results


def run_drift_metrics_bench(
    num_procs: int = 1024,
    *,
    repeats: int = 5,
    seed: int = 0,
    output: Optional[PathLike] = None,
) -> Dict[str, Any]:
    """Micro-bench the per-tick drift metrics at serving scale.

    ``drift_magnitude``, ``changed_mask`` and ``dirty_fraction`` run on
    *every* serving tick before any decision is made, so their cost is a
    floor on tick latency; this pins them (vectorized, milliseconds at
    P=1024) into the bench record.
    """
    from repro.adaptive.incremental import changed_mask, dirty_fraction
    from repro.runtime.policy import drift_magnitude

    rng = to_rng(stable_seed("bench.drift-metrics", seed, num_procs))
    basis = rng.uniform(0.5, 5.0, (num_procs, num_procs))
    current = basis * rng.uniform(0.9, 1.1, basis.shape)
    timer = KernelTimer(repeats=repeats)
    timer.time("drift_magnitude", drift_magnitude, basis, current)
    timer.time("changed_mask", changed_mask, basis, current)
    timer.time("dirty_fraction", dirty_fraction, basis, current)
    payload = {
        "meta": {"num_procs": num_procs, "repeats": repeats, "seed": seed},
        **timer.summary(),
    }
    if output is not None:
        update_bench_json(
            f"drift_metrics_p{num_procs}", payload, output
        )
    return payload


def collectives_instance(num_procs: int, *, seed: int = 0) -> DirectorySnapshot:
    """The deterministic clustered snapshot the collectives are benched on."""
    from repro.network.generators import clustered_pairwise_parameters

    rng = to_rng(stable_seed("bench.collectives", seed, num_procs))
    cluster_size = min(64, max(2, num_procs // 4))
    latency, bandwidth = clustered_pairwise_parameters(
        num_procs, cluster_size=cluster_size, rng=rng
    )
    return DirectorySnapshot(latency=latency, bandwidth=bandwidth)


def run_collectives_bench(
    proc_counts: Sequence[int] = (64, 256),
    *,
    size_bytes: float = float(1 << 20),
    seed: int = 0,
    output: Optional[PathLike] = None,
) -> Dict[str, Dict[str, Any]]:
    """Bench the collective planners on clustered heterogeneous platforms.

    For each ``P`` every planner schedules a ``size_bytes`` payload on
    the deterministic :func:`collectives_instance`, recording planning
    wall-clock, modelled completion time and event count.  The tier also
    pins the headline quality ratios — the log-round broadcast vs the
    binomial tree and the pipelined straggler-aware ring vs the lockstep
    rank-order ring — which the regression guard holds tight.  Tiers
    land under ``extra["collectives_p{P}"]``.
    """
    from repro.collectives import (
        allreduce_log_tree,
        allreduce_rs_ag,
        alltoall_direct_plan,
        broadcast_log_plan,
        make_collective,
    )

    binomial_fn = make_collective("broadcast_binomial")
    lockstep_fn = make_collective("allreduce_ring")

    results: Dict[str, Dict[str, Any]] = {}
    for num_procs in proc_counts:
        num_procs = int(num_procs)
        snapshot = collectives_instance(num_procs, seed=seed)
        tier: Dict[str, Any] = {
            "meta": {
                "size_bytes": size_bytes,
                "seed": seed,
                "platform": "clustered",
            }
        }

        def timed(name: str, fn, *args, **kwargs):
            t0 = time.perf_counter()
            plan = fn(*args, **kwargs)
            elapsed = time.perf_counter() - t0
            tier[name] = {
                "seconds": elapsed,
                "completion_s": float(plan.completion_time),
                "events": len(plan.schedule),
            }
            return plan.completion_time

        binomial = timed(
            "broadcast_binomial", binomial_fn, snapshot, size_bytes
        )
        log_bcast = timed(
            "broadcast_log", broadcast_log_plan, snapshot, size_bytes
        )
        lockstep = timed(
            "allreduce_lockstep", lockstep_fn, snapshot, size_bytes
        )
        ring_auto = timed(
            "allreduce_ring_auto", allreduce_rs_ag, snapshot, size_bytes
        )
        timed(
            "allreduce_ring_rank_order", allreduce_rs_ag,
            snapshot, size_bytes, ring=range(num_procs),
        )
        timed(
            "allreduce_tree", allreduce_log_tree, snapshot, size_bytes
        )
        timed(
            "alltoall_direct_ring", alltoall_direct_plan,
            snapshot, size_bytes, topology="ring",
        )
        timed(
            "alltoall_direct_torus", alltoall_direct_plan,
            snapshot, size_bytes, topology="torus",
        )
        if num_procs & (num_procs - 1) == 0:
            timed(
                "alltoall_direct_hypercube", alltoall_direct_plan,
                snapshot, size_bytes, topology="hypercube",
            )
        tier["broadcast_log_vs_binomial"] = float(binomial) / float(log_bcast)
        tier["allreduce_pipelined_vs_lockstep"] = (
            float(lockstep) / float(ring_auto)
        )
        results[str(num_procs)] = tier
        if output is not None:
            update_bench_json(f"collectives_p{num_procs}", tier, output)
    return results


def run_allreduce_straggler_serve(
    num_procs: int = 512,
    *,
    ticks: int = 8,
    block_bytes: float = float(1 << 26),
    straggler_factor: float = 8.0,
    straggler_tick: int = 3,
    straggler_ticks: int = 2,
    scheduler: str = "greedy",
    seed: int = 0,
    output: Optional[PathLike] = None,
) -> Dict[str, Any]:
    """Serve ring all-reduce traffic through a straggler episode.

    The gradient-synchronisation demand matrix
    (:func:`repro.workloads.mltraining.allreduce_ring_sizes`) is served
    by an :class:`~repro.runtime.AdaptiveSession` over a hand-built
    drift trace: calm ticks, then ``straggler_ticks`` ticks during which
    one node's links collapse by ``straggler_factor``, then recovery.
    Records per-tick planning latency, the session's decision mix (the
    straggler must push the policy off the pure-reuse path) and the
    worst executed-makespan degradation.  Lands under
    ``extra["collectives_allreduce_straggler_p{P}"]``.
    """
    from repro.runtime import AdaptiveSession, PolicyConfig
    from repro.sim.replay import DriftTrace, TraceDirectory
    from repro.workloads.mltraining import allreduce_ring_sizes

    if ticks < straggler_tick + straggler_ticks + 1:
        raise ValueError(
            f"need ticks > {straggler_tick + straggler_ticks}, got {ticks}"
        )
    base = collectives_instance(num_procs, seed=seed)
    # The straggler is the node on the critical ring edge: the ring
    # makespan is the slowest edge's time, so slowing anyone else by
    # straggler_factor can vanish below it and the episode would be
    # invisible at large P.
    per_edge = 2.0 * (num_procs - 1) / num_procs * block_bytes
    ring_edge_times = np.array([
        base.latency[i, (i + 1) % num_procs]
        + per_edge / base.bandwidth[i, (i + 1) % num_procs]
        for i in range(num_procs)
    ])
    straggler = int(ring_edge_times.argmax())
    slow_bandwidth = base.bandwidth.copy()
    slow_bandwidth[straggler, :] /= straggler_factor
    slow_bandwidth[:, straggler] /= straggler_factor
    np.fill_diagonal(slow_bandwidth, base.bandwidth.diagonal())
    snapshots = []
    for tick in range(ticks):
        if straggler_tick <= tick < straggler_tick + straggler_ticks:
            snapshots.append(DirectorySnapshot(
                latency=base.latency, bandwidth=slow_bandwidth,
                time=float(tick),
            ))
        else:
            snapshots.append(DirectorySnapshot(
                latency=base.latency, bandwidth=base.bandwidth,
                time=float(tick),
            ))
    trace = DriftTrace(
        times=tuple(float(t) for t in range(ticks)),
        snapshots=tuple(snapshots),
    )
    sizes = allreduce_ring_sizes(num_procs, block_bytes)
    # The policy's drift measure is a *mean* over demand pairs, so a
    # single straggler (2 of P ring edges) dilutes below the default
    # reuse threshold once P is large.  Ring gradient sync is governed
    # by its slowest edge, so scale the thresholds with P: one edge
    # drifting by ~straggler_factor must register.
    policy = PolicyConfig(
        reuse_threshold=min(0.05, 2.0 / num_procs),
        refine_threshold=min(0.25, 8.0 / num_procs),
    )
    session = AdaptiveSession(
        TraceDirectory(trace), sizes, scheduler=scheduler, policy=policy
    )
    tick_s, makespans, decisions_seq = [], [], []
    for tick in range(ticks):
        t0 = time.perf_counter()
        result = session.tick(dt=1.0 if tick else 0.0)
        tick_s.append(time.perf_counter() - t0)
        makespans.append(result.event.executed_makespan)
        decisions_seq.append(result.event.decision)
    latencies = np.asarray(tick_s)
    baseline = makespans[0]
    payload: Dict[str, Any] = {
        "meta": {
            "num_procs": num_procs,
            "ticks": ticks,
            "block_bytes": block_bytes,
            "straggler_node": straggler,
            "straggler_factor": straggler_factor,
            "straggler_window": [
                straggler_tick, straggler_tick + straggler_ticks
            ],
            "scheduler": scheduler,
            "seed": seed,
            "workload": "ring all-reduce gradient sync",
        },
        "tick_latency": {
            "p50_s": float(np.quantile(latencies, 0.50)),
            "p99_s": float(np.quantile(latencies, 0.99)),
            "max_s": float(latencies.max()),
        },
        "decisions": {
            name: decisions_seq.count(name)
            for name in ("reuse", "refine", "repair", "reschedule")
        },
        "decision_sequence": decisions_seq,
        "makespan": {
            "baseline_s": float(baseline),
            "straggler_worst_s": float(max(makespans)),
            "degradation_max": (
                float(max(makespans) / baseline) if baseline else 1.0
            ),
        },
    }
    if output is not None:
        update_bench_json(
            f"collectives_allreduce_straggler_p{num_procs}", payload, output
        )
    return payload


def _drive_daemon(
    *,
    tenants: int,
    cohorts: int,
    procs: int,
    connections: int,
    duration_s: float,
    scheduler: str,
    directory: str,
    workload: str,
    workloads: Optional[Sequence[str]] = None,
    max_queue: int = 512,
    batch_max: int = 64,
) -> Tuple[Any, Dict[str, Any]]:
    """Start a daemon on a temp unix socket, drive load, tear down.

    Returns the generator's :class:`~repro.serve.client.LoadReport` and
    the daemon's final ``stats()`` payload.
    """
    import os
    import tempfile
    import threading

    from repro.serve import (
        DaemonClient,
        DaemonConfig,
        LoadGenerator,
        SchedulerDaemon,
    )

    sock = os.path.join(
        tempfile.mkdtemp(prefix="repro-bench-daemon-"), "daemon.sock"
    )
    daemon = SchedulerDaemon(
        DaemonConfig(
            socket_path=sock, max_queue=max_queue, batch_max=batch_max
        )
    )
    daemon.bind()
    thread = threading.Thread(target=daemon.serve_forever, daemon=True)
    thread.start()
    try:
        generator = LoadGenerator(
            sock,
            tenants=tenants,
            cohorts=cohorts,
            procs=procs,
            scheduler=scheduler,
            directory=directory,
            workload=workload,
            workloads=workloads,
            connections=connections,
        )
        report = generator.run(duration_s)
        with DaemonClient(sock) as client:
            stats = client.stats()
            client.shutdown()
    finally:
        thread.join(timeout=10)
    return report, stats


def _daemon_payload(
    report: Any, stats: Dict[str, Any], meta: Dict[str, Any]
) -> Dict[str, Any]:
    return {
        "meta": meta,
        "throughput": {
            "requests_per_s": report.requests_per_s,
            "requests": report.requests,
            "accepted": report.accepted,
            "retried": report.retried,
            "dropped": report.dropped,
            "errors": report.errors,
            "backpressured": report.backpressured,
        },
        "decision_latency": {
            "p50_s": report.decision_p50_s,
            "p99_s": report.decision_p99_s,
        },
        "client_latency": {
            "p50_s": report.latency_p50_s,
            "p99_s": report.latency_p99_s,
        },
        "decisions": dict(report.decisions),
        "batching": {
            "batched": report.batched,
            "cache_hits": report.cache_hits,
            "daemon_batched": stats["counters"]["batched"],
        },
        "daemon": {
            "counters": dict(stats["counters"]),
            "cache": dict(stats["cache"]),
            "decision_latency": dict(stats["decision_latency"]),
        },
    }


def run_daemon_load(
    tenants: int = 100,
    *,
    cohorts: int = 16,
    procs: int = 6,
    connections: int = 4,
    duration_s: float = 6.0,
    scheduler: str = "openshop",
    directory: str = "drift:sigma=0.02",
    workload: str = "mixed",
    output: Optional[PathLike] = None,
) -> Dict[str, Any]:
    """Multi-tenant daemon load tier: throughput and decision latency.

    Spins up a :class:`~repro.serve.SchedulerDaemon` on a temp unix
    socket and drives it with the closed-loop pipelined load generator
    (``tenants`` sessions over ``cohorts`` shared profiles, so
    same-digest requests exercise cross-tenant batching).  Records
    end-to-end req/s, daemon-side decision-latency percentiles, the
    decision mix, and batching/cache effectiveness.  Lands under
    ``extra["daemon_load_t{tenants}"]``.
    """
    report, stats = _drive_daemon(
        tenants=tenants,
        cohorts=cohorts,
        procs=procs,
        connections=connections,
        duration_s=duration_s,
        scheduler=scheduler,
        directory=directory,
        workload=workload,
    )
    payload = _daemon_payload(report, stats, {
        "tenants": tenants,
        "cohorts": cohorts,
        "num_procs": procs,
        "connections": connections,
        "duration_s": duration_s,
        "scheduler": scheduler,
        "directory": directory,
        "workload": workload,
    })
    if output is not None:
        update_bench_json(f"daemon_load_t{tenants}", payload, output)
    return payload


def run_daemon_ps_fanin(
    tenants: int = 64,
    *,
    cohorts: int = 8,
    procs: int = 8,
    connections: int = 4,
    duration_s: float = 6.0,
    servers: int = 1,
    block_scale: float = float(1 << 20),
    pareto_alpha: float = 1.2,
    scheduler: str = "openshop",
    directory: str = "drift:sigma=0.02",
    seed: int = 0,
    output: Optional[PathLike] = None,
) -> Dict[str, Any]:
    """Parameter-server fan-in through the daemon with a heavy-tail mix.

    Each cohort serves the parameter-server demand matrix
    (:func:`repro.workloads.mltraining.parameter_server_sizes`) with its
    own gradient size drawn from a Pareto(``pareto_alpha``) distribution
    scaled by ``block_scale`` — a heavy-tail tenant mix where a few
    cohorts push order-of-magnitude larger pushes/pulls through the same
    daemon.  Fan-in concentrates all demand on the server rows, the
    worst case for the per-tenant planning problems.  Lands under
    ``extra["daemon_ps_fanin_t{tenants}"]``.
    """
    rng = np.random.default_rng(seed)
    block_sizes = [
        float(block_scale * (1.0 + draw))
        for draw in rng.pareto(pareto_alpha, size=cohorts)
    ]
    workloads = [
        f"ps:block_bytes={block:.0f},servers={servers}"
        for block in block_sizes
    ]
    report, stats = _drive_daemon(
        tenants=tenants,
        cohorts=cohorts,
        procs=procs,
        connections=connections,
        duration_s=duration_s,
        scheduler=scheduler,
        directory=directory,
        workload=workloads[0],
        workloads=workloads,
    )
    payload = _daemon_payload(report, stats, {
        "tenants": tenants,
        "cohorts": cohorts,
        "num_procs": procs,
        "connections": connections,
        "duration_s": duration_s,
        "scheduler": scheduler,
        "directory": directory,
        "servers": servers,
        "block_scale": block_scale,
        "pareto_alpha": pareto_alpha,
        "seed": seed,
        "workload": "parameter-server fan-in, heavy-tail cohort mix",
        "cohort_block_bytes": block_sizes,
    })
    if output is not None:
        update_bench_json(f"daemon_ps_fanin_t{tenants}", payload, output)
    return payload


def run_soak_smoke(
    *,
    seed: int = 0,
    ops_dir: Optional[PathLike] = None,
    output: Optional[PathLike] = None,
) -> Dict[str, Any]:
    """Chaos-soak smoke tier: the seeded CI soak as a guarded benchmark.

    Runs :func:`repro.ops.soak.run_soak` with the smoke configuration
    (6 tenants x 40 ticks of drift storms, faults, and forced scheduler
    timeouts, plus the daemon restart/backup phase) and records the
    outcome the regression guard cares about: zero oracle violations,
    zero dropped requests, the deterministic ``fallback_rate`` alert
    firing *and* resolving, backup/restart bit-identity, and the wall
    time.  Lands under ``extra["soak_smoke"]``.
    """
    import shutil
    import tempfile

    from repro.ops.soak import SoakConfig, run_soak

    config = SoakConfig.smoke(seed)
    workdir = pathlib.Path(ops_dir) if ops_dir else pathlib.Path(
        tempfile.mkdtemp(prefix="repro-soak-")
    )
    try:
        report = run_soak(config, workdir)
    finally:
        if ops_dir is None:
            shutil.rmtree(workdir, ignore_errors=True)
    payload = {
        "meta": {
            "tenants": config.tenants,
            "num_procs": config.procs,
            "ticks": config.ticks,
            "sim_seconds": config.sim_seconds,
            "seed": seed,
            "scheduler": config.scheduler,
        },
        "ok": report.ok,
        "oracle_checks": report.oracle_checks,
        "oracle_violations": report.oracle_violations,
        "decisions": report.decisions,
        "fallback_activations": report.fallback_activations,
        "alerts_fired": report.alerts_fired,
        "alerts_resolved": report.alerts_resolved,
        "daemon": {
            "accepted": report.daemon.get("accepted", 0),
            "served": report.daemon.get("served", 0),
            "dropped": report.daemon.get("dropped", 0),
            "zero_loss": report.daemon.get("zero_loss", False),
            "restart_bit_identical": report.daemon.get(
                "restart_bit_identical", False
            ),
        },
        "backup_bit_identical": bool(
            report.backup.get("bit_identical", False)
        ),
        "store": {
            "segments": report.store.get("segments", 0),
            "sealed_segments": report.store.get("sealed_segments", 0),
            "records_written": report.store.get("records_written", 0),
        },
        "wall_s": report.wall_s,
    }
    if output is not None:
        update_bench_json("soak_smoke", payload, output)
    return payload


def _bench_one_size(
    num_procs: int,
    *,
    repeats: int,
    include_reference: bool,
    matching_max_p: int,
    reference_max_p: int,
    seed: int,
) -> KernelTimer:
    problem = bench_instance(num_procs, seed=seed)
    cost = problem.cost
    timer = KernelTimer(repeats=repeats)

    steps = timer.time("greedy_steps", greedy_steps, cost)
    orders = greedy_orders(problem)
    timer.time(
        "execute_orders", execute_orders_on_cost, cost, orders,
        sizes=problem.sizes,
    )
    timer.time(
        "execute_steps_strict", execute_steps_strict, cost, steps,
        sizes=problem.sizes,
    )
    timer.time("greedy_end_to_end", schedule_greedy, problem)
    timer.time("openshop", schedule_openshop, problem)
    if num_procs <= matching_max_p:
        # One extraction takes tens of seconds per backend at P=512;
        # a single repeat keeps the tier inside the bench budget.
        matching_repeats = repeats if num_procs <= 256 else 1
        timer.time(
            "matching_rounds_scipy", matching_rounds, cost,
            repeats=matching_repeats,
        )
        timer.time(
            "matching_rounds_auction", matching_rounds, cost,
            backend="auction", repeats=matching_repeats,
        )

    if include_reference and num_procs <= reference_max_p:
        timer.time(
            "greedy_steps_reference", reference.greedy_steps_reference, cost
        )
        timer.time(
            "execute_orders_reference",
            reference.execute_orders_on_cost_reference,
            cost,
            orders,
            sizes=problem.sizes,
        )
        timer.time(
            "execute_steps_strict_reference",
            reference.execute_steps_strict_reference,
            cost,
            steps,
            sizes=problem.sizes,
        )
        timer.time(
            "greedy_end_to_end_reference",
            reference.schedule_greedy_reference,
            problem,
        )
        timer.time(
            "openshop_reference", reference.schedule_openshop_reference,
            problem,
        )
    return timer


def run_bench(
    proc_counts: Optional[Sequence[int]] = None,
    *,
    repeats: int = 3,
    smoke: bool = False,
    include_reference: bool = True,
    matching_max_p: int = DEFAULT_MATCHING_MAX_P,
    reference_max_p: int = DEFAULT_REFERENCE_MAX_P,
    seed: int = 0,
    output: Optional[PathLike] = None,
) -> Dict[str, Any]:
    """Run the kernel benchmarks and return (and optionally write) results.

    ``smoke`` swaps in tiny sizes and a single repeat so CI can exercise
    the whole path in seconds.  With ``output``, the result is written as
    JSON (``BENCH_core.json`` at the repo root by convention).
    """
    if smoke:
        proc_counts = SMOKE_PROC_COUNTS if proc_counts is None else proc_counts
        repeats = 1
    elif proc_counts is None:
        proc_counts = DEFAULT_PROC_COUNTS

    kernels: Dict[str, Dict[str, Any]] = {}
    speedups: Dict[str, Dict[str, float]] = {}
    for num_procs in proc_counts:
        timer = _bench_one_size(
            int(num_procs),
            repeats=repeats,
            include_reference=include_reference,
            matching_max_p=matching_max_p,
            reference_max_p=reference_max_p,
            seed=seed,
        )
        kernels[str(num_procs)] = timer.summary()
        per_p = {}
        for name, ref_name in REFERENCE_OF.items():
            if name in timer.timings and ref_name in timer.timings:
                per_p[name] = timer.speedup(ref_name, name)
        if per_p:
            speedups[str(num_procs)] = per_p

    result: Dict[str, Any] = {
        "meta": {
            "generated_by": "repro.perf.bench",
            "timestamp": time.time(),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
            "proc_counts": [int(p) for p in proc_counts],
            "repeats": repeats,
            "matching_max_p": matching_max_p,
            "reference_max_p": reference_max_p,
            "smoke": smoke,
            "seed": seed,
            "workload": "mixed (1 kB / 1 MB)",
        },
        "kernels": kernels,
        "speedups_vs_reference": speedups,
    }
    if output is not None:
        write_bench_json(result, output)
    return result


def write_bench_json(result: Dict[str, Any], path: PathLike) -> pathlib.Path:
    """Write a bench result as pretty-printed JSON."""
    path = pathlib.Path(path)
    path.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
    return path


def update_bench_json(
    section: str, payload: Dict[str, Any], path: PathLike
) -> pathlib.Path:
    """Merge ``payload`` under ``extra[section]`` of an existing bench file.

    Lets external measurements (e.g. the P=256 benchmark scale point)
    land in the same ``BENCH_core.json`` the bench runner maintains.  A
    missing or unreadable file starts fresh rather than failing.
    """
    path = pathlib.Path(path)
    data: Dict[str, Any] = {}
    if path.exists():
        try:
            loaded = json.loads(path.read_text())
            if isinstance(loaded, dict):
                data = loaded
        except (OSError, json.JSONDecodeError):
            data = {}
    data.setdefault("extra", {})[section] = payload
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return path


def render_bench(result: Dict[str, Any]) -> str:
    """Human-readable table of a :func:`run_bench` result."""
    from repro.util.tables import format_table

    rows = []
    for p_label, timings in result["kernels"].items():
        per_p_speedups = result.get("speedups_vs_reference", {}).get(
            p_label, {}
        )
        for name, timing in timings.items():
            speedup = per_p_speedups.get(name)
            rows.append([
                int(p_label),
                name,
                timing["best_s"],
                timing["mean_s"],
                f"{speedup:.1f}x" if speedup is not None else "-",
            ])
    return format_table(
        ["P", "kernel", "best (s)", "mean (s)", "speedup vs seed"],
        rows,
        precision=4,
        title="repro.perf kernel benchmarks",
    )
