"""Wall-clock timing of scheduling kernels.

:class:`KernelTimer` is deliberately tiny: best-of-N ``perf_counter``
timing with named results, enough for the bench runner and for
experiments that need to report scheduling cost next to simulated
communication time.  It has no dependencies beyond the standard library
so it can wrap any callable in the code base.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, Tuple


@dataclass(frozen=True)
class KernelTiming:
    """Timing record for one named kernel.

    ``best`` is the minimum over repeats (the conventional micro-benchmark
    statistic: least interference from the rest of the machine); ``mean``
    is the average, kept because schedulers invoked once per adaptation
    step experience the mean, not the best.
    """

    name: str
    repeats: int
    best: float
    mean: float
    times: Tuple[float, ...]

    def as_dict(self) -> Dict[str, Any]:
        return {
            "best_s": self.best,
            "mean_s": self.mean,
            "repeats": self.repeats,
        }


class KernelTimer:
    """Best-of-N wall-clock timer with named, accumulated results.

    >>> timer = KernelTimer(repeats=3)
    >>> result = timer.time("square", lambda x: x * x, 21)
    >>> result
    441
    >>> timer.timings["square"].repeats
    3
    """

    def __init__(self, repeats: int = 3):
        if repeats < 1:
            raise ValueError(f"repeats must be >= 1, got {repeats}")
        self.repeats = repeats
        #: name -> :class:`KernelTiming`, in insertion order.
        self.timings: Dict[str, KernelTiming] = {}

    def time(
        self,
        name: str,
        func: Callable[..., Any],
        *args: Any,
        repeats: int | None = None,
        **kwargs: Any,
    ) -> Any:
        """Time ``func(*args, **kwargs)`` and return its (last) result."""
        reps = self.repeats if repeats is None else repeats
        if reps < 1:
            raise ValueError(f"repeats must be >= 1, got {reps}")
        times = []
        result = None
        for _ in range(reps):
            start = time.perf_counter()
            result = func(*args, **kwargs)
            times.append(time.perf_counter() - start)
        self.timings[name] = KernelTiming(
            name=name,
            repeats=reps,
            best=min(times),
            mean=sum(times) / len(times),
            times=tuple(times),
        )
        return result

    @contextmanager
    def measure(self, name: str) -> Iterator[None]:
        """Time a ``with`` block once under ``name``."""
        start = time.perf_counter()
        yield
        elapsed = time.perf_counter() - start
        self.timings[name] = KernelTiming(
            name=name, repeats=1, best=elapsed, mean=elapsed, times=(elapsed,)
        )

    def speedup(self, reference: str, optimized: str) -> float:
        """Best-time ratio ``reference / optimized`` (>1 means faster)."""
        ref = self.timings[reference]
        opt = self.timings[optimized]
        if opt.best <= 0:
            return float("inf")
        return ref.best / opt.best

    def summary(self) -> Dict[str, Dict[str, Any]]:
        """JSON-friendly ``{name: {best_s, mean_s, repeats}}`` mapping."""
        return {name: t.as_dict() for name, t in self.timings.items()}
