"""Schedule and lower-bound memoization keyed by cost-matrix digest.

Experiment drivers repeatedly rebuild the *same* instances: every
``(workload, P, trial)`` cell of a sweep is seeded deterministically, so
re-running a figure, pooling quality stats after a sweep, or measuring
scheduling overhead recomputes schedules for cost matrices that were
already solved in this process.  The caches here key on a SHA-256 digest
of the cost (and size) matrix bytes, so *any* two problems with
bit-identical matrices share an entry — regardless of how they were
constructed.

Caches are bounded LRU; hit/miss counters are kept so experiments can
report how much recomputation they avoided.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.core.problem import TotalExchangeProblem
from repro.timing.events import Schedule


def cost_digest(
    cost: np.ndarray,
    sizes: Optional[np.ndarray] = None,
    *,
    mask: Optional[np.ndarray] = None,
) -> str:
    """Hex digest of a cost matrix (and optional size matrix).

    Shape is folded in so a flattened matrix cannot collide with a
    differently shaped one with the same bytes.  ``mask`` folds in an
    availability mask (surviving nodes/links): a blackout changes which
    links may be used without changing a single cost number, so two
    identical matrices under different availability must not share an
    entry.  ``mask=None`` keeps the historical digest.
    """
    cost = np.ascontiguousarray(np.asarray(cost, dtype=float))
    hasher = hashlib.sha256()
    hasher.update(repr(cost.shape).encode("ascii"))
    hasher.update(cost.tobytes())
    if sizes is not None:
        sizes = np.ascontiguousarray(np.asarray(sizes, dtype=float))
        hasher.update(b"|sizes|")
        hasher.update(sizes.tobytes())
    if mask is not None:
        mask = np.ascontiguousarray(np.asarray(mask, dtype=bool))
        hasher.update(b"|mask|")
        hasher.update(repr(mask.shape).encode("ascii"))
        hasher.update(np.packbits(mask).tobytes())
    return hasher.hexdigest()


def problem_digest(
    problem: TotalExchangeProblem, *, mask: Optional[np.ndarray] = None
) -> str:
    """Digest of a problem's cost and size matrices (and availability)."""
    return cost_digest(problem.cost, problem.sizes, mask=mask)


def schedule_digest(schedule: Schedule) -> str:
    """Hex digest of a schedule's sorted event stream.

    Hashes the canonical ``(start, src, dst)``-sorted view, so two
    schedules digest equal exactly when their timing diagrams are
    bit-identical — regardless of which constructor (event list, lazy
    columns) built them or in which order events were emitted.  Golden
    tests pin these digests to hold planners byte-stable across
    refactors.
    """
    events = schedule.events
    count = len(events)
    columns = np.empty((count, 5))
    for index, event in enumerate(events):
        columns[index, 0] = event.start
        columns[index, 1] = event.src
        columns[index, 2] = event.dst
        columns[index, 3] = event.duration
        columns[index, 4] = event.size
    hasher = hashlib.sha256()
    hasher.update(repr((schedule.num_procs, count)).encode("ascii"))
    hasher.update(np.ascontiguousarray(columns).tobytes())
    return hasher.hexdigest()


def _scheduler_label(scheduler: Callable, name: Optional[str]) -> str:
    if name is not None:
        return name
    module = getattr(scheduler, "__module__", "?")
    qualname = getattr(scheduler, "__qualname__", repr(scheduler))
    return f"{module}.{qualname}"


class ScheduleCache:
    """Bounded LRU cache of ``(problem digest, scheduler) -> Schedule``.

    The scheduler component of the key is its qualified name (or an
    explicit ``name=``), so two registry schedulers never collide; two
    *distinct* anonymous callables sharing a qualified name would, so
    pass ``name=`` when caching ad-hoc lambdas.
    """

    def __init__(self, maxsize: int = 512):
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._entries: "OrderedDict[Tuple[str, str], Schedule]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get_or_compute(
        self,
        problem: TotalExchangeProblem,
        scheduler: Callable[[TotalExchangeProblem], Schedule],
        *,
        name: Optional[str] = None,
        mask: Optional[np.ndarray] = None,
    ) -> Schedule:
        """Return the cached schedule, computing and storing it on a miss."""
        key = (
            problem_digest(problem, mask=mask),
            _scheduler_label(scheduler, name),
        )
        cached = self._entries.get(key)
        if cached is not None:
            self.hits += 1
            self._entries.move_to_end(key)
            return cached
        self.misses += 1
        schedule = scheduler(problem)
        self._entries[key] = schedule
        if len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
        return schedule

    def lookup(
        self,
        problem: TotalExchangeProblem,
        scheduler: Callable[[TotalExchangeProblem], Schedule],
        *,
        name: Optional[str] = None,
        mask: Optional[np.ndarray] = None,
    ) -> Optional[Schedule]:
        """The cached schedule, or None; counts a hit or a miss.

        Unlike :meth:`get_or_compute`, a miss does *not* invoke the
        scheduler — callers that must guard the computation (deadlines,
        fallbacks) use ``lookup`` + :meth:`put` so failed or substituted
        results never poison the cache.  ``mask`` keys the entry to an
        availability mask (see :func:`cost_digest`) so repaired-world
        lookups cannot answer with a pre-failure plan.
        """
        key = (
            problem_digest(problem, mask=mask),
            _scheduler_label(scheduler, name),
        )
        cached = self._entries.get(key)
        if cached is not None:
            self.hits += 1
            self._entries.move_to_end(key)
            return cached
        self.misses += 1
        return None

    def put(
        self,
        problem: TotalExchangeProblem,
        scheduler: Callable[[TotalExchangeProblem], Schedule],
        schedule: Schedule,
        *,
        name: Optional[str] = None,
        mask: Optional[np.ndarray] = None,
    ) -> None:
        """Seed the cache with an already-computed schedule.

        Lets callers that had to run a scheduler anyway (e.g. while
        timing it) donate the result, so a later cached call is a hit
        instead of a recomputation.
        """
        key = (
            problem_digest(problem, mask=mask),
            _scheduler_label(scheduler, name),
        )
        self._entries[key] = schedule
        self._entries.move_to_end(key)
        if len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)

    def aux_lookup(self, kind: str, digest: str):
        """A non-schedule artifact stored under ``(kind, digest)``, or None.

        The aux store shares this cache's LRU budget and counters.  The
        hierarchical scheduler keeps detected cluster assignments here
        (``kind="clusters"``) keyed by the cost digest, so serving ticks
        that revisit a previously seen world skip re-clustering.
        """
        key = (f"aux:{kind}", digest)
        cached = self._entries.get(key)
        if cached is not None:
            self.hits += 1
            self._entries.move_to_end(key)
            return cached
        self.misses += 1
        return None

    def aux_put(self, kind: str, digest: str, value) -> None:
        """Store a non-schedule artifact under ``(kind, digest)``."""
        key = (f"aux:{kind}", digest)
        self._entries[key] = value
        self._entries.move_to_end(key)
        if len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)

    def wrap(
        self,
        scheduler: Callable[[TotalExchangeProblem], Schedule],
        *,
        name: Optional[str] = None,
    ) -> Callable[[TotalExchangeProblem], Schedule]:
        """A drop-in scheduler that answers from this cache."""

        def cached_scheduler(problem: TotalExchangeProblem) -> Schedule:
            return self.get_or_compute(problem, scheduler, name=name)

        cached_scheduler.__name__ = getattr(
            scheduler, "__name__", "scheduler"
        ) + "_cached"
        return cached_scheduler

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, float]:
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
        }


#: Process-wide default cache used by the experiment drivers.
_DEFAULT_CACHE = ScheduleCache()

#: Digest -> lower bound, bounded like the schedule cache.
_LB_CACHE: "OrderedDict[str, float]" = OrderedDict()
_LB_MAXSIZE = 4096


def default_schedule_cache() -> ScheduleCache:
    """The process-wide schedule cache shared by experiment drivers."""
    return _DEFAULT_CACHE


def lower_bound_cached(problem: TotalExchangeProblem) -> float:
    """``problem.lower_bound()`` memoized by cost-matrix digest."""
    key = cost_digest(problem.cost)
    cached = _LB_CACHE.get(key)
    if cached is not None:
        _LB_CACHE.move_to_end(key)
        return cached
    value = problem.lower_bound()
    _LB_CACHE[key] = value
    if len(_LB_CACHE) > _LB_MAXSIZE:
        _LB_CACHE.popitem(last=False)
    return value
