"""Bench regression guard: fresh measurements vs. the committed record.

``BENCH_core.json`` is committed so the repo carries its own
performance claims — schedule quality (``ratio_to_lb``,
``makespan_ratio_max``) and wall-clock latency per tier.  CI
re-measures a subset of those tiers on every push; this module turns
"did it regress?" into an explicit, tunable comparison instead of
ad-hoc asserts scattered through workflow YAML.

Two kinds of numbers get two kinds of tolerance:

* **quality** — deterministic given the seed, so it is compared
  tightly (``quality_rtol``, default 5%).  A quality regression means
  an algorithm change, never machine noise.
* **latency** — CI machines are slower and noisier than the machine
  that wrote the committed record, so seconds are compared loosely
  (``seconds_factor``, default 5x) and latency *ratios* (the drift
  bench's repair-vs-full speedup, machine speed mostly cancelled) get
  an intermediate ``speedup_factor``.

The entry point is :func:`bench_regressions`: give it the committed
and fresh ``extra`` payloads and it returns human-readable violation
strings for every tier name they share — an empty list is a pass.
Load the committed record *before* re-running any bench that writes to
the same path, or the guard compares the fresh file with itself.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

__all__ = [
    "bench_regressions",
    "collectives_regressions",
    "drift_regressions",
    "load_bench",
    "scale_regressions",
]


def load_bench(path) -> Dict[str, Any]:
    """Load a bench JSON record (the committed baseline, typically)."""
    with open(path) as handle:
        return json.load(handle)


def scale_regressions(
    name: str,
    committed: Dict[str, Any],
    fresh: Dict[str, Any],
    *,
    quality_rtol: float = 0.05,
    seconds_factor: float = 5.0,
) -> List[str]:
    """Compare one ``scale_*`` tier: per-scheduler quality and latency."""
    problems: List[str] = []
    for scheduler, stats in committed.items():
        if scheduler == "meta" or not isinstance(stats, dict):
            continue
        current = fresh.get(scheduler)
        if current is None:
            problems.append(f"{name}: scheduler {scheduler!r} disappeared")
            continue
        old_ratio = stats.get("ratio_to_lb")
        new_ratio = current.get("ratio_to_lb")
        if old_ratio is not None and new_ratio is not None:
            if new_ratio > old_ratio * (1.0 + quality_rtol):
                problems.append(
                    f"{name}/{scheduler}: ratio_to_lb regressed "
                    f"{old_ratio:.4f} -> {new_ratio:.4f} "
                    f"(allowed rtol {quality_rtol:.0%})"
                )
        old_s = stats.get("seconds")
        new_s = current.get("seconds")
        if old_s is not None and new_s is not None:
            if new_s > old_s * seconds_factor:
                problems.append(
                    f"{name}/{scheduler}: seconds regressed "
                    f"{old_s:.3f}s -> {new_s:.3f}s "
                    f"(allowed {seconds_factor:.0f}x)"
                )
    return problems


def drift_regressions(
    name: str,
    committed: Dict[str, Any],
    fresh: Dict[str, Any],
    *,
    quality_rtol: float = 0.05,
    speedup_factor: float = 3.0,
    seconds_factor: float = 5.0,
) -> List[str]:
    """Compare one ``drift_response_*`` tier.

    The repaired-vs-scratch makespan ratio is quality (tight); the
    repair latency is seconds (loose); the p50 speedup is a ratio of
    two latencies on the *same* machine, so most of the machine-speed
    variance cancels and it gets the intermediate ``speedup_factor``.
    """
    problems: List[str] = []
    old_ratio = committed.get("makespan_ratio_max")
    new_ratio = fresh.get("makespan_ratio_max")
    if old_ratio is not None and new_ratio is not None:
        if new_ratio > old_ratio * (1.0 + quality_rtol):
            problems.append(
                f"{name}: makespan_ratio_max regressed "
                f"{old_ratio:.4f} -> {new_ratio:.4f} "
                f"(allowed rtol {quality_rtol:.0%})"
            )
    old_speedup = committed.get("speedup_p50")
    new_speedup = fresh.get("speedup_p50")
    if old_speedup is not None and new_speedup is not None:
        if new_speedup < old_speedup / speedup_factor:
            problems.append(
                f"{name}: speedup_p50 regressed "
                f"{old_speedup:.2f}x -> {new_speedup:.2f}x "
                f"(allowed {speedup_factor:.0f}x slack)"
            )
    old_p50 = committed.get("repair", {}).get("p50_s")
    new_p50 = fresh.get("repair", {}).get("p50_s")
    if old_p50 is not None and new_p50 is not None:
        if new_p50 > old_p50 * seconds_factor:
            problems.append(
                f"{name}: repair p50 regressed "
                f"{old_p50:.3f}s -> {new_p50:.3f}s "
                f"(allowed {seconds_factor:.0f}x)"
            )
    return problems


def collectives_regressions(
    name: str,
    committed: Dict[str, Any],
    fresh: Dict[str, Any],
    *,
    quality_rtol: float = 0.05,
    seconds_factor: float = 5.0,
) -> List[str]:
    """Compare one ``collectives_*`` tier.

    Modelled completion times, makespan degradation and the headline
    algorithm-vs-baseline ratios are deterministic given the seed, so
    they are quality (tight); planning wall-clock and tick latency are
    seconds (loose).
    """
    problems: List[str] = []
    for key, stats in committed.items():
        if key == "meta" or not isinstance(stats, dict):
            continue
        current = fresh.get(key)
        if current is None:
            problems.append(f"{name}: entry {key!r} disappeared")
            continue
        old_completion = stats.get("completion_s")
        new_completion = current.get("completion_s")
        if old_completion is not None and new_completion is not None:
            if new_completion > old_completion * (1.0 + quality_rtol):
                problems.append(
                    f"{name}/{key}: completion_s regressed "
                    f"{old_completion:.4g} -> {new_completion:.4g} "
                    f"(allowed rtol {quality_rtol:.0%})"
                )
        old_s = stats.get("seconds")
        new_s = current.get("seconds")
        if old_s is not None and new_s is not None:
            if new_s > old_s * seconds_factor:
                problems.append(
                    f"{name}/{key}: seconds regressed "
                    f"{old_s:.3f}s -> {new_s:.3f}s "
                    f"(allowed {seconds_factor:.0f}x)"
                )
    for ratio_key in (
        "broadcast_log_vs_binomial", "allreduce_pipelined_vs_lockstep"
    ):
        old_ratio = committed.get(ratio_key)
        new_ratio = fresh.get(ratio_key)
        if old_ratio is not None and new_ratio is not None:
            if new_ratio < old_ratio * (1.0 - quality_rtol):
                problems.append(
                    f"{name}: {ratio_key} regressed "
                    f"{old_ratio:.3f}x -> {new_ratio:.3f}x "
                    f"(allowed rtol {quality_rtol:.0%})"
                )
    old_makespan = committed.get("makespan", {})
    new_makespan = fresh.get("makespan", {})
    old_deg = old_makespan.get("degradation_max")
    new_deg = new_makespan.get("degradation_max")
    if old_deg is not None and new_deg is not None:
        if new_deg > old_deg * (1.0 + quality_rtol):
            problems.append(
                f"{name}: makespan degradation_max regressed "
                f"{old_deg:.3f} -> {new_deg:.3f} "
                f"(allowed rtol {quality_rtol:.0%})"
            )
    old_p50 = committed.get("tick_latency", {}).get("p50_s")
    new_p50 = fresh.get("tick_latency", {}).get("p50_s")
    if old_p50 is not None and new_p50 is not None:
        if new_p50 > old_p50 * seconds_factor:
            problems.append(
                f"{name}: tick latency p50 regressed "
                f"{old_p50:.4f}s -> {new_p50:.4f}s "
                f"(allowed {seconds_factor:.0f}x)"
            )
    return problems


def soak_regressions(
    name: str,
    committed: Dict[str, Any],
    fresh: Dict[str, Any],
    *,
    seconds_factor: float = 5.0,
) -> List[str]:
    """Compare one ``soak_*`` tier.

    The soak's guarantees are absolute, not relative: a fresh run must
    hold zero oracle violations, zero dropped requests, zero-loss
    restart, backup bit-identity, and must both fire *and* resolve the
    canary alert.  Only wall time is judged against the committed
    baseline (loose, machine-speed dependent).
    """
    problems: List[str] = []
    if fresh.get("oracle_violations", 0) != 0:
        problems.append(
            f"{name}: {fresh['oracle_violations']} oracle violations "
            f"(must be 0)"
        )
    daemon = fresh.get("daemon", {})
    if daemon.get("dropped", 0) != 0:
        problems.append(
            f"{name}: daemon dropped {daemon['dropped']} requests "
            f"(must be 0)"
        )
    if not daemon.get("zero_loss", True):
        problems.append(f"{name}: daemon accepted != served across restart")
    if not daemon.get("restart_bit_identical", True):
        problems.append(f"{name}: daemon state changed across restart")
    if not fresh.get("backup_bit_identical", True):
        problems.append(f"{name}: backup payload not bit-identical")
    if fresh.get("alerts_fired", 0) < 1:
        problems.append(f"{name}: no SLO alert fired (canary broken)")
    if fresh.get("alerts_resolved", 0) < 1:
        problems.append(f"{name}: no SLO alert resolved (canary broken)")
    if fresh.get("store", {}).get("sealed_segments", 0) < 1:
        problems.append(f"{name}: metrics store never rotated a segment")
    old_wall = committed.get("wall_s")
    new_wall = fresh.get("wall_s")
    if old_wall is not None and new_wall is not None:
        if new_wall > old_wall * seconds_factor:
            problems.append(
                f"{name}: wall time regressed "
                f"{old_wall:.2f}s -> {new_wall:.2f}s "
                f"(allowed {seconds_factor:.0f}x)"
            )
    return problems


def bench_regressions(
    committed_extra: Optional[Dict[str, Any]],
    fresh_extra: Optional[Dict[str, Any]],
    *,
    quality_rtol: float = 0.05,
    seconds_factor: float = 5.0,
    speedup_factor: float = 3.0,
) -> List[str]:
    """Violations across every tier present in *both* records.

    Tiers only one side has are skipped: the committed record holds
    more tiers than any single CI job re-measures, and a brand-new
    tier has no baseline yet.
    """
    problems: List[str] = []
    if not committed_extra or not fresh_extra:
        return problems
    for name in sorted(set(committed_extra) & set(fresh_extra)):
        committed = committed_extra[name]
        fresh = fresh_extra[name]
        if not isinstance(committed, dict) or not isinstance(fresh, dict):
            continue
        if name.startswith("drift_response"):
            problems += drift_regressions(
                name, committed, fresh,
                quality_rtol=quality_rtol,
                speedup_factor=speedup_factor,
                seconds_factor=seconds_factor,
            )
        elif name.startswith("scale"):
            problems += scale_regressions(
                name, committed, fresh,
                quality_rtol=quality_rtol,
                seconds_factor=seconds_factor,
            )
        elif name.startswith("collectives"):
            problems += collectives_regressions(
                name, committed, fresh,
                quality_rtol=quality_rtol,
                seconds_factor=seconds_factor,
            )
        elif name.startswith("soak"):
            problems += soak_regressions(
                name, committed, fresh,
                seconds_factor=seconds_factor,
            )
    return problems
