"""Command-line interface: ``repro-hetcomm`` / ``python -m repro``.

Subcommands
-----------
``example``
    Run every scheduler on the 5-processor running example and print the
    timing diagrams (paper Figures 3-8 style).
``gusto``
    Print the GUSTO directory tables (paper Tables 1-2) and schedule a
    1 MB total exchange over the five sites.
``figure {9,10,11,12}``
    Regenerate one of the paper's evaluation figures as printed series.
``quality``
    Pool all four figures and print the Section 5 ratio-to-lower-bound
    quality summary.
``zoo``
    Compare registered schedulers (``--scheduler`` to pick; default:
    the paper set, the non-paper comparators, and the preemptive
    optimum) on one random instance.
``adaptive``
    Run the Section 6.3 drift sweep: adaptivity gain vs drift magnitude.
``broadcast``
    Compare binomial-tree and fastest-node-first broadcast on a random
    heterogeneous network.
``export``
    Schedule the running example with a chosen scheduler and write the
    schedule as JSON, SVG, and a Chrome trace.
``claims``
    Check the paper's headline claims mechanically (quick versions) and
    print PASS/FAIL per claim.
``bench``
    Time the scheduling kernels against the frozen seed implementations
    and write ``BENCH_core.json`` (``--smoke`` for a seconds-long CI
    variant; ``--scheduler`` for extra end-to-end timings).
``check``
    Differential fuzzing and invariant oracle: randomized adversarial
    instances through every registered scheduler (or just ``--scheduler``
    picks), cross-checked against the frozen seed kernels and the exact
    solver; failing instances are minimized and dumped to
    ``benchmarks/results/check_failures/`` (``--smoke`` for CI).
``serve``
    Drive the online adaptive runtime (:mod:`repro.runtime`) over a
    synthetic drift trace: per-tick reuse/refine/reschedule decisions,
    deadline fallback, and a metrics JSON dump (``--smoke`` for the
    deterministic CI preset, which also injects a scheduler timeout).
    ``--fault-profile`` injects failures (named preset ``smoke`` or a
    ``kind:key=val,...;...`` spec) and turns on the degraded-mode
    machinery: transient retries with backoff, salvage + repair, and
    relay routing around dead links.
``collective``
    Run registered collective operations (broadcast, scatter/gather,
    reduce, allreduce, barrier, exchange patterns) on one snapshot and
    compare completion times (``--collective`` to pick).

Selection flags are uniform: every subcommand that takes a scheduler
uses the same repeatable ``--scheduler NAME`` flag (resolved through
:func:`repro.core.registry.make_scheduler`, parameterized variants like
``matching_min:auction`` included); collectives use ``--collective``
(:func:`repro.collectives.make_collective`); network sources use
``--directory SPEC`` (:func:`repro.directory.make_directory`, e.g.
``noisy:sigma=0.1`` or ``dynamics:process=diurnal``).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Dict, List, Optional

import numpy as np

from repro.core.problem import TotalExchangeProblem, example_problem
from repro.core.registry import Scheduler, iter_specs, make_scheduler
from repro.directory.static import gusto_directory
from repro.experiments.figures import FIGURE_DRIVERS
from repro.experiments.quality import quality_stats
from repro.experiments.report import (
    render_improvement,
    render_quality,
    render_sweep,
)
from repro.model.messages import UniformSizes
from repro.network.generators import random_pairwise_parameters
from repro.network.gusto import (
    GUSTO_BANDWIDTH_KBIT_S,
    GUSTO_LATENCY_MS,
    GUSTO_SITES,
)
from repro.timing.diagram import render_timing_diagram
from repro.util.tables import format_table
from repro.util.units import MEGABYTE


def _resolve_schedulers(
    names: List[str], parser_hint: str = "--scheduler"
) -> Dict[str, Scheduler]:
    """Resolve registry names to callables, exiting with a friendly
    message (and the full name list) on an unknown name."""
    resolved: Dict[str, Scheduler] = {}
    for name in names:
        try:
            resolved[name] = make_scheduler(name)
        except KeyError:
            known = ", ".join(spec.name for spec in iter_specs())
            print(
                f"error: unknown scheduler {name!r} for {parser_hint}; "
                f"known: {known}",
                file=sys.stderr,
            )
            raise SystemExit(2)
    return resolved


def _cmd_example(args: argparse.Namespace) -> int:
    problem = example_problem()
    print("Running example (5 processors); lower bound =", problem.lower_bound())
    print()
    rows = []
    for spec in iter_specs(tier="paper"):
        schedule = spec.fn(problem)
        rows.append([spec.name, schedule.completion_time,
                     schedule.completion_time / problem.lower_bound()])
        if args.diagrams:
            print(f"--- {spec.name} ---")
            print(render_timing_diagram(schedule, rows=20))
            print()
    print(format_table(["algorithm", "completion", "ratio to LB"], rows))
    return 0


def _cmd_gusto(args: argparse.Namespace) -> int:
    header = ["", *GUSTO_SITES]
    lat_rows = [
        [site, *GUSTO_LATENCY_MS[i].tolist()] for i, site in enumerate(GUSTO_SITES)
    ]
    bw_rows = [
        [site, *GUSTO_BANDWIDTH_KBIT_S[i].tolist()]
        for i, site in enumerate(GUSTO_SITES)
    ]
    print(format_table(header, lat_rows, precision=1,
                       title="Table 1: latency (ms) between 5 GUSTO sites"))
    print()
    print(format_table(header, bw_rows, precision=0,
                       title="Table 2: bandwidth (kbit/s) between 5 GUSTO sites"))
    print()
    directory = gusto_directory()
    problem = TotalExchangeProblem.from_snapshot(
        directory.snapshot(), UniformSizes(MEGABYTE)
    )
    print(f"1 MB total exchange over GUSTO; lower bound = "
          f"{problem.lower_bound():.1f}s")
    rows = [
        [spec.name, spec.fn(problem).completion_time]
        for spec in iter_specs(tier="paper")
    ]
    print(format_table(["algorithm", "completion (s)"], rows, precision=1))
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    driver = FIGURE_DRIVERS[args.id]
    result = driver(trials=args.trials, seed=args.seed)
    print(render_sweep(result))
    print()
    print(render_improvement(result))
    print()
    print(render_quality(quality_stats([result])))
    return 0


def _cmd_quality(args: argparse.Namespace) -> int:
    results = [
        driver(trials=args.trials, seed=args.seed)
        for driver in FIGURE_DRIVERS.values()
    ]
    print(render_quality(quality_stats(results)))
    return 0


def _cmd_zoo(args: argparse.Namespace) -> int:
    from repro.directory.service import DirectorySnapshot
    from repro.model.messages import MixedSizes

    rng = np.random.default_rng(args.seed)
    latency, bandwidth = random_pairwise_parameters(args.procs, rng=rng)
    snapshot = DirectorySnapshot(latency=latency, bandwidth=bandwidth)
    problem = TotalExchangeProblem.from_snapshot(
        snapshot, MixedSizes(), rng=rng
    )
    lb = problem.lower_bound()
    print(f"P={args.procs} mixed-workload instance; lower bound {lb:.2f}s")
    if args.scheduler:
        names = list(args.scheduler)
    else:
        names = [spec.name for spec in iter_specs(tier="paper")]
        names += ["baseline_nosync", "lpt", "local_search", "preemptive"]
    schedulers = _resolve_schedulers(names)
    rows = []
    for name, scheduler in schedulers.items():
        label = "preemptive optimum" if name == "preemptive" else name
        t = scheduler(problem).completion_time
        rows.append([label, t, t / lb])
    rows.sort(key=lambda row: row[1])
    print(format_table(["scheduler", "completion (s)", "ratio"], rows))
    return 0


def _cmd_adaptive(args: argparse.Namespace) -> int:
    from repro.experiments.adaptive_sweep import run_adaptive_sweep
    from repro.util.tables import format_series

    result = run_adaptive_sweep(
        sigmas=(0.0, 0.6, 1.2), num_procs=args.procs, trials=args.trials,
        seed=args.seed,
    )
    series = dict(result.completion)
    series["post_drift_lb"] = result.post_drift_lb
    print(format_series(
        "sigma", result.sigmas, series, precision=1,
        title="completion (s) vs drift magnitude",
    ))
    gains = result.gain("halving")
    print("\nhalving-policy gain vs stale plan:",
          ", ".join(f"sigma {s:g}: {g * 100:.1f}%"
                    for s, g in zip(result.sigmas, gains)))
    return 0


def _cmd_broadcast(args: argparse.Namespace) -> int:
    from repro.collectives import (
        broadcast_lower_bound,
        schedule_broadcast_binomial,
        schedule_broadcast_fnf,
    )
    from repro.directory.service import DirectorySnapshot
    from repro.model.cost import cost_matrix

    rng = np.random.default_rng(args.seed)
    latency, bandwidth = random_pairwise_parameters(args.procs, rng=rng)
    snapshot = DirectorySnapshot(latency=latency, bandwidth=bandwidth)
    sizes = np.full((args.procs, args.procs), float(MEGABYTE))
    np.fill_diagonal(sizes, 0.0)
    cost = cost_matrix(snapshot, sizes)
    lb = broadcast_lower_bound(cost)
    binomial = schedule_broadcast_binomial(cost).completion_time
    fnf = schedule_broadcast_fnf(cost).completion_time
    print(f"1 MB broadcast over {args.procs} nodes; lower bound {lb:.2f}s")
    print(format_table(
        ["algorithm", "completion (s)", "ratio"],
        [["binomial tree", binomial, binomial / lb],
         ["fastest-node-first", fnf, fnf / lb]],
    ))
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    import pathlib

    from repro.io import save_json, save_svg, save_trace, schedule_to_dict

    name = args.scheduler[-1] if args.scheduler else "openshop"
    scheduler = _resolve_schedulers([name])[name]
    problem = example_problem()
    schedule = scheduler(problem)
    out = pathlib.Path(args.output_dir)
    out.mkdir(parents=True, exist_ok=True)
    # Parameterized names like "matching_min:auction" are path-safe-ified.
    base = out / f"example_{name.replace(':', '-')}"
    save_json(base.with_suffix(".json"), schedule_to_dict(schedule))
    save_svg(schedule, base.with_suffix(".svg"),
             title=f"{name} on the running example")
    save_trace(schedule, base.with_suffix(".trace.json"))
    print(f"wrote {base}.json, {base}.svg, {base}.trace.json "
          f"(completion {schedule.completion_time:g}s)")
    return 0


def _cmd_claims(args: argparse.Namespace) -> int:
    from repro.core.baseline import schedule_baseline_nosync
    from repro.core.problem import tight_baseline_instance
    from repro.experiments.figures import FIGURE_DRIVERS
    from repro.experiments.quality import quality_stats

    results = [
        driver(proc_counts=(10, 30, 50), trials=args.trials, seed=args.seed)
        for driver in FIGURE_DRIVERS.values()
    ]
    stats = quality_stats(results)
    tight = tight_baseline_instance(1e-6)
    tight_ratio = (
        schedule_baseline_nosync(tight).completion_time
        / tight.lower_bound()
    )
    fig11 = next(r for r in results if r.workload == "fig11-mixed")
    best_speedup = max(fig11.improvement_over_baseline("openshop"))

    checks = [
        (
            "Theorem 2 tightness: nosync baseline hits P/2 on the "
            "epsilon instance",
            abs(tight_ratio - 2.0) < 1e-3,
            f"ratio {tight_ratio:.6f}",
        ),
        (
            "Theorem 3: open shop always within 2x the lower bound",
            stats["openshop"].max_ratio <= 2.0,
            f"worst {stats['openshop'].max_ratio:.3f}",
        ),
        (
            "open shop close to LB on average (paper: often within 2%)",
            stats["openshop"].mean_ratio < 1.05,
            f"mean {stats['openshop'].mean_ratio:.3f}",
        ),
        (
            "max and min matching comparable (paper Section 5)",
            abs(
                stats["max_matching"].mean_ratio
                - stats["min_matching"].mean_ratio
            )
            < 0.08,
            f"means {stats['max_matching'].mean_ratio:.3f} vs "
            f"{stats['min_matching'].mean_ratio:.3f}",
        ),
        (
            "algorithm ordering: openshop <= matching <= greedy <= baseline",
            stats["openshop"].mean_ratio
            <= stats["max_matching"].mean_ratio + 0.02
            and stats["max_matching"].mean_ratio
            <= stats["greedy"].mean_ratio + 0.02
            and stats["greedy"].mean_ratio <= stats["baseline"].mean_ratio,
            "mean ratios "
            + ", ".join(
                f"{name}={stats[name].mean_ratio:.2f}"
                for name in (
                    "openshop", "max_matching", "greedy", "baseline",
                )
            ),
        ),
        (
            "multi-x improvement over the baseline at scale "
            "(paper: factors of 2-5)",
            best_speedup > 2.0,
            f"best openshop speedup on the mixed workload: "
            f"{best_speedup:.2f}x",
        ),
        (
            "baseline degrades to multiple-x above LB (paper: up to 6x)",
            2.0 < stats["baseline"].max_ratio < 8.0,
            f"worst {stats['baseline'].max_ratio:.2f}",
        ),
    ]
    failures = 0
    for title, passed, detail in checks:
        mark = "PASS" if passed else "FAIL"
        failures += 0 if passed else 1
        print(f"[{mark}] {title}  ({detail})")
    print(
        f"\n{len(checks) - failures}/{len(checks)} claims reproduced "
        f"(trials={args.trials}, seed={args.seed})"
    )
    return 1 if failures else 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import time as _time

    from repro.perf.bench import (
        DEFAULT_MATCHING_MAX_P,
        DEFAULT_REFERENCE_MAX_P,
        render_bench,
        run_bench,
        run_drift_response,
        run_hier_scale,
        update_bench_json,
    )

    # The shared --ops-dir/--metrics-out family overrides the legacy
    # bench-local --output spelling when either is given.
    if args.metrics_out is not None or args.ops_dir:
        args.output = _resolve_output(args, "metrics_out", args.output)

    if args.drift_sizes:
        results = run_drift_response(
            args.drift_sizes,
            ticks=args.ticks,
            cluster_size=args.cluster_size,
            seed=args.seed,
            output=args.output or None,
        )
        rows = []
        for p_label, tier in results.items():
            rows.append([
                int(p_label), tier["meta"]["scheduler"],
                tier["repair"]["p50_s"], tier["full"]["p50_s"],
                tier["speedup_p50"], tier["makespan_ratio_max"],
            ])
        print(format_table(
            ["P", "scheduler", "repair p50 s", "full p50 s",
             "speedup", "worst ratio"], rows,
            precision=4, title="drift-tick response",
        ))
        if args.output:
            print(f"\nwrote {args.output}")
        return 0

    if args.collectives_sizes or args.straggler_p:
        from repro.perf.bench import (
            run_allreduce_straggler_serve,
            run_collectives_bench,
        )

        if args.collectives_sizes:
            results = run_collectives_bench(
                args.collectives_sizes,
                seed=args.seed,
                output=args.output or None,
            )
            rows = []
            for p_label, tier in results.items():
                for name, stats in tier.items():
                    if not isinstance(stats, dict) or name == "meta":
                        continue
                    rows.append([
                        int(p_label), name, stats["seconds"],
                        stats["completion_s"], stats["events"],
                    ])
            print(format_table(
                ["P", "collective", "plan s", "completion s", "events"],
                rows, precision=4, title="collective planners",
            ))
        if args.straggler_p:
            serve = run_allreduce_straggler_serve(
                args.straggler_p,
                ticks=max(args.ticks, 6),
                seed=args.seed,
                output=args.output or None,
            )
            print()
            print(format_table(
                ["metric", "value"],
                [
                    ["tick p50 (s)", serve["tick_latency"]["p50_s"]],
                    ["tick p99 (s)", serve["tick_latency"]["p99_s"]],
                    ["degradation max",
                     serve["makespan"]["degradation_max"]],
                    ["decisions",
                     " ".join(f"{k}={v}"
                              for k, v in serve["decisions"].items())],
                ],
                precision=4,
                title=(
                    f"all-reduce straggler serve "
                    f"(P={serve['meta']['num_procs']})"
                ),
            ))
        if args.output:
            print(f"\nwrote {args.output}")
        return 0

    if args.daemon_load or args.daemon_ps_fanin:
        from repro.perf.bench import run_daemon_load, run_daemon_ps_fanin

        def _daemon_rows(tier):
            counters = tier["daemon"]["counters"]
            return [
                ["req/s", tier["throughput"]["requests_per_s"]],
                ["accepted", tier["throughput"]["accepted"]],
                ["retried", tier["throughput"]["retried"]],
                ["dropped", tier["throughput"]["dropped"]],
                ["decision p50 (ms)",
                 tier["decision_latency"]["p50_s"] * 1e3],
                ["decision p99 (ms)",
                 tier["decision_latency"]["p99_s"] * 1e3],
                ["batched", counters["batched"]],
                ["decisions",
                 " ".join(f"{k}={v}"
                          for k, v in tier["decisions"].items())],
            ]

        if args.daemon_load:
            tier = run_daemon_load(
                args.daemon_tenants,
                cohorts=args.daemon_cohorts,
                procs=args.daemon_procs,
                duration_s=args.daemon_duration,
                output=args.output or None,
            )
            print(format_table(
                ["metric", "value"], _daemon_rows(tier), precision=3,
                title=(
                    f"daemon load (t={tier['meta']['tenants']}, "
                    f"cohorts={tier['meta']['cohorts']})"
                ),
            ))
        if args.daemon_ps_fanin:
            tier = run_daemon_ps_fanin(
                args.daemon_tenants,
                cohorts=args.daemon_cohorts,
                procs=max(args.daemon_procs, 4),
                duration_s=args.daemon_duration,
                seed=args.seed,
                output=args.output or None,
            )
            print()
            print(format_table(
                ["metric", "value"], _daemon_rows(tier), precision=3,
                title=(
                    f"daemon PS fan-in (t={tier['meta']['tenants']}, "
                    f"heavy-tail cohorts={tier['meta']['cohorts']})"
                ),
            ))
        if args.output:
            print(f"\nwrote {args.output}")
        return 0

    if args.soak_smoke:
        from repro.perf.bench import run_soak_smoke

        tier = run_soak_smoke(seed=args.seed, output=args.output or None)
        print(format_table(
            ["metric", "value"],
            [
                ["ok", tier["ok"]],
                ["oracle checks", tier["oracle_checks"]],
                ["oracle violations", tier["oracle_violations"]],
                ["alerts fired", tier["alerts_fired"]],
                ["alerts resolved", tier["alerts_resolved"]],
                ["daemon zero loss", tier["daemon"]["zero_loss"]],
                ["daemon dropped", tier["daemon"]["dropped"]],
                ["backup bit-identical", tier["backup_bit_identical"]],
                ["sealed segments", tier["store"]["sealed_segments"]],
                ["wall (s)", tier["wall_s"]],
            ],
            precision=3,
            title=(
                f"soak smoke (t={tier['meta']['tenants']}, "
                f"ticks={tier['meta']['ticks']})"
            ),
        ))
        if args.output:
            print(f"\nwrote {args.output}")
        return 0 if tier["ok"] else 1

    if args.hier_sizes:
        results = run_hier_scale(
            args.hier_sizes,
            cluster_size=args.cluster_size,
            seed=args.seed,
            output=args.output or None,
        )
        rows = []
        for p_label, tier in results.items():
            for name, stats in tier.items():
                if name == "meta":
                    continue
                rows.append([
                    int(p_label), name, stats["seconds"],
                    stats["ratio_to_lb"],
                ])
        print(format_table(
            ["P", "scheduler", "seconds", "ratio to LB"], rows,
            precision=4, title="hierarchical scale ladder",
        ))
        if args.output:
            print(f"\nwrote {args.output}")
        return 0

    matching_max_p = (
        DEFAULT_MATCHING_MAX_P if args.matching_max_p is None
        else args.matching_max_p
    )
    reference_max_p = (
        DEFAULT_REFERENCE_MAX_P if args.reference_max_p is None
        else args.reference_max_p
    )
    result = run_bench(
        args.sizes,
        repeats=args.repeats,
        smoke=args.smoke,
        include_reference=not args.no_reference,
        matching_max_p=matching_max_p,
        reference_max_p=reference_max_p,
        seed=args.seed,
        output=args.output or None,
    )
    print(render_bench(result))
    if args.scheduler:
        # Extra end-to-end timings of registry entry points (factory
        # options included) on the same mixed workload, best-of-repeats.
        from repro.directory.factory import make_directory
        from repro.directory.service import DirectorySnapshot
        from repro.model.messages import MixedSizes

        schedulers = _resolve_schedulers(args.scheduler)
        repeats = max(1, 1 if args.smoke else args.repeats)
        rows = []
        payload: Dict[str, Dict[str, float]] = {}
        for p in result["meta"]["proc_counts"]:
            rng = np.random.default_rng(args.seed)
            if args.directory:
                snapshot = make_directory(
                    args.directory, num_procs=int(p), rng=args.seed
                ).snapshot()
            else:
                latency, bandwidth = random_pairwise_parameters(
                    int(p), rng=rng
                )
                snapshot = DirectorySnapshot(
                    latency=latency, bandwidth=bandwidth
                )
            problem = TotalExchangeProblem.from_snapshot(
                snapshot, MixedSizes(), rng=rng,
            )
            for name, scheduler in schedulers.items():
                best = min(
                    _timed(_time.perf_counter, scheduler, problem)
                    for _ in range(repeats)
                )
                rows.append([int(p), name, best])
                payload.setdefault(str(p), {})[name] = best
        print()
        print(format_table(
            ["P", "scheduler", "best (s)"], rows, precision=4,
            title="end-to-end scheduler timings (--scheduler)",
        ))
        if args.output:
            update_bench_json("cli_scheduler_timings", payload, args.output)
    if args.output:
        print(f"\nwrote {args.output}")
    return 0


def _timed(clock, scheduler, problem) -> float:
    started = clock()
    scheduler(problem)
    return clock() - started


def _cmd_check(args: argparse.Namespace) -> int:
    from repro.check import render_check, run_check

    # --smoke presets a seconds-long run; explicit flags still win.
    seeds = args.seeds if args.seeds is not None else (25 if args.smoke else 100)
    p_max = args.p_max if args.p_max is not None else (8 if args.smoke else 12)
    time_budget = args.time_budget
    if time_budget is None and args.smoke:
        time_budget = 60.0
    schedulers = (
        _resolve_schedulers(args.scheduler) if args.scheduler else None
    )
    report = run_check(
        seeds=seeds,
        p_max=p_max,
        time_budget=time_budget,
        base_seed=args.base_seed,
        schedulers=schedulers,
        out_dir=args.out_dir or None,
    )
    print(render_check(report))
    ok = report.ok
    if args.faults:
        from repro.check import render_fault_check, run_fault_check

        name = args.scheduler[-1] if args.scheduler else "openshop"
        fault_report = run_fault_check(scheduler=name)
        print()
        print(render_fault_check(fault_report))
        ok = ok and fault_report.ok
    if args.drift:
        from repro.check import render_drift_check, run_drift_check

        name = args.scheduler[-1] if args.scheduler else "openshop"
        drift_report = run_drift_check(scheduler=name)
        print()
        print(render_drift_check(drift_report))
        ok = ok and drift_report.ok
    if args.collectives:
        from repro.check import (
            render_collectives_check,
            run_collectives_check,
        )

        collectives_report = run_collectives_check()
        print()
        print(render_collectives_check(collectives_report))
        ok = ok and collectives_report.ok
    return 0 if ok else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.directory.factory import make_directory
    from repro.directory.service import DirectorySnapshot
    from repro.faults import FaultyDirectory, parse_fault_profile
    from repro.model.messages import MixedSizes
    from repro.runtime import AdaptiveSession, PolicyConfig
    from repro.sim.replay import TraceDirectory, synthetic_drift_trace

    # --smoke is the deterministic CI preset: small instance, a burst
    # cadence that exercises reuse AND refine AND reschedule, plus one
    # injected scheduler timeout so the baseline fallback path runs.
    # Explicit flags still win over the preset.
    def pick(value, smoke_default, default):
        if value is not None:
            return value
        return smoke_default if args.smoke else default

    procs = pick(args.procs, 8, 12)
    ticks = pick(args.ticks, 12, 32)
    sigma = pick(args.sigma, 0.01, 0.02)
    burst_sigma = pick(args.burst_sigma, 0.6, 0.5)
    burst_every = pick(args.burst_every, 4, 8)
    max_reuse = pick(args.max_reuse_ticks, 2, 8)
    inject = list(args.inject_timeout or ([6] if args.smoke else []))

    name = args.scheduler[-1] if args.scheduler else "openshop"
    _resolve_schedulers([name])  # fail fast with the friendly message

    if args.directory:
        try:
            directory = make_directory(
                args.directory, num_procs=procs, rng=args.seed
            )
        except (KeyError, ValueError, TypeError) as exc:
            print(f"error: bad --directory spec: {exc}", file=sys.stderr)
            raise SystemExit(2)
        procs = directory.num_procs
    else:
        rng = np.random.default_rng(args.seed)
        latency, bandwidth = random_pairwise_parameters(procs, rng=rng)
        base = DirectorySnapshot(latency=latency, bandwidth=bandwidth)
        trace = synthetic_drift_trace(
            base,
            ticks=ticks,
            dt=args.dt,
            base_sigma=sigma,
            burst_sigma=burst_sigma,
            burst_every=burst_every,
            seed=args.seed,
        )
        directory = TraceDirectory(trace)

    try:
        profile = parse_fault_profile(args.fault_profile)
    except (KeyError, ValueError) as exc:
        print(f"error: bad --fault-profile spec: {exc}", file=sys.stderr)
        raise SystemExit(2)
    if profile:
        if profile.max_index() >= procs:
            print(
                f"error: --fault-profile references processor "
                f"{profile.max_index()} but the directory has {procs}",
                file=sys.stderr,
            )
            raise SystemExit(2)
        directory = FaultyDirectory(directory, profile)

    ops_store = None
    sink = None
    if args.ops_dir:
        from repro.ops import MetricsStore, StoreSink

        ops_store = MetricsStore(os.path.join(args.ops_dir, "store"))
        sink = StoreSink(ops_store, source="serve", kind="tick")

    session = AdaptiveSession(
        directory,
        MixedSizes(),
        scheduler=name,
        policy=PolicyConfig(
            reuse_threshold=args.reuse_threshold,
            refine_threshold=args.refine_threshold,
            max_reuse_ticks=max_reuse,
            scheduler_deadline_s=args.deadline,
        ),
        sink=sink,
        force_timeout_ticks=inject,
        rng=np.random.default_rng(args.seed),
    )

    source = args.directory or "drift trace"
    print(
        f"serving {ticks} total exchanges over a P={procs} {source} "
        f"(scheduler={name}, sigma={sigma:g}, bursts every "
        f"{burst_every or 'never'} ticks"
        + (f", faults={len(profile)}" if profile else "")
        + ")"
    )
    rows = []
    results = [session.tick(dt=0.0)]
    results += [session.tick(dt=args.dt) for _ in range(ticks - 1)]
    for result in results:
        e = result.event
        flags = "".join(
            mark for mark, on in (
                ("C", e.cache_hit), ("F", e.fallback), ("D", e.degraded),
            ) if on
        )
        row = [
            e.tick, e.time, e.decision, max(e.drift, 0.0),
            e.predicted_makespan, e.executed_makespan, e.regret,
            flags or "-",
        ]
        if profile:
            fault = e.repair or "-"
            if e.retries:
                fault += f" x{e.retries}"
            if e.salvaged_events:
                fault += f" ({e.salvaged_events} salvaged)"
            row.append(fault)
        rows.append(row)
    headers = ["tick", "t", "decision", "drift", "predicted (s)",
               "executed (s)", "regret (s)", "flags"]
    if profile:
        headers.append("fault")
    print(format_table(
        headers, rows, precision=3,
        title="per-tick serving log "
              "(C = cache hit, F = fallback, D = degraded)",
    ))
    summary = session.summary()
    fault_rows = []
    if profile:
        fault_rows = [
            ["degraded_tick_ratio", round(summary["degraded_tick_ratio"], 4)],
            ["faults_seen", summary["faults_seen"]],
            ["retry_successes", summary["retry_successes"]],
            ["repair_episodes", summary["repair_episodes"]],
            ["messages_salvaged", summary["messages_salvaged"]],
            ["messages_resent", summary["messages_resent"]],
        ]
    print()
    print(format_table(
        ["metric", "value"],
        [
            ["ticks", summary["ticks"]],
            *[[f"decision.{k}", v] for k, v in summary["decisions"].items()],
            ["reschedule_rate", round(summary["reschedule_rate"], 4)],
            ["cache_hit_rate", round(summary["cache_hit_rate"], 4)],
            ["fallback_activations", summary["fallback_activations"]],
            ["refine_evaluations", summary["refine_evaluations"]],
            ["mean_regret_s", round(summary["mean_regret_s"], 4)],
            [
                "mean_executed_makespan_s",
                round(summary["mean_executed_makespan_s"], 4),
            ],
            *fault_rows,
        ],
        title="serving summary",
    ))
    metrics_out = _resolve_output(args, "metrics_out", "serve_metrics.json")
    trace_out = _resolve_output(args, "trace_out", "")
    if metrics_out:
        session.metrics.save_json(metrics_out)
        print(f"\nwrote metrics JSON to {metrics_out}")
    if trace_out:
        session.metrics.save_chrome_trace(trace_out)
        print(f"wrote Chrome trace to {trace_out}")
    if ops_store is not None:
        sink.flush()
        print(
            f"persisted {ops_store.records_written} tick records to "
            f"{ops_store.root}"
        )
        ops_store.close()
    return 0


def _cmd_daemon(args: argparse.Namespace) -> int:
    import tempfile

    from repro.serve import DaemonConfig, SchedulerDaemon

    if args.smoke:
        return _daemon_smoke(args)

    if not args.socket and not args.tcp:
        args.socket = os.path.join(
            tempfile.gettempdir(), "repro-daemon.sock"
        )
    config = _daemon_config(args)
    daemon = SchedulerDaemon(config)
    address = daemon.bind()
    restored = daemon.counters["restored"]
    print(
        f"scheduler daemon listening on {address}"
        + (f" ({restored} tenants restored)" if restored else "")
    )
    try:
        daemon.serve_forever()
    except KeyboardInterrupt:
        print("interrupted; shutting down")
    return 0


def _daemon_config(args: argparse.Namespace):
    from repro.serve import DaemonConfig

    host, port = "127.0.0.1", 0
    if args.tcp:
        host, _, raw_port = args.tcp.rpartition(":")
        host = host or "127.0.0.1"
        port = int(raw_port)
    return DaemonConfig(
        socket_path=args.socket,
        host=host,
        port=port,
        max_queue=args.max_queue,
        batch_max=args.batch_max,
        state_file=args.state_file,
        resume_from=args.resume,
        ops_dir=args.ops_dir or "",
    )


def _daemon_smoke(args: argparse.Namespace) -> int:
    """Self-contained daemon acceptance run.

    Starts a daemon, drives the multi-tenant load generator against it,
    drains (snapshot) *mid-load*, kills the daemon, restarts it from the
    snapshot, drives more load, then verifies zero accepted-request loss
    (daemon counters: accepted == served) and bit-identical resume on
    sample tenants against uninterrupted control sessions, with the
    invariant oracle checking every control schedule.
    """
    import json as _json
    import tempfile
    import threading

    from repro.serve import (
        DaemonClient,
        DaemonConfig,
        LoadGenerator,
        SchedulerDaemon,
    )
    from repro.serve.tenants import TenantProfile, TenantState
    from repro.timing.validate import check_schedule

    sock = args.socket or os.path.join(
        tempfile.mkdtemp(prefix="repro-daemon-"), "daemon.sock"
    )
    state_file = args.state_file or sock + ".state.json"

    def start(resume_from: str = ""):
        daemon = SchedulerDaemon(
            DaemonConfig(
                socket_path=sock,
                max_queue=args.max_queue,
                batch_max=args.batch_max,
                state_file=state_file,
                resume_from=resume_from,
                ops_dir=args.ops_dir or "",
            )
        )
        daemon.bind()
        thread = threading.Thread(target=daemon.serve_forever, daemon=True)
        thread.start()
        return daemon, thread

    generator = LoadGenerator(
        sock,
        tenants=args.tenants,
        cohorts=args.cohorts,
        procs=args.procs,
        connections=args.connections,
    )
    phase_s = max(args.duration / 2.0, 1.0)

    daemon1, thread1 = start()
    print(
        f"daemon up on {sock}: {args.tenants} tenants over "
        f"{args.cohorts} cohorts, P={args.procs}"
    )
    report1 = generator.run(phase_s)
    print(
        f"phase 1: {report1.accepted} served at "
        f"{report1.requests_per_s:.0f} req/s "
        f"(p99 decision {report1.decision_p99_s * 1e3:.2f} ms, "
        f"batched {report1.batched}, retried {report1.retried}, "
        f"dropped {report1.dropped})"
    )

    # Drain mid-load: snapshot every tenant, then kill the daemon.
    with DaemonClient(sock) as client:
        drained = client.drain(state_file)
        stats1 = client.stats()
        client.shutdown()
    thread1.join(timeout=10)
    counters1 = stats1["counters"]
    if counters1["accepted"] != counters1["served"]:
        print(
            f"FAIL: {counters1['accepted'] - counters1['served']} accepted "
            f"requests lost at drain",
            file=sys.stderr,
        )
        return 1
    print(
        f"drained {drained.tenants} tenants to {state_file} "
        f"(accepted == served == {counters1['served']}); daemon killed"
    )

    daemon2, thread2 = start(resume_from=state_file)
    report2 = generator.run(phase_s)
    print(
        f"phase 2 (restarted): {report2.accepted} served at "
        f"{report2.requests_per_s:.0f} req/s "
        f"(p99 decision {report2.decision_p99_s * 1e3:.2f} ms, "
        f"dropped {report2.dropped})"
    )

    # Bit-identical resume: replay an uninterrupted control session for
    # one tenant per sampled cohort and compare the next decision.
    mismatches = 0
    checked = 0
    with DaemonClient(sock) as client:
        for cohort in range(min(args.cohorts, 4)):
            tenant = f"t-{cohort:04d}"  # tenant index == cohort for i < cohorts
            opened = client.open(
                tenant, procs=args.procs, seed=cohort
            )
            control = TenantState(
                TenantProfile(
                    tenant=tenant, procs=args.procs, seed=cohort
                )
            )
            for _ in range(opened.tick):
                control.session.tick(dt=generator.dt)
            response = client.schedule(tenant, dt=generator.dt)
            result = control.session.tick(dt=generator.dt)
            check_schedule(result.schedule, require_coverage=False)
            checked += 1
            if (
                response.decision != result.event.decision
                or response.predicted_s != result.event.predicted_makespan
                or response.executed_s != result.event.executed_makespan
            ):
                mismatches += 1
                print(
                    f"FAIL: tenant {tenant} diverged after restart: "
                    f"daemon ({response.decision}, {response.predicted_s}, "
                    f"{response.executed_s}) vs control "
                    f"({result.event.decision}, "
                    f"{result.event.predicted_makespan}, "
                    f"{result.event.executed_makespan})",
                    file=sys.stderr,
                )
        stats2 = client.stats()
        client.shutdown()
    thread2.join(timeout=10)

    total_accepted = report1.accepted + report2.accepted
    total_rps = (
        total_accepted / max(report1.duration_s + report2.duration_s, 1e-9)
    )
    latency = stats2["decision_latency"]
    print(
        f"resume check: {checked} tenants bit-identical "
        f"({mismatches} mismatches); overall {total_rps:.0f} req/s, "
        f"daemon p99 decision {latency['p99_s'] * 1e3:.2f} ms"
    )

    failures = []
    if mismatches:
        failures.append(f"{mismatches} tenants diverged after restart")
    if report1.dropped or report2.dropped:
        failures.append(
            f"{report1.dropped + report2.dropped} responses dropped "
            f"without retry_after"
        )
    if not latency["count"]:
        failures.append("empty decision-latency metrics")
    if args.min_rps and total_rps < args.min_rps:
        failures.append(
            f"throughput {total_rps:.0f} req/s below --min-rps "
            f"{args.min_rps:.0f}"
        )
    metrics_out = _resolve_output(args, "metrics_out", "daemon_metrics.json")
    if metrics_out:
        payload = {
            "phase1": report1.to_dict(),
            "phase2": report2.to_dict(),
            "drain": {"tenants": drained.tenants, "path": state_file},
            "resume_checked": checked,
            "resume_mismatches": mismatches,
            "daemon_stats": stats2,
        }
        with open(metrics_out, "w", encoding="utf-8") as handle:
            _json.dump(payload, handle, indent=2)
        print(f"wrote metrics JSON to {metrics_out}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("daemon smoke OK")
    return 0


def _cmd_collective(args: argparse.Namespace) -> int:
    from repro.collectives import (
        get_collective_spec,
        iter_collective_specs,
        make_collective,
    )
    from repro.directory.factory import make_directory

    try:
        directory = make_directory(
            args.directory or "static", num_procs=args.procs, rng=args.seed
        )
    except (KeyError, ValueError, TypeError) as exc:
        print(f"error: bad --directory spec: {exc}", file=sys.stderr)
        raise SystemExit(2)
    snapshot = directory.snapshot()
    if args.collective:
        names = list(args.collective)
    else:
        names = [
            spec.name for spec in iter_collective_specs(family=args.family)
        ]
    print(
        f"{args.size / 1024:g} KiB collectives over P={snapshot.num_procs} "
        f"({args.directory or 'static'})"
    )
    rows = []
    for name in names:
        try:
            fn = make_collective(name)
        except KeyError:
            known = ", ".join(
                spec.name for spec in iter_collective_specs()
            )
            print(
                f"error: unknown collective {name!r} for --collective; "
                f"known: {known}",
                file=sys.stderr,
            )
            raise SystemExit(2)
        result = fn(snapshot, float(args.size))
        events = sum(1 for e in result.schedule if e.duration > 0)
        rows.append([
            name, get_collective_spec(name).family, events,
            result.completion_time,
        ])
    rows.sort(key=lambda row: (row[1], row[3]))
    print(format_table(
        ["collective", "family", "events", "completion (s)"],
        rows, precision=4,
    ))
    return 0


def _cmd_ops(args: argparse.Namespace) -> int:
    import dataclasses
    import json as _json
    import pathlib

    ops_dir = args.ops_dir or "ops"

    if args.ops_command == "soak":
        from repro.ops.slo import LogNotifier, make_notifier
        from repro.ops.soak import SoakConfig, run_soak

        if args.hours:
            config = SoakConfig.hours(args.hours, seed=args.seed)
        else:
            config = SoakConfig.smoke(args.seed)
        overrides = {}
        for name in ("tenants", "procs", "ticks"):
            value = getattr(args, name)
            if value is not None:
                overrides[name] = value
        if args.slo:
            from repro.ops.slo import parse_slo_spec

            try:
                overrides["slos"] = tuple(
                    parse_slo_spec(spec) for spec in args.slo
                )
            except (KeyError, ValueError) as exc:
                print(f"error: bad --slo spec: {exc}", file=sys.stderr)
                raise SystemExit(2)
        if args.no_daemon_phase:
            overrides["daemon_phase"] = False
        if overrides:
            config = dataclasses.replace(config, **overrides)
        notifiers = [LogNotifier(stream=sys.stdout)]
        for spec in args.notify or []:
            try:
                notifiers.append(make_notifier(spec, stream=sys.stdout))
            except (KeyError, ValueError) as exc:
                print(f"error: bad --notify spec: {exc}", file=sys.stderr)
                raise SystemExit(2)
        print(
            f"soaking {config.tenants} tenants x {config.ticks} ticks "
            f"({config.sim_seconds:g} simulated seconds) into {ops_dir}"
        )
        report = run_soak(
            config, ops_dir, notifiers=notifiers, progress=print
        )
        print()
        print(report.render())
        print(f"report: {pathlib.Path(ops_dir) / 'slo_report.json'}")
        return 0 if report.ok else 1

    # ops report: summarise what an ops directory holds.
    from repro.ops import BackupManager, MetricsStore

    root = pathlib.Path(ops_dir)
    if not root.exists():
        print(f"error: no ops directory at {root}", file=sys.stderr)
        return 1
    store_dir = root / "store"
    if store_dir.exists():
        store = MetricsStore(store_dir)
        stats = store.stats()
        rows = [
            ["segments", stats["segments"]],
            ["sealed segments", stats["sealed_segments"]],
            ["total bytes", stats["total_bytes"]],
        ]
        if args.kind:
            count = sum(1 for _ in store.iter_records(kind=args.kind))
            rows.append([f"records kind={args.kind}", count])
        store.close()
        print(format_table(["store", "value"], rows))
    report_path = root / "slo_report.json"
    if report_path.exists():
        payload = _json.loads(report_path.read_text())
        print(
            f"\nlast soak: ok={payload.get('ok')} "
            f"({payload.get('oracle_checks', 0)} oracle checks, "
            f"{payload.get('oracle_violations', 0)} violations; "
            f"{payload.get('alerts_fired', 0)} alerts fired, "
            f"{payload.get('alerts_resolved', 0)} resolved)"
        )
        slo_rows = [
            [s["state"], s["slo"], s.get("value"), s["fired"], s["resolved"]]
            for s in payload.get("slo", {}).get("slos", [])
        ]
        if slo_rows:
            print(format_table(
                ["state", "slo", "value", "fired", "resolved"],
                slo_rows, precision=4,
            ))
    alerts_path = root / "alerts.jsonl"
    if alerts_path.exists():
        lines = alerts_path.read_text().strip().splitlines()
        print(f"\nalerts ({len(lines)} transitions, newest last):")
        for line in lines[-10:]:
            alert = _json.loads(line)
            print(
                f"  [{alert['state']:>8}] t={alert['time']:.3f} "
                f"{alert['slo']} value={alert['value']:.4g}"
            )
    backups_dir = root / "backups"
    if backups_dir.exists():
        manager = BackupManager(backups_dir)
        paths = manager.paths()
        print(f"\nbackups ({len(paths)} retained):")
        for path in paths:
            print(f"  {path.name} ({path.stat().st_size} bytes)")
    return 0


def _scheduler_parent() -> argparse.ArgumentParser:
    """The shared ``--scheduler`` flag every scheduler-taking subcommand
    inherits (repeatable; resolved via ``make_scheduler``)."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--scheduler", action="append", default=None, metavar="NAME",
        help=(
            "registry scheduler name (repeat to select several where a "
            "set is compared; parameterized variants like "
            "'matching_min:auction' included)"
        ),
    )
    return parent


def _directory_parent() -> argparse.ArgumentParser:
    """The shared ``--directory SPEC`` flag for subcommands that take a
    network source (resolved via ``make_directory``)."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--directory", default=None, metavar="SPEC",
        help=(
            "directory spec 'name[:key=val,...]' (static, gusto, "
            "noisy:sigma=0.1, perturb, dynamics:process=diurnal, "
            "forecast:mode=linear, drift); default depends on the "
            "subcommand"
        ),
    )
    return parent


def _ops_parent() -> argparse.ArgumentParser:
    """The shared output-flag family every producing subcommand inherits.

    ``--ops-dir`` names one directory for everything a run persists
    (metrics store, alerts, backups, reports); ``--metrics-out`` /
    ``--trace-out`` name individual artifacts, resolved *under*
    ``--ops-dir`` when both are given (see :func:`_resolve_output`).
    Declared once here so ``serve``, ``daemon``, ``bench``, and ``ops``
    stay flag-compatible.
    """
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--ops-dir", default=None, metavar="DIR",
        help="ops directory: rotating metrics store, SLO alerts, "
             "backups, and reports all live under this one path",
    )
    parent.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="metrics JSON output path ('' to skip; bare filenames land "
             "under --ops-dir when set)",
    )
    parent.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="Chrome trace output path ('' to skip; bare filenames land "
             "under --ops-dir when set)",
    )
    return parent


def _resolve_output(args: argparse.Namespace, attr: str, default: str) -> str:
    """Resolve one output path through the shared flag family: an
    explicit flag wins over ``default``; bare filenames are placed under
    ``--ops-dir`` when one was given; '' disables the artifact."""
    value = getattr(args, attr, None)
    name = value if value is not None else default
    if not name:
        return ""
    ops_dir = getattr(args, "ops_dir", None)
    if ops_dir and os.sep not in name and not os.path.isabs(name):
        os.makedirs(ops_dir, exist_ok=True)
        return os.path.join(ops_dir, name)
    return name


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-hetcomm",
        description=(
            "Adaptive communication scheduling for distributed "
            "heterogeneous systems (HPDC'98 reproduction)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)
    scheduler_parent = _scheduler_parent()
    directory_parent = _directory_parent()
    ops_parent = _ops_parent()

    p_example = sub.add_parser("example", help="run the 5-processor example")
    p_example.add_argument(
        "--diagrams", action="store_true", help="print ASCII timing diagrams"
    )
    p_example.set_defaults(func=_cmd_example)

    p_gusto = sub.add_parser("gusto", help="GUSTO tables and schedules")
    p_gusto.set_defaults(func=_cmd_gusto)

    p_figure = sub.add_parser("figure", help="regenerate a paper figure")
    p_figure.add_argument("id", choices=sorted(FIGURE_DRIVERS))
    p_figure.add_argument("--trials", type=int, default=3)
    p_figure.add_argument("--seed", type=int, default=0)
    p_figure.set_defaults(func=_cmd_figure)

    p_quality = sub.add_parser("quality", help="Section 5 quality summary")
    p_quality.add_argument("--trials", type=int, default=3)
    p_quality.add_argument("--seed", type=int, default=0)
    p_quality.set_defaults(func=_cmd_quality)

    p_zoo = sub.add_parser(
        "zoo", parents=[scheduler_parent], help="compare schedulers"
    )
    p_zoo.add_argument("--procs", type=int, default=12)
    p_zoo.add_argument("--seed", type=int, default=0)
    p_zoo.set_defaults(func=_cmd_zoo)

    p_adaptive = sub.add_parser("adaptive", help="Section 6.3 drift sweep")
    p_adaptive.add_argument("--procs", type=int, default=12)
    p_adaptive.add_argument("--trials", type=int, default=3)
    p_adaptive.add_argument("--seed", type=int, default=0)
    p_adaptive.set_defaults(func=_cmd_adaptive)

    p_broadcast = sub.add_parser(
        "broadcast", help="heterogeneous broadcast comparison"
    )
    p_broadcast.add_argument("--procs", type=int, default=16)
    p_broadcast.add_argument("--seed", type=int, default=0)
    p_broadcast.set_defaults(func=_cmd_broadcast)

    p_export = sub.add_parser(
        "export", parents=[scheduler_parent],
        help="export an example schedule (JSON/SVG/trace)",
    )
    p_export.add_argument("--output-dir", default="exported")
    p_export.set_defaults(func=_cmd_export)

    p_claims = sub.add_parser(
        "claims", help="check the paper's headline claims"
    )
    p_claims.add_argument("--trials", type=int, default=3)
    p_claims.add_argument("--seed", type=int, default=0)
    p_claims.set_defaults(func=_cmd_claims)

    p_bench = sub.add_parser(
        "bench", parents=[scheduler_parent, directory_parent, ops_parent],
        help="time the scheduling kernels vs the seed versions",
    )
    p_bench.add_argument(
        "--sizes", type=int, nargs="+", default=None, metavar="P",
        help="processor counts to bench (default: 50 100 256 512 1024)",
    )
    p_bench.add_argument("--repeats", type=int, default=3)
    p_bench.add_argument("--seed", type=int, default=0)
    p_bench.add_argument(
        "--matching-max-p", type=int, default=None, metavar="P",
        help="largest size at which the matching backends are timed",
    )
    p_bench.add_argument(
        "--reference-max-p", type=int, default=None, metavar="P",
        help="largest size at which the frozen seed kernels are timed",
    )
    p_bench.add_argument(
        "--smoke", action="store_true",
        help="tiny sizes, one repeat — exercises the whole path in seconds",
    )
    p_bench.add_argument(
        "--no-reference", action="store_true",
        help="skip the (slow) seed reference kernels",
    )
    p_bench.add_argument(
        "--hier-sizes", type=int, nargs="+", default=None, metavar="P",
        help=(
            "run the hierarchical scale ladder at these processor counts "
            "instead of the kernel bench (e.g. 2048 4096 8192)"
        ),
    )
    p_bench.add_argument(
        "--drift-sizes", type=int, nargs="+", default=None, metavar="P",
        help=(
            "run the drift-response bench (delta repair vs. full "
            "reschedule per drift tick) at these processor counts "
            "instead of the kernel bench (e.g. 256 1024 4096)"
        ),
    )
    p_bench.add_argument(
        "--ticks", type=int, default=8, metavar="T",
        help="drift ticks per size in the drift-response bench",
    )
    p_bench.add_argument(
        "--collectives-sizes", type=int, nargs="+", default=None,
        metavar="P",
        help=(
            "bench the collective planners (log-round broadcast vs "
            "binomial, pipelined vs lockstep ring all-reduce, "
            "direct-connect all-to-all) at these processor counts "
            "instead of the kernel bench (e.g. 64 256)"
        ),
    )
    p_bench.add_argument(
        "--straggler-p", type=int, default=None, metavar="P",
        help=(
            "also serve ring all-reduce traffic through a straggler "
            "episode at this processor count via the adaptive session "
            "(e.g. 512)"
        ),
    )
    p_bench.add_argument(
        "--daemon-load", action="store_true",
        help=(
            "bench the multi-tenant scheduler daemon (throughput, "
            "decision latency, batching) instead of the kernel bench"
        ),
    )
    p_bench.add_argument(
        "--daemon-ps-fanin", action="store_true",
        help=(
            "bench parameter-server fan-in through the daemon with a "
            "heavy-tail Pareto cohort mix"
        ),
    )
    p_bench.add_argument(
        "--daemon-tenants", type=int, default=100, metavar="N",
        help="tenant sessions for the daemon bench tiers",
    )
    p_bench.add_argument(
        "--daemon-cohorts", type=int, default=16, metavar="N",
        help="shared-profile cohorts for the daemon bench tiers",
    )
    p_bench.add_argument(
        "--daemon-procs", type=int, default=6, metavar="P",
        help="processors per tenant session in the daemon bench tiers",
    )
    p_bench.add_argument(
        "--daemon-duration", type=float, default=6.0, metavar="S",
        help="seconds of load per daemon bench tier",
    )
    p_bench.add_argument(
        "--soak-smoke", action="store_true",
        help=(
            "run the seeded chaos-soak smoke tier (faults + drift "
            "storms + daemon restart) and record it for the "
            "regression guard"
        ),
    )
    p_bench.add_argument(
        "--cluster-size", type=int, default=64, metavar="N",
        help="cluster size of the hierarchical ladder's instances",
    )
    p_bench.add_argument(
        "--output", default="BENCH_core.json",
        help="JSON output path (default: BENCH_core.json; '' to skip)",
    )
    p_bench.set_defaults(func=_cmd_bench)

    p_check = sub.add_parser(
        "check", parents=[scheduler_parent],
        help="differential fuzzing & invariant oracle",
    )
    p_check.add_argument(
        "--seeds", type=int, default=None, metavar="N",
        help="number of fuzzed instances (default: 100; 25 with --smoke)",
    )
    p_check.add_argument(
        "--p-max", type=int, default=None, metavar="P",
        help="largest processor count drawn (default: 12; 8 with --smoke)",
    )
    p_check.add_argument(
        "--time-budget", type=float, default=None, metavar="S",
        help="wall-clock cap in seconds (default: none; 60 with --smoke)",
    )
    p_check.add_argument("--base-seed", type=int, default=0)
    p_check.add_argument(
        "--smoke", action="store_true",
        help="quick CI preset: 25 seeds, P <= 8, 60s budget",
    )
    p_check.add_argument(
        "--out-dir", default="benchmarks/results/check_failures",
        help="minimized-failure artifact directory ('' to disable)",
    )
    p_check.add_argument(
        "--faults", action="store_true",
        help="also run the fault-recovery family: repaired schedules "
             "must pass the oracle and deliver all surviving demand",
    )
    p_check.add_argument(
        "--drift", action="store_true",
        help="also run the drift family: storm-driven sessions must "
             "walk the reuse/refine/repair/reschedule ladder and every "
             "delta-repaired tick must pass the oracle",
    )
    p_check.add_argument(
        "--collectives", action="store_true",
        help="also run the collectives family: every registered "
             "collective audited for delivery, round/volume guarantee "
             "caps and bit-exact agreement with scalar references",
    )
    p_check.set_defaults(func=_cmd_check)

    p_serve = sub.add_parser(
        "serve", parents=[scheduler_parent, directory_parent, ops_parent],
        help="drive the online adaptive runtime over a drift trace",
    )
    p_serve.add_argument(
        "--procs", type=int, default=None,
        help="processors in the drift trace (default: 12; 8 with --smoke)",
    )
    p_serve.add_argument(
        "--ticks", type=int, default=None,
        help="total exchanges to serve (default: 32; 12 with --smoke)",
    )
    p_serve.add_argument("--dt", type=float, default=1.0,
                         help="directory seconds between ticks")
    p_serve.add_argument("--seed", type=int, default=0)
    p_serve.add_argument(
        "--sigma", type=float, default=None,
        help="per-tick drift magnitude (default: 0.02; 0.01 with --smoke)",
    )
    p_serve.add_argument(
        "--burst-sigma", type=float, default=None,
        help="burst drift magnitude (default: 0.5; 0.6 with --smoke)",
    )
    p_serve.add_argument(
        "--burst-every", type=int, default=None,
        help="burst cadence in ticks, 0 = never "
             "(default: 8; 4 with --smoke)",
    )
    p_serve.add_argument(
        "--reuse-threshold", type=float, default=0.05,
        help="drift below this reuses the plan untouched",
    )
    p_serve.add_argument(
        "--refine-threshold", type=float, default=0.25,
        help="drift at or above this forces a full reschedule",
    )
    p_serve.add_argument(
        "--max-reuse-ticks", type=int, default=None,
        help="staleness cap on consecutive reuses "
             "(default: 8; 3 with --smoke)",
    )
    p_serve.add_argument(
        "--deadline", type=float, default=5.0,
        help="scheduler wall-clock deadline in seconds before the "
             "baseline fallback takes over",
    )
    p_serve.add_argument(
        "--inject-timeout", type=int, action="append", default=None,
        metavar="TICK",
        help="chaos hook: treat the scheduler as timed out at this tick "
             "(repeatable; --smoke injects tick 6)",
    )
    p_serve.add_argument(
        "--smoke", action="store_true",
        help="deterministic CI preset exercising reuse, refine, "
             "reschedule, and the injected-timeout fallback",
    )
    p_serve.add_argument(
        "--fault-profile", default="", metavar="SPEC",
        help="inject failures: a named preset ('smoke', 'none') or "
             "';'-separated 'kind:key=val,...' entries with kind in "
             "link_dead, blackout, bw_collapse, node_drop (e.g. "
             "'link_dead:src=0,dst=1,at=3,at_event=5')",
    )
    p_serve.set_defaults(func=_cmd_serve)

    p_daemon = sub.add_parser(
        "daemon", parents=[ops_parent],
        help="run the multi-tenant scheduler daemon (or its smoke test)",
    )
    p_daemon.add_argument(
        "--socket", default="",
        help="unix socket path (default: a temp path; ignored with --tcp)",
    )
    p_daemon.add_argument(
        "--tcp", default="", metavar="[HOST:]PORT",
        help="listen on TCP instead of a unix socket",
    )
    p_daemon.add_argument(
        "--max-queue", type=int, default=256,
        help="bounded request-queue capacity (admission control beyond)",
    )
    p_daemon.add_argument(
        "--batch-max", type=int, default=64,
        help="max schedule requests drained per batching round",
    )
    p_daemon.add_argument(
        "--state-file", default="",
        help="drain/snapshot target (default: <socket>.state.json)",
    )
    p_daemon.add_argument(
        "--resume", default="", metavar="STATE_FILE",
        help="restore tenants from a state file written by drain",
    )
    p_daemon.add_argument(
        "--smoke", action="store_true",
        help="self-contained acceptance run: load generator, mid-load "
             "drain + kill + restart, bit-identical resume verification",
    )
    p_daemon.add_argument(
        "--tenants", type=int, default=100,
        help="simulated tenants for --smoke (default: 100)",
    )
    p_daemon.add_argument(
        "--cohorts", type=int, default=16,
        help="distinct tenant profiles for --smoke (default: 16)",
    )
    p_daemon.add_argument(
        "--procs", type=int, default=6,
        help="processors per tenant for --smoke (default: 6)",
    )
    p_daemon.add_argument(
        "--connections", type=int, default=4,
        help="load-generator connections for --smoke (default: 4)",
    )
    p_daemon.add_argument(
        "--duration", type=float, default=10.0,
        help="total --smoke load seconds across both phases (default: 10)",
    )
    p_daemon.add_argument(
        "--min-rps", type=float, default=0.0,
        help="fail --smoke below this accepted-requests/sec (default: off)",
    )
    p_daemon.set_defaults(func=_cmd_daemon)

    p_ops = sub.add_parser(
        "ops",
        help="production ops: metrics store reports and the chaos soak",
    )
    ops_sub = p_ops.add_subparsers(dest="ops_command", required=True)
    p_soak = ops_sub.add_parser(
        "soak", parents=[ops_parent],
        help="chaos soak: faults + drift storms + timeouts, "
             "oracle-checked, with SLO alerting and verified backups",
    )
    p_soak.add_argument(
        "--smoke", action="store_true",
        help="the seeded CI-sized soak (seconds of wall clock)",
    )
    p_soak.add_argument(
        "--hours", type=float, default=None, metavar="H",
        help="simulated hours to soak (5-minute ticks); overrides the "
             "tick/dt defaults",
    )
    p_soak.add_argument(
        "--tenants", type=int, default=None,
        help="concurrent adaptive sessions (default: 6)",
    )
    p_soak.add_argument(
        "--procs", type=int, default=None,
        help="processors per tenant (default: 8)",
    )
    p_soak.add_argument(
        "--ticks", type=int, default=None,
        help="ticks to serve per tenant (default: 40)",
    )
    p_soak.add_argument("--seed", type=int, default=0)
    p_soak.add_argument(
        "--slo", action="append", default=None, metavar="SPEC",
        help="SLO spec 'name:threshold=...[,window=...,min_samples=...]' "
             "(repeatable; replaces the default soak SLO set)",
    )
    p_soak.add_argument(
        "--notify", action="append", default=None, metavar="SPEC",
        help="extra notifier spec: 'log', 'file:path=...', 'webhook' "
             "(repeatable; alerts always also land in "
             "<ops-dir>/alerts.jsonl)",
    )
    p_soak.add_argument(
        "--no-daemon-phase", action="store_true",
        help="skip the daemon load/drain/backup/restart phase",
    )
    p_soak.set_defaults(func=_cmd_ops)
    p_report = ops_sub.add_parser(
        "report", parents=[ops_parent],
        help="summarise an ops directory: store shape, SLO report, "
             "alerts, backups",
    )
    p_report.add_argument(
        "--kind", default=None, metavar="KIND",
        help="also count stored records of this kind (e.g. 'tick', "
             "'daemon.response')",
    )
    p_report.set_defaults(func=_cmd_ops)

    p_collective = sub.add_parser(
        "collective", parents=[directory_parent],
        help="compare registered collective operations on one snapshot",
    )
    p_collective.add_argument(
        "--collective", action="append", default=None, metavar="NAME",
        help="registry collective name (repeatable; default: all, or "
             "one --family)",
    )
    p_collective.add_argument(
        "--family", default=None,
        choices=("rooted", "allreduce", "barrier", "exchange"),
        help="restrict the default selection to one family",
    )
    p_collective.add_argument("--procs", type=int, default=8)
    p_collective.add_argument("--seed", type=int, default=0)
    p_collective.add_argument(
        "--size", type=float, default=float(MEGABYTE),
        help="payload bytes per block/message (default: 1 MB)",
    )
    p_collective.set_defaults(func=_cmd_collective)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
