"""Command-line interface: ``repro-hetcomm`` / ``python -m repro``.

Subcommands
-----------
``example``
    Run every scheduler on the 5-processor running example and print the
    timing diagrams (paper Figures 3-8 style).
``gusto``
    Print the GUSTO directory tables (paper Tables 1-2) and schedule a
    1 MB total exchange over the five sites.
``figure {9,10,11,12}``
    Regenerate one of the paper's evaluation figures as printed series.
``quality``
    Pool all four figures and print the Section 5 ratio-to-lower-bound
    quality summary.
``zoo``
    Compare every registered scheduler (including the non-paper
    comparators and the preemptive optimum) on one random instance.
``adaptive``
    Run the Section 6.3 drift sweep: adaptivity gain vs drift magnitude.
``broadcast``
    Compare binomial-tree and fastest-node-first broadcast on a random
    heterogeneous network.
``export``
    Schedule the running example with a chosen algorithm and write the
    schedule as JSON, SVG, and a Chrome trace.
``claims``
    Check the paper's headline claims mechanically (quick versions) and
    print PASS/FAIL per claim.
``bench``
    Time the scheduling kernels against the frozen seed implementations
    and write ``BENCH_core.json`` (``--smoke`` for a seconds-long CI
    variant).
``check``
    Differential fuzzing and invariant oracle: randomized adversarial
    instances through every registered scheduler, cross-checked against
    the frozen seed kernels and the exact solver; failing instances are
    minimized and dumped to ``benchmarks/results/check_failures/``
    (``--smoke`` for a quick CI variant).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from repro.core.problem import TotalExchangeProblem, example_problem
from repro.core.registry import ALL_SCHEDULERS
from repro.directory.static import gusto_directory
from repro.experiments.figures import FIGURE_DRIVERS
from repro.experiments.quality import quality_stats
from repro.experiments.report import (
    render_improvement,
    render_quality,
    render_sweep,
)
from repro.model.messages import UniformSizes
from repro.network.gusto import (
    GUSTO_BANDWIDTH_KBIT_S,
    GUSTO_LATENCY_MS,
    GUSTO_SITES,
)
from repro.timing.diagram import describe_schedule, render_timing_diagram
from repro.util.tables import format_table
from repro.util.units import MEGABYTE


def _cmd_example(args: argparse.Namespace) -> int:
    problem = example_problem()
    print("Running example (5 processors); lower bound =", problem.lower_bound())
    print()
    rows = []
    for name, scheduler in ALL_SCHEDULERS.items():
        schedule = scheduler(problem)
        rows.append([name, schedule.completion_time,
                     schedule.completion_time / problem.lower_bound()])
        if args.diagrams:
            print(f"--- {name} ---")
            print(render_timing_diagram(schedule, rows=20))
            print()
    print(format_table(["algorithm", "completion", "ratio to LB"], rows))
    return 0


def _cmd_gusto(args: argparse.Namespace) -> int:
    header = ["", *GUSTO_SITES]
    lat_rows = [
        [site, *GUSTO_LATENCY_MS[i].tolist()] for i, site in enumerate(GUSTO_SITES)
    ]
    bw_rows = [
        [site, *GUSTO_BANDWIDTH_KBIT_S[i].tolist()]
        for i, site in enumerate(GUSTO_SITES)
    ]
    print(format_table(header, lat_rows, precision=1,
                       title="Table 1: latency (ms) between 5 GUSTO sites"))
    print()
    print(format_table(header, bw_rows, precision=0,
                       title="Table 2: bandwidth (kbit/s) between 5 GUSTO sites"))
    print()
    directory = gusto_directory()
    problem = TotalExchangeProblem.from_snapshot(
        directory.snapshot(), UniformSizes(MEGABYTE)
    )
    print(f"1 MB total exchange over GUSTO; lower bound = "
          f"{problem.lower_bound():.1f}s")
    rows = [
        [name, scheduler(problem).completion_time]
        for name, scheduler in ALL_SCHEDULERS.items()
    ]
    print(format_table(["algorithm", "completion (s)"], rows, precision=1))
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    driver = FIGURE_DRIVERS[args.id]
    result = driver(trials=args.trials, seed=args.seed)
    print(render_sweep(result))
    print()
    print(render_improvement(result))
    print()
    print(render_quality(quality_stats([result])))
    return 0


def _cmd_quality(args: argparse.Namespace) -> int:
    results = [
        driver(trials=args.trials, seed=args.seed)
        for driver in FIGURE_DRIVERS.values()
    ]
    print(render_quality(quality_stats(results)))
    return 0


def _cmd_zoo(args: argparse.Namespace) -> int:
    from repro.core.preemptive import schedule_preemptive
    from repro.core.registry import EXTRA_SCHEDULERS
    from repro.directory.service import DirectorySnapshot
    from repro.model.messages import MixedSizes

    rng = np.random.default_rng(args.seed)
    latency, bandwidth = __import__("repro").random_pairwise_parameters(
        args.procs, rng=rng
    )
    snapshot = DirectorySnapshot(latency=latency, bandwidth=bandwidth)
    problem = TotalExchangeProblem.from_snapshot(
        snapshot, MixedSizes(), rng=rng
    )
    lb = problem.lower_bound()
    print(f"P={args.procs} mixed-workload instance; lower bound {lb:.2f}s")
    rows = []
    names = [*ALL_SCHEDULERS, "baseline_nosync", "lpt", "local_search"]
    for name in names:
        scheduler = ALL_SCHEDULERS.get(name) or EXTRA_SCHEDULERS[name]
        t = scheduler(problem).completion_time
        rows.append([name, t, t / lb])
    rows.append(
        ["preemptive optimum", schedule_preemptive(problem).completion_time,
         1.0]
    )
    rows.sort(key=lambda row: row[1])
    print(format_table(["scheduler", "completion (s)", "ratio"], rows))
    return 0


def _cmd_adaptive(args: argparse.Namespace) -> int:
    from repro.experiments.adaptive_sweep import run_adaptive_sweep
    from repro.util.tables import format_series

    result = run_adaptive_sweep(
        sigmas=(0.0, 0.6, 1.2), num_procs=args.procs, trials=args.trials,
        seed=args.seed,
    )
    series = dict(result.completion)
    series["post_drift_lb"] = result.post_drift_lb
    print(format_series(
        "sigma", result.sigmas, series, precision=1,
        title="completion (s) vs drift magnitude",
    ))
    gains = result.gain("halving")
    print("\nhalving-policy gain vs stale plan:",
          ", ".join(f"sigma {s:g}: {g * 100:.1f}%"
                    for s, g in zip(result.sigmas, gains)))
    return 0


def _cmd_broadcast(args: argparse.Namespace) -> int:
    from repro.collectives import (
        broadcast_lower_bound,
        schedule_broadcast_binomial,
        schedule_broadcast_fnf,
    )
    from repro.directory.service import DirectorySnapshot
    from repro.model.cost import cost_matrix

    rng = np.random.default_rng(args.seed)
    latency, bandwidth = __import__("repro").random_pairwise_parameters(
        args.procs, rng=rng
    )
    snapshot = DirectorySnapshot(latency=latency, bandwidth=bandwidth)
    sizes = np.full((args.procs, args.procs), float(MEGABYTE))
    np.fill_diagonal(sizes, 0.0)
    cost = cost_matrix(snapshot, sizes)
    lb = broadcast_lower_bound(cost)
    binomial = schedule_broadcast_binomial(cost).completion_time
    fnf = schedule_broadcast_fnf(cost).completion_time
    print(f"1 MB broadcast over {args.procs} nodes; lower bound {lb:.2f}s")
    print(format_table(
        ["algorithm", "completion (s)", "ratio"],
        [["binomial tree", binomial, binomial / lb],
         ["fastest-node-first", fnf, fnf / lb]],
    ))
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    import pathlib

    from repro.core.registry import EXTRA_SCHEDULERS
    from repro.io import save_json, save_svg, save_trace, schedule_to_dict

    problem = example_problem()
    scheduler = ALL_SCHEDULERS.get(args.algorithm) or EXTRA_SCHEDULERS[
        args.algorithm
    ]
    schedule = scheduler(problem)
    out = pathlib.Path(args.output_dir)
    out.mkdir(parents=True, exist_ok=True)
    base = out / f"example_{args.algorithm}"
    save_json(base.with_suffix(".json"), schedule_to_dict(schedule))
    save_svg(schedule, base.with_suffix(".svg"),
             title=f"{args.algorithm} on the running example")
    save_trace(schedule, base.with_suffix(".trace.json"))
    print(f"wrote {base}.json, {base}.svg, {base}.trace.json "
          f"(completion {schedule.completion_time:g}s)")
    return 0


def _cmd_claims(args: argparse.Namespace) -> int:
    from repro.core.baseline import schedule_baseline_nosync
    from repro.core.problem import tight_baseline_instance
    from repro.experiments.figures import FIGURE_DRIVERS
    from repro.experiments.quality import quality_stats

    results = [
        driver(proc_counts=(10, 30, 50), trials=args.trials, seed=args.seed)
        for driver in FIGURE_DRIVERS.values()
    ]
    stats = quality_stats(results)
    tight = tight_baseline_instance(1e-6)
    tight_ratio = (
        schedule_baseline_nosync(tight).completion_time
        / tight.lower_bound()
    )
    fig11 = next(r for r in results if r.workload == "fig11-mixed")
    best_speedup = max(fig11.improvement_over_baseline("openshop"))

    checks = [
        (
            "Theorem 2 tightness: nosync baseline hits P/2 on the "
            "epsilon instance",
            abs(tight_ratio - 2.0) < 1e-3,
            f"ratio {tight_ratio:.6f}",
        ),
        (
            "Theorem 3: open shop always within 2x the lower bound",
            stats["openshop"].max_ratio <= 2.0,
            f"worst {stats['openshop'].max_ratio:.3f}",
        ),
        (
            "open shop close to LB on average (paper: often within 2%)",
            stats["openshop"].mean_ratio < 1.05,
            f"mean {stats['openshop'].mean_ratio:.3f}",
        ),
        (
            "max and min matching comparable (paper Section 5)",
            abs(
                stats["max_matching"].mean_ratio
                - stats["min_matching"].mean_ratio
            )
            < 0.08,
            f"means {stats['max_matching'].mean_ratio:.3f} vs "
            f"{stats['min_matching'].mean_ratio:.3f}",
        ),
        (
            "algorithm ordering: openshop <= matching <= greedy <= baseline",
            stats["openshop"].mean_ratio
            <= stats["max_matching"].mean_ratio + 0.02
            and stats["max_matching"].mean_ratio
            <= stats["greedy"].mean_ratio + 0.02
            and stats["greedy"].mean_ratio <= stats["baseline"].mean_ratio,
            "mean ratios "
            + ", ".join(
                f"{name}={stats[name].mean_ratio:.2f}"
                for name in (
                    "openshop", "max_matching", "greedy", "baseline",
                )
            ),
        ),
        (
            "multi-x improvement over the baseline at scale "
            "(paper: factors of 2-5)",
            best_speedup > 2.0,
            f"best openshop speedup on the mixed workload: "
            f"{best_speedup:.2f}x",
        ),
        (
            "baseline degrades to multiple-x above LB (paper: up to 6x)",
            2.0 < stats["baseline"].max_ratio < 8.0,
            f"worst {stats['baseline'].max_ratio:.2f}",
        ),
    ]
    failures = 0
    for title, passed, detail in checks:
        mark = "PASS" if passed else "FAIL"
        failures += 0 if passed else 1
        print(f"[{mark}] {title}  ({detail})")
    print(
        f"\n{len(checks) - failures}/{len(checks)} claims reproduced "
        f"(trials={args.trials}, seed={args.seed})"
    )
    return 1 if failures else 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.perf.bench import (
        DEFAULT_MATCHING_MAX_P,
        DEFAULT_REFERENCE_MAX_P,
        render_bench,
        run_bench,
    )

    matching_max_p = (
        DEFAULT_MATCHING_MAX_P if args.matching_max_p is None
        else args.matching_max_p
    )
    reference_max_p = (
        DEFAULT_REFERENCE_MAX_P if args.reference_max_p is None
        else args.reference_max_p
    )
    result = run_bench(
        args.sizes,
        repeats=args.repeats,
        smoke=args.smoke,
        include_reference=not args.no_reference,
        matching_max_p=matching_max_p,
        reference_max_p=reference_max_p,
        seed=args.seed,
        output=args.output or None,
    )
    print(render_bench(result))
    if args.output:
        print(f"\nwrote {args.output}")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    from repro.check import render_check, run_check

    # --smoke presets a seconds-long run; explicit flags still win.
    seeds = args.seeds if args.seeds is not None else (25 if args.smoke else 100)
    p_max = args.p_max if args.p_max is not None else (8 if args.smoke else 12)
    time_budget = args.time_budget
    if time_budget is None and args.smoke:
        time_budget = 60.0
    report = run_check(
        seeds=seeds,
        p_max=p_max,
        time_budget=time_budget,
        base_seed=args.base_seed,
        out_dir=args.out_dir or None,
    )
    print(render_check(report))
    return 0 if report.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-hetcomm",
        description=(
            "Adaptive communication scheduling for distributed "
            "heterogeneous systems (HPDC'98 reproduction)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_example = sub.add_parser("example", help="run the 5-processor example")
    p_example.add_argument(
        "--diagrams", action="store_true", help="print ASCII timing diagrams"
    )
    p_example.set_defaults(func=_cmd_example)

    p_gusto = sub.add_parser("gusto", help="GUSTO tables and schedules")
    p_gusto.set_defaults(func=_cmd_gusto)

    p_figure = sub.add_parser("figure", help="regenerate a paper figure")
    p_figure.add_argument("id", choices=sorted(FIGURE_DRIVERS))
    p_figure.add_argument("--trials", type=int, default=3)
    p_figure.add_argument("--seed", type=int, default=0)
    p_figure.set_defaults(func=_cmd_figure)

    p_quality = sub.add_parser("quality", help="Section 5 quality summary")
    p_quality.add_argument("--trials", type=int, default=3)
    p_quality.add_argument("--seed", type=int, default=0)
    p_quality.set_defaults(func=_cmd_quality)

    p_zoo = sub.add_parser("zoo", help="compare every scheduler")
    p_zoo.add_argument("--procs", type=int, default=12)
    p_zoo.add_argument("--seed", type=int, default=0)
    p_zoo.set_defaults(func=_cmd_zoo)

    p_adaptive = sub.add_parser("adaptive", help="Section 6.3 drift sweep")
    p_adaptive.add_argument("--procs", type=int, default=12)
    p_adaptive.add_argument("--trials", type=int, default=3)
    p_adaptive.add_argument("--seed", type=int, default=0)
    p_adaptive.set_defaults(func=_cmd_adaptive)

    p_broadcast = sub.add_parser(
        "broadcast", help="heterogeneous broadcast comparison"
    )
    p_broadcast.add_argument("--procs", type=int, default=16)
    p_broadcast.add_argument("--seed", type=int, default=0)
    p_broadcast.set_defaults(func=_cmd_broadcast)

    p_export = sub.add_parser(
        "export", help="export an example schedule (JSON/SVG/trace)"
    )
    p_export.add_argument("--algorithm", default="openshop")
    p_export.add_argument("--output-dir", default="exported")
    p_export.set_defaults(func=_cmd_export)

    p_claims = sub.add_parser(
        "claims", help="check the paper's headline claims"
    )
    p_claims.add_argument("--trials", type=int, default=3)
    p_claims.add_argument("--seed", type=int, default=0)
    p_claims.set_defaults(func=_cmd_claims)

    p_bench = sub.add_parser(
        "bench", help="time the scheduling kernels vs the seed versions"
    )
    p_bench.add_argument(
        "--sizes", type=int, nargs="+", default=None, metavar="P",
        help="processor counts to bench (default: 50 100 256 512 1024)",
    )
    p_bench.add_argument("--repeats", type=int, default=3)
    p_bench.add_argument("--seed", type=int, default=0)
    p_bench.add_argument(
        "--matching-max-p", type=int, default=None, metavar="P",
        help="largest size at which the matching backends are timed",
    )
    p_bench.add_argument(
        "--reference-max-p", type=int, default=None, metavar="P",
        help="largest size at which the frozen seed kernels are timed",
    )
    p_bench.add_argument(
        "--smoke", action="store_true",
        help="tiny sizes, one repeat — exercises the whole path in seconds",
    )
    p_bench.add_argument(
        "--no-reference", action="store_true",
        help="skip the (slow) seed reference kernels",
    )
    p_bench.add_argument(
        "--output", default="BENCH_core.json",
        help="JSON output path (default: BENCH_core.json; '' to skip)",
    )
    p_bench.set_defaults(func=_cmd_bench)

    p_check = sub.add_parser(
        "check", help="differential fuzzing & invariant oracle"
    )
    p_check.add_argument(
        "--seeds", type=int, default=None, metavar="N",
        help="number of fuzzed instances (default: 100; 25 with --smoke)",
    )
    p_check.add_argument(
        "--p-max", type=int, default=None, metavar="P",
        help="largest processor count drawn (default: 12; 8 with --smoke)",
    )
    p_check.add_argument(
        "--time-budget", type=float, default=None, metavar="S",
        help="wall-clock cap in seconds (default: none; 60 with --smoke)",
    )
    p_check.add_argument("--base-seed", type=int, default=0)
    p_check.add_argument(
        "--smoke", action="store_true",
        help="quick CI preset: 25 seeds, P <= 8, 60s budget",
    )
    p_check.add_argument(
        "--out-dir", default="benchmarks/results/check_failures",
        help="minimized-failure artifact directory ('' to disable)",
    )
    p_check.set_defaults(func=_cmd_check)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
