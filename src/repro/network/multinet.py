"""Multiple heterogeneous networks between node pairs (paper Section 2).

Kim & Lilja (the paper's references [14, 15]) studied workstation
clusters joined by several networks at once — Ethernet, ATM,
Fibre-Channel — and two point-to-point techniques the paper summarises:

* **PBPS (Performance Based Path Selection)** — per message, pick the
  single network that moves it fastest (small messages favour the
  low-latency network, large ones the high-bandwidth network);
* **Aggregation** — stripe one message across several networks at once,
  each carrying a share.

This module implements both over per-pair channel lists, including the
optimal aggregation split (a water-filling closed form), the PBPS
crossover analysis, and an adapter that exposes the resulting effective
performance as a :class:`~repro.directory.service.DirectorySnapshot` so
the collective schedulers run unchanged on multi-network clusters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.directory.service import DirectorySnapshot
from repro.util.validation import check_positive


@dataclass(frozen=True)
class Channel:
    """One network between a node pair: start-up cost and rate."""

    name: str
    latency: float     # seconds
    bandwidth: float   # bytes/second

    def __post_init__(self) -> None:
        check_positive("latency", self.latency, allow_zero=True)
        check_positive("bandwidth", self.bandwidth)

    def transfer_time(self, size_bytes: float) -> float:
        if size_bytes < 0:
            raise ValueError("size must be >= 0")
        return self.latency + size_bytes / self.bandwidth


def pbps_select(channels: Sequence[Channel], size_bytes: float) -> Channel:
    """The single channel that moves ``size_bytes`` fastest."""
    if not channels:
        raise ValueError("need at least one channel")
    return min(
        channels, key=lambda c: (c.transfer_time(size_bytes), c.name)
    )


def pbps_time(channels: Sequence[Channel], size_bytes: float) -> float:
    """Transfer time under Performance Based Path Selection."""
    return pbps_select(channels, size_bytes).transfer_time(size_bytes)


def aggregate_split(
    channels: Sequence[Channel], size_bytes: float
) -> Dict[str, float]:
    """Optimal byte split across channels used simultaneously.

    Minimise ``max_c (T_c + x_c / B_c)`` subject to ``sum x_c = m``,
    ``x_c >= 0``.  At the optimum every *used* channel finishes at the
    same time ``t`` with ``x_c = B_c (t - T_c)``; channels whose start-up
    exceeds ``t`` carry nothing.  Solving for ``t`` over the channels
    sorted by start-up gives a water-filling closed form.
    """
    if not channels:
        raise ValueError("need at least one channel")
    if size_bytes < 0:
        raise ValueError("size must be >= 0")
    if size_bytes == 0:
        return {c.name: 0.0 for c in channels}
    ordered = sorted(channels, key=lambda c: (c.latency, c.name))
    best_t = None
    for used in range(1, len(ordered) + 1):
        subset = ordered[:used]
        total_bw = sum(c.bandwidth for c in subset)
        # t solves sum B_c (t - T_c) = m over the subset
        t = (size_bytes + sum(c.bandwidth * c.latency for c in subset)) / total_bw
        # consistent iff every used channel actually starts before t and
        # the next unused one would not want to join
        if t < subset[-1].latency - 1e-15:
            continue
        if used < len(ordered) and t > ordered[used].latency + 1e-15:
            continue
        best_t = t
        break
    if best_t is None:  # numerical corner: fall back to using all
        subset = ordered
        total_bw = sum(c.bandwidth for c in subset)
        best_t = (
            size_bytes + sum(c.bandwidth * c.latency for c in subset)
        ) / total_bw
    split = {c.name: 0.0 for c in channels}
    for c in ordered:
        share = max(0.0, c.bandwidth * (best_t - c.latency))
        split[c.name] = share
    # Normalise floating-point drift (including full underflow for tiny
    # messages) onto the best carrier: the largest existing share, ties
    # and the all-zero case resolved toward the lowest-latency channel.
    drift = size_bytes - sum(split.values())
    if abs(drift) > 0:
        top = max(ordered, key=lambda c: (split[c.name], -c.latency)).name
        split[top] += drift
    return split


def aggregate_time(channels: Sequence[Channel], size_bytes: float) -> float:
    """Completion time of the optimal aggregation split."""
    split = aggregate_split(channels, size_bytes)
    by_name = {c.name: c for c in channels}
    return max(
        (
            by_name[name].transfer_time(share)
            for name, share in split.items()
            if share > 0
        ),
        default=0.0,
    )


def best_technique_time(
    channels: Sequence[Channel], size_bytes: float
) -> Tuple[str, float]:
    """``("pbps" | "aggregate", time)`` — whichever is faster.

    Aggregation always wins or ties on raw time (PBPS is the one-channel
    special case of the split), but it occupies every used network; the
    label lets callers weigh that.
    """
    p = pbps_time(channels, size_bytes)
    a = aggregate_time(channels, size_bytes)
    return ("aggregate", a) if a < p - 1e-15 else ("pbps", p)


def pbps_crossover(
    fast_startup: Channel, high_bandwidth: Channel
) -> Optional[float]:
    """Message size where the high-bandwidth channel overtakes.

    ``None`` when one channel dominates at every size.
    """
    dT = high_bandwidth.latency - fast_startup.latency
    dR = 1.0 / fast_startup.bandwidth - 1.0 / high_bandwidth.bandwidth
    if dR <= 0:
        return None  # the "high bandwidth" channel never catches up
    if dT <= 0:
        return 0.0  # it dominates from the start
    return dT / dR


class MultiNetwork:
    """Per-pair channel lists over ``num_procs`` nodes."""

    def __init__(self, num_procs: int):
        if num_procs <= 0:
            raise ValueError(f"num_procs must be positive, got {num_procs}")
        self.num_procs = num_procs
        self._channels: Dict[Tuple[int, int], List[Channel]] = {}

    def add_channel(
        self, src: int, dst: int, channel: Channel, *, symmetric: bool = True
    ) -> None:
        for proc in (src, dst):
            if not (0 <= proc < self.num_procs):
                raise ValueError(f"node {proc} out of range")
        if src == dst:
            raise ValueError("no channels on the diagonal")
        self._channels.setdefault((src, dst), []).append(channel)
        if symmetric:
            self._channels.setdefault((dst, src), []).append(channel)

    def channels(self, src: int, dst: int) -> List[Channel]:
        found = self._channels.get((src, dst), [])
        if not found:
            raise KeyError(f"no channels between {src} and {dst}")
        return list(found)

    def effective_snapshot(
        self, message_bytes: float, *, technique: str = "pbps"
    ) -> DirectorySnapshot:
        """Directory view of the multi-network at one message size.

        For the chosen technique, each pair's effective parameters are
        fitted so that ``T_eff + m / B_eff`` equals the technique's time
        at ``message_bytes`` (latency taken from the technique's best
        channel for PBPS, from the earliest-starting used channel for
        aggregation).  Collective schedulers then run unchanged.
        """
        if technique not in ("pbps", "aggregate"):
            raise ValueError(
                f"technique must be 'pbps' or 'aggregate', got {technique!r}"
            )
        check_positive("message_bytes", message_bytes)
        n = self.num_procs
        latency = np.zeros((n, n))
        bandwidth = np.full((n, n), np.inf)
        for src in range(n):
            for dst in range(n):
                if src == dst:
                    continue
                channels = self.channels(src, dst)
                if technique == "pbps":
                    chosen = pbps_select(channels, message_bytes)
                    latency[src, dst] = chosen.latency
                    bandwidth[src, dst] = chosen.bandwidth
                else:
                    total = aggregate_time(channels, message_bytes)
                    lat = min(c.latency for c in channels)
                    latency[src, dst] = lat
                    transfer = max(total - lat, 1e-12)
                    bandwidth[src, dst] = message_bytes / transfer
        return DirectorySnapshot(latency=latency, bandwidth=bandwidth)
