"""Link-level topology of a metacomputing system.

Mirrors the paper's Figure 1: compute nodes live at geographically
distributed *sites*; each site has a local network; sites are joined by
long-haul (ATM/T3-class) links.  The local network is modelled as a star —
every node has an access link to its site's hub — which captures the two
properties the paper relies on: node-to-node paths traverse both local
networks plus a backbone link, and concurrent flows through a site share
its local infrastructure.

The topology is held in a :class:`networkx.Graph` whose edges carry
:class:`Link` records.  All quantities use the package-wide units
(seconds, bytes, bytes/second).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import networkx as nx

from repro.util.validation import check_positive


@dataclass(frozen=True)
class Link:
    """A physical network link.

    Attributes
    ----------
    latency:
        One-way traversal latency in seconds.
    bandwidth:
        Raw capacity in bytes/second (before any sharing).
    kind:
        Free-form tag (``"lan"``, ``"backbone"``, ``"access"``) used by
        reports and background-load models.
    """

    latency: float
    bandwidth: float
    kind: str = "link"

    def __post_init__(self) -> None:
        check_positive("link latency", self.latency, allow_zero=True)
        check_positive("link bandwidth", self.bandwidth)


@dataclass(frozen=True)
class Node:
    """A compute node attached to a site."""

    index: int
    site: str
    name: str = ""

    def label(self) -> str:
        return self.name or f"P{self.index}"


@dataclass
class Site:
    """A site: a named location hosting a hub and a set of compute nodes."""

    name: str
    nodes: List[Node] = field(default_factory=list)

    @property
    def hub(self) -> str:
        """Graph vertex id of this site's local-network hub."""
        return f"hub:{self.name}"


class Metacomputer:
    """A heterogeneous network-based system (paper Figure 1).

    Build one with :meth:`Metacomputer.build`, then query end-to-end
    parameters with :func:`repro.network.paths.end_to_end_matrices` or wrap
    it in a :class:`repro.directory.TopologyDirectory` for time-varying
    behaviour.
    """

    def __init__(self) -> None:
        self.graph = nx.Graph()
        self.sites: Dict[str, Site] = {}
        self.nodes: List[Node] = []

    # -- construction -----------------------------------------------------

    def add_site(self, name: str) -> Site:
        """Register a site and its hub vertex."""
        if name in self.sites:
            raise ValueError(f"site {name!r} already exists")
        site = Site(name=name)
        self.sites[name] = site
        self.graph.add_node(site.hub, kind="hub", site=name)
        return site

    def add_node(
        self,
        site_name: str,
        *,
        access_latency: float,
        access_bandwidth: float,
        name: str = "",
    ) -> Node:
        """Attach a compute node to ``site_name`` via an access link."""
        if site_name not in self.sites:
            raise ValueError(f"unknown site {site_name!r}")
        site = self.sites[site_name]
        node = Node(index=len(self.nodes), site=site_name, name=name)
        self.nodes.append(node)
        site.nodes.append(node)
        vertex = self._node_vertex(node.index)
        self.graph.add_node(vertex, kind="node", site=site_name, node=node)
        self.graph.add_edge(
            vertex,
            site.hub,
            link=Link(
                latency=access_latency, bandwidth=access_bandwidth, kind="access"
            ),
        )
        return node

    def connect_sites(
        self,
        site_a: str,
        site_b: str,
        *,
        latency: float,
        bandwidth: float,
        kind: str = "backbone",
    ) -> None:
        """Join two site hubs with a long-haul link."""
        for name in (site_a, site_b):
            if name not in self.sites:
                raise ValueError(f"unknown site {name!r}")
        if site_a == site_b:
            raise ValueError("cannot connect a site to itself")
        self.graph.add_edge(
            self.sites[site_a].hub,
            self.sites[site_b].hub,
            link=Link(latency=latency, bandwidth=bandwidth, kind=kind),
        )

    @classmethod
    def build(
        cls,
        site_specs: Dict[str, int],
        *,
        access_latency: float,
        access_bandwidth: float,
        backbone: Iterable[Tuple[str, str, float, float]],
    ) -> "Metacomputer":
        """Convenience constructor.

        Parameters
        ----------
        site_specs:
            ``{site name: node count}``.
        backbone:
            Iterable of ``(site_a, site_b, latency_s, bandwidth_Bps)``.
        """
        system = cls()
        for site_name, count in site_specs.items():
            system.add_site(site_name)
            for i in range(count):
                system.add_node(
                    site_name,
                    access_latency=access_latency,
                    access_bandwidth=access_bandwidth,
                    name=f"{site_name}-{i}",
                )
        for site_a, site_b, latency, bandwidth in backbone:
            system.connect_sites(site_a, site_b, latency=latency, bandwidth=bandwidth)
        return system

    # -- queries -----------------------------------------------------------

    @property
    def num_procs(self) -> int:
        return len(self.nodes)

    def _node_vertex(self, index: int) -> str:
        return f"node:{index}"

    def node_vertex(self, index: int) -> str:
        """Graph vertex id for compute node ``index``."""
        if not (0 <= index < len(self.nodes)):
            raise ValueError(f"node index {index} out of range")
        return self._node_vertex(index)

    def link(self, u: str, v: str) -> Link:
        """The :class:`Link` on edge ``(u, v)``."""
        return self.graph.edges[u, v]["link"]

    def set_link(self, u: str, v: str, link: Link) -> None:
        """Replace the link record on edge ``(u, v)`` (used by dynamics)."""
        if not self.graph.has_edge(u, v):
            raise ValueError(f"no link between {u!r} and {v!r}")
        self.graph.edges[u, v]["link"] = link

    def links(self) -> List[Tuple[str, str, Link]]:
        """All links as ``(u, v, Link)`` triples."""
        return [(u, v, data["link"]) for u, v, data in self.graph.edges(data=True)]

    def is_connected(self) -> bool:
        """Whether every node can reach every other node."""
        return nx.is_connected(self.graph) if len(self.graph) else True
