"""Network substrate: link-level metacomputer models and GUSTO data.

The paper's directory service reports *end-to-end* latency/bandwidth, but
those numbers come from paths crossing multiple physical networks (local
networks at each site plus long-haul links, Figure 1 of the paper).  This
package models that substrate explicitly:

* :mod:`repro.network.topology` — sites, compute nodes, links;
* :mod:`repro.network.paths` — routing and end-to-end path parameters
  (latency = sum of link latencies, bandwidth = bottleneck link);
* :mod:`repro.network.sharing` — dividing a shared link's bandwidth among
  concurrent flows (equal-share and max-min fair allocations);
* :mod:`repro.network.gusto` — the GUSTO testbed measurements from the
  paper's Tables 1-2;
* :mod:`repro.network.generators` — synthetic heterogeneous systems used
  by the Section 5 experiments.
"""

from repro.network.generators import (
    random_metacomputer,
    random_pairwise_parameters,
)
from repro.network.gusto import (
    GUSTO_BANDWIDTH_KBIT_S,
    GUSTO_LATENCY_MS,
    GUSTO_SITES,
    gusto_parameters,
)
from repro.network.multinet import (
    Channel,
    MultiNetwork,
    aggregate_split,
    aggregate_time,
    pbps_crossover,
    pbps_select,
    pbps_time,
)
from repro.network.paths import PathInfo, end_to_end_matrices, path_info
from repro.network.sharing import equal_share_rates, max_min_fair_rates
from repro.network.topology import Link, Metacomputer, Node, Site

__all__ = [
    "Channel",
    "GUSTO_BANDWIDTH_KBIT_S",
    "GUSTO_LATENCY_MS",
    "GUSTO_SITES",
    "Link",
    "Metacomputer",
    "MultiNetwork",
    "Node",
    "PathInfo",
    "Site",
    "aggregate_split",
    "aggregate_time",
    "pbps_crossover",
    "pbps_select",
    "pbps_time",
    "end_to_end_matrices",
    "equal_share_rates",
    "gusto_parameters",
    "max_min_fair_rates",
    "path_info",
    "random_metacomputer",
    "random_pairwise_parameters",
]
