"""GUSTO testbed measurements (paper Tables 1 and 2).

GUSTO was the Globus testbed; the paper's directory-service example shows
current latency and bandwidth between five of its sites: NASA AMES,
Argonne National Lab (ANL), University of Indiana (IND), USC-ISI, and
NCSA.  These tables both serve as a ready-made 5-processor problem and as
the *guideline* for the random network parameters used in the Section 5
simulations (see :mod:`repro.network.generators`).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.util.units import bytes_per_s_from_kbit_per_s, seconds_from_ms

#: Site order used by both tables.
GUSTO_SITES: Tuple[str, ...] = ("AMES", "ANL", "IND", "USC-ISI", "NCSA")

#: Paper Table 1 — pairwise latency in milliseconds (diagonal unused).
GUSTO_LATENCY_MS = np.array(
    [
        [0.0, 34.5, 89.5, 12.0, 42.0],
        [34.5, 0.0, 20.0, 26.5, 4.5],
        [89.5, 20.0, 0.0, 42.5, 21.5],
        [12.0, 26.5, 42.5, 0.0, 29.5],
        [42.0, 4.5, 21.5, 29.5, 0.0],
    ]
)

#: Paper Table 2 — pairwise bandwidth in kbit/s (diagonal unused).
GUSTO_BANDWIDTH_KBIT_S = np.array(
    [
        [0.0, 512.0, 246.0, 2044.0, 391.0],
        [512.0, 0.0, 491.0, 693.0, 2402.0],
        [246.0, 491.0, 0.0, 311.0, 448.0],
        [2044.0, 693.0, 311.0, 0.0, 4976.0],
        [391.0, 2402.0, 448.0, 4976.0, 0.0],
    ]
)

#: Observed GUSTO ranges, used as generator guidelines (§5: "random
#: performance characteristics ... using information from the GUSTO
#: directory service as a guideline").
GUSTO_LATENCY_RANGE_S: Tuple[float, float] = (
    seconds_from_ms(4.5),
    seconds_from_ms(89.5),
)
GUSTO_BANDWIDTH_RANGE_BPS: Tuple[float, float] = (
    bytes_per_s_from_kbit_per_s(246.0),
    bytes_per_s_from_kbit_per_s(4976.0),
)


def gusto_parameters() -> Tuple[np.ndarray, np.ndarray]:
    """The GUSTO tables in internal units.

    Returns ``(latency, bandwidth)`` with latency in seconds and bandwidth
    in bytes/second; diagonals are 0 and ``inf`` (local copies are free).
    """
    latency = seconds_from_ms(GUSTO_LATENCY_MS.copy())
    bandwidth = bytes_per_s_from_kbit_per_s(GUSTO_BANDWIDTH_KBIT_S.copy())
    np.fill_diagonal(latency, 0.0)
    np.fill_diagonal(bandwidth, np.inf)
    return latency, bandwidth
