"""Bandwidth sharing among concurrent flows.

The paper's directory "takes into account the current network load ...  If
the paths between two distinct node pairs share a common link, the
bandwidth of the common link is divided among these communicating pairs."
Two allocation policies are provided:

* :func:`equal_share_rates` — each link's capacity is divided equally
  among the flows crossing it; a flow's rate is its most restrictive
  per-link share.  This is the paper's stated policy and is what the
  directory uses.
* :func:`max_min_fair_rates` — progressive-filling max-min fairness,
  which redistributes capacity left unused by flows bottlenecked
  elsewhere.  Used by the fluid simulator for "what actually happens"
  ablation experiments; it never allocates less than the equal share.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Mapping, Sequence, Tuple

Edge = Tuple[str, str]


def _flow_edges(paths: Sequence[Sequence[Edge]]) -> List[List[Edge]]:
    return [list(path) for path in paths]


def equal_share_rates(
    paths: Sequence[Sequence[Edge]],
    capacities: Mapping[Edge, float],
) -> List[float]:
    """Equal-split allocation: rate_f = min over links of C_l / n_l.

    ``paths[f]`` lists the (canonically ordered) edges used by flow ``f``;
    ``capacities`` maps each edge to its capacity in bytes/second.
    """
    flows = _flow_edges(paths)
    load: Dict[Edge, int] = {}
    for edges in flows:
        for edge in edges:
            load[edge] = load.get(edge, 0) + 1
    rates = []
    for edges in flows:
        if not edges:
            rates.append(float("inf"))
            continue
        rates.append(min(capacities[edge] / load[edge] for edge in edges))
    return rates


def max_min_fair_rates(
    paths: Sequence[Sequence[Edge]],
    capacities: Mapping[Edge, float],
    *,
    tolerance: float = 1e-12,
) -> List[float]:
    """Max-min fair allocation by progressive filling.

    Repeatedly raise all unfrozen flows' rates together until some link
    saturates, then freeze the flows crossing that link.  The result
    dominates :func:`equal_share_rates` pointwise.
    """
    flows = _flow_edges(paths)
    n = len(flows)
    rates = [0.0] * n
    frozen = [not edges for edges in flows]  # edgeless flows are unconstrained
    for i, done in enumerate(frozen):
        if done:
            rates[i] = float("inf")

    remaining: Dict[Edge, float] = dict(capacities)
    while not all(frozen):
        # For each link, the head-room per unfrozen flow crossing it.
        increments: Dict[Edge, float] = {}
        for edge, capacity in remaining.items():
            active = sum(
                1
                for i, edges in enumerate(flows)
                if not frozen[i] and edge in edges
            )
            if active:
                increments[edge] = capacity / active
        if not increments:
            # Unfrozen flows cross no capacitated link (shouldn't happen for
            # well-formed inputs); treat them as unconstrained.
            for i in range(n):
                if not frozen[i]:
                    rates[i] = float("inf")
                    frozen[i] = True
            break
        step = min(increments.values())
        saturated = {
            edge for edge, inc in increments.items() if inc <= step + tolerance
        }
        for i, edges in enumerate(flows):
            if frozen[i]:
                continue
            rates[i] += step
            for edge in edges:
                remaining[edge] -= step
            if any(edge in saturated for edge in edges):
                frozen[i] = True
        for edge in saturated:
            remaining[edge] = max(remaining[edge], 0.0)
    return rates


def shared_bandwidth_matrix(
    num_procs: int,
    active_pairs: Sequence[Tuple[int, int]],
    paths: Mapping[Tuple[int, int], Sequence[Edge]],
    capacities: Mapping[Edge, float],
):
    """Effective per-pair bandwidth when ``active_pairs`` transfer at once.

    Returns ``{pair: bytes/s}`` under the directory's equal-share policy.
    """
    flow_paths = [paths[pair] for pair in active_pairs]
    rates = equal_share_rates(flow_paths, capacities)
    return dict(zip(active_pairs, rates))
