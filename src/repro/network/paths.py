"""Routing and end-to-end path parameters.

The application-level model sees only two numbers per processor pair: a
start-up cost ``T_ij`` and a transmission rate ``B_ij`` (paper Section
3.2).  This module derives them from the link-level topology:

* the route is the minimum-latency path between the two nodes;
* ``T_ij`` is the sum of link latencies along the route (plus a fixed
  per-message software overhead);
* ``B_ij`` is the bottleneck (minimum) link bandwidth along the route.

Intermediate-hop contention is deliberately ignored, as the paper's model
prescribes ("the model ignores the negligible delays incurred by
contention at intermediate links and nodes").  Link *sharing* between
simultaneous flows is handled separately in :mod:`repro.network.sharing`.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Tuple

import networkx as nx
import numpy as np

from repro.network.topology import Metacomputer


@dataclass(frozen=True)
class PathInfo:
    """End-to-end parameters of a routed node-to-node path."""

    vertices: Tuple[str, ...]
    latency: float
    bandwidth: float

    @property
    def edges(self) -> Tuple[Tuple[str, str], ...]:
        """The path's edges as vertex pairs (canonically ordered)."""
        return tuple(
            (u, v) if u <= v else (v, u)
            for u, v in zip(self.vertices, self.vertices[1:])
        )


def path_info(system: Metacomputer, src: int, dst: int) -> PathInfo:
    """Route ``src -> dst`` and compute its end-to-end parameters."""
    if src == dst:
        vertex = system.node_vertex(src)
        return PathInfo(vertices=(vertex,), latency=0.0, bandwidth=float("inf"))
    route = nx.shortest_path(
        system.graph,
        system.node_vertex(src),
        system.node_vertex(dst),
        weight=lambda u, v, data: data["link"].latency,
    )
    links = [system.link(u, v) for u, v in zip(route, route[1:])]
    return PathInfo(
        vertices=tuple(route),
        latency=sum(link.latency for link in links),
        bandwidth=min(link.bandwidth for link in links),
    )


def all_paths(system: Metacomputer) -> Dict[Tuple[int, int], PathInfo]:
    """Routes for every ordered off-diagonal node pair."""
    paths: Dict[Tuple[int, int], PathInfo] = {}
    for src in range(system.num_procs):
        for dst in range(system.num_procs):
            if src != dst:
                paths[(src, dst)] = path_info(system, src, dst)
    return paths


def end_to_end_matrices(
    system: Metacomputer, *, software_overhead: float = 0.0
) -> Tuple[np.ndarray, np.ndarray]:
    """Dense ``(latency, bandwidth)`` matrices over all node pairs.

    ``latency[i, j]`` is the start-up cost ``T_ij`` in seconds (path
    latency plus ``software_overhead``); ``bandwidth[i, j]`` is ``B_ij`` in
    bytes/second.  Diagonals are 0 and ``inf`` respectively (local copies
    are free under the paper's model).
    """
    n = system.num_procs
    latency = np.zeros((n, n))
    bandwidth = np.full((n, n), np.inf)
    for (src, dst), info in all_paths(system).items():
        latency[src, dst] = info.latency + software_overhead
        bandwidth[src, dst] = info.bandwidth
    return latency, bandwidth
