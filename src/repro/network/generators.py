"""Synthetic heterogeneous systems for simulation experiments.

Two levels of synthesis are provided:

* :func:`random_pairwise_parameters` — directly sample symmetric pairwise
  latency/bandwidth matrices in GUSTO-like ranges.  This is what the
  paper's own simulator does ("generates random performance
  characteristics for pairwise network performance, using information from
  the GUSTO directory service as a guideline") and what the figure
  benchmarks use.
* :func:`random_metacomputer` — sample a full link-level topology (sites,
  access links, backbone) as in Figure 1, for experiments that need a real
  substrate underneath the directory (link sharing, background load,
  fluid simulation).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.network.gusto import (
    GUSTO_BANDWIDTH_RANGE_BPS,
    GUSTO_LATENCY_RANGE_S,
)
from repro.network.topology import Metacomputer
from repro.util.rng import RngLike, to_rng
from repro.util.units import GBIT_PER_S, MBIT_PER_S, seconds_from_ms


def random_pairwise_parameters(
    num_procs: int,
    *,
    latency_range: Tuple[float, float] = GUSTO_LATENCY_RANGE_S,
    bandwidth_range: Tuple[float, float] = GUSTO_BANDWIDTH_RANGE_BPS,
    symmetric: bool = True,
    log_uniform_bandwidth: bool = True,
    rng: RngLike = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Sample GUSTO-guided pairwise ``(latency, bandwidth)`` matrices.

    Latencies are uniform over ``latency_range`` (seconds); bandwidths are
    log-uniform over ``bandwidth_range`` (bytes/s) by default, reflecting
    the order-of-magnitude spread in the GUSTO tables (246 kbit/s to
    ~5 Mbit/s).  ``symmetric=True`` mirrors the upper triangle, as in the
    paper's tables.
    """
    if num_procs <= 0:
        raise ValueError(f"num_procs must be positive, got {num_procs}")
    lat_lo, lat_hi = latency_range
    bw_lo, bw_hi = bandwidth_range
    if lat_lo < 0 or lat_hi < lat_lo:
        raise ValueError(f"bad latency range {latency_range}")
    if bw_lo <= 0 or bw_hi < bw_lo:
        raise ValueError(f"bad bandwidth range {bandwidth_range}")
    rng = to_rng(rng)

    latency = rng.uniform(lat_lo, lat_hi, size=(num_procs, num_procs))
    if log_uniform_bandwidth:
        bandwidth = np.exp(
            rng.uniform(np.log(bw_lo), np.log(bw_hi), size=(num_procs, num_procs))
        )
    else:
        bandwidth = rng.uniform(bw_lo, bw_hi, size=(num_procs, num_procs))
    if symmetric:
        upper = np.triu_indices(num_procs, k=1)
        latency.T[upper] = latency[upper]
        bandwidth.T[upper] = bandwidth[upper]
    np.fill_diagonal(latency, 0.0)
    np.fill_diagonal(bandwidth, np.inf)
    return latency, bandwidth


def clustered_pairwise_parameters(
    num_procs: int,
    *,
    cluster_size: int = 64,
    intra_latency: float = seconds_from_ms(0.5),
    intra_bandwidth: float = GBIT_PER_S,
    inter_latency_range: Tuple[float, float] = (
        seconds_from_ms(10.0),
        seconds_from_ms(50.0),
    ),
    inter_bandwidth_range: Tuple[float, float] = (
        2 * MBIT_PER_S,
        45 * MBIT_PER_S,  # T3-class upper end, as in random_metacomputer
    ),
    jitter: float = 0.05,
    rng: RngLike = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Sample pairwise parameters for a cluster-structured metacomputer.

    The Estefanel/Mounié regime recovered by
    :mod:`repro.core.clustering`: nodes form contiguous clusters of
    ``cluster_size`` (the last one possibly smaller) with uniform fast
    local links; each *pair* of clusters shares one backbone-level
    latency/bandwidth drawn from the wide-area ranges, so inter-cluster
    links are 1–2 orders of magnitude slower than intra-cluster ones.
    A symmetric per-link ``jitter`` fraction keeps individual links
    distinct without blurring the two levels.
    """
    if num_procs <= 0:
        raise ValueError(f"num_procs must be positive, got {num_procs}")
    if cluster_size <= 0:
        raise ValueError(f"cluster_size must be positive, got {cluster_size}")
    if not 0 <= jitter < 1:
        raise ValueError(f"jitter must be in [0, 1), got {jitter}")
    rng = to_rng(rng)

    labels = np.arange(num_procs) // cluster_size
    k = int(labels[-1]) + 1
    lat_level = rng.uniform(*inter_latency_range, size=(k, k))
    bw_level = np.exp(
        rng.uniform(
            np.log(inter_bandwidth_range[0]),
            np.log(inter_bandwidth_range[1]),
            size=(k, k),
        )
    )
    upper = np.triu_indices(k, k=1)
    lat_level.T[upper] = lat_level[upper]
    bw_level.T[upper] = bw_level[upper]
    np.fill_diagonal(lat_level, intra_latency)
    np.fill_diagonal(bw_level, intra_bandwidth)

    latency = lat_level[np.ix_(labels, labels)]
    bandwidth = bw_level[np.ix_(labels, labels)]
    if jitter:
        factor = rng.uniform(1.0 - jitter, 1.0 + jitter, size=(num_procs,) * 2)
        node_upper = np.triu_indices(num_procs, k=1)
        factor.T[node_upper] = factor[node_upper]
        latency = latency * factor
        bandwidth = bandwidth / factor
    np.fill_diagonal(latency, 0.0)
    np.fill_diagonal(bandwidth, np.inf)
    return latency, bandwidth


def random_metacomputer(
    *,
    num_sites: int = 3,
    nodes_per_site: int = 4,
    access_latency: float = seconds_from_ms(0.5),
    access_bandwidth: float = GBIT_PER_S,
    backbone_latency_range: Tuple[float, float] = GUSTO_LATENCY_RANGE_S,
    backbone_bandwidth_range: Tuple[float, float] = (
        2 * MBIT_PER_S,
        45 * MBIT_PER_S,  # T3-class upper end, per the paper's Figure 1
    ),
    extra_edge_probability: float = 0.3,
    rng: RngLike = None,
) -> Metacomputer:
    """Sample a Figure-1-style metacomputer.

    Sites are joined by a random spanning tree plus extra backbone links
    with probability ``extra_edge_probability`` per remaining site pair, so
    the system is always connected but not fully meshed.  Backbone
    latencies/bandwidths are sampled per link; local access links are fast
    and uniform (the heterogeneity the paper studies is in the wide-area
    part).
    """
    if num_sites <= 0 or nodes_per_site <= 0:
        raise ValueError("num_sites and nodes_per_site must be positive")
    rng = to_rng(rng)
    system = Metacomputer()
    site_names = [f"site{i}" for i in range(num_sites)]
    for name in site_names:
        system.add_site(name)
        for i in range(nodes_per_site):
            system.add_node(
                name,
                access_latency=access_latency,
                access_bandwidth=access_bandwidth,
                name=f"{name}-{i}",
            )

    def sample_backbone() -> Tuple[float, float]:
        latency = rng.uniform(*backbone_latency_range)
        bandwidth = np.exp(
            rng.uniform(
                np.log(backbone_bandwidth_range[0]),
                np.log(backbone_bandwidth_range[1]),
            )
        )
        return float(latency), float(bandwidth)

    # Random spanning tree: attach each new site to a random earlier one.
    for i in range(1, num_sites):
        j = int(rng.integers(0, i))
        latency, bandwidth = sample_backbone()
        system.connect_sites(
            site_names[i], site_names[j], latency=latency, bandwidth=bandwidth
        )
    # Extra shortcut links.
    for i in range(num_sites):
        for j in range(i + 1, num_sites):
            if system.graph.has_edge(
                system.sites[site_names[i]].hub, system.sites[site_names[j]].hub
            ):
                continue
            if rng.random() < extra_edge_probability:
                latency, bandwidth = sample_backbone()
                system.connect_sites(
                    site_names[i],
                    site_names[j],
                    latency=latency,
                    bandwidth=bandwidth,
                )
    return system
