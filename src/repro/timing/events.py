"""Communication events and schedules.

A :class:`CommEvent` is one rectangle of the paper's timing diagram: the
message from one processor to another, with a start time and duration.  A
:class:`Schedule` is the full diagram — every event of a collective
communication pattern with concrete start times.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True, order=True)
class CommEvent:
    """One point-to-point message in a schedule.

    Ordering is lexicographic on ``(start, src, dst)`` so sorted event lists
    read top-to-bottom like a timing diagram.

    Attributes
    ----------
    start:
        Time (seconds) at which the transfer begins.
    src, dst:
        Sender and receiver processor indices.
    duration:
        Transfer time in seconds (``T_ij + m / B_ij`` under the paper's
        model).
    size:
        Message size in bytes; informational (the duration is authoritative
        for scheduling).
    """

    start: float
    src: int
    dst: int
    duration: float
    size: float = 0.0

    def __post_init__(self) -> None:
        if self.src < 0 or self.dst < 0:
            raise ValueError(f"processor indices must be >= 0: {self}")
        if self.duration < 0:
            raise ValueError(f"event duration must be >= 0: {self}")
        if self.start < 0:
            raise ValueError(f"event start must be >= 0: {self}")

    @property
    def finish(self) -> float:
        """Completion time of the transfer."""
        return self.start + self.duration

    def shifted(self, delta: float) -> "CommEvent":
        """Return a copy of this event translated in time by ``delta``."""
        return replace(self, start=self.start + delta)

    def overlaps(self, other: "CommEvent") -> bool:
        """True when the two events' half-open time intervals intersect.

        Zero-duration events never overlap anything — they model the
        paper's free diagonal (local copy) entries.
        """
        if self.duration == 0 or other.duration == 0:
            return False
        return self.start < other.finish and other.start < self.finish


@dataclass(frozen=True)
class Schedule:
    """A complete communication schedule over ``num_procs`` processors.

    Instances are immutable; the event tuple is stored sorted so equal
    schedules compare equal regardless of construction order.

    Schedules built by the trusted constructors
    (:func:`schedule_from_sorted_fields`, :func:`schedule_from_columns`)
    hold their event data in raw form and materialise the
    :class:`CommEvent` tuple only when ``events`` is first read.  All
    behaviour is unchanged — equality, iteration, hashing and every
    accessor see the same tuple — but makespan-style consumers
    (:attr:`completion_time`, ``len``) read the raw form directly, so a
    sweep that only scores schedules never pays the per-event object
    cost.
    """

    num_procs: int
    events: Tuple[CommEvent, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.num_procs <= 0:
            raise ValueError(f"num_procs must be positive, got {self.num_procs}")
        events = tuple(sorted(self.events))
        for event in events:
            if event.src >= self.num_procs or event.dst >= self.num_procs:
                raise ValueError(
                    f"event {event} references a processor outside "
                    f"[0, {self.num_procs})"
                )
        object.__setattr__(self, "events", events)

    def __getattr__(self, name: str):
        # Only ever reached for attributes missing from the instance
        # dict — i.e. ``events`` on a lazily-constructed schedule.
        if name == "events":
            pending = self.__dict__.get("_pending")
            if pending is not None:
                events = _materialize_events(pending)
                d = self.__dict__
                d["events"] = events
                d.pop("_pending", None)
                return events
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}"
        )

    @classmethod
    def from_events(
        cls, num_procs: int, events: Iterable[CommEvent]
    ) -> "Schedule":
        """Build a schedule from any iterable of events."""
        return cls(num_procs=num_procs, events=tuple(events))

    def __iter__(self) -> Iterator[CommEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        pending = self.__dict__.get("_pending")
        if pending is not None:
            return (
                len(pending[1][0])
                if pending[0].endswith("columns")
                else len(pending[1])
            )
        return len(self.events)

    @property
    def completion_time(self) -> float:
        """Makespan: finish time of the last event (0 for an empty schedule)."""
        pending = self.__dict__.get("_pending")
        if pending is not None:
            kind, data = pending
            if kind.endswith("columns"):
                starts, _, _, durations, _ = data
                if len(starts) == 0:
                    return 0.0
                return float(np.max(starts + durations))
            return max(
                (start + duration for start, _, _, duration, _ in data),
                default=0.0,
            )
        return max((event.finish for event in self.events), default=0.0)

    def sender_events(self, src: int) -> List[CommEvent]:
        """Events sent by processor ``src``, in start order."""
        return [event for event in self.events if event.src == src]

    def receiver_events(self, dst: int) -> List[CommEvent]:
        """Events received by processor ``dst``, in start order."""
        return [event for event in self.events if event.dst == dst]

    def send_orders(self) -> List[List[int]]:
        """Per-sender destination lists, in dispatch order.

        This recovers the *order-based* form of the schedule, suitable for
        re-execution under different network conditions via
        :func:`repro.sim.engine.execute_orders`.
        """
        orders: List[List[int]] = [[] for _ in range(self.num_procs)]
        for event in self.events:  # already start-sorted
            orders[event.src].append(event.dst)
        return orders

    def busy_time(self, proc: int) -> Tuple[float, float]:
        """Return ``(send_busy, recv_busy)`` seconds for processor ``proc``."""
        send = sum(event.duration for event in self.events if event.src == proc)
        recv = sum(event.duration for event in self.events if event.dst == proc)
        return send, recv

    def idle_time(self, proc: int) -> float:
        """Sender-side idle time of ``proc`` before its last send finishes."""
        events = self.sender_events(proc)
        if not events:
            return 0.0
        span = max(event.finish for event in events)
        busy = sum(event.duration for event in events)
        return span - busy

    def finish_time_of(self, proc: int) -> float:
        """Time at which ``proc`` has completed all its sends and receives."""
        return max(
            (
                event.finish
                for event in self.events
                if event.src == proc or event.dst == proc
            ),
            default=0.0,
        )

    def event_map(self) -> Dict[Tuple[int, int], CommEvent]:
        """Map ``(src, dst) -> event``; raises if a pair repeats."""
        mapping: Dict[Tuple[int, int], CommEvent] = {}
        for event in self.events:
            key = (event.src, event.dst)
            if key in mapping:
                raise ValueError(f"duplicate event for pair {key}")
            mapping[key] = event
        return mapping

    def duration_matrix(self) -> np.ndarray:
        """Dense ``[src, dst]`` duration matrix (0 where no event exists)."""
        matrix = np.zeros((self.num_procs, self.num_procs))
        for event in self.events:
            matrix[event.src, event.dst] = event.duration
        return matrix

    def utilisation(self) -> float:
        """Mean sender busy fraction over the schedule's makespan.

        1.0 means every processor sends continuously until the makespan —
        only possible when the lower bound is met by every sender.
        """
        makespan = self.completion_time
        if makespan == 0:
            return 1.0
        total_busy = sum(event.duration for event in self.events)
        return total_busy / (self.num_procs * makespan)

    def without_trivial_events(self) -> "Schedule":
        """Drop zero-duration events (e.g. diagonal self-messages)."""
        return Schedule.from_events(
            self.num_procs, (e for e in self.events if e.duration > 0)
        )


def _materialize_events(pending) -> Tuple[CommEvent, ...]:
    """Build the event tuple of a lazily-constructed schedule.

    ``pending`` is ``("fields", [(start, src, dst, duration, size), ...])``
    (presorted tuples), ``("unsorted_fields", [...])`` (same tuples in
    arbitrary order, sorted here on first access), ``("columns",
    (starts, srcs, dsts, durations, sizes))`` (presorted parallel numpy
    arrays), or ``("unsorted_columns", ...)`` (same arrays in arbitrary
    order, lexsorted here on first access).  Events are built by
    populating the instance dict directly: the frozen-dataclass
    ``__setattr__`` and per-field validation are bypassed by the trusted
    constructors' contract.
    """
    kind, data = pending
    if kind.endswith("columns"):
        starts, srcs, dsts, durations, sizes = data
        if kind == "unsorted_columns":
            order = np.lexsort((dsts, srcs, starts))
            starts = starts[order]
            srcs = srcs[order]
            dsts = dsts[order]
            durations = durations[order]
            sizes = sizes[order]
        rows = zip(
            starts.tolist(), srcs.tolist(), dsts.tolist(),
            durations.tolist(), sizes.tolist(),
        )
    else:
        if kind == "unsorted_fields":
            # Field tuples share CommEvent's field order, so one tuple
            # sort yields the canonical event order.
            data.sort()
        rows = data
    new = object.__new__
    events = []
    append = events.append
    for start, src, dst, duration, size in rows:
        event = new(CommEvent)
        d = event.__dict__
        d["start"] = start
        d["src"] = src
        d["dst"] = dst
        d["duration"] = duration
        d["size"] = size
        append(event)
    return tuple(events)


def schedule_from_sorted_fields(
    num_procs: int, fields: Sequence[Tuple]
) -> Schedule:
    """Trusted lazy construction from presorted event field tuples.

    ``fields`` holds ``(start, src, dst, duration, size)`` tuples — the
    exact field order of :class:`CommEvent`, so tuple lexicographic order
    equals event order.  The executors in :mod:`repro.sim.engine` emit
    tens of thousands of events per schedule at ``P >= 256``; going
    through the dataclass constructor and re-sorting inside
    :class:`Schedule` dominates their runtime, so this path defers event
    construction until ``events`` is first read.

    Caller contract (checked only by the golden-equivalence tests, not
    here): tuples are sorted ascending, indices lie in
    ``[0, num_procs)``, and starts/durations are non-negative.  Anything
    else produces a schedule that violates the class invariants.
    """
    schedule = object.__new__(Schedule)
    d = schedule.__dict__
    d["num_procs"] = num_procs
    d["_pending"] = ("fields", fields)
    return schedule


def schedule_from_fields(num_procs: int, fields: List[Tuple]) -> Schedule:
    """Trusted lazy construction from *unsorted* event field tuples.

    Same contract as :func:`schedule_from_sorted_fields` except the
    tuples may arrive in any order: the list is sorted in place when
    ``events`` is first materialised.  Schedulers that emit events in
    pick order (open shop) use this so callers that only score the
    schedule — ``completion_time`` needs one max, not an ordering —
    never pay for the sort.
    """
    schedule = object.__new__(Schedule)
    d = schedule.__dict__
    d["num_procs"] = num_procs
    d["_pending"] = ("unsorted_fields", fields)
    return schedule


def schedule_from_columns(
    num_procs: int,
    starts: np.ndarray,
    srcs: np.ndarray,
    dsts: np.ndarray,
    durations: np.ndarray,
    sizes: np.ndarray,
) -> Schedule:
    """Trusted lazy construction from presorted parallel event columns.

    Same contract as :func:`schedule_from_sorted_fields`, but the event
    data arrives as numpy arrays already ordered by ``(start, src,
    dst)``.  The step executors build these columns without any
    per-event Python work; makespan queries then run vectorized on the
    columns, and :class:`CommEvent` objects exist only if somebody
    inspects the schedule event by event.
    """
    schedule = object.__new__(Schedule)
    d = schedule.__dict__
    d["num_procs"] = num_procs
    d["_pending"] = ("columns", (starts, srcs, dsts, durations, sizes))
    return schedule


def schedule_from_unsorted_columns(
    num_procs: int,
    starts: np.ndarray,
    srcs: np.ndarray,
    dsts: np.ndarray,
    durations: np.ndarray,
    sizes: np.ndarray,
) -> Schedule:
    """Trusted lazy construction from *unsorted* parallel event columns.

    Same contract as :func:`schedule_from_columns` except the arrays may
    arrive in any order: they are lexsorted by ``(start, src, dst)``
    when ``events`` is first materialised.  The hierarchical scheduler
    emits its spliced events in matrix order; callers that only score
    the schedule never pay for the sort.
    """
    schedule = object.__new__(Schedule)
    d = schedule.__dict__
    d["num_procs"] = num_procs
    d["_pending"] = (
        "unsorted_columns", (starts, srcs, dsts, durations, sizes)
    )
    return schedule


def merge_schedules(
    num_procs: int, schedules: Sequence[Schedule]
) -> Schedule:
    """Union the events of several schedules over the same processor set."""
    events: List[CommEvent] = []
    for schedule in schedules:
        if schedule.num_procs != num_procs:
            raise ValueError(
                f"schedule over {schedule.num_procs} processors cannot be "
                f"merged into a {num_procs}-processor schedule"
            )
        events.extend(schedule.events)
    return Schedule.from_events(num_procs, events)
