"""ASCII rendering of timing diagrams.

Reproduces the paper's Figures 3-8 style: one column per sender, time
increasing downwards, each rectangle labelled with its destination
processor.  Purely presentational — useful in examples, docs, and when
debugging schedulers.
"""

from __future__ import annotations

from typing import List, Optional

from repro.timing.events import Schedule

#: Glyphs used inside a rendered column.
_TOP = "+----+"
_EMPTY = "      "


def render_timing_diagram(
    schedule: Schedule,
    *,
    rows: int = 24,
    time_span: Optional[float] = None,
    show_scale: bool = True,
) -> str:
    """Render ``schedule`` as an ASCII timing diagram.

    Parameters
    ----------
    rows:
        Vertical resolution (number of text rows for the full time span).
    time_span:
        Time covered by the diagram; defaults to the completion time.
    show_scale:
        Prefix each row with its time coordinate.

    Each sender occupies a fixed-width column; an event from ``i`` to ``j``
    renders as a box whose first interior row is labelled ``j``.  Events
    shorter than one row still get one row, so very short events remain
    visible (at the price of local scale distortion, as in the paper's own
    schematic figures).
    """
    span = time_span if time_span is not None else schedule.completion_time
    if span <= 0:
        span = 1.0
    if rows < 2:
        raise ValueError(f"rows must be >= 2, got {rows}")
    scale = rows / span

    width = len(_TOP)
    grid: List[List[str]] = [
        [_EMPTY] * schedule.num_procs for _ in range(rows + 1)
    ]

    for event in schedule:
        if event.duration <= 0:
            continue
        top = int(round(event.start * scale))
        bottom = int(round(event.finish * scale))
        top = min(top, rows - 1)
        bottom = max(bottom, top + 2)
        bottom = min(bottom, rows)
        grid[top][event.src] = _TOP
        label = str(event.dst).center(width - 2)
        grid[top + 1][event.src] = f"|{label}|"
        for row in range(top + 2, bottom):
            grid[row][event.src] = "|" + " " * (width - 2) + "|"
        if bottom <= rows:
            grid[bottom][event.src] = _TOP

    header_cells = [f"P{i}".center(width) for i in range(schedule.num_procs)]
    prefix = "          " if show_scale else ""
    lines = [prefix + " ".join(header_cells)]
    for row_idx, row in enumerate(grid):
        if show_scale:
            t = row_idx / scale
            prefix = f"{t:9.3g} "
        else:
            prefix = ""
        lines.append(prefix + " ".join(row))
    return "\n".join(line.rstrip() for line in lines)


def describe_schedule(schedule: Schedule, *, precision: int = 4) -> str:
    """One line per event: ``t=start..finish  Pi -> Pj  (duration)``."""
    lines = [
        f"t={event.start:.{precision}g}..{event.finish:.{precision}g}  "
        f"P{event.src} -> P{event.dst}  ({event.duration:.{precision}g}s)"
        for event in schedule
        if event.duration > 0
    ]
    lines.append(
        f"completion time: {schedule.completion_time:.{precision}g}s "
        f"({len(lines)} events)"
    )
    return "\n".join(lines)
