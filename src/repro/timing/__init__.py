"""Timing diagrams: schedule representation, validation, and analysis.

A *timing diagram* (paper Section 3.3) has one column per sender; the
rectangle labelled ``j`` in column ``i`` is the message ``P_i -> P_j`` and
its height is the event duration.  :class:`~repro.timing.events.Schedule`
is the executable form of such a diagram: a set of timed
:class:`~repro.timing.events.CommEvent` records.

Validity (paper Section 3.4): events sharing a sender must not overlap in
time, and events sharing a receiver must not overlap in time.
"""

from repro.timing.depgraph import (
    baseline_dependence_graph,
    dependence_graph,
    longest_path_time,
)
from repro.timing.diagram import render_timing_diagram
from repro.timing.events import CommEvent, Schedule
from repro.timing.validate import ScheduleError, check_schedule, is_valid_schedule

__all__ = [
    "CommEvent",
    "Schedule",
    "ScheduleError",
    "baseline_dependence_graph",
    "check_schedule",
    "dependence_graph",
    "is_valid_schedule",
    "longest_path_time",
    "render_timing_diagram",
]
