"""Dependence graphs of communication schedules (paper Section 4.2).

The paper analyses the baseline schedule through a directed *dependence
graph* **DG** with one node per communication event and an edge wherever
one event must wait for another: *vertical* edges chain consecutive sends
of the same sender, *diagonal* edges chain consecutive receives at the same
receiver.  The completion time of a stall-free execution equals the weight
of the longest node-weighted path — the machinery behind Theorem 2's
``P/2 x lower-bound`` result.

Two constructions are provided:

* :func:`dependence_graph` extracts the realised dependence structure from
  any timed :class:`~repro.timing.events.Schedule`;
* :func:`baseline_dependence_graph` builds the caterpillar structure of the
  paper's Figure 5 directly from the processor count, without executing
  anything.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import networkx as nx
import numpy as np

from repro.timing.events import Schedule

#: Node identifier in a dependence graph: the (src, dst) message pair.
EventKey = Tuple[int, int]


def dependence_graph(schedule: Schedule) -> "nx.DiGraph":
    """Realised dependence graph of a timed schedule.

    Nodes are ``(src, dst)`` pairs carrying a ``duration`` attribute; an
    edge ``a -> b`` is added when ``b`` directly follows ``a`` at a shared
    sender or receiver.  Zero-duration events (free local copies) are
    omitted, matching their exclusion from the timing diagram.
    """
    graph = nx.DiGraph()
    events = [e for e in schedule if e.duration > 0]
    for event in events:
        graph.add_node((event.src, event.dst), duration=event.duration)
    for proc in range(schedule.num_procs):
        sends = sorted(
            (e for e in events if e.src == proc), key=lambda e: e.start
        )
        for prev, nxt in zip(sends, sends[1:]):
            graph.add_edge((prev.src, prev.dst), (nxt.src, nxt.dst), kind="sender")
        recvs = sorted(
            (e for e in events if e.dst == proc), key=lambda e: e.start
        )
        for prev, nxt in zip(recvs, recvs[1:]):
            graph.add_edge(
                (prev.src, prev.dst), (nxt.src, nxt.dst), kind="receiver"
            )
    return graph


def baseline_dependence_graph(num_procs: int) -> "nx.DiGraph":
    """Structural dependence graph of the baseline caterpillar schedule.

    In step ``s`` of the caterpillar, ``P_i`` sends to ``P_(i+s) mod P``.
    Sender ``i``'s step-``s`` event depends on its own step ``s-1`` event
    (vertical edge) and on the event received at its destination in step
    ``s-1`` (diagonal edge) — exactly the structure of the paper's
    Figure 5.  Step 0 (the ``i -> i`` self messages) is skipped because the
    diagonal of the communication matrix is free.
    """
    if num_procs <= 0:
        raise ValueError(f"num_procs must be positive, got {num_procs}")
    graph = nx.DiGraph()
    for step in range(1, num_procs):
        for src in range(num_procs):
            dst = (src + step) % num_procs
            graph.add_node((src, dst), step=step)
            if step >= 2:
                prev_own = (src, (src + step - 1) % num_procs)
                graph.add_edge(prev_own, (src, dst), kind="sender")
                prev_recv = ((dst - step + 1) % num_procs, dst)
                graph.add_edge(prev_recv, (src, dst), kind="receiver")
    return graph


def longest_path_time(graph: "nx.DiGraph", cost: np.ndarray) -> float:
    """Weight of the heaviest node-weighted path through ``graph``.

    ``cost[src, dst]`` supplies node weights keyed by the ``(src, dst)``
    node ids.  The graph must be acyclic (true for any valid schedule).
    """
    cost = np.asarray(cost, dtype=float)
    if not nx.is_directed_acyclic_graph(graph):
        raise ValueError("dependence graph must be acyclic")
    best: Dict[EventKey, float] = {}
    for node in nx.topological_sort(graph):
        weight = float(cost[node[0], node[1]])
        incoming = [best[pred] for pred in graph.predecessors(node)]
        best[node] = weight + (max(incoming) if incoming else 0.0)
    return max(best.values(), default=0.0)


def critical_path(graph: "nx.DiGraph", cost: np.ndarray) -> List[EventKey]:
    """The event sequence realising :func:`longest_path_time`."""
    cost = np.asarray(cost, dtype=float)
    if not nx.is_directed_acyclic_graph(graph):
        raise ValueError("dependence graph must be acyclic")
    best: Dict[EventKey, float] = {}
    parent: Dict[EventKey, EventKey] = {}
    for node in nx.topological_sort(graph):
        weight = float(cost[node[0], node[1]])
        best_pred, best_val = None, 0.0
        for pred in graph.predecessors(node):
            if best[pred] > best_val:
                best_pred, best_val = pred, best[pred]
        best[node] = weight + best_val
        if best_pred is not None:
            parent[node] = best_pred
    if not best:
        return []
    node = max(best, key=best.get)
    path = [node]
    while node in parent:
        node = parent[node]
        path.append(node)
    path.reverse()
    return path
