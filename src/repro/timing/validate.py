"""Schedule validity checking.

A valid communication schedule (paper Section 3.4) satisfies:

* **sender serialisation** — a node sends at most one message at a time, so
  no two events in the same timing-diagram column overlap;
* **receiver serialisation** — a node receives at most one message at a
  time, so no two events with the same destination overlap.

Optionally, a schedule can also be checked for *coverage* against a
problem: exactly one event per off-diagonal (src, dst) pair, with the
duration implied by the communication matrix.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.timing.events import CommEvent, Schedule


class ScheduleError(ValueError):
    """Raised when a schedule violates a validity condition."""

    def __init__(self, message: str, violations: Optional[List[str]] = None):
        super().__init__(message)
        #: Individual violation descriptions (one per conflicting pair).
        self.violations: List[str] = violations or []


def _overlap_violations(
    events: Sequence[CommEvent], role: str
) -> List[str]:
    """Find overlapping pairs among events sharing a sender or receiver.

    ``events`` must all share the same src (role='sender') or dst
    (role='receiver').  Sweep in start order: with sorted events, each event
    only needs comparing against the latest finish seen so far.
    """
    violations: List[str] = []
    ordered = sorted(
        (e for e in events if e.duration > 0), key=lambda e: (e.start, e.finish)
    )
    prev: Optional[CommEvent] = None
    for event in ordered:
        if prev is not None and event.start < prev.finish - 1e-12:
            violations.append(
                f"{role} conflict: {prev.src}->{prev.dst} "
                f"[{prev.start:.6g}, {prev.finish:.6g}) overlaps "
                f"{event.src}->{event.dst} [{event.start:.6g}, {event.finish:.6g})"
            )
        if prev is None or event.finish > prev.finish:
            prev = event
    return violations


def check_schedule(
    schedule: Schedule,
    cost: Optional[np.ndarray] = None,
    *,
    require_coverage: bool = True,
    atol: float = 1e-9,
) -> None:
    """Raise :class:`ScheduleError` if ``schedule`` is invalid.

    A schedule violating several conditions at once raises a *single*
    :class:`ScheduleError` carrying every violation: the ``violations``
    list groups the kinds in a fixed order — sender conflicts, receiver
    conflicts, duplicate pairs, wrong durations, missing pairs — with
    each group internally sorted, so the batch is deterministic
    regardless of event construction order.  The message leads with the
    per-kind counts and previews the first few violations.

    Parameters
    ----------
    cost:
        Optional ``[src, dst]`` duration matrix.  When given, every event's
        duration must match ``cost[src, dst]`` within ``atol`` and (with
        ``require_coverage``) every off-diagonal pair with positive cost
        must appear exactly once.
    """
    sender: List[str] = []
    receiver: List[str] = []
    duplicates: List[str] = []
    durations: List[str] = []
    missing: List[str] = []
    for proc in range(schedule.num_procs):
        sender += _overlap_violations(schedule.sender_events(proc), "sender")
        receiver += _overlap_violations(schedule.receiver_events(proc), "receiver")

    if cost is not None:
        cost = np.asarray(cost, dtype=float)
        if cost.shape != (schedule.num_procs, schedule.num_procs):
            raise ScheduleError(
                f"cost matrix shape {cost.shape} does not match "
                f"{schedule.num_procs} processors"
            )
        seen = set()
        for event in schedule:
            key = (event.src, event.dst)
            if key in seen:
                duplicates.append(f"duplicate event for pair {key}")
            seen.add(key)
            expected = cost[event.src, event.dst]
            if abs(event.duration - expected) > atol:
                durations.append(
                    f"event {event.src}->{event.dst} has duration "
                    f"{event.duration:.6g}, expected {expected:.6g}"
                )
        if require_coverage:
            for src in range(schedule.num_procs):
                for dst in range(schedule.num_procs):
                    if src == dst or cost[src, dst] == 0:
                        continue
                    if (src, dst) not in seen:
                        missing.append(f"missing event for pair ({src}, {dst})")

    groups = [
        ("sender conflict", sender),
        ("receiver conflict", receiver),
        ("duplicate pair", duplicates),
        ("wrong duration", durations),
        ("missing pair", missing),
    ]
    violations: List[str] = []
    for _, group in groups:
        violations += sorted(group)
    if violations:
        counts = ", ".join(
            f"{len(group)} {label}{'s' if len(group) != 1 else ''}"
            for label, group in groups
            if group
        )
        preview = "; ".join(violations[:5])
        more = f" (+{len(violations) - 5} more)" if len(violations) > 5 else ""
        raise ScheduleError(
            f"invalid schedule ({counts}): {preview}{more}",
            violations=violations,
        )


def _event_columns(schedule: Schedule):
    """``(starts, srcs, dsts, durations)`` as parallel numpy arrays.

    Reads the lazy column form directly when the schedule has one, so
    checking a column-built schedule never materialises per-event
    objects.  The extracted columns are memoised on the (frozen, hence
    immutable) schedule: a plan that is delta-repaired on every serving
    tick is re-read here each time, and rebuilding a million-event
    column set from Python objects costs more than the repair itself.
    """
    cached = schedule.__dict__.get("_column_cache")
    if cached is not None:
        return cached
    pending = schedule.__dict__.get("_pending")
    if pending is not None and pending[0].endswith("columns"):
        starts, srcs, dsts, durations, _ = pending[1]
        return (
            np.asarray(starts, dtype=float),
            np.asarray(srcs, dtype=np.intp),
            np.asarray(dsts, dtype=np.intp),
            np.asarray(durations, dtype=float),
        )
    events = schedule.events
    starts = np.fromiter(
        (e.start for e in events), dtype=float, count=len(events)
    )
    srcs = np.fromiter(
        (e.src for e in events), dtype=np.intp, count=len(events)
    )
    dsts = np.fromiter(
        (e.dst for e in events), dtype=np.intp, count=len(events)
    )
    durations = np.fromiter(
        (e.duration for e in events), dtype=float, count=len(events)
    )
    columns = (starts, srcs, dsts, durations)
    schedule.__dict__["_column_cache"] = columns
    return columns


def _port_overlaps(
    starts: np.ndarray,
    procs: np.ndarray,
    durations: np.ndarray,
    role: str,
    limit: int,
    *,
    presorted: bool = False,
) -> Optional[List[str]]:
    """Overlap violations among events grouped by ``procs``, vectorized.

    Events are sorted by (proc, start); within a group it suffices to
    compare each event against its predecessor — if every adjacent pair
    is disjoint then finishes are monotone and the whole group is.

    The grouping is a stable integer sort on ``procs`` (numpy radix),
    which keeps each group in the caller's order.  For the schedules on
    the serving hot path — materialised plans (globally start-sorted)
    and flat delta repairs (per-port time-monotone by construction) —
    that order is already nondecreasing in time, which the sweep
    *verifies* rather than assumes.  When some group is genuinely out
    of order the function returns ``None`` instead: the caller sorts
    everything by start once (shared between the sender and receiver
    passes, and cheaper than a per-role float lexsort) and retries with
    ``presorted=True``.
    """
    positive = durations > 0
    if not positive.all():
        starts = starts[positive]
        procs = procs[positive]
        durations = durations[positive]
    order = np.argsort(procs, kind="stable")
    sorted_starts = starts[order]
    sorted_procs = procs[order]
    same = sorted_procs[1:] == sorted_procs[:-1]
    if not presorted and np.any(same & (sorted_starts[1:] < sorted_starts[:-1])):
        return None
    starts = sorted_starts
    procs = sorted_procs
    finishes = starts + durations[order]
    clash = same & (starts[1:] < finishes[:-1] - 1e-12)
    violations: List[str] = []
    for index in np.nonzero(clash)[0][:limit].tolist():
        violations.append(
            f"{role} conflict on proc {int(procs[index])}: event starting "
            f"{starts[index + 1]:.6g} overlaps one finishing "
            f"{finishes[index]:.6g}"
        )
    extra = int(clash.sum()) - len(violations)
    if extra > 0:
        violations.append(f"{role} conflict: +{extra} more")
    return violations


def check_schedule_fast(
    schedule: Schedule,
    cost: Optional[np.ndarray] = None,
    *,
    require_coverage: bool = True,
    atol: float = 1e-9,
) -> None:
    """Vectorized :func:`check_schedule` for large schedules.

    Same validity conditions — sender/receiver serialisation, duplicate
    pairs, durations against ``cost``, coverage of positive off-diagonal
    pairs — but implemented with sorts and bincounts over event columns
    instead of per-event Python, so a P = 4096 schedule (~16.7M events)
    checks in seconds.  Violation messages are summarised (counts plus a
    few examples) rather than exhaustively enumerated.
    """
    starts, srcs, dsts, durations = _event_columns(schedule)
    n = schedule.num_procs
    if starts.size and (
        srcs.min() < 0 or dsts.min() < 0
        or srcs.max() >= n or dsts.max() >= n
    ):
        raise ScheduleError(
            f"event references a processor outside [0, {n})"
        )
    limit = 5
    violations: List[str] = []
    sender = _port_overlaps(starts, srcs, durations, "sender", limit)
    receiver = (
        _port_overlaps(starts, dsts, durations, "receiver", limit)
        if sender is not None
        else None
    )
    if sender is None or receiver is None:
        # some port's events are out of construction order: establish
        # global start order once and share it between the two roles
        by_start = np.argsort(starts)
        s_starts = starts[by_start]
        s_durations = durations[by_start]
        if sender is None:
            sender = _port_overlaps(
                s_starts, srcs[by_start], s_durations, "sender", limit,
                presorted=True,
            )
        if receiver is None:
            receiver = _port_overlaps(
                s_starts, dsts[by_start], s_durations, "receiver", limit,
                presorted=True,
            )
    violations += sender
    violations += receiver

    if cost is not None:
        cost = np.asarray(cost, dtype=float)
        if cost.shape != (n, n):
            raise ScheduleError(
                f"cost matrix shape {cost.shape} does not match "
                f"{n} processors"
            )
        pair_ids = srcs * n + dsts
        counts = np.bincount(pair_ids, minlength=n * n)
        duplicated = np.nonzero(counts > 1)[0]
        for pair in duplicated[:limit].tolist():
            violations.append(
                f"duplicate event for pair ({pair // n}, {pair % n})"
            )
        if duplicated.size > limit:
            violations.append(f"duplicate pair: +{duplicated.size - limit} more")
        wrong = np.abs(durations - cost[srcs, dsts]) > atol
        for index in np.nonzero(wrong)[0][:limit].tolist():
            violations.append(
                f"event {int(srcs[index])}->{int(dsts[index])} has duration "
                f"{durations[index]:.6g}, expected "
                f"{cost[srcs[index], dsts[index]]:.6g}"
            )
        extra = int(wrong.sum()) - min(int(wrong.sum()), limit)
        if extra > 0:
            violations.append(f"wrong duration: +{extra} more")
        if require_coverage:
            required = cost > 0
            np.fill_diagonal(required, False)
            missing = required.reshape(-1) & (counts == 0)
            for pair in np.nonzero(missing)[0][:limit].tolist():
                violations.append(
                    f"missing event for pair ({pair // n}, {pair % n})"
                )
            extra = int(missing.sum()) - min(int(missing.sum()), limit)
            if extra > 0:
                violations.append(f"missing pair: +{extra} more")

    if violations:
        preview = "; ".join(violations[:5])
        more = f" (+{len(violations) - 5} more)" if len(violations) > 5 else ""
        raise ScheduleError(
            f"invalid schedule ({len(violations)} violation groups): "
            f"{preview}{more}",
            violations=violations,
        )


def is_valid_schedule(
    schedule: Schedule,
    cost: Optional[np.ndarray] = None,
    *,
    require_coverage: bool = True,
    atol: float = 1e-9,
) -> bool:
    """Boolean form of :func:`check_schedule`."""
    try:
        check_schedule(
            schedule, cost, require_coverage=require_coverage, atol=atol
        )
    except ScheduleError:
        return False
    return True
