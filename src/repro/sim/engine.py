"""Event-driven execution of order-based schedules.

Semantics (paper Sections 3.2 and 4.3):

* each sender dispatches its messages strictly in its given order;
* a node performs at most one send and at most one receive at a time;
* when a sender becomes free it immediately *requests* its next receiver
  (the control message of Section 3.2); contending requests at a receiver
  are served FIFO by request time, with sender index as the tie-break;
* a transfer occupies the sender and the receiver for its full duration;
  self-messages (``src == dst``, only present in adversarial instances)
  occupy both ports of their node at once;
* zero-cost events are free: they are emitted as zero-duration markers at
  the sender's current clock and constrain nothing.

The simulation is deterministic, so a given ``(cost, orders)`` always
yields the same schedule.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.problem import TotalExchangeProblem
from repro.timing.events import CommEvent, Schedule
from repro.util.validation import check_square_matrix

#: Per-sender destination lists, in dispatch order.
SendOrders = List[List[int]]


def check_orders(
    orders: Sequence[Sequence[int]],
    cost: np.ndarray,
    *,
    require_coverage: bool = True,
) -> None:
    """Validate send orders against a cost matrix.

    Each sender's list must contain valid destination indices without
    repeats; with ``require_coverage``, every positive-cost pair must
    appear.
    """
    cost = check_square_matrix("cost", cost, nonnegative=True)
    n = cost.shape[0]
    if len(orders) != n:
        raise ValueError(f"expected {n} sender lists, got {len(orders)}")
    for src, dsts in enumerate(orders):
        seen = set()
        for dst in dsts:
            if not (0 <= dst < n):
                raise ValueError(
                    f"sender {src} targets invalid destination {dst}"
                )
            if dst in seen:
                raise ValueError(f"sender {src} targets {dst} twice")
            seen.add(dst)
        if require_coverage:
            needed = {int(d) for d in np.nonzero(cost[src])[0]}
            missing = needed - seen
            if missing:
                raise ValueError(
                    f"sender {src} never sends to {sorted(missing)}"
                )


def execute_orders_on_cost(
    cost: np.ndarray,
    orders: Sequence[Sequence[int]],
    *,
    sizes: Optional[np.ndarray] = None,
    validate: bool = True,
) -> Schedule:
    """Execute ``orders`` under ``cost`` and return the timed schedule."""
    cost = check_square_matrix("cost", cost, nonnegative=True)
    if validate:
        check_orders(orders, cost, require_coverage=False)
    n = cost.shape[0]

    next_index = [0] * n
    recv_free = [0.0] * n
    events: List[CommEvent] = []

    def event_size(src: int, dst: int) -> float:
        return float(sizes[src, dst]) if sizes is not None else 0.0

    # Heap of pending requests: (request_time, src, dst).  A sender has at
    # most one outstanding request; its successor is pushed when the
    # current transfer is assigned a finish time.
    heap: List[tuple] = []

    def push_request(src: int, at_time: float) -> None:
        """Queue sender ``src``'s next message, skipping free events."""
        while next_index[src] < len(orders[src]):
            dst = orders[src][next_index[src]]
            next_index[src] += 1
            duration = float(cost[src, dst])
            if duration > 0:
                heapq.heappush(heap, (at_time, src, dst, duration))
                return
            # Free event: emit a marker at the sender's clock, keep going.
            events.append(
                CommEvent(
                    start=at_time,
                    src=src,
                    dst=dst,
                    duration=0.0,
                    size=event_size(src, dst),
                )
            )

    for src in range(n):
        push_request(src, 0.0)

    while heap:
        request_time, src, dst, duration = heapq.heappop(heap)
        start = max(request_time, recv_free[dst])
        finish = start + duration
        recv_free[dst] = finish
        events.append(
            CommEvent(
                start=start,
                src=src,
                dst=dst,
                duration=duration,
                size=event_size(src, dst),
            )
        )
        push_request(src, finish)

    return Schedule.from_events(n, events)


def execute_orders(
    problem: TotalExchangeProblem,
    orders: Sequence[Sequence[int]],
    *,
    validate: bool = True,
) -> Schedule:
    """Execute ``orders`` under a problem's cost matrix."""
    return execute_orders_on_cost(
        problem.cost, orders, sizes=problem.sizes, validate=validate
    )


#: A communication step: the (src, dst) events of one round.  Complete
#: matchings give permutations (every src exactly once); greedy steps may
#: be partial.  A src or dst must not repeat within a step.
Step = Sequence[Tuple[int, int]]


def _check_steps(steps: Sequence[Step], n: int) -> None:
    for index, step in enumerate(steps):
        srcs = [src for src, _ in step]
        dsts = [dst for _, dst in step]
        for proc in (*srcs, *dsts):
            if not (0 <= proc < n):
                raise ValueError(
                    f"step {index} references processor {proc} outside [0, {n})"
                )
        if len(set(srcs)) != len(srcs) or len(set(dsts)) != len(dsts):
            raise ValueError(f"step {index} repeats a sender or receiver")


def execute_steps_strict(
    cost: np.ndarray,
    steps: Sequence[Step],
    *,
    sizes: Optional[np.ndarray] = None,
) -> Schedule:
    """Order-preserving execution of a step-structured schedule.

    No barriers: an event starts as soon as its sender has finished its
    previous step's send *and* its receiver has finished its previous
    step's receive (receives are served in step order, not arrival
    order).  This is the semantics of the paper's dependence-graph
    analysis and of its matching/greedy timing diagrams: "a communication
    event will begin whenever the sending and receiving processors are
    both ready", with the schedule fixing who is next at every port.

    Runs in ``O(P^2)`` by relaxing step by step.
    """
    cost = check_square_matrix("cost", cost, nonnegative=True)
    n = cost.shape[0]
    _check_steps(steps, n)
    send_free = np.zeros(n)
    recv_free = np.zeros(n)
    events: List[CommEvent] = []
    for step in steps:
        # Senders/receivers are unique within a step, so the events are
        # independent and can be placed in any order.
        placed = []
        for src, dst in step:
            start = max(send_free[src], recv_free[dst])
            duration = float(cost[src, dst])
            placed.append((src, dst, start, duration))
        for src, dst, start, duration in placed:
            if duration > 0:
                # Free events are emitted as markers but consume no port
                # time and impose no ordering on later events.
                send_free[src] = start + duration
                recv_free[dst] = start + duration
            events.append(
                CommEvent(
                    start=start,
                    src=src,
                    dst=dst,
                    duration=duration,
                    size=float(sizes[src, dst]) if sizes is not None else 0.0,
                )
            )
    return Schedule.from_events(n, events)


def execute_steps_barrier(
    cost: np.ndarray,
    steps: Sequence[Step],
    *,
    sizes: Optional[np.ndarray] = None,
) -> Schedule:
    """Barrier-synchronised execution of a step-structured schedule.

    All events of step ``k`` start together once every step ``k-1`` event
    has completed, so each step costs its longest event.  This is how the
    caterpillar schedule runs on lockstep/SIMD-style systems (the paper's
    reference [13]) and is the semantics under which the baseline
    degrades as sharply as the paper's figures show.
    """
    cost = check_square_matrix("cost", cost, nonnegative=True)
    n = cost.shape[0]
    _check_steps(steps, n)
    events: List[CommEvent] = []
    clock = 0.0
    for step in steps:
        longest = 0.0
        for src, dst in step:
            duration = float(cost[src, dst])
            longest = max(longest, duration)
            events.append(
                CommEvent(
                    start=clock,
                    src=src,
                    dst=dst,
                    duration=duration,
                    size=float(sizes[src, dst]) if sizes is not None else 0.0,
                )
            )
        clock += longest
    return Schedule.from_events(n, events)
