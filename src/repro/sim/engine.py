"""Event-driven execution of order-based schedules.

Semantics (paper Sections 3.2 and 4.3):

* each sender dispatches its messages strictly in its given order;
* a node performs at most one send and at most one receive at a time;
* when a sender becomes free it immediately *requests* its next receiver
  (the control message of Section 3.2); contending requests at a receiver
  are served FIFO by request time, with sender index as the tie-break;
* a transfer occupies the sender and the receiver for its full duration;
  self-messages (``src == dst``, only present in adversarial instances)
  occupy both ports of their node at once;
* zero-cost events are free: they are emitted as zero-duration markers at
  the sender's current clock and constrain nothing.

The simulation is deterministic, so a given ``(cost, orders)`` always
yields the same schedule.

The executors are the innermost hot path of every sweep, so they avoid
per-event numpy scalar indexing and unsorted event emission: the
event-driven executor works on nested Python lists and plain field
tuples sorted *before* :class:`CommEvent` construction (tuple sort is
C-speed; sorting dataclasses is not), while the step executors relax
whole steps at a time with vectorized ``maximum`` updates and emit
column arrays straight into a lazily-materialised schedule.
``tests/test_golden_equivalence.py`` pins these kernels to the seed
implementations preserved in :mod:`repro.perf.reference`.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.problem import TotalExchangeProblem
from repro.timing.events import (
    Schedule,
    schedule_from_columns,
    schedule_from_sorted_fields,
)
from repro.util.validation import check_square_matrix

#: Per-sender destination lists, in dispatch order.
SendOrders = List[List[int]]


def check_orders(
    orders: Sequence[Sequence[int]],
    cost: np.ndarray,
    *,
    require_coverage: bool = True,
) -> None:
    """Validate send orders against a cost matrix.

    Each sender's list must contain valid destination indices without
    repeats; with ``require_coverage``, every positive-cost pair must
    appear.
    """
    cost = check_square_matrix("cost", cost, nonnegative=True)
    n = cost.shape[0]
    if len(orders) != n:
        raise ValueError(f"expected {n} sender lists, got {len(orders)}")
    # Vectorized happy path: one bounds check and one bincount over all
    # (src, dst) pairs at once.  Only when something is wrong do we walk
    # the orders scalar-style, so errors name the first offender exactly
    # as the original element-by-element scan did.
    lengths = [len(dsts) for dsts in orders]
    counts = None
    ok = True
    if sum(lengths):
        flat = np.concatenate(
            [np.asarray(dsts, dtype=np.intp) for dsts in orders if dsts]
        )
        ok = bool(flat.min() >= 0 and flat.max() < n)
        if ok:
            keys = flat + np.repeat(
                np.arange(n, dtype=np.intp) * n, lengths
            )
            counts = np.bincount(keys, minlength=n * n)
            ok = not np.any(counts > 1)
    if ok and require_coverage:
        present = (
            counts.reshape(n, n) > 0
            if counts is not None
            else np.zeros((n, n), dtype=bool)
        )
        ok = not np.any((cost > 0) & ~present)
    if ok:
        return
    for src, dsts in enumerate(orders):
        seen = set()
        for dst in dsts:
            if not (0 <= dst < n):
                raise ValueError(
                    f"sender {src} targets invalid destination {dst}"
                )
            if dst in seen:
                raise ValueError(f"sender {src} targets {dst} twice")
            seen.add(dst)
        if require_coverage:
            needed = {int(d) for d in np.nonzero(cost[src])[0]}
            missing = needed - seen
            if missing:
                raise ValueError(
                    f"sender {src} never sends to {sorted(missing)}"
                )
    raise AssertionError("check_orders: vectorized and scalar walks disagree")


def _schedule_from_fields(n: int, fields: List[tuple]) -> Schedule:
    """Build a schedule from ``(start, src, dst, duration, size)`` tuples.

    Tuple sort is C-speed and tuple lexicographic order equals
    :class:`CommEvent` order, so after sorting here the trusted
    constructor can skip the dataclass-level sort and validation.  The
    executors guarantee the remaining invariants: indices come from
    validated orders/steps and starts/durations are built from
    non-negative cost entries.
    """
    fields.sort()
    return schedule_from_sorted_fields(n, fields)


def execute_orders_on_cost(
    cost: np.ndarray,
    orders: Sequence[Sequence[int]],
    *,
    sizes: Optional[np.ndarray] = None,
    validate: bool = True,
) -> Schedule:
    """Execute ``orders`` under ``cost`` and return the timed schedule."""
    cost = check_square_matrix("cost", cost, nonnegative=True)
    if validate:
        check_orders(orders, cost, require_coverage=False)
    n = cost.shape[0]

    # Hot-loop state as plain Python structures: nested float lists for
    # O(1) scalar access without numpy boxing, and (time, src) heap
    # entries — a sender has at most one outstanding request, so its
    # pending destination/duration live in per-sender slots instead of
    # being carried through the heap.
    cost_rows = cost.tolist()
    if sizes is not None:
        size_rows = np.asarray(sizes, dtype=float).tolist()
    else:
        # Shared zero row: keeps the hot loop branch-free on sizes.
        size_rows = [[0.0] * n] * n
    order_lists = [list(dsts) for dsts in orders]
    order_lens = [len(dsts) for dsts in order_lists]
    next_index = [0] * n
    recv_free = [0.0] * n
    pending_dst = [0] * n
    pending_duration = [0.0] * n
    fields: List[tuple] = []
    fields_append = fields.append

    heap: List[Tuple[float, int]] = []
    heappush = heapq.heappush
    heappop = heapq.heappop

    def push_request(src: int, at_time: float) -> None:
        """Queue sender ``src``'s next message, emitting free events inline."""
        dsts = order_lists[src]
        row = cost_rows[src]
        idx = next_index[src]
        while idx < len(dsts):
            dst = dsts[idx]
            idx += 1
            duration = row[dst]
            if duration > 0.0:
                next_index[src] = idx
                pending_dst[src] = dst
                pending_duration[src] = duration
                heappush(heap, (at_time, src))
                return
            fields_append((at_time, src, dst, 0.0, size_rows[src][dst]))
        next_index[src] = idx

    for src in range(n):
        push_request(src, 0.0)

    # Event loop with push_request's body inlined: one Python function
    # call per event is measurable at 65k+ events.
    while heap:
        request_time, src = heappop(heap)
        dst = pending_dst[src]
        duration = pending_duration[src]
        ready = recv_free[dst]
        start = request_time if request_time >= ready else ready
        finish = start + duration
        recv_free[dst] = finish
        fields_append((start, src, dst, duration, size_rows[src][dst]))
        dsts = order_lists[src]
        row = cost_rows[src]
        idx = next_index[src]
        remaining = order_lens[src]
        while idx < remaining:
            dst = dsts[idx]
            idx += 1
            duration = row[dst]
            if duration > 0.0:
                next_index[src] = idx
                pending_dst[src] = dst
                pending_duration[src] = duration
                heappush(heap, (finish, src))
                break
            fields_append((finish, src, dst, 0.0, size_rows[src][dst]))
        else:
            next_index[src] = idx

    return _schedule_from_fields(n, fields)


def execute_orders(
    problem: TotalExchangeProblem,
    orders: Sequence[Sequence[int]],
    *,
    validate: bool = True,
) -> Schedule:
    """Execute ``orders`` under a problem's cost matrix."""
    return execute_orders_on_cost(
        problem.cost, orders, sizes=problem.sizes, validate=validate
    )


#: A communication step: the (src, dst) events of one round.  Complete
#: matchings give permutations (every src exactly once); greedy steps may
#: be partial.  A src or dst must not repeat within a step.
Step = Sequence[Tuple[int, int]]


def _check_steps(steps: Sequence[Step], n: int) -> None:
    for index, step in enumerate(steps):
        if not step:
            continue
        srcs = [src for src, _ in step]
        dsts = [dst for _, dst in step]
        # C-level min/max first; only walk elements when a bound fails.
        if min(srcs) < 0 or max(srcs) >= n or min(dsts) < 0 or max(dsts) >= n:
            for proc in (*srcs, *dsts):
                if not (0 <= proc < n):
                    raise ValueError(
                        f"step {index} references processor {proc} "
                        f"outside [0, {n})"
                    )
        if len(set(srcs)) != len(srcs) or len(set(dsts)) != len(dsts):
            raise ValueError(f"step {index} repeats a sender or receiver")


def _steps_as_pairs(steps: Sequence[Step]) -> List[Tuple[list, list]]:
    """Split steps into parallel sender/receiver index lists.

    Empty steps emit no events and constrain nothing, so they are
    dropped here.
    """
    pairs: List[Tuple[list, list]] = []
    for step in steps:
        if step:
            pairs.append(
                ([src for src, _ in step], [dst for _, dst in step])
            )
    return pairs


def _columns_schedule(
    n: int,
    starts_parts: List[np.ndarray],
    srcs_parts: List[np.ndarray],
    dsts_parts: List[np.ndarray],
    duration_parts: List[np.ndarray],
    sizes: Optional[np.ndarray],
) -> Schedule:
    """Assemble per-step event columns into a (lazy) sorted schedule.

    ``lexsort`` on ``(start, src, dst)`` reproduces the event tuple
    order exactly: a (src, dst) pair occurs at most once per schedule,
    so the remaining fields can never influence the sort.
    """
    if not starts_parts:
        return Schedule(num_procs=n)
    starts = np.concatenate(starts_parts)
    srcs = np.concatenate(srcs_parts)
    dsts = np.concatenate(dsts_parts)
    durations = np.concatenate(duration_parts)
    order = np.lexsort((dsts, srcs, starts))
    starts = starts[order]
    srcs = srcs[order]
    dsts = dsts[order]
    durations = durations[order]
    if sizes is not None:
        event_sizes = np.asarray(sizes, dtype=float)[srcs, dsts]
    else:
        event_sizes = np.zeros(len(starts))
    return schedule_from_columns(n, starts, srcs, dsts, durations, event_sizes)


def execute_steps_strict(
    cost: np.ndarray,
    steps: Sequence[Step],
    *,
    sizes: Optional[np.ndarray] = None,
    validate: bool = True,
) -> Schedule:
    """Order-preserving execution of a step-structured schedule.

    No barriers: an event starts as soon as its sender has finished its
    previous step's send *and* its receiver has finished its previous
    step's receive (receives are served in step order, not arrival
    order).  This is the semantics of the paper's dependence-graph
    analysis and of its matching/greedy timing diagrams: "a communication
    event will begin whenever the sending and receiving processors are
    both ready", with the schedule fixing who is next at every port.

    Runs in ``O(P^2)``: each step is relaxed with one vectorized
    ``maximum`` over the step's senders and receivers, and events are
    accumulated as column arrays — no per-event Python work at all.
    Schedulers that generate their own steps pass ``validate=False`` to
    skip the step well-formedness check.
    """
    cost = check_square_matrix("cost", cost, nonnegative=True)
    n = cost.shape[0]
    if validate:
        _check_steps(steps, n)
    send_free = np.zeros(n)
    recv_free = np.zeros(n)
    starts_parts: List[np.ndarray] = []
    srcs_parts: List[np.ndarray] = []
    dsts_parts: List[np.ndarray] = []
    duration_parts: List[np.ndarray] = []
    for srcs_l, dsts_l in _steps_as_pairs(steps):
        srcs = np.asarray(srcs_l, dtype=np.intp)
        dsts = np.asarray(dsts_l, dtype=np.intp)
        # Senders/receivers are unique within a step, so all starts
        # derive from the pre-step port state and the fancy-indexed
        # update cannot collide.
        starts = np.maximum(send_free[srcs], recv_free[dsts])
        durations = cost[srcs, dsts]
        finishes = starts + durations
        busy = durations > 0.0
        if busy.all():
            send_free[srcs] = finishes
            recv_free[dsts] = finishes
        else:
            # Free events are emitted as markers but consume no port
            # time and impose no ordering on later events.
            send_free[srcs[busy]] = finishes[busy]
            recv_free[dsts[busy]] = finishes[busy]
        starts_parts.append(starts)
        srcs_parts.append(srcs)
        dsts_parts.append(dsts)
        duration_parts.append(durations)
    return _columns_schedule(
        n, starts_parts, srcs_parts, dsts_parts, duration_parts, sizes
    )


def execute_steps_barrier(
    cost: np.ndarray,
    steps: Sequence[Step],
    *,
    sizes: Optional[np.ndarray] = None,
    validate: bool = True,
) -> Schedule:
    """Barrier-synchronised execution of a step-structured schedule.

    All events of step ``k`` start together once every step ``k-1`` event
    has completed, so each step costs its longest event.  This is how the
    caterpillar schedule runs on lockstep/SIMD-style systems (the paper's
    reference [13]) and is the semantics under which the baseline
    degrades as sharply as the paper's figures show.
    """
    cost = check_square_matrix("cost", cost, nonnegative=True)
    n = cost.shape[0]
    if validate:
        _check_steps(steps, n)
    starts_parts: List[np.ndarray] = []
    srcs_parts: List[np.ndarray] = []
    dsts_parts: List[np.ndarray] = []
    duration_parts: List[np.ndarray] = []
    clock = 0.0
    for srcs_l, dsts_l in _steps_as_pairs(steps):
        srcs = np.asarray(srcs_l, dtype=np.intp)
        dsts = np.asarray(dsts_l, dtype=np.intp)
        durations = cost[srcs, dsts]
        starts_parts.append(np.full(len(srcs_l), clock))
        srcs_parts.append(srcs)
        dsts_parts.append(dsts)
        duration_parts.append(durations)
        clock += float(durations.max())
    return _columns_schedule(
        n, starts_parts, srcs_parts, dsts_parts, duration_parts, sizes
    )
