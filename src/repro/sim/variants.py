"""Executor variants for the extended models of paper Section 6.1.

Both variants consume the same per-sender send orders as the base engine
but relax the receive side:

* :func:`execute_orders_interleaved` — a node may receive up to
  ``max_streams`` messages concurrently; interleaving costs a context-
  switch factor, so ``k`` concurrent receives each progress at
  ``1 / ((1 + alpha) * k)`` of their solo rate (total batch time
  ``(1 + alpha) * sum`` for equal overlap, as the paper specifies).
* :func:`execute_orders_buffered` — a sender blocks only until its
  message is stored in the receiver's finite buffer; the receiver drains
  buffered messages one at a time.  Completion is when all messages are
  drained.

Both return ordinary :class:`~repro.timing.events.Schedule` objects whose
events span ``[start, finish]`` of each message's *transfer* (for the
buffered variant, deposit start to drain completion), so completion times
are comparable with the base model.  Note these schedules intentionally
violate the base model's receiver-serialisation rule — do not run them
through :func:`repro.timing.validate.check_schedule`.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.problem import TotalExchangeProblem
from repro.model.extended import FiniteBufferModel, InterleavedReceiveModel
from repro.sim.engine import check_orders
from repro.timing.events import CommEvent, Schedule

_EPS = 1e-12


class _Transfer:
    """An in-flight interleaved receive with remaining solo-time work."""

    __slots__ = ("src", "dst", "start", "work", "size")

    def __init__(self, src: int, dst: int, start: float, work: float, size: float):
        self.src = src
        self.dst = dst
        self.start = start
        self.work = work  # remaining duration at solo rate
        self.size = size


def execute_orders_interleaved(
    problem: TotalExchangeProblem,
    orders: Sequence[Sequence[int]],
    model: InterleavedReceiveModel,
) -> Schedule:
    """Execute orders with interleaved (multithreaded) receives.

    Senders remain serialised (one outstanding send each).  A receive may
    begin whenever the receiver has a free stream slot; otherwise the
    request queues FIFO.  Active receives at a node progress at the
    model's rate factor for the node's current concurrency, re-evaluated
    whenever the active set changes.
    """
    cost = problem.cost
    check_orders(orders, cost, require_coverage=False)
    n = problem.num_procs

    next_index = [0] * n
    waiting: List[List[Tuple[float, int, int]]] = [[] for _ in range(n)]
    active: Dict[int, List[_Transfer]] = {j: [] for j in range(n)}
    events: List[CommEvent] = []
    now = 0.0

    def size_of(src: int, dst: int) -> float:
        return problem.size_of(src, dst)

    def issue_next(src: int, at_time: float) -> None:
        while next_index[src] < len(orders[src]):
            dst = orders[src][next_index[src]]
            next_index[src] += 1
            duration = float(cost[src, dst])
            if duration > 0:
                heapq.heappush(
                    waiting[dst], (at_time, src, duration)  # FIFO, src tie-break
                )
                return
            events.append(
                CommEvent(
                    start=at_time, src=src, dst=dst, duration=0.0,
                    size=size_of(src, dst),
                )
            )

    def admit(dst: int, current: float) -> None:
        """Move queued requests into free stream slots at ``dst``."""
        while waiting[dst] and len(active[dst]) < model.max_streams:
            req_time, src, duration = heapq.heappop(waiting[dst])
            start = max(req_time, current)
            active[dst].append(
                _Transfer(src, dst, start, duration, size_of(src, dst))
            )

    for src in range(n):
        issue_next(src, 0.0)
    for dst in range(n):
        admit(dst, 0.0)

    while any(active[j] for j in range(n)) or any(waiting[j] for j in range(n)):
        # Estimated completion (eta) of every active transfer at current rates.
        etas: List[Tuple[float, _Transfer, float]] = []  # (eta, transfer, rate)
        for j in range(n):
            k = len(active[j])
            if k == 0:
                continue
            rate = model.effective_rate_factor(k)
            for tr in active[j]:
                etas.append((max(tr.start, now) + tr.work / rate, tr, rate))
        if not etas:
            # Requests are waiting but nothing is active: admit at the
            # earliest request time.
            next_req = min(waiting[j][0][0] for j in range(n) if waiting[j])
            now = max(now, next_req)
            for j in range(n):
                admit(j, now)
            continue

        next_time = min(eta for eta, _, _ in etas)
        tol = 1e-9 * max(1.0, abs(next_time))
        finished: List[_Transfer] = []
        for eta, tr, rate in etas:
            if eta <= next_time + tol:
                tr.work = 0.0
                finished.append(tr)
            else:
                begun = max(tr.start, now)
                tr.work -= max(0.0, next_time - begun) * rate
        now = next_time
        for tr in finished:
            active[tr.dst].remove(tr)
            events.append(
                CommEvent(
                    start=tr.start,
                    src=tr.src,
                    dst=tr.dst,
                    duration=now - tr.start,
                    size=tr.size,
                )
            )
            issue_next(tr.src, now)
        for j in range(n):
            admit(j, now)

    return Schedule.from_events(n, events)


def execute_orders_buffered(
    problem: TotalExchangeProblem,
    orders: Sequence[Sequence[int]],
    model: FiniteBufferModel,
    *,
    sizes: Optional[np.ndarray] = None,
) -> Schedule:
    """Execute orders with finite receive buffers.

    A *deposit* occupies the sender for the wire time ``cost[src, dst]``
    and may start once the receiver's buffer has room for the message
    (deposits at a node may overlap — the buffer absorbs them).  Deposited
    messages are drained serially per node at ``model.drain_rate``; buffer
    space is released when the drain finishes.  An event's recorded span
    is deposit-start to drain-finish.

    ``sizes`` overrides the problem's size matrix; sizes are required.
    Messages larger than the buffer capacity are infeasible and raise
    :class:`ValueError`.
    """
    cost = problem.cost
    check_orders(orders, cost, require_coverage=False)
    size_matrix = sizes if sizes is not None else problem.sizes
    if size_matrix is None:
        raise ValueError(
            "buffered execution needs message sizes; provide sizes= or build "
            "the problem with a size matrix"
        )
    size_matrix = np.asarray(size_matrix, dtype=float)
    n = problem.num_procs
    positive = cost > 0
    if np.any(size_matrix[positive] > model.capacity_bytes):
        raise ValueError(
            "a message exceeds the receive buffer capacity; the finite-"
            "buffer model cannot transfer it"
        )

    # Discrete-event state.
    free_space = [model.capacity_bytes] * n
    drain_free = [0.0] * n  # when each node's drain port is next idle
    next_index = [0] * n
    blocked: List[List[Tuple[float, int]]] = [[] for _ in range(n)]  # per dst
    events: List[CommEvent] = []

    # Heap entries: (time, seq, kind, payload)
    #   "request":      sender ready to deposit (payload = (src, dst))
    #   "deposit_done": wire transfer finished
    #   "drain_done":   receiver finished draining; buffer space freed
    heap: List[tuple] = []
    seq = 0

    def push(time: float, kind: str, payload) -> None:
        nonlocal seq
        heapq.heappush(heap, (time, seq, kind, payload))
        seq += 1

    def issue_next(src: int, at_time: float) -> None:
        while next_index[src] < len(orders[src]):
            dst = orders[src][next_index[src]]
            next_index[src] += 1
            if cost[src, dst] > 0:
                push(at_time, "request", (src, dst))
                return
            events.append(
                CommEvent(
                    start=at_time, src=src, dst=dst, duration=0.0,
                    size=float(size_matrix[src, dst]),
                )
            )

    for src in range(n):
        issue_next(src, 0.0)

    while heap:
        time, _, kind, payload = heapq.heappop(heap)
        if kind == "request":
            src, dst = payload
            size = float(size_matrix[src, dst])
            if size <= free_space[dst] + _EPS:
                free_space[dst] -= size
                finish = time + float(cost[src, dst])
                push(finish, "deposit_done", (src, dst, time, size))
            else:
                blocked[dst].append((time, src))
        elif kind == "deposit_done":
            src, dst, deposit_start, size = payload
            # Sender is released now; message enters the drain queue.
            issue_next(src, time)
            drain_start = max(time, drain_free[dst])
            drain_finish = drain_start + model.drain_time(size)
            drain_free[dst] = drain_finish
            push(drain_finish, "drain_done", (src, dst, deposit_start, size))
        else:  # drain_done — buffer space is released only now
            src, dst, deposit_start, size = payload
            free_space[dst] += size
            events.append(
                CommEvent(
                    start=deposit_start,
                    src=src,
                    dst=dst,
                    duration=time - deposit_start,
                    size=size,
                )
            )
            # Retry blocked senders in original request order; ties in the
            # heap break on push sequence, preserving FIFO.
            if blocked[dst]:
                retries = sorted(blocked[dst])
                blocked[dst] = []
                for _req_time, blocked_src in retries:
                    push(time, "request", (blocked_src, dst))

    return Schedule.from_events(n, events)
