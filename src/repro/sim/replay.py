"""Replaying planned schedules under different network conditions.

Adaptivity claims are about exactly this gap: a schedule is planned from
one directory snapshot, but the network has moved on by the time it runs.
These helpers re-execute a planned schedule's event order — which fixes
both each sender's dispatch order and each receiver's service order —
under the costs that actually materialised, using the same strict
order-preserving semantics the schedulers plan for
(:func:`repro.sim.engine.execute_steps_strict`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core.problem import TotalExchangeProblem
from repro.sim.engine import execute_steps_strict
from repro.timing.events import Schedule


def replay_schedule(
    planned: Schedule, actual: TotalExchangeProblem
) -> Schedule:
    """Execute ``planned``'s event order under ``actual``'s costs.

    Every event becomes its own single-event step, in planned start
    order; strict execution then respects the planned per-port orders
    while letting start times stretch or shrink with the new costs.
    """
    if planned.num_procs != actual.num_procs:
        raise ValueError(
            f"schedule over {planned.num_procs} processors cannot replay on "
            f"a {actual.num_procs}-processor instance"
        )
    ordered = sorted(planned, key=lambda e: (e.start, e.src, e.dst))
    steps = [[(e.src, e.dst)] for e in ordered]
    return execute_steps_strict(actual.cost, steps, sizes=actual.sizes)


@dataclass(frozen=True)
class ReplayResult:
    """Outcome of replaying a planned schedule under actual conditions."""

    planned: Schedule
    actual: Schedule

    @property
    def planned_time(self) -> float:
        return self.planned.completion_time

    @property
    def actual_time(self) -> float:
        return self.actual.completion_time

    @property
    def slowdown(self) -> float:
        """``actual / planned`` completion-time ratio (1.0 = as planned)."""
        if self.planned_time == 0:
            return 1.0 if self.actual_time == 0 else float("inf")
        return self.actual_time / self.planned_time


def evaluate_orders_under(
    planned: Schedule,
    actual: TotalExchangeProblem,
) -> Schedule:
    """Alias of :func:`replay_schedule` (kept for API symmetry)."""
    return replay_schedule(planned, actual)


def planned_vs_actual(
    planned_schedule: Schedule,
    actual: TotalExchangeProblem,
) -> ReplayResult:
    """Pair a planned schedule with its replay under actual conditions."""
    return ReplayResult(
        planned=planned_schedule,
        actual=replay_schedule(planned_schedule, actual),
    )
