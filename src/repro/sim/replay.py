"""Replaying planned schedules under different network conditions.

Adaptivity claims are about exactly this gap: a schedule is planned from
one directory snapshot, but the network has moved on by the time it runs.
These helpers re-execute a planned schedule's event order — which fixes
both each sender's dispatch order and each receiver's service order —
under the costs that actually materialised, using the same strict
order-preserving semantics the schedulers plan for
(:func:`repro.sim.engine.execute_steps_strict`).

The module also provides recorded *drift traces* — timestamped snapshot
sequences (:class:`DriftTrace`) playable through a
:class:`TraceDirectory` — which is how the adaptive runtime
(:mod:`repro.runtime`) and ``python -m repro.cli serve`` are driven:
plan against the directory, watch it drift, measure the gap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

import numpy as np

from repro.core.problem import TotalExchangeProblem
from repro.directory.perturb import perturb_snapshot
from repro.directory.service import DirectoryService, DirectorySnapshot
from repro.sim.engine import execute_steps_strict
from repro.timing.events import Schedule
from repro.util.rng import stable_seed, to_rng


def replay_schedule(
    planned: Schedule, actual: TotalExchangeProblem
) -> Schedule:
    """Execute ``planned``'s event order under ``actual``'s costs.

    Every event becomes its own single-event step, in planned start
    order; strict execution then respects the planned per-port orders
    while letting start times stretch or shrink with the new costs.
    """
    if planned.num_procs != actual.num_procs:
        raise ValueError(
            f"schedule over {planned.num_procs} processors cannot replay on "
            f"a {actual.num_procs}-processor instance"
        )
    ordered = sorted(planned, key=lambda e: (e.start, e.src, e.dst))
    steps = [[(e.src, e.dst)] for e in ordered]
    return execute_steps_strict(actual.cost, steps, sizes=actual.sizes)


@dataclass(frozen=True)
class ReplayResult:
    """Outcome of replaying a planned schedule under actual conditions."""

    planned: Schedule
    actual: Schedule

    @property
    def planned_time(self) -> float:
        return self.planned.completion_time

    @property
    def actual_time(self) -> float:
        return self.actual.completion_time

    @property
    def slowdown(self) -> float:
        """``actual / planned`` completion-time ratio (1.0 = as planned)."""
        if self.planned_time == 0:
            return 1.0 if self.actual_time == 0 else float("inf")
        return self.actual_time / self.planned_time


def evaluate_orders_under(
    planned: Schedule,
    actual: TotalExchangeProblem,
) -> Schedule:
    """Alias of :func:`replay_schedule` (kept for API symmetry)."""
    return replay_schedule(planned, actual)


def planned_vs_actual(
    planned_schedule: Schedule,
    actual: TotalExchangeProblem,
) -> ReplayResult:
    """Pair a planned schedule with its replay under actual conditions."""
    return ReplayResult(
        planned=planned_schedule,
        actual=replay_schedule(planned_schedule, actual),
    )


# ---------------------------------------------------------------------------
# Drift traces: recorded directory histories for replay-driven serving.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DriftTrace:
    """A timestamped sequence of directory snapshots.

    ``snapshots[k]`` is in force over ``[times[k], times[k+1])``; the
    last snapshot extends forever.  Traces can be recorded from a live
    directory or synthesised (:func:`synthetic_drift_trace`); either way
    they make drift experiments exactly reproducible.
    """

    times: Tuple[float, ...]
    snapshots: Tuple[DirectorySnapshot, ...]

    def __post_init__(self) -> None:
        if len(self.times) != len(self.snapshots) or not self.times:
            raise ValueError(
                "need equally many times and snapshots, at least one"
            )
        if any(b <= a for a, b in zip(self.times, self.times[1:])):
            raise ValueError("trace times must be strictly increasing")
        n = self.snapshots[0].num_procs
        if any(s.num_procs != n for s in self.snapshots):
            raise ValueError("all trace snapshots must share a size")

    @property
    def num_procs(self) -> int:
        return self.snapshots[0].num_procs

    @property
    def duration(self) -> float:
        return self.times[-1] - self.times[0]

    def __len__(self) -> int:
        return len(self.snapshots)

    def __iter__(self) -> Iterator[DirectorySnapshot]:
        return iter(self.snapshots)

    def at(self, time: float) -> DirectorySnapshot:
        """The snapshot in force at ``time`` (clamped at the ends)."""
        index = 0
        for k, t in enumerate(self.times):
            if t <= time:
                index = k
            else:
                break
        return self.snapshots[index]


def synthetic_drift_trace(
    base: DirectorySnapshot,
    *,
    ticks: int,
    dt: float = 1.0,
    base_sigma: float = 0.02,
    burst_sigma: float = 0.5,
    burst_every: int = 0,
    seed: int = 0,
) -> DriftTrace:
    """A deterministic multiplicative-random-walk drift trace.

    Each step perturbs the *previous* snapshot's bandwidths with
    log-normal noise of magnitude ``base_sigma`` — drift compounds, as
    live networks do.  When ``burst_every`` is positive, every that-many
    ticks the step uses ``burst_sigma`` instead, modelling sudden load
    shifts (a backbone link congesting) on top of slow wander.  The walk
    is seeded per step from ``(seed, step)`` so a trace prefix never
    depends on its length.
    """
    if ticks < 1:
        raise ValueError(f"ticks must be >= 1, got {ticks}")
    if dt <= 0:
        raise ValueError(f"dt must be positive, got {dt}")
    if burst_every < 0:
        raise ValueError(f"burst_every must be >= 0, got {burst_every}")
    times = [0.0]
    snapshots = [base]
    for step in range(1, ticks):
        burst = burst_every > 0 and step % burst_every == 0
        sigma = burst_sigma if burst else base_sigma
        rng = to_rng(stable_seed("drift-trace", seed, step))
        snapshots.append(
            perturb_snapshot(
                snapshots[-1],
                bandwidth_sigma=sigma,
                time_delta=dt,
                rng=rng,
            )
        )
        times.append(step * dt)
    return DriftTrace(times=tuple(times), snapshots=tuple(snapshots))


def drift_storm_trace(
    base: DirectorySnapshot,
    *,
    ticks: int,
    dt: float = 1.0,
    calm_sigma: float = 0.005,
    storm_every: int = 4,
    storm_nodes: int = 2,
    storm_sigma: float = 0.8,
    seed: int = 0,
) -> DriftTrace:
    """A bursty, node-correlated drift trace: calm wander + row storms.

    Unlike :func:`synthetic_drift_trace`'s independent per-pair noise,
    storms here are *cluster-correlated*: every ``storm_every`` ticks a
    contiguous window of ``storm_nodes`` nodes congests, and each
    affected node's entire outgoing row is repriced by one log-normal
    factor (latency multiplied, bandwidth divided — so per-pair costs
    scale exactly by the factor).  That is the localisation structure
    delta-repair exploits: a storm dirties roughly ``storm_nodes / P``
    of the pairs while the drift magnitude can be large, landing in the
    policy's repair band rather than the reuse or reschedule ends.

    Calm ticks perturb the previous snapshot with independent log-normal
    bandwidth noise of magnitude ``calm_sigma``; both kinds compound, as
    live networks do.  Each step is seeded from ``(seed, step)`` so a
    trace prefix never depends on the trace length.
    """
    if ticks < 1:
        raise ValueError(f"ticks must be >= 1, got {ticks}")
    if dt <= 0:
        raise ValueError(f"dt must be positive, got {dt}")
    if storm_every < 0:
        raise ValueError(f"storm_every must be >= 0, got {storm_every}")
    if storm_nodes < 1:
        raise ValueError(f"storm_nodes must be >= 1, got {storm_nodes}")
    if calm_sigma < 0 or storm_sigma < 0:
        raise ValueError("sigmas must be >= 0")
    n = base.num_procs
    span = min(storm_nodes, n)
    times = [0.0]
    snapshots = [base]
    for step in range(1, ticks):
        rng = to_rng(stable_seed("drift-storm", seed, step))
        previous = snapshots[-1]
        storm = storm_every > 0 and step % storm_every == 0
        if storm:
            start = int(rng.integers(0, n - span + 1))
            factors = np.exp(
                np.abs(rng.normal(0.0, storm_sigma, size=span))
            )
            latency = previous.latency.copy()
            bandwidth = previous.bandwidth.copy()
            rows = slice(start, start + span)
            latency[rows, :] *= factors[:, None]
            bandwidth[rows, :] /= factors[:, None]
            np.fill_diagonal(latency, 0.0)
            snapshots.append(
                DirectorySnapshot(
                    latency=latency,
                    bandwidth=bandwidth,
                    time=previous.time + dt,
                )
            )
        else:
            snapshots.append(
                perturb_snapshot(
                    previous,
                    bandwidth_sigma=calm_sigma,
                    time_delta=dt,
                    rng=rng,
                )
            )
        times.append(step * dt)
    return DriftTrace(times=tuple(times), snapshots=tuple(snapshots))


class TraceDirectory(DirectoryService):
    """A directory that answers from a recorded :class:`DriftTrace`.

    The serving runtime subscribes to directories; wrapping a trace in
    this class replays a recorded (or synthesised) network history
    against it deterministically.
    """

    def __init__(self, trace: DriftTrace, *, start_time: float = 0.0):
        self._trace = trace
        self._time = float(start_time)

    @property
    def trace(self) -> DriftTrace:
        return self._trace

    @property
    def num_procs(self) -> int:
        return self._trace.num_procs

    @property
    def time(self) -> float:
        return self._time

    def snapshot(self) -> DirectorySnapshot:
        current = self._trace.at(self._time)
        return DirectorySnapshot(
            latency=current.latency,
            bandwidth=current.bandwidth,
            time=self._time,
        )

    def advance(self, dt: float) -> None:
        if dt < 0:
            raise ValueError(f"dt must be >= 0, got {dt}")
        self._time += dt
