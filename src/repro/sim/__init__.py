"""Execution engines: from send orders to timed schedules.

The matching, greedy, and baseline schedulers fix only the *order* in
which each sender dispatches its messages; actual start times emerge from
the run-time rule that "a communication event will begin whenever the
sending and receiving processors are both ready" (paper Section 4.3).
:func:`~repro.sim.engine.execute_orders` is that rule as a deterministic
event-driven simulation.

* :mod:`repro.sim.engine` — the base executor (one send + one receive per
  node, FIFO receiver queueing);
* :mod:`repro.sim.replay` — re-execute planned orders under *different*
  network conditions (adaptivity experiments);
* :mod:`repro.sim.variants` — Section 6.1 executor variants (interleaved
  receive, finite buffers);
* :mod:`repro.sim.fluid` — flow-level simulation over a link topology with
  fair bandwidth sharing (model-error ablation).
"""

from repro.sim.engine import (
    SendOrders,
    Step,
    check_orders,
    execute_orders,
    execute_orders_on_cost,
    execute_steps_barrier,
    execute_steps_strict,
)
from repro.sim.fluid import fluid_execute_orders
from repro.sim.replay import (
    DriftTrace,
    TraceDirectory,
    drift_storm_trace,
    evaluate_orders_under,
    planned_vs_actual,
    replay_schedule,
    synthetic_drift_trace,
)
from repro.sim.variants import (
    execute_orders_buffered,
    execute_orders_interleaved,
)

__all__ = [
    "DriftTrace",
    "SendOrders",
    "Step",
    "TraceDirectory",
    "check_orders",
    "drift_storm_trace",
    "evaluate_orders_under",
    "execute_orders",
    "execute_orders_buffered",
    "execute_orders_interleaved",
    "execute_orders_on_cost",
    "execute_steps_barrier",
    "execute_steps_strict",
    "fluid_execute_orders",
    "planned_vs_actual",
    "replay_schedule",
    "synthetic_drift_trace",
]
