"""Flow-level (fluid) execution over a link topology.

The analytical model prices each message independently (``T + m/B``) and
ignores the bandwidth that simultaneous transfers steal from each other on
shared links.  This simulator executes send orders over an actual
:class:`~repro.network.topology.Metacomputer`: concurrent flows receive
max-min fair shares of every link they cross, recomputed whenever a flow
starts or finishes.  Comparing its completion times against the
analytical executor quantifies the model error the paper's directory
sharing rule is meant to absorb (ablation experiment A3 in DESIGN.md).

Port semantics match the base model: one active send per sender, one
active receive per receiver, FIFO receiver queueing.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.network.paths import all_paths
from repro.network.sharing import max_min_fair_rates
from repro.network.topology import Metacomputer
from repro.sim.engine import check_orders
from repro.timing.events import CommEvent, Schedule

_EPS = 1e-12


class _Flow:
    """An in-flight transfer with remaining byte work."""

    __slots__ = ("src", "dst", "start", "latency_until", "remaining", "size")

    def __init__(
        self, src: int, dst: int, start: float, latency: float, size: float
    ):
        self.src = src
        self.dst = dst
        self.start = start
        #: The start-up phase [start, latency_until) transfers no bytes.
        self.latency_until = start + latency
        self.remaining = size
        self.size = size


def fluid_execute_orders(
    system: Metacomputer,
    orders: Sequence[Sequence[int]],
    sizes: np.ndarray,
    *,
    software_overhead: float = 0.0,
    background_flows: Optional[Sequence[Tuple[int, int]]] = None,
) -> Schedule:
    """Execute ``orders`` moving ``sizes[src, dst]`` bytes over ``system``.

    Each message experiences its routed path latency (plus
    ``software_overhead``) as a start-up phase, then transfers its bytes
    at the flow's current max-min fair rate.  Zero-byte messages are
    emitted as free markers.

    ``background_flows`` lists node pairs with *persistent* competing
    traffic: each participates in the max-min sharing on its routed path
    for the whole run (it never finishes and occupies no ports) —
    cross-application load, the thing the paper's directory divides
    bandwidth for.
    """
    n = system.num_procs
    sizes = np.asarray(sizes, dtype=float)
    if sizes.shape != (n, n):
        raise ValueError(
            f"size matrix shape {sizes.shape} does not match "
            f"{n}-node system"
        )
    check_orders(orders, sizes, require_coverage=False)

    paths = all_paths(system)
    capacities = {}
    for u, v, link in system.links():
        edge = (u, v) if u <= v else (v, u)
        capacities[edge] = link.bandwidth

    background_paths = []
    for src, dst in background_flows or ():
        if src == dst:
            raise ValueError("background flow endpoints must differ")
        background_paths.append(paths[(src, dst)].edges)

    next_index = [0] * n
    recv_busy = [False] * n
    waiting: List[List[Tuple[float, int]]] = [[] for _ in range(n)]  # per dst
    active: List[_Flow] = []
    events: List[CommEvent] = []
    now = 0.0

    def issue_next(src: int, at_time: float) -> None:
        while next_index[src] < len(orders[src]):
            dst = orders[src][next_index[src]]
            next_index[src] += 1
            # Self-messages are local copies: free under the fluid model too.
            if sizes[src, dst] > 0 and src != dst:
                heapq.heappush(waiting[dst], (at_time, src))
                return
            events.append(
                CommEvent(start=at_time, src=src, dst=dst, duration=0.0)
            )

    def admit(dst: int, current: float) -> None:
        if recv_busy[dst] or not waiting[dst]:
            return
        req_time, src = heapq.heappop(waiting[dst])
        recv_busy[dst] = True
        start = max(req_time, current)
        latency = paths[(src, dst)].latency + software_overhead
        active.append(_Flow(src, dst, start, latency, float(sizes[src, dst])))

    for src in range(n):
        issue_next(src, 0.0)
    for dst in range(n):
        admit(dst, 0.0)

    while active or any(waiting[j] for j in range(n)):
        if not active:
            next_req = min(waiting[j][0][0] for j in range(n) if waiting[j])
            now = max(now, next_req)
            for j in range(n):
                admit(j, now)
            continue

        # Flows still in their latency phase transfer nothing yet.
        transferring = [f for f in active if f.latency_until <= now + _EPS]
        rates: Dict[int, float] = {}
        if transferring:
            flow_paths = [
                paths[(f.src, f.dst)].edges for f in transferring
            ] + background_paths
            fair = max_min_fair_rates(flow_paths, capacities)
            rates = {id(f): r for f, r in zip(transferring, fair)}

        # Next event: a latency phase ending or a transfer completing.
        candidates: List[float] = [
            f.latency_until for f in active if f.latency_until > now + _EPS
        ]
        for flow in transferring:
            rate = rates[id(flow)]
            if rate == float("inf") or flow.remaining <= _EPS:
                candidates.append(now)
            else:
                candidates.append(now + flow.remaining / rate)
        next_time = min(candidates)
        tol = 1e-9 * max(1.0, abs(next_time))

        finished: List[_Flow] = []
        for flow in transferring:
            rate = rates[id(flow)]
            if rate == float("inf"):
                flow.remaining = 0.0
            else:
                flow.remaining -= max(0.0, next_time - now) * rate
            if flow.remaining <= tol * max(1.0, rate):
                flow.remaining = 0.0
                finished.append(flow)
        now = next_time

        for flow in finished:
            active.remove(flow)
            recv_busy[flow.dst] = False
            events.append(
                CommEvent(
                    start=flow.start,
                    src=flow.src,
                    dst=flow.dst,
                    duration=now - flow.start,
                    size=flow.size,
                )
            )
            issue_next(flow.src, now)
        for j in range(n):
            admit(j, now)

    return Schedule.from_events(n, events)


def analytical_equivalent_cost(
    system: Metacomputer,
    sizes: np.ndarray,
    *,
    software_overhead: float = 0.0,
) -> np.ndarray:
    """The cost matrix the analytical model would assign to this system.

    Convenience for model-error experiments: build the no-sharing
    ``T + m/B`` matrix from the same topology the fluid simulator runs on.
    """
    from repro.network.paths import end_to_end_matrices

    latency, bandwidth = end_to_end_matrices(
        system, software_overhead=software_overhead
    )
    sizes = np.asarray(sizes, dtype=float)
    with np.errstate(invalid="ignore"):
        cost = latency + sizes / bandwidth
    cost = np.where(sizes == 0, 0.0, cost)
    np.fill_diagonal(cost, 0.0)
    return cost
