"""Unit conventions and conversions.

Internal conventions used throughout :mod:`repro`:

* **time** is measured in seconds (floats),
* **message sizes** are measured in bytes,
* **bandwidth** is measured in bytes per second.

The paper quotes directory values in milliseconds and kbit/s (Tables 1-2 of
the paper report GUSTO latencies in ms and bandwidths in kbits/s), and
message sizes in kB / MB.  The constants and converters here are the single
place where those external units are translated.

Decimal prefixes are used for message sizes (1 kB = 1000 B), matching
networking convention; the distinction is irrelevant to any of the paper's
conclusions but is fixed here for reproducibility.
"""

from __future__ import annotations

#: One millisecond, in seconds.
MILLISECONDS: float = 1e-3

#: One kilobyte (decimal), in bytes.
KILOBYTE: int = 1_000

#: One megabyte (decimal), in bytes.
MEGABYTE: int = 1_000_000

#: One kilobit per second, in bytes per second.
KBIT_PER_S: float = 1_000.0 / 8.0

#: One megabit per second, in bytes per second.
MBIT_PER_S: float = 1_000_000.0 / 8.0

#: One gigabit per second, in bytes per second.
GBIT_PER_S: float = 1_000_000_000.0 / 8.0


def seconds_from_ms(ms: float) -> float:
    """Convert milliseconds to seconds."""
    return ms * MILLISECONDS


def ms_from_seconds(seconds: float) -> float:
    """Convert seconds to milliseconds."""
    return seconds / MILLISECONDS


def bytes_per_s_from_kbit_per_s(kbit_per_s: float) -> float:
    """Convert a bandwidth in kbit/s (directory units) to bytes/s."""
    return kbit_per_s * KBIT_PER_S


def kbit_per_s_from_bytes_per_s(bytes_per_s: float) -> float:
    """Convert a bandwidth in bytes/s to kbit/s (directory units)."""
    return bytes_per_s / KBIT_PER_S
