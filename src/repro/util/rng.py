"""Deterministic random number generator plumbing.

All stochastic code in :mod:`repro` accepts either an integer seed, a
:class:`numpy.random.Generator`, or ``None`` and normalises it through
:func:`to_rng`.  Experiments that need several independent streams (one per
trial, one per link, ...) split a parent generator with :func:`spawn_rngs`
so that adding streams never perturbs existing ones.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

#: Anything acceptable as a source of randomness.
RngLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def to_rng(seed: RngLike = None) -> np.random.Generator:
    """Normalise ``seed`` into a :class:`numpy.random.Generator`.

    ``None`` produces a fresh OS-seeded generator; an existing generator is
    returned unchanged (so callers may thread one generator through a whole
    experiment); ints and :class:`~numpy.random.SeedSequence` objects seed a
    new PCG64 generator.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: RngLike, n: int) -> Sequence[np.random.Generator]:
    """Create ``n`` statistically independent generators from ``seed``.

    Uses :meth:`numpy.random.Generator.spawn` so the child streams are
    independent of each other and of the parent's future output.
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    return to_rng(seed).spawn(n)


def stable_seed(*parts: Union[int, str]) -> int:
    """Derive a stable 63-bit seed from a tuple of ints/strings.

    Useful for giving every (experiment, trial, P) cell of a sweep its own
    reproducible stream regardless of evaluation order.
    """
    acc = 1469598103934665603  # FNV-1a offset basis
    prime = 1099511628211
    for part in parts:
        data = str(part).encode("utf-8") + b"\x1f"
        for byte in data:
            acc = ((acc ^ byte) * prime) & 0xFFFF_FFFF_FFFF_FFFF
    return acc & 0x7FFF_FFFF_FFFF_FFFF


def optional_choice(
    rng: np.random.Generator, items: Sequence, size: Optional[int] = None
):
    """``rng.choice`` wrapper that tolerates empty ``items`` by returning None."""
    if len(items) == 0:
        return None
    return rng.choice(items, size=size)
