"""Plain-text table rendering for experiment reports and benches.

The benchmark harness regenerates the paper's figures as printed series;
these helpers keep that output aligned and diff-friendly without pulling in
a plotting dependency.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence


def _fmt_cell(value, width: int, precision: int) -> str:
    if isinstance(value, float):
        text = f"{value:.{precision}f}"
    else:
        text = str(value)
    return text.rjust(width)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    *,
    precision: int = 3,
    title: Optional[str] = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table."""
    if any(len(row) != len(headers) for row in rows):
        raise ValueError("every row must have one cell per header")
    str_rows = [
        [
            f"{cell:.{precision}f}" if isinstance(cell, float) else str(cell)
            for cell in row
        ]
        for row in rows
    ]
    widths = [
        max(len(header), *(len(row[i]) for row in str_rows)) if str_rows else len(header)
        for i, header in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    x_name: str,
    x_values: Sequence,
    series: Mapping[str, Sequence[float]],
    *,
    precision: int = 3,
    title: Optional[str] = None,
) -> str:
    """Render one x-column plus one column per named series.

    This is the shape of every figure in the paper's evaluation section:
    ``x`` is the processor count, each series is one scheduling algorithm.
    """
    headers = [x_name, *series.keys()]
    for name, values in series.items():
        if len(values) != len(x_values):
            raise ValueError(
                f"series {name!r} has {len(values)} points, expected {len(x_values)}"
            )
    rows = [
        [x, *(series[name][i] for name in series)] for i, x in enumerate(x_values)
    ]
    return format_table(headers, rows, precision=precision, title=title)


def format_ratio_summary(
    ratios: Mapping[str, Sequence[float]], *, precision: int = 3
) -> str:
    """Summarise ratio-to-lower-bound samples per algorithm (min/mean/max)."""
    rows = []
    for name, values in ratios.items():
        if len(values) == 0:
            raise ValueError(f"series {name!r} has no samples")
        values = list(values)
        rows.append(
            [
                name,
                float(min(values)),
                float(sum(values) / len(values)),
                float(max(values)),
            ]
        )
    return format_table(
        ["algorithm", "min", "mean", "max"], rows, precision=precision
    )
