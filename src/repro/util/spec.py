"""Shared ``name[:key=value,...]`` spec-string grammar.

Directory flavours (``"noisy:sigma=0.1"``) and collectives
(``"allreduce:variant=tree"``) describe parameterized variants with the
same compact grammar.  This module is the single parser/formatter both
registries use, so malformed specs fail with one deterministic error
naming the bad token no matter which consumer saw them, and
``parse -> format -> parse`` round-trips for every registered family.

Values parse as bool (``true``/``yes``/``on`` and friends), int or float
when they look like one, else stay strings.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Mapping, Optional, Tuple


def parse_value(text: str) -> Any:
    """Best-effort typed parse of one option value."""
    lowered = text.strip().lower()
    if lowered in ("true", "yes", "on"):
        return True
    if lowered in ("false", "no", "off"):
        return False
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    return text.strip()


def format_value(value: Any) -> str:
    """Inverse of :func:`parse_value`; raises if the value cannot survive
    a round-trip (e.g. a string containing the grammar's own separators).
    """
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return repr(value)
    text = str(value)
    if not text or text != text.strip() or any(c in text for c in ":,="):
        raise ValueError(
            f"cannot format option value {value!r} into a spec string"
        )
    if parse_value(text) != value:
        raise ValueError(
            f"option value {value!r} does not round-trip through a "
            f"spec string"
        )
    return text


def parse_spec(
    spec: str,
    known: Optional[Iterable[str]] = None,
    *,
    kind: str = "spec",
    name_kind: Optional[str] = None,
) -> Tuple[str, Dict[str, Any]]:
    """``"name:sigma=0.1" -> ("name", {"sigma": 0.1})``.

    Exactly one error per failure mode, each naming the offending token:
    ``ValueError`` for an empty spec, a malformed ``key=value`` item or a
    duplicated key; ``KeyError`` for a name outside ``known`` (listing
    the known names).  ``kind`` labels the spec in messages ("directory",
    "collective"); ``name_kind`` labels the name itself when it differs
    ("directory flavour").
    """
    name_kind = name_kind or kind
    spec = spec.strip()
    if not spec:
        raise ValueError(f"empty {kind} spec")
    name, _, tail = spec.partition(":")
    name = name.strip()
    if known is not None:
        known = tuple(known)
        if name not in known:
            raise KeyError(
                f"unknown {name_kind} {name!r}; known: {', '.join(known)}"
            )
    options: Dict[str, Any] = {}
    if tail.strip():
        for item in tail.split(","):
            key, eq, value = item.partition("=")
            key = key.strip()
            # a second "=" or a stray ":" inside the value could never
            # be formatted back, so reject it here for exact
            # parse -> format -> parse round-trips
            if not key or not eq or "=" in value or ":" in value:
                raise ValueError(
                    f"malformed option {item!r} in {kind} spec "
                    f"{spec!r}; expected key=value"
                )
            if key in options:
                raise ValueError(
                    f"duplicate option {key!r} in {kind} spec {spec!r}"
                )
            options[key] = parse_value(value)
    return name, options


def format_spec(name: str, options: Optional[Mapping[str, Any]] = None) -> str:
    """Canonical spec string: options sorted by key, values formatted so
    :func:`parse_spec` recovers them exactly."""
    if not options:
        return name
    tail = ",".join(
        f"{key}={format_value(options[key])}" for key in sorted(options)
    )
    return f"{name}:{tail}"
