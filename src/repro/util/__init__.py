"""Shared utilities: units, RNG plumbing, ASCII tables, argument checking.

These helpers are deliberately tiny and dependency-light; every other
subpackage builds on them.
"""

from repro.util.rng import RngLike, spawn_rngs, to_rng
from repro.util.tables import format_series, format_table
from repro.util.units import (
    GBIT_PER_S,
    KBIT_PER_S,
    KILOBYTE,
    MBIT_PER_S,
    MEGABYTE,
    MILLISECONDS,
    bytes_per_s_from_kbit_per_s,
    kbit_per_s_from_bytes_per_s,
    seconds_from_ms,
)
from repro.util.validation import (
    check_positive,
    check_probability,
    check_square_matrix,
)

__all__ = [
    "GBIT_PER_S",
    "KBIT_PER_S",
    "KILOBYTE",
    "MBIT_PER_S",
    "MEGABYTE",
    "MILLISECONDS",
    "RngLike",
    "bytes_per_s_from_kbit_per_s",
    "check_positive",
    "check_probability",
    "check_square_matrix",
    "format_series",
    "format_table",
    "kbit_per_s_from_bytes_per_s",
    "seconds_from_ms",
    "spawn_rngs",
    "to_rng",
]
