"""Small statistics helpers for experiment reporting.

Sweeps report means; when trials are few, a confidence interval keeps
readers honest about the noise.  Implemented with Student's t critical
values (scipy) so there is no normality hand-waving at n = 3.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats as _scipy_stats


@dataclass(frozen=True)
class MeanCI:
    """A sample mean with a two-sided confidence interval."""

    mean: float
    half_width: float
    confidence: float
    n: int

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    def __str__(self) -> str:
        return f"{self.mean:.4g} ± {self.half_width:.2g}"


def mean_ci(samples: Sequence[float], *, confidence: float = 0.95) -> MeanCI:
    """Sample mean with a Student-t confidence interval.

    A single sample yields a zero-width interval (there is nothing to
    estimate spread from, and callers shouldn't crash on smoke runs).
    """
    if not (0 < confidence < 1):
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    arr = np.asarray(list(samples), dtype=float)
    if arr.size == 0:
        raise ValueError("need at least one sample")
    mean = float(arr.mean())
    if arr.size == 1:
        return MeanCI(mean=mean, half_width=0.0, confidence=confidence, n=1)
    sem = float(arr.std(ddof=1) / math.sqrt(arr.size))
    t_crit = float(_scipy_stats.t.ppf((1 + confidence) / 2, arr.size - 1))
    return MeanCI(
        mean=mean,
        half_width=t_crit * sem,
        confidence=confidence,
        n=int(arr.size),
    )


def geometric_mean(samples: Sequence[float]) -> float:
    """Geometric mean — the right average for ratio-to-LB samples."""
    arr = np.asarray(list(samples), dtype=float)
    if arr.size == 0:
        raise ValueError("need at least one sample")
    if np.any(arr <= 0):
        raise ValueError("geometric mean needs positive samples")
    return float(np.exp(np.log(arr).mean()))
