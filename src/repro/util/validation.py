"""Common argument-checking helpers.

These raise :class:`ValueError`/:class:`TypeError` with uniform messages so
call sites stay one-liners and tests can assert on behaviour consistently.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


def check_positive(name: str, value: float, *, allow_zero: bool = False) -> float:
    """Validate that ``value`` is a positive (or non-negative) finite number."""
    value = float(value)
    if not np.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value!r}")
    if allow_zero:
        if value < 0:
            raise ValueError(f"{name} must be >= 0, got {value!r}")
    elif value <= 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def check_probability(name: str, value: float) -> float:
    """Validate that ``value`` lies in [0, 1]."""
    value = float(value)
    if not (0.0 <= value <= 1.0):
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return value


def check_square_matrix(
    name: str,
    matrix,
    *,
    min_size: int = 1,
    nonnegative: bool = False,
    zero_diagonal: Optional[bool] = None,
) -> np.ndarray:
    """Validate and coerce ``matrix`` into a square float ndarray.

    Parameters
    ----------
    min_size:
        Minimum allowed dimension.
    nonnegative:
        Require every entry to be ``>= 0``.
    zero_diagonal:
        If True, require a zero diagonal; if False, skip the check; ``None``
        also skips (kept as an explicit tri-state for call-site readability).
    """
    arr = np.asarray(matrix, dtype=float)
    if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
        raise ValueError(f"{name} must be a square matrix, got shape {arr.shape}")
    if arr.shape[0] < min_size:
        raise ValueError(
            f"{name} must be at least {min_size}x{min_size}, got {arr.shape[0]}"
        )
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} must contain only finite values")
    if nonnegative and np.any(arr < 0):
        raise ValueError(f"{name} must be non-negative")
    if zero_diagonal and np.any(np.diagonal(arr) != 0):
        raise ValueError(f"{name} must have a zero diagonal")
    return arr


def check_index(name: str, value: int, size: int) -> int:
    """Validate that ``value`` is a valid index into a size-``size`` range."""
    value = int(value)
    if not (0 <= value < size):
        raise ValueError(f"{name} must be in [0, {size}), got {value}")
    return value
