"""Placement optimisation over total-exchange patterns.

A placement is a permutation: ``placement[rank]`` is the physical node
running logical rank ``rank``.  The pattern's size matrix is expressed
between logical ranks; applying a placement moves each message onto the
corresponding physical pair, and the usual machinery (cost matrix,
scheduler, lower bound) prices the result.

Objectives: ``"lower_bound"`` (fast, scheduler-independent — the busiest
physical port) or ``"openshop"`` (the achieved completion time of the
open shop schedule).  Optimisers: random search and first-improvement
pairwise-swap hill climbing (the standard QAP-style local search; the
placement problem is a quadratic assignment problem, so exactness is out
of reach and local search is the classical tool).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.openshop import schedule_openshop
from repro.core.problem import TotalExchangeProblem
from repro.directory.service import DirectorySnapshot
from repro.util.rng import RngLike, to_rng


def apply_placement(
    sizes: np.ndarray, placement: Sequence[int]
) -> np.ndarray:
    """Physical-pair size matrix of a pattern under ``placement``.

    ``result[placement[a], placement[b]] = sizes[a, b]``.
    """
    sizes = np.asarray(sizes, dtype=float)
    n = sizes.shape[0]
    placement = np.asarray(placement, dtype=int)
    if sorted(placement.tolist()) != list(range(n)):
        raise ValueError("placement must be a permutation of the nodes")
    physical = np.zeros_like(sizes)
    physical[np.ix_(placement, placement)] = sizes
    return physical


def evaluate_placement(
    snapshot: DirectorySnapshot,
    sizes: np.ndarray,
    placement: Sequence[int],
    *,
    objective: str = "lower_bound",
) -> float:
    """Score a placement (lower is better)."""
    return _score(snapshot, sizes, placement, objective)[0]


def _score(
    snapshot: DirectorySnapshot,
    sizes: np.ndarray,
    placement: Sequence[int],
    objective: str,
) -> Tuple[float, float]:
    """``(objective value, total port time)`` for a placement.

    The second component breaks plateaus during local search: the
    lower-bound objective is a max over ports and stays flat until the
    *last* misplaced pair is fixed, so hill climbing needs the total
    traffic time as a gradient toward the cliff edge.
    """
    problem = TotalExchangeProblem.from_snapshot(
        snapshot, apply_placement(sizes, placement)
    )
    total = float(problem.cost.sum())
    if objective == "lower_bound":
        return problem.lower_bound(), total
    if objective == "openshop":
        return schedule_openshop(problem).completion_time, total
    raise ValueError(
        f"objective must be 'lower_bound' or 'openshop', got {objective!r}"
    )


@dataclass(frozen=True)
class PlacementResult:
    """Outcome of a placement optimisation."""

    placement: Tuple[int, ...]
    score: float
    identity_score: float
    evaluations: int

    @property
    def improvement(self) -> float:
        """Fractional score reduction over the identity placement."""
        if self.identity_score == 0:
            return 0.0
        return 1.0 - self.score / self.identity_score


def random_search_placement(
    snapshot: DirectorySnapshot,
    sizes: np.ndarray,
    *,
    trials: int = 100,
    objective: str = "lower_bound",
    rng: RngLike = None,
) -> PlacementResult:
    """Best of ``trials`` random permutations (plus the identity)."""
    if trials < 0:
        raise ValueError(f"trials must be >= 0, got {trials}")
    rng = to_rng(rng)
    n = snapshot.num_procs
    identity = list(range(n))
    best = identity
    identity_score = evaluate_placement(
        snapshot, sizes, identity, objective=objective
    )
    best_score = identity_score
    evaluations = 1
    for _ in range(trials):
        candidate = rng.permutation(n).tolist()
        score = evaluate_placement(
            snapshot, sizes, candidate, objective=objective
        )
        evaluations += 1
        if score < best_score:
            best, best_score = candidate, score
    return PlacementResult(
        placement=tuple(best),
        score=best_score,
        identity_score=identity_score,
        evaluations=evaluations,
    )


def greedy_swap_placement(
    snapshot: DirectorySnapshot,
    sizes: np.ndarray,
    *,
    start: Optional[Sequence[int]] = None,
    max_passes: int = 4,
    objective: str = "lower_bound",
) -> PlacementResult:
    """First-improvement pairwise-swap hill climbing.

    Starts from ``start`` (default: identity) and repeatedly swaps two
    ranks' nodes whenever that lowers the objective, up to ``max_passes``
    full sweeps or a local optimum.
    """
    if max_passes < 0:
        raise ValueError(f"max_passes must be >= 0, got {max_passes}")
    n = snapshot.num_procs
    current: List[int] = list(start) if start is not None else list(range(n))
    identity_score = evaluate_placement(
        snapshot, sizes, list(range(n)), objective=objective
    )
    best_key = _score(snapshot, sizes, current, objective)
    evaluations = 2
    for _ in range(max_passes):
        improved = False
        for a in range(n):
            for b in range(a + 1, n):
                current[a], current[b] = current[b], current[a]
                key = _score(snapshot, sizes, current, objective)
                evaluations += 1
                accept = key[0] < best_key[0] - 1e-12 or (
                    key[0] <= best_key[0] + 1e-12
                    and key[1] < best_key[1] - 1e-12
                )
                if accept:
                    best_key = key
                    improved = True
                else:
                    current[a], current[b] = current[b], current[a]
        if not improved:
            break
    return PlacementResult(
        placement=tuple(current),
        score=best_key[0],
        identity_score=identity_score,
        evaluations=evaluations,
    )
