"""Process placement: mapping logical ranks onto heterogeneous nodes.

The paper's schedulers adapt the communication *order* to the network;
the MSHN project it belongs to also studies adapting the *mapping* of
work to machines.  This package optimises which physical node runs each
logical rank of a communication pattern: on a clustered metacomputer,
placing heavily-communicating rank pairs inside the same site routinely
beats any amount of clever ordering across a slow backbone.
"""

from repro.placement.optimize import (
    PlacementResult,
    apply_placement,
    evaluate_placement,
    greedy_swap_placement,
    random_search_placement,
)

__all__ = [
    "PlacementResult",
    "apply_placement",
    "evaluate_placement",
    "greedy_swap_placement",
    "random_search_placement",
]
