"""Typed sync client and the load generator for the scheduler daemon.

:class:`DaemonClient` is a thin blocking wrapper over one socket: it
frames requests, parses responses into the protocol dataclasses, and
turns admission-control rejections into values (never exceptions) so
callers can implement their own backoff.

:class:`LoadGenerator` is the closed-loop driver CI and the bench use:
``tenants`` simulated clients drawn from a small number of *cohorts*
(same procs/seed/specs), so the daemon's same-digest batching has
cross-tenant hits to find, issuing schedule requests as fast as the
daemon answers and honouring every ``retry_after_s`` hint.  Its
:class:`LoadReport` is the contract the acceptance bar checks: requests
per second, latency percentiles, and the guarantee that every rejection
carried a retry hint (``dropped == 0``).
"""

from __future__ import annotations

import socket
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.serve import protocol
from repro.serve.protocol import (
    DrainResponse,
    ErrorResponse,
    HelloResponse,
    OpenResponse,
    ScheduleResponse,
    SnapshotResponse,
    StatsResponse,
    encode_message,
)


class DaemonClient:
    """Blocking line-protocol client for one daemon connection.

    ``address`` is a unix-socket path (str) or a ``(host, port)`` tuple.
    """

    def __init__(self, address: Any, *, timeout_s: float = 10.0):
        self.address = address
        if isinstance(address, str):
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        else:
            self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            address = tuple(address)
        self._sock.settimeout(timeout_s)
        self._sock.connect(address)
        self._buffer = bytearray()

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "DaemonClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- framing ------------------------------------------------------------

    def _read_line(self) -> bytes:
        while True:
            newline = self._buffer.find(b"\n")
            if newline >= 0:
                line = bytes(self._buffer[:newline])
                del self._buffer[: newline + 1]
                return line
            chunk = self._sock.recv(65536)
            if chunk == b"":
                raise ConnectionError("daemon closed the connection")
            self._buffer.extend(chunk)

    def call(self, request: Any) -> Any:
        """Send one request, return the decoded response dataclass."""
        self._sock.sendall(encode_message(request))
        return protocol.decode_response(self._read_line())

    def send(self, request: Any) -> None:
        """Fire one request without waiting (pipelining); pair with
        :meth:`recv` — responses arrive in request order."""
        self._sock.sendall(encode_message(request))

    def recv(self) -> Any:
        """Read the next pipelined response."""
        return protocol.decode_response(self._read_line())

    def send_raw(self, line: bytes) -> Any:
        """Send a raw frame (fuzzing hook); returns the decoded response."""
        if not line.endswith(b"\n"):
            line += b"\n"
        self._sock.sendall(line)
        return protocol.decode_response(self._read_line())

    # -- typed helpers ------------------------------------------------------

    def hello(self) -> HelloResponse:
        return self._expect(protocol.HelloRequest(), HelloResponse)

    def open(
        self,
        tenant: str,
        *,
        procs: int = 8,
        scheduler: str = "openshop",
        directory: str = "drift:sigma=0.02",
        workload: str = "mixed",
        seed: int = 0,
        policy: Optional[Dict[str, Any]] = None,
    ) -> OpenResponse:
        return self._expect(
            protocol.OpenRequest(
                tenant=tenant,
                procs=procs,
                scheduler=scheduler,
                directory=directory,
                workload=workload,
                seed=seed,
                policy=dict(policy or {}),
            ),
            OpenResponse,
        )

    def schedule(self, tenant: str, *, dt: float = 1.0) -> Any:
        """One scheduling decision.

        Returns a :class:`ScheduleResponse`, or an :class:`ErrorResponse`
        (``saturated``/``draining``/...) — rejections are values here, not
        exceptions, so callers drive their own backoff.
        """
        response = self.call(protocol.ScheduleRequest(tenant=tenant, dt=dt))
        if not isinstance(response, (ScheduleResponse, ErrorResponse)):
            raise ConnectionError(
                f"unexpected response {type(response).__name__}"
            )
        return response

    def stats(self) -> Dict[str, Any]:
        return self._expect(protocol.StatsRequest(), StatsResponse).stats

    def snapshot(self, path: str = "") -> SnapshotResponse:
        return self._expect(
            protocol.SnapshotRequest(path=path), SnapshotResponse
        )

    def drain(self, path: str = "") -> DrainResponse:
        return self._expect(protocol.DrainRequest(path=path), DrainResponse)

    def shutdown(self) -> Any:
        return self.call(protocol.ShutdownRequest())

    def _expect(self, request: Any, cls: type) -> Any:
        response = self.call(request)
        if isinstance(response, ErrorResponse):
            raise RuntimeError(
                f"daemon error [{response.code}]: {response.message}"
            )
        if not isinstance(response, cls):
            raise ConnectionError(
                f"expected {cls.__name__}, got {type(response).__name__}"
            )
        return response


@dataclass
class LoadReport:
    """What one load-generation run measured."""

    duration_s: float
    tenants: int
    cohorts: int
    requests: int
    accepted: int
    retried: int
    dropped: int  #: rejections WITHOUT a retry_after hint — must be 0
    errors: int
    requests_per_s: float
    decision_p50_s: float
    decision_p99_s: float
    latency_p50_s: float
    latency_p99_s: float
    decisions: Dict[str, int] = field(default_factory=dict)
    batched: int = 0
    cache_hits: int = 0
    backpressured: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "duration_s": self.duration_s,
            "tenants": self.tenants,
            "cohorts": self.cohorts,
            "requests": self.requests,
            "accepted": self.accepted,
            "retried": self.retried,
            "dropped": self.dropped,
            "errors": self.errors,
            "requests_per_s": self.requests_per_s,
            "decision_p50_s": self.decision_p50_s,
            "decision_p99_s": self.decision_p99_s,
            "latency_p50_s": self.latency_p50_s,
            "latency_p99_s": self.latency_p99_s,
            "decisions": dict(self.decisions),
            "batched": self.batched,
            "cache_hits": self.cache_hits,
            "backpressured": self.backpressured,
        }


def _percentile(samples: Sequence[float], q: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(
        len(ordered) - 1, max(0, round(q / 100.0 * (len(ordered) - 1)))
    )
    return ordered[index]


class LoadGenerator:
    """Closed-loop multi-tenant load against one daemon.

    ``tenants`` ids are spread over ``cohorts`` identical profiles
    (procs/scheduler/directory/workload/seed all shared within a
    cohort), so concurrent same-cohort requests share a planning-problem
    digest and exercise the daemon's cross-tenant batching.
    """

    def __init__(
        self,
        address: Any,
        *,
        tenants: int = 100,
        cohorts: int = 16,
        procs: int = 6,
        scheduler: str = "openshop",
        directory: str = "drift:sigma=0.02",
        workload: str = "mixed",
        workloads: Optional[Sequence[str]] = None,
        connections: int = 4,
        dt: float = 1.0,
        timeout_s: float = 30.0,
    ):
        if tenants < 1:
            raise ValueError(f"tenants must be >= 1, got {tenants}")
        if cohorts < 1 or cohorts > tenants:
            raise ValueError(
                f"cohorts must be in [1, {tenants}], got {cohorts}"
            )
        if workloads is not None and len(workloads) != cohorts:
            raise ValueError(
                f"workloads must have one spec per cohort "
                f"({cohorts}), got {len(workloads)}"
            )
        self.address = address
        self.num_tenants = tenants
        self.cohorts = cohorts
        self.procs = procs
        self.scheduler = scheduler
        self.directory = directory
        #: Per-cohort workload specs (heavy-tail tenant mixes); falls
        #: back to the single shared ``workload`` spec.
        self.workloads = list(workloads) if workloads is not None else None
        self.workload = workload
        self.connections = max(1, min(connections, tenants))
        self.dt = dt
        self.timeout_s = timeout_s

    def workload_for(self, cohort: int) -> str:
        if self.workloads is not None:
            return self.workloads[cohort]
        return self.workload

    def tenant_ids(self) -> List[str]:
        return [f"t-{index:04d}" for index in range(self.num_tenants)]

    def open_all(self) -> None:
        """Open every tenant session (idempotent)."""
        with DaemonClient(self.address, timeout_s=self.timeout_s) as client:
            for index, tenant in enumerate(self.tenant_ids()):
                cohort = index % self.cohorts
                client.open(
                    tenant,
                    procs=self.procs,
                    scheduler=self.scheduler,
                    directory=self.directory,
                    workload=self.workload_for(cohort),
                    seed=cohort,
                )

    def run(
        self,
        duration_s: float = 10.0,
        *,
        max_requests: Optional[int] = None,
        open_first: bool = True,
    ) -> LoadReport:
        """Drive closed-loop load for ``duration_s`` (or ``max_requests``).

        Round-robins tenants across a few persistent connections; a
        ``saturated`` response sleeps the advertised ``retry_after_s``
        and retries the same tenant, so every admission-control
        rejection is observed and honoured, never silently dropped.
        """
        if open_first:
            self.open_all()
        clients = [
            DaemonClient(self.address, timeout_s=self.timeout_s)
            for _ in range(self.connections)
        ]
        # Same-cohort tenants are issued as one pipelined burst so their
        # same-digest requests sit in the daemon's queue together — that
        # is what cross-tenant batching feeds on.  Bursting also keeps a
        # cohort's clocks in lockstep (every member sees every round).
        cohort_members: List[List[str]] = [[] for _ in range(self.cohorts)]
        for index, tenant in enumerate(self.tenant_ids()):
            cohort_members[index % self.cohorts].append(tenant)
        requests = accepted = retried = dropped = errors = 0
        batched = cache_hits = backpressured = 0
        decisions: Dict[str, int] = {}
        decision_latencies: List[float] = []
        wire_latencies: List[float] = []
        started = time.monotonic()
        deadline = started + duration_s
        round_index = 0
        try:
            while time.monotonic() < deadline:
                if max_requests is not None and requests >= max_requests:
                    break
                cohort = round_index % self.cohorts
                client = clients[round_index % len(clients)]
                round_index += 1
                pending = list(cohort_members[cohort])
                while pending:
                    burst_started = time.monotonic()
                    for tenant in pending:
                        client.send(
                            protocol.ScheduleRequest(
                                tenant=tenant, dt=self.dt
                            )
                        )
                    requests += len(pending)
                    rejected: List[str] = []
                    retry_hint = 0.0
                    for tenant in pending:
                        response = client.recv()
                        wire_latencies.append(
                            time.monotonic() - burst_started
                        )
                        if isinstance(response, ErrorResponse):
                            if response.retry_after_s is None:
                                dropped += 1
                            elif response.code == "saturated":
                                retried += 1
                                rejected.append(tenant)
                                retry_hint = max(
                                    retry_hint, response.retry_after_s
                                )
                            else:
                                errors += 1
                            continue
                        accepted += 1
                        decisions[response.decision] = (
                            decisions.get(response.decision, 0) + 1
                        )
                        decision_latencies.append(
                            response.decision_latency_s
                        )
                        if response.batched:
                            batched += 1
                        if response.cache_hit:
                            cache_hits += 1
                        if response.backpressure:
                            backpressured += 1
                    pending = rejected
                    if pending:
                        # Honour the hint so rejected members catch the
                        # cohort back up instead of being dropped.
                        time.sleep(min(retry_hint or 0.01, 0.25))
                    if max_requests is not None and requests >= max_requests:
                        break
        finally:
            for client in clients:
                client.close()
        elapsed = max(time.monotonic() - started, 1e-9)
        return LoadReport(
            duration_s=elapsed,
            tenants=self.num_tenants,
            cohorts=self.cohorts,
            requests=requests,
            accepted=accepted,
            retried=retried,
            dropped=dropped,
            errors=errors,
            requests_per_s=accepted / elapsed,
            decision_p50_s=_percentile(decision_latencies, 50.0),
            decision_p99_s=_percentile(decision_latencies, 99.0),
            latency_p50_s=_percentile(wire_latencies, 50.0),
            latency_p99_s=_percentile(wire_latencies, 99.0),
            decisions=decisions,
            batched=batched,
            cache_hits=cache_hits,
            backpressured=backpressured,
        )
