"""Session snapshot + restore for graceful drain/restart.

:func:`session_state` captures everything an
:class:`~repro.runtime.session.AdaptiveSession` needs to keep making
the *same* decisions after a process boundary: the active plan (orders,
basis cost, predicted makespan, repairable event schedule), the policy
counters (tick index, reuse streak, plan age), and the fault-tracking
state (declared-dead link mask, last fault-scan time, faults already
counted).  :func:`restore_session_state` writes that state back into a
freshly constructed session.

What is deliberately *not* snapshot:

* **The schedule cache.**  Schedulers are deterministic, so a restarted
  daemon recomputes exactly what the cache held; only the first tick
  after restart pays the recompute.  Bit-identity of *decisions* is
  preserved — ``cache_hit`` flags on the first post-restart ticks are
  the one legitimate difference, and the drain/restart test compares
  decisions/makespans/digests, never ``cache_hit``.
* **The directory.**  The daemon records the directory's clock and the
  spec it was built from; restore rebuilds the directory and advances
  it to the recorded time.  This is bit-exact for the time-deterministic
  flavours (``static``, ``gusto``, ``drift``, ``dynamics``, trace
  replay) which is why the daemon defaults tenants to ``drift``.
  ``noisy``/``perturb`` directories draw from an RNG on every query and
  cannot be resumed bit-identically — the daemon refuses to snapshot
  such tenants rather than silently diverge.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

import numpy as np

from repro.io.serialize import schedule_from_dict, schedule_to_dict
from repro.runtime.session import AdaptiveSession, _Plan

#: Format tag written into every state payload.
STATE_FORMAT = "repro/session-state"
STATE_VERSION = 1


def _plan_state(plan: Optional[_Plan]) -> Optional[Dict[str, Any]]:
    if plan is None:
        return None
    return {
        "orders": [list(map(int, order)) for order in plan.orders],
        "basis_cost": np.asarray(plan.basis_cost, dtype=float).tolist(),
        "predicted_makespan": float(plan.predicted_makespan),
        "schedule": (
            schedule_to_dict(plan.schedule)
            if plan.schedule is not None
            else None
        ),
    }


def _plan_from_state(state: Optional[Dict[str, Any]]) -> Optional[_Plan]:
    if state is None:
        return None
    return _Plan(
        orders=[list(map(int, order)) for order in state["orders"]],
        basis_cost=np.asarray(state["basis_cost"], dtype=float),
        predicted_makespan=float(state["predicted_makespan"]),
        schedule=(
            schedule_from_dict(state["schedule"])
            if state.get("schedule") is not None
            else None
        ),
    )


def _fault_state(fault: Any) -> Dict[str, Any]:
    # Fault is a frozen dataclass of JSON scalars; keep only non-defaults
    # compact is not worth it — dump all fields for unambiguous restore.
    return {
        "kind": fault.kind,
        "at": fault.at,
        "src": fault.src,
        "dst": fault.dst,
        "node": fault.node,
        "duration": fault.duration,
        "factor": fault.factor,
        "at_event": fault.at_event,
        "symmetric": fault.symmetric,
    }


def _fault_from_state(state: Dict[str, Any]) -> Any:
    from repro.faults.models import Fault

    return Fault(**state)


def session_state(session: AdaptiveSession) -> Dict[str, Any]:
    """Serialize the mutable state of ``session`` to a JSON-safe dict."""
    last_scan = session._last_fault_scan
    return {
        "format": STATE_FORMAT,
        "version": STATE_VERSION,
        "tick_index": session._tick_index,
        "reuse_streak": session._reuse_streak,
        "ticks_since_reschedule": session._ticks_since_reschedule,
        "plan": _plan_state(session._plan),
        "declared_dead": np.asarray(
            session._declared_dead, dtype=bool
        ).tolist(),
        # -inf (never scanned) is not valid JSON; encode as None.
        "last_fault_scan": (
            None if last_scan == float("-inf") else float(last_scan)
        ),
        "seen_faults": sorted(
            (_fault_state(fault) for fault in session._seen_faults),
            key=lambda f: (f["kind"], f["at"], str(f)),
        ),
        "last_schedule": (
            schedule_to_dict(session.last_schedule)
            if session.last_schedule is not None
            else None
        ),
    }


def restore_session_state(
    session: AdaptiveSession, state: Dict[str, Any]
) -> AdaptiveSession:
    """Write a :func:`session_state` payload back into ``session``.

    ``session`` must have been constructed with the same problem shape
    (procs, scheduler, policy) it was snapshot with; the caller — the
    daemon's tenant layer — guarantees that by rebuilding from the same
    :class:`~repro.serve.tenants.TenantProfile`.
    """
    if state.get("format") != STATE_FORMAT:
        raise ValueError(
            f"not a session-state payload: format={state.get('format')!r}"
        )
    if state.get("version") != STATE_VERSION:
        raise ValueError(
            f"session-state version {state.get('version')!r} unsupported "
            f"(expected {STATE_VERSION})"
        )
    session._tick_index = int(state["tick_index"])
    session._reuse_streak = int(state["reuse_streak"])
    session._ticks_since_reschedule = int(state["ticks_since_reschedule"])
    session._plan = _plan_from_state(state.get("plan"))
    declared = np.asarray(state["declared_dead"], dtype=bool)
    if declared.shape != session._declared_dead.shape:
        raise ValueError(
            f"declared_dead shape {declared.shape} does not match the "
            f"session's {session._declared_dead.shape} — wrong procs?"
        )
    session._declared_dead = declared
    last_scan = state.get("last_fault_scan")
    session._last_fault_scan = (
        float("-inf") if last_scan is None else float(last_scan)
    )
    session._seen_faults = {
        _fault_from_state(fault) for fault in state.get("seen_faults", [])
    }
    last_schedule = state.get("last_schedule")
    session.last_schedule = (
        schedule_from_dict(last_schedule) if last_schedule is not None else None
    )
    return session
