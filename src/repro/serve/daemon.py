"""The scheduler daemon: many tenants, one event loop, one socket.

:class:`SchedulerDaemon` multiplexes every tenant's
:class:`~repro.runtime.session.AdaptiveSession` over a line-delimited
JSON protocol (:mod:`repro.serve.protocol`) on a unix socket (TCP
optional).  The loop is deliberately single-threaded: scheduling work
is CPU-bound and shares the cache shards, so a second thread would buy
contention, not throughput — concurrency comes from the bounded queue
and batching instead.

Load-shedding story, in order:

1. **Admission control.**  ``schedule`` requests enter a bounded queue;
   when it is full the daemon answers ``error/saturated`` with a
   ``retry_after_s`` hint instead of queueing unboundedly.  Control
   requests (hello/stats/drain/...) bypass the queue.
2. **Backpressure signalling.**  Every ``scheduled`` response carries
   the queue depth and a ``backpressure`` flag once the queue crosses
   the high watermark, so well-behaved clients slow down *before*
   hitting admission control.
3. **Cross-tenant batching.**  Queued requests are drained in batches
   and grouped by planning-problem digest: tenants in the same cohort
   (same specs, same seed, same clock) need the same schedule, so one
   leader computes it and donates it to every follower's cache shard —
   N scheduler invocations become 1 + (N-1) cache hits.

Drain/restart: ``drain`` stops admission, flushes the queue, then
snapshots every tenant (:mod:`repro.serve.state`) to a JSON state file;
a new daemon started with ``resume_from`` rebuilds each tenant and
continues its session bit-identically (decisions, makespans, digests —
the cache is recomputed, not restored).
"""

from __future__ import annotations

import json
import os
import selectors
import socket
import time
from collections import deque
from dataclasses import dataclass
from threading import Event
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.ops.backup import BackupManager
from repro.ops.sink import MetricsSink, MultiSink, StoreSink
from repro.ops.store import MetricsStore
from repro.runtime.metrics import RuntimeMetrics
from repro.serve import protocol
from repro.serve.protocol import (
    DrainRequest,
    DrainResponse,
    ErrorResponse,
    HelloRequest,
    HelloResponse,
    OpenRequest,
    OpenResponse,
    ProtocolError,
    ScheduleRequest,
    ScheduleResponse,
    ShutdownRequest,
    ShutdownResponse,
    SnapshotRequest,
    SnapshotResponse,
    StatsRequest,
    StatsResponse,
    encode_message,
)
from repro.serve.tenants import ShardedScheduleCache, TenantProfile, TenantState

#: Format tag of the daemon's drain/snapshot state file.
DAEMON_STATE_FORMAT = "repro/daemon-state"


@dataclass
class DaemonConfig:
    """Tuning knobs for one daemon instance."""

    #: Unix socket path.  Empty + ``port`` set -> TCP instead.
    socket_path: str = ""
    #: TCP bind host (used only when ``socket_path`` is empty).
    host: str = "127.0.0.1"
    #: TCP port (0 = ephemeral; read the bound port off ``address``).
    port: int = 0
    #: Bounded request-queue capacity (admission control beyond this).
    max_queue: int = 256
    #: Queue fill fraction above which responses flag backpressure.
    high_watermark: float = 0.75
    #: Backoff hint attached to saturated/draining rejections.
    retry_after_s: float = 0.05
    #: Max schedule requests drained per batching round.
    batch_max: int = 64
    #: Cache shards (tenants hash onto these).
    cache_shards: int = 8
    #: LRU capacity of each shard.
    cache_maxsize_per_shard: int = 256
    #: Default drain/snapshot target.
    state_file: str = ""
    #: Resume source: a state file written by a previous drain.
    resume_from: str = ""
    #: Selector poll timeout.
    poll_interval_s: float = 0.05
    #: Ops directory: when set, the daemon persists its publish stream
    #: into a rotating JSONL store at ``<ops_dir>/store`` and writes a
    #: verified state backup to ``<ops_dir>/backups`` on every
    #: snapshot/drain.
    ops_dir: str = ""
    #: How many state backups ``<ops_dir>/backups`` retains.
    backup_retention: int = 5


class _Connection:
    """Per-client buffers."""

    __slots__ = ("sock", "inbuf", "outbuf", "closing")

    def __init__(self, sock: socket.socket):
        self.sock = sock
        self.inbuf = bytearray()
        self.outbuf = bytearray()
        self.closing = False


class SchedulerDaemon:
    """A long-running multi-tenant scheduling service."""

    #: Counter names the daemon maintains (all present even when zero).
    COUNTER_NAMES = (
        "accepted",
        "served",
        "rejected_saturated",
        "rejected_draining",
        "protocol_errors",
        "internal_errors",
        "batched",
        "opened",
        "restored",
    )

    def __init__(
        self,
        config: Optional[DaemonConfig] = None,
        *,
        sink: Optional[MetricsSink] = None,
    ):
        self.config = config if config is not None else DaemonConfig()
        self.cache = ShardedScheduleCache(
            self.config.cache_shards,
            maxsize_per_shard=self.config.cache_maxsize_per_shard,
        )
        self.tenants: Dict[str, TenantState] = {}
        self._queue: Deque[Tuple[_Connection, ScheduleRequest]] = deque()
        self._selector: Optional[selectors.BaseSelector] = None
        self._listener: Optional[socket.socket] = None
        self._stop = False
        self.draining = False
        self.ready = Event()
        self.address: Any = None
        self._started_at = time.monotonic()
        # All daemon observability flows through MetricsSink: counters
        # and the decision-latency histogram aggregate in-memory in
        # ``self.metrics``; per-response/rejection records additionally
        # fan out to the caller's sink and — under ``--ops-dir`` — to
        # the rotating JSONL store.
        self.metrics = RuntimeMetrics()
        self.decision_latency = self.metrics.histogram(
            "decision_latency_s", keep=4096
        )
        self.store: Optional[MetricsStore] = None
        self.backups: Optional[BackupManager] = None
        external: list = []
        if sink is not None:
            external.append(sink)
        if self.config.ops_dir:
            ops_root = os.path.join(self.config.ops_dir, "store")
            self.store = MetricsStore(ops_root)
            external.append(
                StoreSink(self.store, source="daemon", kind="daemon.event")
            )
            self.backups = BackupManager(
                os.path.join(self.config.ops_dir, "backups"),
                retention=self.config.backup_retention,
            )
        self._emit_sink: Optional[MetricsSink] = (
            MultiSink(external) if external else None
        )
        self._counter_sink: MetricsSink = MultiSink([self.metrics] + external)
        for name in self.COUNTER_NAMES:
            self._counter_sink.counter(name)
        if self.config.resume_from:
            self._resume(self.config.resume_from)

    # -- metrics plumbing ---------------------------------------------------

    @property
    def counters(self) -> Dict[str, int]:
        """Counter values as one plain dict (reads only — increments go
        through the sink)."""
        return {
            name: self.metrics.counter(name).value
            for name in self.COUNTER_NAMES
        }

    def _count(self, name: str, amount: int = 1) -> None:
        self._counter_sink.counter(name).inc(amount)

    def _emit(self, record: Dict[str, Any]) -> None:
        if self._emit_sink is not None:
            record.setdefault("ts", time.time())
            self._emit_sink.emit(record)

    # -- lifecycle ----------------------------------------------------------

    def bind(self) -> Any:
        """Create the listening socket; returns the bound address."""
        if self._listener is not None:
            return self.address
        if self.config.socket_path:
            path = self.config.socket_path
            if os.path.exists(path):
                os.unlink(path)
            listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            listener.bind(path)
            self.address = path
        else:
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((self.config.host, self.config.port))
            self.address = listener.getsockname()
        listener.listen(128)
        listener.setblocking(False)
        self._listener = listener
        self._selector = selectors.DefaultSelector()
        self._selector.register(listener, selectors.EVENT_READ, None)
        self.ready.set()
        return self.address

    def request_stop(self) -> None:
        """Ask the event loop to exit after the current round."""
        self._stop = True

    def serve_forever(self) -> None:
        """Run the event loop until :meth:`request_stop` or ``shutdown``."""
        self.bind()
        assert self._selector is not None
        try:
            while not self._stop:
                events = self._selector.select(self.config.poll_interval_s)
                for key, _mask in events:
                    if key.data is None:
                        self._accept()
                    else:
                        self._service(key.data)
                self._process_queue()
        finally:
            self._shutdown_sockets()

    def _shutdown_sockets(self) -> None:
        if self._selector is not None:
            for key in list(self._selector.get_map().values()):
                conn = key.data
                try:
                    self._selector.unregister(key.fileobj)
                except (KeyError, ValueError):
                    pass
                if conn is not None:
                    conn.sock.close()
            self._selector.close()
            self._selector = None
        if self._listener is not None:
            self._listener.close()
            self._listener = None
        if self.config.socket_path and os.path.exists(self.config.socket_path):
            os.unlink(self.config.socket_path)
        if self._emit_sink is not None:
            self._emit_sink.flush()
        if self.store is not None:
            self.store.close()
        self.ready.clear()

    # -- socket plumbing ----------------------------------------------------

    def _accept(self) -> None:
        assert self._listener is not None and self._selector is not None
        try:
            sock, _addr = self._listener.accept()
        except BlockingIOError:
            return
        sock.setblocking(False)
        conn = _Connection(sock)
        self._selector.register(
            sock, selectors.EVENT_READ | selectors.EVENT_WRITE, conn
        )

    def _close(self, conn: _Connection) -> None:
        assert self._selector is not None
        try:
            self._selector.unregister(conn.sock)
        except (KeyError, ValueError):
            pass
        conn.sock.close()
        # Drop queued work from a vanished client.
        self._queue = deque(
            item for item in self._queue if item[0] is not conn
        )

    def _service(self, conn: _Connection) -> None:
        try:
            chunk = conn.sock.recv(65536)
        except BlockingIOError:
            chunk = None
        except OSError:
            self._close(conn)
            return
        if chunk == b"":
            self._close(conn)
            return
        if chunk:
            conn.inbuf.extend(chunk)
            if (
                len(conn.inbuf) > protocol.MAX_FRAME_BYTES
                and b"\n" not in conn.inbuf
            ):
                self._send(
                    conn,
                    ErrorResponse(
                        "malformed",
                        f"frame exceeds {protocol.MAX_FRAME_BYTES} bytes "
                        f"without a newline",
                    ),
                )
                conn.closing = True
                conn.inbuf.clear()
            while True:
                newline = conn.inbuf.find(b"\n")
                if newline < 0:
                    break
                line = bytes(conn.inbuf[:newline])
                del conn.inbuf[: newline + 1]
                if line.strip():
                    self._handle_line(conn, line)
        self._flush(conn)

    def _send(self, conn: _Connection, message: Any) -> None:
        conn.outbuf.extend(encode_message(message))

    def _flush(self, conn: _Connection) -> None:
        if not conn.outbuf:
            if conn.closing:
                self._close(conn)
            return
        try:
            sent = conn.sock.send(bytes(conn.outbuf))
            del conn.outbuf[:sent]
        except BlockingIOError:
            return
        except OSError:
            self._close(conn)
            return
        if conn.closing and not conn.outbuf:
            self._close(conn)

    # -- request handling ---------------------------------------------------

    def _handle_line(self, conn: _Connection, line: bytes) -> None:
        try:
            request = protocol.decode_request(line)
        except ProtocolError as exc:
            self._count("protocol_errors")
            self._send(conn, ErrorResponse(exc.code, str(exc)))
            return
        if isinstance(request, ScheduleRequest):
            self._admit(conn, request)
            return
        try:
            response = self._handle_control(request)
        except Exception as exc:  # noqa: BLE001 — serving must not die
            self._count("internal_errors")
            response = ErrorResponse(
                "internal", f"{type(exc).__name__}: {exc}"
            )
        self._send(conn, response)
        if isinstance(request, ShutdownRequest):
            conn.closing = True
            self._stop = True

    def _reject(self, conn: _Connection, code: str, message: str) -> None:
        """Admission rejection: counted, emitted, and always carrying a
        ``retry_after_s`` backoff hint."""
        self._count(f"rejected_{code}")
        self._emit({"kind": "daemon.reject", "code": code})
        self._send(
            conn,
            ErrorResponse(
                code, message, retry_after_s=self.config.retry_after_s
            ),
        )

    def _admit(self, conn: _Connection, request: ScheduleRequest) -> None:
        if self.draining:
            self._reject(
                conn,
                "draining",
                "daemon is draining; retry against the restarted instance",
            )
            return
        if len(self._queue) >= self.config.max_queue:
            self._reject(
                conn,
                "saturated",
                f"request queue full ({self.config.max_queue})",
            )
            return
        if request.tenant not in self.tenants:
            self._send(
                conn,
                ErrorResponse(
                    "unknown_tenant",
                    f"tenant {request.tenant!r} has no open session; "
                    f"send an 'open' request first",
                ),
            )
            return
        self._count("accepted")
        self._queue.append((conn, request))

    def _handle_control(self, request: Any) -> Any:
        if isinstance(request, HelloRequest):
            return HelloResponse(
                tenants=len(self.tenants),
                uptime_s=time.monotonic() - self._started_at,
                draining=self.draining,
            )
        if isinstance(request, OpenRequest):
            return self._open(request)
        if isinstance(request, StatsRequest):
            return StatsResponse(stats=self.stats())
        if isinstance(request, SnapshotRequest):
            path = request.path or self.config.state_file
            count = self._write_state(path)
            return SnapshotResponse(tenants=count, path=path)
        if isinstance(request, DrainRequest):
            self.draining = True
            flushed = len(self._queue)
            self._process_queue(flush_all=True)
            path = request.path or self.config.state_file
            count = self._write_state(path)
            return DrainResponse(tenants=count, path=path, flushed=flushed)
        if isinstance(request, ShutdownRequest):
            return ShutdownResponse(served=self.counters["served"])
        raise TypeError(f"unhandled request {type(request).__name__}")

    def _open(self, request: OpenRequest) -> Any:
        if self.draining:
            # A tenant opened after the drain snapshot would be silently
            # lost across the restart; reject it with the same backoff
            # hint every other admission rejection carries.
            self._count("rejected_draining")
            self._emit({"kind": "daemon.reject", "code": "draining"})
            return ErrorResponse(
                "draining",
                "daemon is draining; a tenant opened now would miss the "
                "state snapshot — open against the restarted instance",
                retry_after_s=self.config.retry_after_s,
            )
        existing = self.tenants.get(request.tenant)
        if existing is not None:
            return OpenResponse(
                tenant=request.tenant,
                procs=existing.profile.procs,
                tick=existing.session.tick_index,
                restored=existing.restored,
            )
        profile = TenantProfile(
            tenant=request.tenant,
            procs=request.procs,
            scheduler=request.scheduler,
            directory=request.directory,
            workload=request.workload,
            seed=request.seed,
            policy=dict(request.policy),
        )
        try:
            state = TenantState(
                profile, cache=self.cache.shard_for(request.tenant)
            )
        except (KeyError, ValueError, TypeError) as exc:
            return ErrorResponse(
                "malformed", f"cannot open tenant: {exc}"
            )
        self.tenants[request.tenant] = state
        self._count("opened")
        return OpenResponse(
            tenant=request.tenant, procs=state.directory.num_procs
        )

    # -- batched scheduling -------------------------------------------------

    def _process_queue(self, flush_all: bool = False) -> None:
        while self._queue:
            batch: List[Tuple[_Connection, ScheduleRequest]] = []
            while self._queue and len(batch) < self.config.batch_max:
                batch.append(self._queue.popleft())
            self._run_batch(batch)
            if not flush_all:
                break

    def _run_batch(
        self, batch: List[Tuple[_Connection, ScheduleRequest]]
    ) -> None:
        # Phase 1: advance every tenant's clock, probe the planning
        # problem where that is safe, and group by digest.
        groups: Dict[str, List[Tuple[_Connection, ScheduleRequest, Any]]] = {}
        singles: List[Tuple[_Connection, ScheduleRequest]] = []
        advanced: set = set()
        for conn, request in batch:
            state = self.tenants.get(request.tenant)
            if state is None:
                self._send(
                    conn,
                    ErrorResponse(
                        "unknown_tenant",
                        f"tenant {request.tenant!r} has no open session",
                    ),
                )
                continue
            if not state.batchable:
                singles.append((conn, request))
                continue
            # One tenant may appear twice in a batch; advance once per
            # queue entry, in order, exactly as sequential ticks would.
            if request.dt and request.tenant in advanced:
                # Second tick of the same tenant in one batch: run it
                # unbatched to keep per-tenant ordering trivially right.
                singles.append((conn, request))
                continue
            advanced.add(request.tenant)
            if request.dt:
                state.directory.advance(request.dt)
            problem = state.planning_problem()
            digest = state.planning_digest(problem)
            key = f"{digest}:{state.session.scheduler_name}"
            groups.setdefault(key, []).append((conn, request, problem))
        for members in groups.values():
            self._run_group(members)
        for conn, request in singles:
            self._respond_tick(
                conn, request, dt=request.dt, batched=False
            )

    def _run_group(
        self, members: List[Tuple[_Connection, ScheduleRequest, Any]]
    ) -> None:
        """Tick a same-digest cohort: leader computes, followers hit."""
        leader_conn, leader_req, leader_problem = members[0]
        batched = len(members) > 1
        self._respond_tick(leader_conn, leader_req, dt=0.0, batched=batched)
        plan = None
        if batched:
            leader_state = self.tenants[leader_req.tenant]
            plan = leader_state.lookup_plan(leader_problem)
        for conn, request, problem in members[1:]:
            state = self.tenants[request.tenant]
            if plan is not None:
                state.seed_plan(problem, plan)
                self._count("batched")
            self._respond_tick(conn, request, dt=0.0, batched=True)

    def _respond_tick(
        self,
        conn: _Connection,
        request: ScheduleRequest,
        *,
        dt: float,
        batched: bool,
    ) -> None:
        state = self.tenants[request.tenant]
        started = time.monotonic()
        try:
            result = state.session.tick(dt=dt)
        except Exception as exc:  # noqa: BLE001 — serving must not die
            self._count("internal_errors")
            self._send(
                conn,
                ErrorResponse("internal", f"{type(exc).__name__}: {exc}"),
            )
            self._flush(conn)
            return
        latency = time.monotonic() - started
        self.metrics.observe("decision_latency_s", latency)
        state.requests_served += 1
        self._count("served")
        event = result.event
        depth = len(self._queue)
        backpressure = (
            depth >= self.config.high_watermark * self.config.max_queue
        )
        self._send(
            conn,
            ScheduleResponse(
                tenant=request.tenant,
                tick=event.tick,
                decision=event.decision,
                predicted_s=event.predicted_makespan,
                executed_s=event.executed_makespan,
                regret_s=event.regret,
                cache_hit=event.cache_hit,
                fallback=event.fallback,
                batched=batched,
                decision_latency_s=latency,
                queue_depth=depth,
                backpressure=backpressure,
            ),
        )
        self._emit(
            {
                "kind": "daemon.response",
                "tenant": request.tenant,
                "tick": event.tick,
                "decision": event.decision,
                "fallback": event.fallback,
                "cache_hit": event.cache_hit,
                "batched": batched,
                "decision_latency_s": latency,
                "queue_depth": depth,
                "backpressure": backpressure,
            }
        )
        self._flush(conn)

    # -- state file ---------------------------------------------------------

    def state_payload(self) -> Dict[str, Any]:
        """The daemon's full resumable state as one JSON document (the
        same shape ``resume_from`` consumes and backups verify)."""
        return {
            "format": DAEMON_STATE_FORMAT,
            "version": 1,
            "tenants": [
                state.snapshot() for state in self.tenants.values()
            ],
        }

    def _write_state(self, path: str) -> int:
        if not path:
            raise ValueError(
                "no snapshot path: pass one in the request or set "
                "DaemonConfig.state_file"
            )
        payload = self.state_payload()
        tmp = f"{path}.tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        os.replace(tmp, path)
        if self.backups is not None:
            self.backups.write(payload)
        return len(self.tenants)

    def _resume(self, path: str) -> None:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        if payload.get("format") != DAEMON_STATE_FORMAT:
            raise ValueError(
                f"{path}: not a daemon state file "
                f"(format={payload.get('format')!r})"
            )
        for entry in payload.get("tenants", []):
            tenant = str(entry["profile"]["tenant"])
            self.tenants[tenant] = TenantState.restore(
                entry, cache=self.cache.shard_for(tenant)
            )
            self._count("restored")

    # -- introspection ------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        latency = {
            "count": self.decision_latency.count,
            "p50_s": self.decision_latency.percentile(50.0),
            "p99_s": self.decision_latency.percentile(99.0),
            "max_s": self.decision_latency.max or 0.0,
        }
        stats = {
            "tenants": len(self.tenants),
            "queue_depth": len(self._queue),
            "max_queue": self.config.max_queue,
            "draining": self.draining,
            "uptime_s": time.monotonic() - self._started_at,
            "counters": dict(self.counters),
            "cache": self.cache.stats(),
            "decision_latency": latency,
        }
        if self.store is not None:
            stats["ops"] = {
                "store": self.store.stats(),
                "backups": (
                    [str(p) for p in self.backups.paths()]
                    if self.backups is not None
                    else []
                ),
            }
        return stats
