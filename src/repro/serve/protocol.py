"""The daemon's wire protocol: versioned, strictly validated, one line
per message.

Every entry point — the CLI ``daemon`` subcommand, the daemon event
loop, the typed client, the load generator, tests and benches — speaks
exactly this protocol; there is no side-channel kwargs surface.  A
message is one JSON object on one ``\\n``-terminated line:

.. code-block:: json

    {"v": 1, "type": "schedule", "tenant": "t-17", "dt": 1.0}

Rules the codec enforces (and the fuzz tests pin):

* ``v`` must equal :data:`PROTOCOL_VERSION`.  Version skew is a clean
  ``error`` response with code ``"version"`` — never a crash, never a
  silent misparse.
* ``type`` selects one registered dataclass; unknown types, unknown
  fields, missing required fields and wrong field types each raise
  :class:`ProtocolError` with code ``"malformed"`` and a message naming
  the offending token.
* Frames above :data:`MAX_FRAME_BYTES` and frames that are not a single
  JSON object are rejected the same way, so a truncated or garbage line
  costs one error response and nothing else.

Responses mirror requests: every request type has a success response
type, and any failure is the single :class:`ErrorResponse` shape whose
``retry_after_s`` field carries the admission-control backoff hint
(``"saturated"`` / ``"draining"`` responses always set it — the load
generator's zero-dropped-without-retry-after contract keys on this).
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple, Type

#: The one protocol version this build speaks.
PROTOCOL_VERSION = 1

#: Hard cap on one frame's encoded size (prevents a hostile client from
#: ballooning the daemon's read buffer).
MAX_FRAME_BYTES = 1 << 20

#: Stable error codes (the client switches on these, so they are API).
ERROR_CODES = (
    "malformed",      # unparseable/oversized frame or bad field
    "version",        # v != PROTOCOL_VERSION
    "unknown_type",   # type not registered
    "unknown_tenant", # schedule for a tenant never opened
    "saturated",      # admission control: queue full (retry_after_s set)
    "draining",       # daemon is draining (retry_after_s set)
    "internal",       # handler raised; daemon kept serving
)


class ProtocolError(ValueError):
    """A frame the codec refuses, with a stable machine-readable code."""

    def __init__(self, code: str, message: str):
        if code not in ERROR_CODES:
            raise ValueError(f"unknown protocol error code {code!r}")
        super().__init__(message)
        self.code = code


# ---------------------------------------------------------------------------
# Message dataclasses.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class HelloRequest:
    """Handshake / liveness probe."""


@dataclass(frozen=True)
class OpenRequest:
    """Create (or re-attach to) one tenant's session.

    All configuration is spec strings in the :mod:`repro.util.spec`
    grammar — the same strings ``make_scheduler`` / ``make_directory``
    / ``make_workload_sizes`` accept everywhere else.
    """

    tenant: str
    procs: int = 8
    scheduler: str = "openshop"
    directory: str = "drift:sigma=0.02"
    workload: str = "mixed"
    seed: int = 0
    policy: Dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class ScheduleRequest:
    """Serve one total exchange for ``tenant`` (advance directory ``dt``)."""

    tenant: str
    dt: float = 1.0


@dataclass(frozen=True)
class StatsRequest:
    """Daemon-wide counters, queue state and per-shard cache stats."""


@dataclass(frozen=True)
class SnapshotRequest:
    """Write every tenant's session state to ``path`` (daemon keeps going)."""

    path: str = ""


@dataclass(frozen=True)
class DrainRequest:
    """Stop admitting, flush the queue, snapshot to ``path``."""

    path: str = ""


@dataclass(frozen=True)
class ShutdownRequest:
    """Stop the event loop after responding."""


@dataclass(frozen=True)
class HelloResponse:
    server: str = "repro-scheduler-daemon"
    tenants: int = 0
    uptime_s: float = 0.0
    draining: bool = False


@dataclass(frozen=True)
class OpenResponse:
    tenant: str
    procs: int
    tick: int = 0
    restored: bool = False


@dataclass(frozen=True)
class ScheduleResponse:
    """One scheduling decision, with the backpressure facet every
    response carries (``queue_depth`` / ``backpressure``)."""

    tenant: str
    tick: int
    decision: str
    predicted_s: float
    executed_s: float
    regret_s: float
    cache_hit: bool = False
    fallback: bool = False
    batched: bool = False
    decision_latency_s: float = 0.0
    queue_depth: int = 0
    backpressure: bool = False


@dataclass(frozen=True)
class StatsResponse:
    stats: Dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class SnapshotResponse:
    tenants: int
    path: str


@dataclass(frozen=True)
class DrainResponse:
    tenants: int
    path: str
    flushed: int = 0


@dataclass(frozen=True)
class ShutdownResponse:
    served: int = 0


@dataclass(frozen=True)
class ErrorResponse:
    """The one failure shape.  ``retry_after_s`` is the admission-control
    hint: set on every ``saturated``/``draining`` rejection, so a client
    can distinguish "back off and retry" from a hard error."""

    code: str
    message: str
    retry_after_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.code not in ERROR_CODES:
            raise ValueError(
                f"unknown error code {self.code!r}; known: {ERROR_CODES}"
            )


_REQUEST_TYPES: Dict[str, Type] = {
    "hello": HelloRequest,
    "open": OpenRequest,
    "schedule": ScheduleRequest,
    "stats": StatsRequest,
    "snapshot": SnapshotRequest,
    "drain": DrainRequest,
    "shutdown": ShutdownRequest,
}

_RESPONSE_TYPES: Dict[str, Type] = {
    "hello-ok": HelloResponse,
    "opened": OpenResponse,
    "scheduled": ScheduleResponse,
    "stats": StatsResponse,
    "snapshot-ok": SnapshotResponse,
    "drained": DrainResponse,
    "bye": ShutdownResponse,
    "error": ErrorResponse,
}

_TYPE_TAGS: Dict[Type, str] = {
    **{cls: tag for tag, cls in _REQUEST_TYPES.items()},
    **{cls: tag for tag, cls in _RESPONSE_TYPES.items()},
}


# ---------------------------------------------------------------------------
# Strict field validation.
# ---------------------------------------------------------------------------

_SCALARS = {str: "str", int: "int", float: "float", bool: "bool"}


def _check_field(tag: str, name: str, value: Any, annotation: Any) -> Any:
    """Validate one field value against its (simple) annotation.

    The protocol deliberately uses only ``str``/``int``/``float``/
    ``bool``/``dict`` and ``Optional[float]`` so validation stays exact:
    bools are not ints, ints promote to floats, nothing else coerces.
    """
    text = str(annotation)
    if "Optional" in text or "None" in text:
        if value is None:
            return None
        annotation = float if "float" in text else str
    if annotation in (float, "float"):
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ProtocolError(
                "malformed",
                f"field {name!r} of {tag!r} must be a number, "
                f"got {value!r}",
            )
        return float(value)
    if annotation in (int, "int"):
        if isinstance(value, bool) or not isinstance(value, int):
            raise ProtocolError(
                "malformed",
                f"field {name!r} of {tag!r} must be an int, got {value!r}",
            )
        return value
    if annotation in (bool, "bool"):
        if not isinstance(value, bool):
            raise ProtocolError(
                "malformed",
                f"field {name!r} of {tag!r} must be a bool, got {value!r}",
            )
        return value
    if annotation in (str, "str"):
        if not isinstance(value, str):
            raise ProtocolError(
                "malformed",
                f"field {name!r} of {tag!r} must be a string, "
                f"got {value!r}",
            )
        return value
    # Dict[str, Any] payloads (policy overrides, stats).
    if not isinstance(value, dict) or any(
        not isinstance(key, str) for key in value
    ):
        raise ProtocolError(
            "malformed",
            f"field {name!r} of {tag!r} must be a string-keyed object, "
            f"got {value!r}",
        )
    return value


def _decode(line: bytes | str, registry: Dict[str, Type], kind: str) -> Any:
    if isinstance(line, bytes):
        if len(line) > MAX_FRAME_BYTES:
            raise ProtocolError(
                "malformed",
                f"frame of {len(line)} bytes exceeds {MAX_FRAME_BYTES}",
            )
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError("malformed", f"frame is not UTF-8: {exc}")
    elif len(line) > MAX_FRAME_BYTES:
        raise ProtocolError(
            "malformed",
            f"frame of {len(line)} chars exceeds {MAX_FRAME_BYTES}",
        )
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError("malformed", f"frame is not valid JSON: {exc}")
    if not isinstance(payload, dict):
        raise ProtocolError(
            "malformed", f"frame must be a JSON object, got {type(payload).__name__}"
        )
    version = payload.pop("v", None)
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            "version",
            f"protocol version {version!r} unsupported; "
            f"this daemon speaks v{PROTOCOL_VERSION}",
        )
    tag = payload.pop("type", None)
    cls = registry.get(tag)
    if cls is None:
        raise ProtocolError(
            "unknown_type",
            f"unknown {kind} type {tag!r}; known: {', '.join(registry)}",
        )
    fields = {f.name: f for f in dataclasses.fields(cls)}
    unknown = sorted(set(payload) - set(fields))
    if unknown:
        raise ProtocolError(
            "malformed", f"unknown field(s) {unknown} for {kind} {tag!r}"
        )
    kwargs = {}
    for name, f in fields.items():
        if name in payload:
            kwargs[name] = _check_field(tag, name, payload[name], f.type)
        elif (
            f.default is dataclasses.MISSING
            and f.default_factory is dataclasses.MISSING
        ):
            raise ProtocolError(
                "malformed", f"{kind} {tag!r} requires field {name!r}"
            )
    try:
        return cls(**kwargs)
    except ValueError as exc:
        raise ProtocolError("malformed", str(exc))


def decode_request(line: bytes | str) -> Any:
    """One wire line -> a request dataclass (or :class:`ProtocolError`)."""
    return _decode(line, _REQUEST_TYPES, "request")


def decode_response(line: bytes | str) -> Any:
    """One wire line -> a response dataclass (or :class:`ProtocolError`)."""
    return _decode(line, _RESPONSE_TYPES, "response")


def encode_message(message: Any) -> bytes:
    """A request/response dataclass -> one ``\\n``-terminated wire line."""
    tag = _TYPE_TAGS.get(type(message))
    if tag is None:
        raise TypeError(
            f"{type(message).__name__} is not a protocol message"
        )
    payload = {"v": PROTOCOL_VERSION, "type": tag}
    payload.update(dataclasses.asdict(message))
    return (json.dumps(payload, separators=(",", ":")) + "\n").encode("utf-8")


def error_line(
    code: str, message: str, *, retry_after_s: Optional[float] = None
) -> bytes:
    """Shorthand: an encoded :class:`ErrorResponse` line."""
    return encode_message(
        ErrorResponse(code=code, message=message, retry_after_s=retry_after_s)
    )


def request_types() -> Tuple[str, ...]:
    """Registered request type tags (stable order)."""
    return tuple(_REQUEST_TYPES)
