"""Per-tenant state for the scheduler daemon.

A tenant is one client workload with its own session: a
:class:`TenantProfile` (pure spec strings — the same
:mod:`repro.util.spec` grammar every factory speaks) describes it, and
:class:`TenantState` owns the live
:class:`~repro.runtime.session.AdaptiveSession` built from it.

Cache isolation is per-shard, not per-tenant:
:class:`ShardedScheduleCache` hashes the tenant id onto a small fixed
set of :class:`~repro.perf.memo.ScheduleCache` shards, so a hot tenant
thrashing its shard cannot evict every other tenant's plans, while
tenants that share a shard *and* a problem digest still hit each
other's entries — which is exactly what cross-tenant batching exploits.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

import numpy as np

from repro.directory.factory import make_directory
from repro.model.messages import MixedSizes, UniformSizes
from repro.core.problem import TotalExchangeProblem
from repro.perf.memo import ScheduleCache, problem_digest
from repro.runtime.metrics import RuntimeMetrics
from repro.runtime.policy import PolicyConfig
from repro.runtime.session import AdaptiveSession
from repro.serve.state import restore_session_state, session_state
from repro.util.spec import parse_spec
from repro.workloads.mltraining import (
    allreduce_ring_sizes,
    parameter_server_sizes,
)

#: Directory flavours whose state is a pure function of (spec, seed,
#: time) — rebuilding and advancing to the recorded clock reproduces
#: them exactly, so their tenants survive drain/restart bit-identically.
RESUMABLE_FLAVOURS = frozenset(
    {"static", "gusto", "drift", "dynamics", "forecast"}
)

_WORKLOADS = ("mixed", "uniform", "ring", "ps")


def make_workload_sizes(
    spec: str, num_procs: int, *, rng: Any = None
) -> np.ndarray:
    """Build a ``[src, dst]`` byte-size matrix from a workload spec.

    The grammar is the shared ``name[:key=value,...]`` spec grammar:

    * ``mixed[:small_bytes=...,large_bytes=...,small_probability=...]``
      — the paper's random small/large mix (needs ``rng``).
    * ``uniform[:size_bytes=...]`` — every pair moves the same bytes.
    * ``ring[:block_bytes=...]`` — one ring all-reduce step
      (:func:`~repro.workloads.mltraining.allreduce_ring_sizes`).
    * ``ps[:block_bytes=...,servers=...]`` — parameter-server fan-in
      (:func:`~repro.workloads.mltraining.parameter_server_sizes`).
    """
    name, options = parse_spec(
        spec, known=_WORKLOADS, kind="workload spec", name_kind="workload"
    )
    if name == "mixed":
        return MixedSizes(**options).sizes(num_procs, rng=rng)
    if name == "uniform":
        return UniformSizes(**options).sizes(num_procs, rng=rng)
    if name == "ring":
        block = float(options.pop("block_bytes", 1 << 20))
        return allreduce_ring_sizes(num_procs, block, **options)
    block = float(options.pop("block_bytes", 1 << 20))
    return parameter_server_sizes(num_procs, block, **options)


@dataclass(frozen=True)
class TenantProfile:
    """Everything needed to (re)build one tenant's session, as specs."""

    tenant: str
    procs: int = 8
    scheduler: str = "openshop"
    directory: str = "drift:sigma=0.02"
    workload: str = "mixed"
    seed: int = 0
    policy: Dict[str, Any] = field(default_factory=dict)

    @property
    def directory_flavour(self) -> str:
        name, _ = parse_spec(self.directory, kind="directory spec")
        return name

    @property
    def resumable(self) -> bool:
        return self.directory_flavour in RESUMABLE_FLAVOURS

    def to_dict(self) -> Dict[str, Any]:
        return {
            "tenant": self.tenant,
            "procs": self.procs,
            "scheduler": self.scheduler,
            "directory": self.directory,
            "workload": self.workload,
            "seed": self.seed,
            "policy": dict(self.policy),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "TenantProfile":
        return cls(
            tenant=str(payload["tenant"]),
            procs=int(payload["procs"]),
            scheduler=str(payload["scheduler"]),
            directory=str(payload["directory"]),
            workload=str(payload["workload"]),
            seed=int(payload["seed"]),
            policy=dict(payload.get("policy", {})),
        )


class ShardedScheduleCache:
    """A fixed set of :class:`ScheduleCache` shards keyed by tenant id.

    The shard index is a stable CRC of the tenant string, so the same
    tenant always lands on the same shard — across connections and
    across daemon restarts.
    """

    def __init__(self, num_shards: int = 8, *, maxsize_per_shard: int = 256):
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        self.num_shards = int(num_shards)
        self._shards = [
            ScheduleCache(maxsize=maxsize_per_shard)
            for _ in range(self.num_shards)
        ]

    def shard_index(self, tenant: str) -> int:
        return zlib.crc32(tenant.encode("utf-8")) % self.num_shards

    def shard_for(self, tenant: str) -> ScheduleCache:
        return self._shards[self.shard_index(tenant)]

    def stats(self) -> Dict[str, Any]:
        per_shard = [shard.stats() for shard in self._shards]
        totals: Dict[str, Any] = {"shards": self.num_shards}
        for key in ("hits", "misses", "entries"):
            totals[key] = sum(int(s.get(key, 0)) for s in per_shard)
        lookups = totals["hits"] + totals["misses"]
        totals["hit_rate"] = totals["hits"] / lookups if lookups else 0.0
        return totals


class TenantState:
    """One tenant's live session plus its serving counters."""

    def __init__(
        self,
        profile: TenantProfile,
        *,
        cache: Optional[ScheduleCache] = None,
        metrics: Optional[RuntimeMetrics] = None,
    ):
        self.profile = profile
        self.metrics = metrics if metrics is not None else RuntimeMetrics()
        self.directory = make_directory(
            profile.directory, num_procs=profile.procs, rng=profile.seed
        )
        rng = np.random.default_rng(profile.seed)
        self.sizes = make_workload_sizes(
            profile.workload, self.directory.num_procs, rng=rng
        )
        self.session = AdaptiveSession(
            self.directory,
            self.sizes,
            scheduler=profile.scheduler,
            policy=PolicyConfig(**profile.policy),
            cache=cache,
            metrics=self.metrics,
            rng=rng,
        )
        self.requests_served = 0
        self.restored = False

    # -- cross-tenant batching hooks ----------------------------------------

    @property
    def batchable(self) -> bool:
        """Safe to probe the planning problem outside a tick.

        Deterministic directories answer ``snapshot()`` as a pure
        function of time; RNG-backed flavours (``noisy``/``perturb``)
        redraw per query, so probing them would change the stream the
        session sees and is disabled.
        """
        return self.profile.directory_flavour in RESUMABLE_FLAVOURS

    def planning_problem(self) -> TotalExchangeProblem:
        """The instance this tenant's *next* tick will plan against
        (valid only after the directory has been advanced)."""
        return TotalExchangeProblem.from_snapshot(
            self.directory.snapshot(), self.sizes
        )

    def planning_digest(self, problem: TotalExchangeProblem) -> str:
        return problem_digest(problem)

    def lookup_plan(self, problem: TotalExchangeProblem):
        """This tenant's cached schedule for ``problem``, if any."""
        return self.session.cache.lookup(
            problem,
            self.session._scheduler,
            name=self.session.scheduler_name,
        )

    def seed_plan(self, problem: TotalExchangeProblem, schedule) -> None:
        """Donate a schedule computed by a same-digest cohort leader, so
        this tenant's reschedule becomes a cache hit."""
        self.session.cache.put(
            problem,
            self.session._scheduler,
            schedule,
            name=self.session.scheduler_name,
        )

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe state: profile + session internals + clock."""
        if not self.profile.resumable:
            raise ValueError(
                f"tenant {self.profile.tenant!r} uses directory flavour "
                f"{self.profile.directory_flavour!r}, which redraws from an "
                f"RNG on every query and cannot be resumed bit-identically; "
                f"resumable flavours: {sorted(RESUMABLE_FLAVOURS)}"
            )
        return {
            "profile": self.profile.to_dict(),
            "session": session_state(self.session),
            "directory_time": float(self.directory.time),
            "requests_served": self.requests_served,
        }

    @classmethod
    def restore(
        cls,
        payload: Dict[str, Any],
        *,
        cache: Optional[ScheduleCache] = None,
        metrics: Optional[RuntimeMetrics] = None,
    ) -> "TenantState":
        """Rebuild a tenant from :meth:`snapshot` output.

        The directory is reconstructed from its spec and advanced to the
        recorded clock; the session internals are written back verbatim.
        """
        profile = TenantProfile.from_dict(payload["profile"])
        state = cls(profile, cache=cache, metrics=metrics)
        target = float(payload["directory_time"])
        behind = target - state.directory.time
        if behind < -1e-9:
            raise ValueError(
                f"restored clock {target} is behind the fresh directory's "
                f"{state.directory.time}"
            )
        if behind > 0:
            state.directory.advance(behind)
        restore_session_state(state.session, payload["session"])
        state.requests_served = int(payload.get("requests_served", 0))
        state.restored = True
        return state
