"""Multi-tenant scheduler daemon: the runtime as a long-lived service.

:mod:`repro.runtime` gives one process one
:class:`~repro.runtime.session.AdaptiveSession`; this package puts many
of them behind a wire so scheduling decisions are made *online*, close
to the traffic, with model and cache state amortised across requests —
the long-lived scheduler the performance-prediction line of work
assumes.

Layers
------
:mod:`repro.serve.protocol`
    Versioned request/response dataclasses over a line-delimited JSON
    framing, with strict validation: every malformed frame becomes one
    clean error response, never a daemon crash.
:mod:`repro.serve.tenants`
    Per-tenant state: a :class:`~repro.serve.tenants.TenantProfile`
    (spec strings for scheduler / directory / workload, all parsed by
    the one grammar in :mod:`repro.util.spec`), the session it builds,
    and a :class:`~repro.serve.tenants.ShardedScheduleCache` so hot
    tenants cannot evict each other's plans.
:mod:`repro.serve.state`
    Session snapshot + restore: the daemon drains to a JSON state file
    and a restarted daemon resumes every tenant bit-identically.
:mod:`repro.serve.daemon`
    The event loop: a unix socket (TCP optional), a bounded request
    queue with admission control (reject-with-retry-after when
    saturated), batched scheduling of same-digest requests across
    tenants, backpressure signalling, graceful drain/restart.
:mod:`repro.serve.client`
    Typed sync client plus the load generator the bench and CI drive.
"""

from repro.serve.client import (
    DaemonClient,
    LoadGenerator,
    LoadReport,
)
from repro.serve.daemon import DaemonConfig, SchedulerDaemon
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    ErrorResponse,
    ProtocolError,
    ScheduleRequest,
    ScheduleResponse,
    decode_request,
    decode_response,
    encode_message,
)
from repro.serve.state import restore_session_state, session_state
from repro.serve.tenants import (
    ShardedScheduleCache,
    TenantProfile,
    TenantState,
    make_workload_sizes,
)

__all__ = [
    "DaemonClient",
    "DaemonConfig",
    "ErrorResponse",
    "LoadGenerator",
    "LoadReport",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ScheduleRequest",
    "ScheduleResponse",
    "SchedulerDaemon",
    "ShardedScheduleCache",
    "TenantProfile",
    "TenantState",
    "decode_request",
    "decode_response",
    "encode_message",
    "make_workload_sizes",
    "restore_session_state",
    "session_state",
]
