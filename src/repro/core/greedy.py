"""Greedy scheduling technique (paper Section 4.4).

A cheaper approximation to the matching scheduler.  Each processor
rank-orders its outgoing messages by decreasing communication time.
Steps are then composed: processors take turns (in a fairness-rotated
traversal order) picking the longest not-yet-sent message whose
destination is still free in the current step; a processor that cannot
pick idles for the step.  Fairness rules from the paper:

* a processor that idled in a step picks **first** in the next step;
* if nobody idled, the **last** picker of a step goes first in the next.

Steps may be incomplete, so the total number of steps can exceed ``P``.
As with the matching scheduler, the steps fix each sender's dispatch
order only; start times come from the event-driven executor.

The seed implementation recomposed steps with linear scans over
shrinking Python lists plus an ``O(P)`` ``list.remove`` per pick —
``O(P^3)`` guaranteed.  This version presorts each sender's destinations
once (``O(P^2 log P)`` total, the asymptotic cost on non-adversarial
instances) and walks them through a per-sender linked list with a
step-stamped taken bitmap, so a pick unlinks in ``O(1)`` and each scan
touches only still-unsent destinations — the same traversal the seed
performed, minus the removal and set-churn costs.
``tests/test_golden_equivalence.py`` pins the output to the seed kernel
preserved in :mod:`repro.perf.reference`.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core.problem import TotalExchangeProblem
from repro.sim.engine import SendOrders, execute_steps_strict
from repro.timing.events import Schedule


def greedy_steps(cost: np.ndarray) -> List[List[tuple]]:
    """The composed steps, each a list of ``(src, dst)`` picks.

    Exposed for inspection/testing; most callers want
    :func:`greedy_orders` or :func:`schedule_greedy`.
    """
    cost = np.asarray(cost, dtype=float)
    n = cost.shape[0]

    # Rank-ordered destination arrays: decreasing cost, index tie-break
    # for determinism (stable argsort over ascending indices).  Free
    # (zero-cost) messages are excluded from the step composition; they
    # are appended afterwards by greedy_orders.
    dest_lists: List[List[int]] = []
    heads: List[int] = []
    nexts: List[List[int]] = []
    total = 0
    for src in range(n):
        row = cost[src]
        positive = np.nonzero(row > 0)[0]
        if positive.size:
            rank = np.argsort(-row[positive], kind="stable")
            dsts = positive[rank].tolist()
        else:
            dsts = []
        dest_lists.append(dsts)
        heads.append(0)
        # Singly linked free-list over the rank order: nexts[src][i] is
        # the rank index of src's next unsent destination after i.
        nexts.append(list(range(1, len(dsts) + 1)))
        total += len(dsts)

    # taken[dst] == stamp marks dst as a receiver in the current step;
    # stamping avoids clearing a set (or bitmap) between steps.
    taken = [0] * n
    lens = [len(dsts) for dsts in dest_lists]
    stamp = 0
    order = list(range(n))
    steps: List[List[tuple]] = []
    while total:
        stamp += 1
        picks: List[tuple] = []
        idled: List[int] = []
        picks_append = picks.append
        idled_append = idled.append
        for src in order:
            cur = heads[src]
            if cur >= lens[src]:
                continue  # exhausted senders neither pick nor count as idle
            dsts = dest_lists[src]
            nxt = nexts[src]
            dst = dsts[cur]
            if taken[dst] != stamp:
                # Common case: the head destination is still free.
                heads[src] = nxt[cur]
                taken[dst] = stamp
                picks_append((src, dst))
                continue
            end = lens[src]
            prev = cur
            cur = nxt[cur]
            choice = -1
            while cur < end:
                dst = dsts[cur]
                if taken[dst] != stamp:
                    choice = dst
                    break
                prev = cur
                cur = nxt[cur]
            if choice < 0:
                idled_append(src)
                continue
            nxt[prev] = nxt[cur]
            taken[choice] = stamp
            picks_append((src, choice))
        steps.append(picks)
        total -= len(picks)
        # Fairness rotation for the next step's traversal order.  Picks
        # land in traversal order, so the last picker is picks[-1].
        if idled:
            idle_set = set(idled)
            order = idled + [src for src in order if src not in idle_set]
        elif picks:
            last_picker = picks[-1][0]
            order = [last_picker] + [src for src in order if src != last_picker]
    return steps


def greedy_orders(problem: TotalExchangeProblem) -> SendOrders:
    """Per-sender dispatch orders from the greedy step composition."""
    steps = greedy_steps(problem.cost)
    orders: SendOrders = [[] for _ in range(problem.num_procs)]
    for picks in steps:
        for src, dst in picks:
            orders[src].append(dst)
    # Free messages still need an entry for coverage; they execute at
    # zero cost wherever they appear.  Steps contain only positive-cost
    # picks, so the missing destinations are exactly the zero-cost
    # off-diagonal pairs — appended here in one row-major pass instead of
    # the seed's per-sender membership-set rebuild.
    free_srcs, free_dsts = np.nonzero(problem.cost == 0)
    for src, dst in zip(free_srcs.tolist(), free_dsts.tolist()):
        if src != dst:
            orders[src].append(dst)
    return orders


def schedule_greedy(problem: TotalExchangeProblem) -> Schedule:
    """Greedy schedule, executed order-preserving (paper Figure 7).

    As with the matching scheduler, steps fix the per-port service orders
    and events start as soon as both ports are free — no step barriers.
    Free (zero-cost) messages are appended as a final free step so the
    schedule still covers every pair.
    """
    steps = greedy_steps(problem.cost)
    # A "step" must not repeat ports; zero-duration events never
    # conflict, so emit each free (zero-cost, off-diagonal — never in a
    # composed step) pair as its own singleton step, in row-major order.
    all_steps: List[list] = list(steps)
    free_srcs, free_dsts = np.nonzero(problem.cost == 0)
    for src, dst in zip(free_srcs.tolist(), free_dsts.tolist()):
        if src != dst:
            all_steps.append([(src, dst)])
    # The composed steps are well-formed by construction, so skip the
    # executor's validation pass.
    return execute_steps_strict(
        problem.cost, all_steps, sizes=problem.sizes, validate=False
    )
