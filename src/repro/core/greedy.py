"""Greedy scheduling technique (paper Section 4.4).

A cheaper (``O(P^3)``) approximation to the matching scheduler.  Each
processor rank-orders its outgoing messages by decreasing communication
time.  Steps are then composed: processors take turns (in a fairness-
rotated traversal order) picking the longest not-yet-sent message whose
destination is still free in the current step; a processor that cannot
pick idles for the step.  Fairness rules from the paper:

* a processor that idled in a step picks **first** in the next step;
* if nobody idled, the **last** picker of a step goes first in the next.

Steps may be incomplete, so the total number of steps can exceed ``P``.
As with the matching scheduler, the steps fix each sender's dispatch
order only; start times come from the event-driven executor.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core.problem import TotalExchangeProblem
from repro.sim.engine import SendOrders, execute_steps_strict
from repro.timing.events import Schedule


def greedy_steps(cost: np.ndarray) -> List[List[tuple]]:
    """The composed steps, each a list of ``(src, dst)`` picks.

    Exposed for inspection/testing; most callers want
    :func:`greedy_orders` or :func:`schedule_greedy`.
    """
    cost = np.asarray(cost, dtype=float)
    n = cost.shape[0]

    # Rank-ordered destination lists: decreasing cost, index tie-break for
    # determinism.  Free (zero-cost) messages are excluded from the step
    # composition; they are appended afterwards by greedy_orders.
    remaining: List[List[int]] = []
    for src in range(n):
        dsts = [dst for dst in range(n) if cost[src, dst] > 0]
        dsts.sort(key=lambda dst: (-cost[src, dst], dst))
        remaining.append(dsts)

    order = list(range(n))
    steps: List[List[tuple]] = []
    while any(remaining):
        taken_dsts = set()
        picks: List[tuple] = []
        idled: List[int] = []
        last_picker = None
        for src in order:
            if not remaining[src]:
                continue  # exhausted senders neither pick nor count as idle
            choice = None
            for dst in remaining[src]:
                if dst not in taken_dsts:
                    choice = dst
                    break
            if choice is None:
                idled.append(src)
                continue
            remaining[src].remove(choice)
            taken_dsts.add(choice)
            picks.append((src, choice))
            last_picker = src
        steps.append(picks)
        # Fairness rotation for the next step's traversal order.
        if idled:
            rest = [src for src in order if src not in idled]
            order = idled + rest
        elif last_picker is not None:
            order = [last_picker] + [src for src in order if src != last_picker]
    return steps


def greedy_orders(problem: TotalExchangeProblem) -> SendOrders:
    """Per-sender dispatch orders from the greedy step composition."""
    steps = greedy_steps(problem.cost)
    orders: SendOrders = [[] for _ in range(problem.num_procs)]
    for picks in steps:
        for src, dst in picks:
            orders[src].append(dst)
    # Free messages still need an entry for coverage; they execute at zero
    # cost wherever they appear.
    cost = problem.cost
    for src in range(problem.num_procs):
        present = set(orders[src])
        for dst in range(problem.num_procs):
            if dst != src and dst not in present and cost[src, dst] == 0:
                orders[src].append(dst)
    return orders


def schedule_greedy(problem: TotalExchangeProblem) -> Schedule:
    """Greedy schedule, executed order-preserving (paper Figure 7).

    As with the matching scheduler, steps fix the per-port service orders
    and events start as soon as both ports are free — no step barriers.
    Free (zero-cost) messages are appended as a final free step so the
    schedule still covers every pair.
    """
    steps = greedy_steps(problem.cost)
    cost = problem.cost
    present = {pair for step in steps for pair in step}
    free_step = [
        (src, dst)
        for src in range(problem.num_procs)
        for dst in range(problem.num_procs)
        if src != dst and cost[src, dst] == 0 and (src, dst) not in present
    ]
    # A "step" must not repeat ports; zero-duration events never conflict,
    # so emit each free pair as its own singleton step.
    all_steps = steps + [[pair] for pair in free_step]
    return execute_steps_strict(cost, all_steps, sizes=problem.sizes)
