"""Hierarchical two-level total-exchange scheduling.

The flat open shop heuristic holds ratio ~1.001 to the lower bound but
its list-scheduling loop is interpreted Python per event — ``O(P^2)``
events with an ``O(P)`` argmin each puts P = 1024 at ~6 s and anything
beyond out of reach.  Real wide-area platforms are not flat, though:
they decompose into *logical homogeneous clusters* (Estefanel &
Mounié), groups whose internal links are an order of magnitude faster
— or at least mutually similar — compared to the links between groups.
This scheduler exploits exactly that structure to cut the sequential
part of the problem from ``P`` to the number of clusters ``K``:

1. **cluster detection** — :mod:`repro.core.clustering` partitions the
   nodes by link-cost similarity (largest-gap threshold + single
   linkage), falling back to one cluster when the platform is flat;
2. **block decomposition** — nodes are permuted cluster-by-cluster, so
   the cost matrix becomes a ``K x K`` grid of blocks.  Each block
   ``(A, B)`` (cluster A's senders to cluster B's receivers) is
   scheduled internally by generalized caterpillar rounds: with
   ``L = max(|A|, |B|)``, round ``r`` pairs local sender ``i`` with
   local receiver ``(i + r) mod L`` (kept when it indexes a real node).
   Every round is a partial matching — no sender or receiver appears
   twice — and the ``L`` rounds cover each block pair exactly once.
   Rounds execute back-to-back with a barrier, so a block's internal
   duration is the sum of its round maxima and every event's local
   start offset is the sum of the prior round maxima.  All of it is
   dense numpy gathers — no per-event Python;
3. **cluster-level open shop** — the ``K x K`` matrix of block
   durations is itself a total-exchange instance (cluster = node,
   block = message, diagonal blocks = cluster self-messages occupying
   both cluster ports).  The existing vectorized open shop kernel
   (:func:`repro.core.openshop._openshop_fields`) packs the block
   windows near-optimally in ``O(K^2)`` picks;
4. **splice** — each event's absolute start is its block window start
   (the gateway-aware offset from level 3) plus its local round offset
   (level 2).  Validity is by construction at all three levels: block
   windows never double-book a cluster's send or receive port, and
   rounds never double-book a node's — so no cross-level conflict can
   exist, which the full :mod:`repro.check` oracle confirms on every
   fuzzed instance.

Degenerate shapes collapse to the flat schedulers *bit-identically*:
one cluster delegates to :func:`~repro.core.openshop.schedule_openshop`
wholesale, and ``P`` singleton clusters delegate to the flat matching
path (:func:`~repro.core.matching.schedule_matching_max`).

Complexity: ``O(P^2)`` vectorized work for the blocks plus
``O(K^2 log K)`` interpreted work at the cluster level — at P = 4096
with 64-node clusters that is ~1 s where the flat open shop would need
~7 min.  Quality on genuinely clustered instances stays within a few
percent of the lower bound: the only slack versus the flat open shop is
the per-round barrier (bounded by the intra-block cost spread), and the
cluster level packs with the same near-optimal list scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.clustering import (
    ClusterAssignment,
    DEFAULT_GAP_FACTOR,
    cluster_permutation,
    detect_clusters,
)
from repro.core.openshop import _openshop_fields, schedule_openshop
from repro.core.problem import TotalExchangeProblem
from repro.timing.events import Schedule, schedule_from_unsorted_columns

#: Intra-block kernels accepted by ``intra=``.
INTRA_KERNELS = ("rounds", "greedy")

#: Entry count above which drift comparison subsamples (deterministic).
_DRIFT_SAMPLE_LIMIT = 1_000_000


def _index_grids(L: int, cache: Dict[int, Tuple[np.ndarray, np.ndarray]]):
    """``(shift, rel)`` index grids for block size ``L``, memoized.

    ``shift[r, i] = (i + r) % L`` gathers round ``r``'s receiver per
    sender; ``rel[i, j] = (j - i) % L`` is the round in which pair
    ``(i, j)`` fires.
    """
    grids = cache.get(L)
    if grids is None:
        lane = np.arange(L)
        shift = (lane[None, :] + lane[:, None]) % L
        rel = (lane[None, :] - lane[:, None]) % L
        cache[L] = grids = (shift, rel)
    return grids


def _caterpillar_block(
    sub: np.ndarray,
    cache: Dict[int, Tuple[np.ndarray, np.ndarray]],
    slack: float,
) -> Tuple[float, np.ndarray]:
    """Barrier-round decomposition of one block.

    Returns ``(internal_duration, local_starts)`` where ``local_starts``
    has the block's shape and gives each pair's offset from the block
    window start.  ``slack`` pads every round boundary: splice starts
    are re-associated float sums (``window + offset``), so without a
    strictly positive gap two back-to-back events can land an ulp apart
    in the wrong direction and trip the validity checker's 1e-12
    tolerance.
    """
    m_a, m_b = sub.shape
    L = m_a if m_a >= m_b else m_b
    if m_a == m_b:
        padded = sub
    else:
        padded = np.zeros((L, L))
        padded[:m_a, :m_b] = sub
    shift, rel = _index_grids(L, cache)
    lane = np.arange(L)
    # rounds[r, i] = padded[i, (i + r) % L]; padding contributes 0.
    rounds = padded[lane[None, :], shift]
    durations = rounds.max(axis=1) + slack
    starts = np.empty(L)
    starts[0] = 0.0
    np.cumsum(durations[:-1], out=starts[1:])
    local = starts[rel]
    if m_a != m_b:
        local = local[:m_a, :m_b]
    return float(starts[-1] + durations[-1]), local


def _greedy_block(sub: np.ndarray, slack: float) -> Tuple[float, np.ndarray]:
    """Barrier execution of the greedy step composition on one block.

    An alternative intra-cluster kernel (``intra="greedy"``): steps from
    :func:`repro.core.greedy.greedy_steps` are conflict-free partial
    matchings, executed back-to-back with a barrier exactly like the
    caterpillar rounds.  Zero-cost pairs stay at local offset 0 as
    markers.
    """
    from repro.core.greedy import greedy_steps

    local = np.zeros(sub.shape)
    offset = 0.0
    for step in greedy_steps(sub):
        longest = 0.0
        for src, dst in step:
            local[src, dst] = offset
            duration = sub[src, dst]
            if duration > longest:
                longest = duration
        offset += longest + slack
    return offset, local


@dataclass
class _HierPlanState:
    """Everything needed to delta-repair the last two-level plan.

    ``local`` is the *pristine* per-pair round-offset grid (before block
    windows were added), so a repair can re-splice unchanged blocks
    bit-identically; ``windows`` is the ``K x K`` block window starts
    the cluster-level open shop produced.
    """

    assignment: ClusterAssignment
    perm: np.ndarray
    spans: List[Tuple[int, int]]
    cost_p: np.ndarray  # permuted basis costs
    block_duration: np.ndarray
    local: np.ndarray  # pristine local starts (no windows)
    windows: np.ndarray
    slack: float
    grid_cache: Dict[int, Tuple[np.ndarray, np.ndarray]]
    intra: str
    schedule: Schedule


def _block_internal(
    sub: np.ndarray,
    a: int,
    b: int,
    intra: str,
    grid_cache: Dict[int, Tuple[np.ndarray, np.ndarray]],
    slack: float,
) -> Tuple[float, np.ndarray]:
    """``(duration, local_starts)`` of one block under the intra kernel."""
    if not sub.any():
        # All-free block: zero-duration markers only, any start valid.
        return 0.0, np.zeros(sub.shape)
    if a == b and intra == "greedy":
        return _greedy_block(sub, slack)
    return _caterpillar_block(sub, grid_cache, slack)


def _two_level_schedule(
    problem: TotalExchangeProblem,
    assignment: ClusterAssignment,
    *,
    intra: str = "rounds",
    capture: bool = False,
):
    """Blocks -> cluster-level open shop -> spliced event columns.

    With ``capture`` returns ``(schedule, _HierPlanState)`` instead of
    the bare schedule; the emitted schedule is bit-identical either way.
    """
    cost = problem.cost
    n = problem.num_procs
    k = assignment.num_clusters
    perm, offsets = cluster_permutation(assignment)
    cost_p = cost[np.ix_(perm, perm)]

    # Level 2: per-block internal durations and local start offsets.
    # The boundary slack (relative to the largest cost) keeps every
    # round and window boundary strictly separated despite the splice's
    # re-associated float sums; it inflates the makespan by at most
    # ~P * 1e-9 relative — invisible next to the heuristic gap.
    slack = 1e-9 * float(cost_p.max()) if cost_p.size else 0.0
    block_duration = np.zeros((k, k))
    local_starts = np.zeros((n, n))
    grid_cache: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
    spans = [
        (int(offsets[c]), int(offsets[c + 1])) for c in range(k)
    ]
    for a, (a0, a1) in enumerate(spans):
        for b, (b0, b1) in enumerate(spans):
            sub = cost_p[a0:a1, b0:b1]
            if not sub.any():
                continue  # all-free block: zero-duration markers only
            duration, local = _block_internal(
                sub, a, b, intra, grid_cache, slack
            )
            block_duration[a, b] = duration
            local_starts[a0:a1, b0:b1] = local

    pristine = local_starts.copy() if capture else None

    # Level 3: the K x K block-duration matrix is itself a total
    # exchange — cluster send/receive ports, diagonal blocks as cluster
    # self-messages.  The vectorized open shop kernel packs the windows.
    fields = _openshop_fields(
        block_duration.tolist(),
        block_duration > 0,
        [0.0] * k,
        [0.0] * k,
        [[0.0] * k] * k,
    )
    # Splice: every event starts at its block window plus its local
    # round offset (blocks the kernel never scheduled are all-marker
    # blocks whose events carry zero duration — any start is valid).
    windows = np.zeros((k, k))
    for start, a, b, _, _ in fields:
        if start:
            windows[a, b] = start
            a0, a1 = spans[a]
            b0, b1 = spans[b]
            local_starts[a0:a1, b0:b1] += start

    # Emit the full P^2 grid as flat column views: every off-diagonal
    # pair (zero-cost ones as zero-duration markers, matching the flat
    # schedulers' coverage convention), positive-cost self-messages,
    # and zero-duration diagonal markers (harmless, and keeping the
    # grid dense avoids a 16M-element nonzero + five fancy gathers at
    # P = 4096 — reshape views and repeat/tile are ~10x cheaper).
    starts = local_starts.reshape(-1)
    durations = cost_p.reshape(-1)
    srcs = np.repeat(perm, n)
    dsts = np.tile(perm, n)
    if problem.sizes is not None:
        sizes = problem.sizes[np.ix_(perm, perm)].reshape(-1)
    else:
        sizes = np.broadcast_to(np.float64(0.0), (n * n,))
    schedule = schedule_from_unsorted_columns(
        n, starts, srcs, dsts, durations, sizes
    )
    if not capture:
        return schedule
    state = _HierPlanState(
        assignment=assignment,
        perm=perm,
        spans=spans,
        cost_p=cost_p,
        block_duration=block_duration,
        local=pristine,
        windows=windows,
        slack=slack,
        grid_cache=grid_cache,
        intra=intra,
        schedule=schedule,
    )
    return schedule, state


def schedule_hierarchical(
    problem: TotalExchangeProblem,
    *,
    threshold: Optional[float] = None,
    gap_factor: float = DEFAULT_GAP_FACTOR,
    intra: str = "rounds",
    assignment: Optional[ClusterAssignment] = None,
) -> Schedule:
    """Two-level schedule: cluster-level open shop over block rounds.

    Parameters
    ----------
    threshold, gap_factor:
        Forwarded to :func:`repro.core.clustering.detect_clusters` when
        no explicit ``assignment`` is given.
    intra:
        Intra-cluster (diagonal block) kernel: ``"rounds"`` (caterpillar
        barrier rounds, fully vectorized — the default) or ``"greedy"``
        (greedy step composition under the same barrier execution).
    assignment:
        Reuse a previously detected :class:`ClusterAssignment` (what
        :class:`HierarchicalScheduler` does across serving ticks).

    One cluster degenerates to the flat open shop bit-identically; ``P``
    singleton clusters degenerate to the flat matching path.
    """
    if intra not in INTRA_KERNELS:
        raise ValueError(
            f"unknown intra kernel {intra!r}; known: {', '.join(INTRA_KERNELS)}"
        )
    if assignment is None:
        assignment = detect_clusters(
            problem.cost, threshold=threshold, gap_factor=gap_factor
        )
    elif assignment.num_procs != problem.num_procs:
        raise ValueError(
            f"assignment covers {assignment.num_procs} nodes, problem "
            f"has {problem.num_procs}"
        )
    k = assignment.num_clusters
    if k <= 1:
        return schedule_openshop(problem)
    if k == problem.num_procs:
        from repro.core.matching import schedule_matching_max

        return schedule_matching_max(problem)
    return _two_level_schedule(problem, assignment, intra=intra)


def _relative_drift(basis: np.ndarray, cost: np.ndarray) -> float:
    """Max relative entry change between two cost matrices.

    Subsamples deterministically above :data:`_DRIFT_SAMPLE_LIMIT`
    entries so the reuse decision stays cheap at P = 8192.
    """
    a = basis.reshape(-1)
    b = cost.reshape(-1)
    if a.shape[0] > _DRIFT_SAMPLE_LIMIT:
        stride = a.shape[0] // _DRIFT_SAMPLE_LIMIT + 1
        a = a[::stride]
        b = b[::stride]
    scale = np.maximum(np.abs(a), np.abs(b))
    with np.errstate(invalid="ignore"):
        rel = np.abs(b - a) / np.where(scale > 0, scale, 1.0)
    return float(rel.max()) if rel.size else 0.0


class HierarchicalScheduler:
    """The registry's configurable hierarchical scheduler.

    A callable ``problem -> Schedule`` that additionally *remembers its
    clustering*: re-detecting clusters on every serving tick would throw
    away the whole point of the decomposition, so the assignment is
    reused while the cost matrix stays within ``drift_tolerance``
    (max relative entry change) of the basis it was detected on, and is
    published to a bound :class:`~repro.perf.memo.ScheduleCache` keyed
    by the cost digest so exact re-visits of a past world (sensor-style
    workloads) skip detection even after local state moved on.
    :class:`~repro.runtime.session.AdaptiveSession` binds its own cache
    via :meth:`bind_cluster_cache` (duck-typed, like the fault hooks).

    Counters (``clusterings``, ``cluster_reuses``,
    ``cluster_cache_hits``) expose how much re-clustering was avoided.
    """

    def __init__(
        self,
        *,
        threshold: Optional[float] = None,
        gap_factor: float = DEFAULT_GAP_FACTOR,
        intra: str = "rounds",
        drift_tolerance: float = 0.25,
    ):
        if intra not in INTRA_KERNELS:
            raise ValueError(
                f"unknown intra kernel {intra!r}; "
                f"known: {', '.join(INTRA_KERNELS)}"
            )
        if drift_tolerance < 0:
            raise ValueError(
                f"drift_tolerance must be >= 0, got {drift_tolerance}"
            )
        self.threshold = threshold
        self.gap_factor = gap_factor
        self.intra = intra
        self.drift_tolerance = drift_tolerance
        self._cluster_cache = None
        self._basis_cost: Optional[np.ndarray] = None
        self._basis_assignment: Optional[ClusterAssignment] = None
        self._plan_state: Optional[_HierPlanState] = None
        self.clusterings = 0
        self.cluster_reuses = 0
        self.cluster_cache_hits = 0
        self.delta_repairs = 0
        self.__name__ = "hierarchical"
        self.__qualname__ = "hierarchical"

    def bind_cluster_cache(self, cache) -> None:
        """Share cluster assignments through ``cache``'s aux store."""
        self._cluster_cache = cache

    def assignment_for(
        self, problem: TotalExchangeProblem
    ) -> ClusterAssignment:
        """The cluster assignment for ``problem``, reused when possible."""
        cost = problem.cost
        basis = self._basis_cost
        if (
            basis is not None
            and basis.shape == cost.shape
            and _relative_drift(basis, cost) <= self.drift_tolerance
        ):
            self.cluster_reuses += 1
            return self._basis_assignment

        cache = self._cluster_cache
        digest = None
        if cache is not None:
            from repro.perf.memo import cost_digest

            digest = cost_digest(cost)
            hit = cache.aux_lookup("clusters", digest)
            if hit is not None:
                self.cluster_cache_hits += 1
                self._basis_cost = cost
                self._basis_assignment = hit
                return hit

        assignment = detect_clusters(
            cost, threshold=self.threshold, gap_factor=self.gap_factor
        )
        self.clusterings += 1
        self._basis_cost = cost
        self._basis_assignment = assignment
        if cache is not None:
            cache.aux_put("clusters", digest, assignment)
        return assignment

    def __call__(self, problem: TotalExchangeProblem) -> Schedule:
        assignment = self.assignment_for(problem)
        k = assignment.num_clusters
        if k <= 1 or k == problem.num_procs:
            # Degenerate shapes delegate to the flat schedulers; their
            # plans carry no block state, so flat event-level repair
            # (repro.adaptive.delta) takes over via the session.
            self._plan_state = None
            return schedule_hierarchical(
                problem, intra=self.intra, assignment=assignment
            )
        schedule, state = _two_level_schedule(
            problem, assignment, intra=self.intra, capture=True
        )
        self._plan_state = state
        return schedule

    def delta_repair(self, problem: TotalExchangeProblem, *, validate=True):
        """Block-level delta repair of the last two-level plan.

        Recomputes only blocks containing a repriced pair, re-packs the
        cheap ``K x K`` cluster-level open shop only when some block
        duration moved, and re-splices — clean blocks keep their local
        layout bit-identically.  Returns a
        :class:`repro.adaptive.delta.DeltaRepairResult`, or ``None``
        when no plan state exists or the drift exceeds
        ``drift_tolerance`` (the clustering itself is then suspect and
        the caller should fully reschedule, re-detecting clusters).
        """
        from repro.adaptive.delta import DeltaRepairResult

        state = self._plan_state
        if state is None or problem.num_procs != state.perm.shape[0]:
            return None
        perm = state.perm
        cost_p_new = problem.cost[np.ix_(perm, perm)]
        if _relative_drift(state.cost_p, cost_p_new) > self.drift_tolerance:
            return None
        if np.array_equal(state.cost_p, cost_p_new):
            return DeltaRepairResult(
                schedule=state.schedule,
                dirty_pairs=0,
                reinserted=0,
                frozen=len(state.schedule),
                identical=True,
            )

        changed = cost_p_new != state.cost_p
        spans = state.spans
        block_duration = state.block_duration.copy()
        local = state.local.copy()
        reinserted = 0
        for a, (a0, a1) in enumerate(spans):
            for b, (b0, b1) in enumerate(spans):
                if not changed[a0:a1, b0:b1].any():
                    continue
                duration, block_local = _block_internal(
                    cost_p_new[a0:a1, b0:b1],
                    a,
                    b,
                    state.intra,
                    state.grid_cache,
                    state.slack,
                )
                block_duration[a, b] = duration
                local[a0:a1, b0:b1] = block_local
                reinserted += (a1 - a0) * (b1 - b0)

        k = len(spans)
        if np.array_equal(block_duration, state.block_duration):
            windows = state.windows
        else:
            fields = _openshop_fields(
                block_duration.tolist(),
                block_duration > 0,
                [0.0] * k,
                [0.0] * k,
                [[0.0] * k] * k,
            )
            windows = np.zeros((k, k))
            for start, a, b, _, _ in fields:
                if start:
                    windows[a, b] = start

        pristine = local.copy()
        n = problem.num_procs
        for a, (a0, a1) in enumerate(spans):
            for b, (b0, b1) in enumerate(spans):
                w = windows[a, b]
                if w:
                    local[a0:a1, b0:b1] += w
        starts = local.reshape(-1)
        durations = cost_p_new.reshape(-1)
        srcs = np.repeat(perm, n)
        dsts = np.tile(perm, n)
        if problem.sizes is not None:
            sizes = problem.sizes[np.ix_(perm, perm)].reshape(-1)
        else:
            sizes = np.broadcast_to(np.float64(0.0), (n * n,))
        repaired = schedule_from_unsorted_columns(
            n, starts, srcs, dsts, durations, sizes
        )
        if validate:
            from repro.timing.validate import check_schedule_fast

            check_schedule_fast(repaired, problem.cost)

        state.cost_p = cost_p_new
        state.block_duration = block_duration
        state.local = pristine
        state.windows = windows
        state.schedule = repaired
        self.delta_repairs += 1
        return DeltaRepairResult(
            schedule=repaired,
            dirty_pairs=int(np.count_nonzero(changed)),
            reinserted=reinserted,
            frozen=n * n - reinserted,
            identical=False,
        )
