"""Indirect-routing ablation (paper Section 3.4 design decision).

The paper forbids relaying: "We do not consider 'indirect' schedules
where messages from different sources are combined at intermediate nodes
and then forwarded ...  such combine-and-forward schemes increase the
volume of traffic to be communicated."  This module implements a
restrained version of the rejected alternative so the decision can be
measured: each message may optionally take ONE intermediate hop when the
two-leg time for *its own payload* is substantially cheaper than the
direct transfer.

Leg costs are priced from the directory snapshot
(``T_leg + payload / B_leg``), so relaying a message changes which links
its bytes traverse — exactly the volume increase the paper worries
about.  The relayed instance is scheduled with open-shop-style list
scheduling over all legs (a relayed message's second leg becomes
available when its first completes).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.directory.service import DirectorySnapshot
from repro.timing.events import CommEvent, Schedule


@dataclass(frozen=True)
class RelayPlan:
    """Chosen routes over one instance.

    ``direct`` holds ``(src, dst)`` messages sent as the paper
    prescribes; ``relayed`` holds ``(src, relay, dst)`` triples.
    ``leg_cost[(a, b, payload_key)]`` is not stored — legs are re-priced
    from the snapshot by the executor.
    """

    direct: Tuple[Tuple[int, int], ...]
    relayed: Tuple[Tuple[int, int, int], ...]

    @property
    def relay_count(self) -> int:
        return len(self.relayed)


def _positive_pairs(sizes: np.ndarray) -> List[Tuple[int, int]]:
    pairs = [
        (int(i), int(j))
        for i, j in zip(*np.nonzero(sizes))
        if i != j
    ]
    return pairs


def choose_relays(
    snapshot: DirectorySnapshot,
    sizes: np.ndarray,
    *,
    advantage: float = 2.0,
) -> RelayPlan:
    """Route each message directly or via its best single relay.

    A relay ``k`` is chosen for ``(i, j)`` only when the serial two-leg
    time of the *(i, j) payload* is at least ``advantage``-fold cheaper
    than the direct transfer — a crude guard for the extra port pressure
    relaying creates.
    """
    if advantage < 1.0:
        raise ValueError(f"advantage must be >= 1, got {advantage}")
    sizes = np.asarray(sizes, dtype=float)
    n = snapshot.num_procs
    if sizes.shape != (n, n):
        raise ValueError(
            f"size matrix shape {sizes.shape} does not match {n} processors"
        )
    direct: List[Tuple[int, int]] = []
    relayed: List[Tuple[int, int, int]] = []
    for src, dst in _positive_pairs(sizes):
        payload = float(sizes[src, dst])
        best_relay = None
        best_time = snapshot.transfer_time(src, dst, payload) / advantage
        for k in range(n):
            if k in (src, dst):
                continue
            two_leg = snapshot.transfer_time(
                src, k, payload
            ) + snapshot.transfer_time(k, dst, payload)
            if two_leg <= best_time:
                best_relay = k
                best_time = two_leg
        if best_relay is None:
            direct.append((src, dst))
        else:
            relayed.append((src, best_relay, dst))
    return RelayPlan(direct=tuple(direct), relayed=tuple(relayed))


def schedule_openshop_indirect(
    snapshot: DirectorySnapshot,
    sizes: np.ndarray,
    *,
    advantage: float = 2.0,
    plan: Optional[RelayPlan] = None,
) -> Schedule:
    """Open-shop-style scheduling with optional single-hop relaying.

    Event-driven list scheduling over all legs: a sender picks, among
    its *ready* legs, the one with the earliest-available receiver; a
    relayed message's second leg is released when its first completes.
    Degenerates to plain open shop when the plan relays nothing.  The
    returned schedule contains the physical legs, so a relayed message
    appears as two events; port validity still holds.
    """
    sizes = np.asarray(sizes, dtype=float)
    if plan is None:
        plan = choose_relays(snapshot, sizes, advantage=advantage)
    n = snapshot.num_procs

    # ready[src]: legs (dst, payload_bytes, release_time, follow_up); a
    # leg may not start before its release (a relayed second leg is
    # released when the first leg's data has fully arrived).
    Leg = Tuple[int, float, float, Optional[Tuple[int, int, float]]]
    ready: List[List[Leg]] = [[] for _ in range(n)]
    for src, dst in plan.direct:
        ready[src].append((dst, float(sizes[src, dst]), 0.0, None))
    for src, relay, dst in plan.relayed:
        payload = float(sizes[src, dst])
        ready[src].append((relay, payload, 0.0, (relay, dst, payload)))

    sendavail = [0.0] * n
    recvavail = [0.0] * n
    events: List[CommEvent] = []
    heap = [(0.0, src) for src in range(n) if ready[src]]
    heapq.heapify(heap)

    while heap:
        avail, src = heapq.heappop(heap)
        if avail < sendavail[src] or not ready[src]:
            continue
        # earliest-startable leg: released data + free receiver
        index = min(
            range(len(ready[src])),
            key=lambda i: (
                max(recvavail[ready[src][i][0]], ready[src][i][2]),
                ready[src][i][0],
            ),
        )
        dst, payload, release, follow_up = ready[src].pop(index)
        start = max(sendavail[src], recvavail[dst], release)
        duration = snapshot.transfer_time(src, dst, payload)
        finish = start + duration
        events.append(
            CommEvent(
                start=start, src=src, dst=dst, duration=duration,
                size=payload,
            )
        )
        sendavail[src] = finish
        recvavail[dst] = finish
        if follow_up is not None:
            relay, final_dst, relay_payload = follow_up
            ready[relay].append((final_dst, relay_payload, finish, None))
            heapq.heappush(heap, (max(finish, sendavail[relay]), relay))
        if ready[src]:
            heapq.heappush(heap, (finish, src))

    return Schedule.from_events(n, events)


def relayed_bytes_factor(sizes: np.ndarray, plan: RelayPlan) -> float:
    """Raw traffic-volume increase of the plan (always >= 1.0).

    A relayed payload crosses the network twice; this is the byte-count
    increase the paper's Section 3.4 objection is literally about — and
    it can coexist with a *decrease* in port time when the relay bypasses
    badly violated triangle inequalities.
    """
    sizes = np.asarray(sizes, dtype=float)
    direct_bytes = sum(
        float(sizes[src, dst]) for src, dst in _positive_pairs(sizes)
    )
    if direct_bytes == 0:
        return 1.0
    relayed_extra = sum(
        float(sizes[src, dst]) for src, _relay, dst in plan.relayed
    )
    return (direct_bytes + relayed_extra) / direct_bytes


def relayed_volume_factor(
    snapshot: DirectorySnapshot, sizes: np.ndarray, plan: RelayPlan
) -> float:
    """Extra port time the relays inject (>= 1.0 when relaying pays off).

    Total leg time of the plan divided by the all-direct total — the
    "increase in the volume of traffic" the paper's design note cites.
    """
    sizes = np.asarray(sizes, dtype=float)
    direct_total = sum(
        snapshot.transfer_time(src, dst, float(sizes[src, dst]))
        for src, dst in _positive_pairs(sizes)
    )
    if direct_total == 0:
        return 1.0
    plan_total = sum(
        snapshot.transfer_time(src, dst, float(sizes[src, dst]))
        for src, dst in plan.direct
    ) + sum(
        snapshot.transfer_time(src, relay, float(sizes[src, dst]))
        + snapshot.transfer_time(relay, dst, float(sizes[src, dst]))
        for src, relay, dst in plan.relayed
    )
    return plan_total / direct_total
