"""Preemptive optimum via Birkhoff-von Neumann decomposition.

Preemptive open shop is polynomial (Gonzalez & Sahni, the paper's
reference [11]): the lower bound ``t_lb`` is *achievable* if transfers
may be interrupted and resumed.  The classical construction pads the
cost matrix to constant row/column sums ``t_lb`` and decomposes it into
a convex combination of permutation matrices (Birkhoff-von Neumann);
running each permutation for its weight, one after another, completes
every message in exactly ``t_lb``.

This quantifies the paper's Section 3.4 no-partitioning decision from
the other side: :func:`schedule_preemptive` is what total exchange
*could* achieve with free preemption, and
:func:`preemption_startup_penalty` is what the model says the extra
message start-ups would really cost — usually far more than the
``t_max - t_lb`` gap the heuristics leave on the table.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.core.problem import TotalExchangeProblem
from repro.timing.events import CommEvent, Schedule

#: Numerical floor below which a residual entry counts as zero.
_EPS = 1e-9


def balance_matrix(cost: np.ndarray) -> Tuple[np.ndarray, float]:
    """Pad ``cost`` to constant row/column sums.

    Returns ``(padded, r)`` with every row and column of ``padded``
    summing to ``r = max(row sums, column sums)``.  Greedy water-filling:
    repeatedly pour the smaller of the current row/column deficits into
    any deficient cell; each pour zeroes at least one deficit, so it
    terminates in at most ``2n`` pours.
    """
    cost = np.asarray(cost, dtype=float)
    n = cost.shape[0]
    padded = cost.copy()
    r = float(max(padded.sum(axis=1).max(), padded.sum(axis=0).max()))
    row_deficit = r - padded.sum(axis=1)
    col_deficit = r - padded.sum(axis=0)
    while True:
        rows = np.nonzero(row_deficit > _EPS)[0]
        cols = np.nonzero(col_deficit > _EPS)[0]
        if len(rows) == 0 or len(cols) == 0:
            break
        i, j = int(rows[0]), int(cols[0])
        pour = min(row_deficit[i], col_deficit[j])
        padded[i, j] += pour
        row_deficit[i] -= pour
        col_deficit[j] -= pour
    return padded, r


def bvn_decomposition(
    matrix: np.ndarray, *, max_terms: int = 10_000
) -> List[Tuple[float, np.ndarray]]:
    """Decompose a constant-line-sum matrix into weighted permutations.

    Each step finds a perfect matching on the support of the residual
    (one exists by Birkhoff's theorem while the matrix has equal row and
    column sums), takes the minimum matched entry as the weight, and
    subtracts.  At least one entry zeroes per step, so at most ``n^2``
    terms are produced.
    """
    residual = np.asarray(matrix, dtype=float).copy()
    n = residual.shape[0]
    line_sums = residual.sum(axis=1)
    if not (
        np.allclose(line_sums, line_sums[0], atol=1e-6)
        and np.allclose(residual.sum(axis=0), line_sums[0], atol=1e-6)
    ):
        raise ValueError(
            "matrix must have constant row and column sums; use "
            "balance_matrix first"
        )
    terms: List[Tuple[float, np.ndarray]] = []
    for _ in range(max_terms):
        if residual.max() <= _EPS:
            break
        support = (residual > _EPS).astype(float)
        rows, cols = linear_sum_assignment(support, maximize=True)
        if support[rows, cols].sum() < n - 1e-9:
            raise RuntimeError(
                "no perfect matching on residual support; matrix was not "
                "balanced"
            )
        permutation = np.empty(n, dtype=int)
        permutation[rows] = cols
        weight = float(residual[rows, cols].min())
        residual[rows, cols] -= weight
        terms.append((weight, permutation))
    else:
        raise RuntimeError(f"decomposition exceeded {max_terms} terms")
    return terms


def schedule_preemptive(problem: TotalExchangeProblem) -> Schedule:
    """The preemptive optimum: completion time exactly ``t_lb``.

    Each decomposition term runs as one time slot; within a slot the
    active permutation's pairs transfer simultaneously (a permutation
    never conflicts at a port).  A message's pieces are emitted as
    separate events and clipped to its true remaining cost, so slack
    introduced by the padding shows up as idle time, not traffic.
    """
    cost = problem.cost
    n = problem.num_procs
    if n == 1:
        return Schedule(num_procs=1)
    padded, _ = balance_matrix(cost)
    terms = bvn_decomposition(padded)
    remaining = cost.copy()
    events: List[CommEvent] = []
    clock = 0.0
    for weight, permutation in terms:
        for src in range(n):
            dst = int(permutation[src])
            if src == dst and cost[src, dst] == 0:
                continue
            piece = min(weight, remaining[src, dst])
            if piece <= _EPS:
                continue
            events.append(
                CommEvent(start=clock, src=src, dst=dst, duration=piece)
            )
            remaining[src, dst] -= piece
        clock += weight
    return Schedule.from_events(n, events)


def preemption_counts(problem: TotalExchangeProblem) -> Tuple[int, int]:
    """``(time slots, total message pieces)`` of the preemptive optimum."""
    schedule = schedule_preemptive(problem)
    slots = len({event.start for event in schedule})
    return slots, len(schedule)


def preemption_startup_penalty(
    problem: TotalExchangeProblem, latency: np.ndarray
) -> float:
    """Extra start-up time the preemptive pieces would really cost.

    Every piece beyond a message's first pays that pair's start-up cost
    again under the paper's model — the concrete number behind the
    Section 3.4 no-partitioning argument.
    """
    latency = np.asarray(latency, dtype=float)
    schedule = schedule_preemptive(problem)
    pieces: dict = {}
    for event in schedule:
        pieces[(event.src, event.dst)] = pieces.get((event.src, event.dst), 0) + 1
    return float(
        sum(
            (count - 1) * latency[src, dst]
            for (src, dst), count in pieces.items()
            if count > 1
        )
    )
