"""Additional list-scheduling heuristics for total exchange.

Not part of the paper's evaluated set, but standard comparators that the
ablation benches use to contextualise the paper's algorithms:

* :func:`schedule_lpt` — global longest-processing-time-first list
  scheduling: events sorted by decreasing cost, each dispatched at the
  earliest time its sender and receiver are both free.  The open shop
  heuristic's "earliest available receiver" rule replaced by a global
  length priority.
* :func:`schedule_random_order` — events dispatched in a random order;
  the "no intelligence" floor that any scheduling heuristic must beat.
* :func:`schedule_local_search` — start from the open shop schedule and
  hill-climb over per-sender dispatch orders (adjacent swaps, executed
  with the FIFO engine), a cheap upper-bound tightener for small
  instances.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.core.openshop import schedule_openshop
from repro.core.problem import TotalExchangeProblem
from repro.sim.engine import execute_orders
from repro.timing.events import CommEvent, Schedule
from repro.util.rng import RngLike, to_rng


def _dispatch_in_order(
    problem: TotalExchangeProblem, ordered_pairs: List[Tuple[int, int]]
) -> Schedule:
    """Place events in the given priority order at their earliest slots."""
    n = problem.num_procs
    cost = problem.cost
    sendavail = [0.0] * n
    recvavail = [0.0] * n
    events: List[CommEvent] = []
    for src in range(n):
        for dst in range(n):
            if src != dst and cost[src, dst] == 0:
                events.append(
                    CommEvent(start=0.0, src=src, dst=dst, duration=0.0)
                )
    for src, dst in ordered_pairs:
        start = max(sendavail[src], recvavail[dst])
        finish = start + float(cost[src, dst])
        sendavail[src] = finish
        recvavail[dst] = finish
        events.append(
            CommEvent(
                start=start,
                src=src,
                dst=dst,
                duration=float(cost[src, dst]),
                size=problem.size_of(src, dst),
            )
        )
    return Schedule.from_events(n, events)


def schedule_lpt(problem: TotalExchangeProblem) -> Schedule:
    """Longest-event-first list schedule.

    Greedy argument as in Theorem 3 does not directly apply (an event is
    placed when *its* ports allow, which may leave both ports of other
    events idle), but in practice LPT is a strong heuristic for makespan
    problems and lands between greedy and open shop.
    """
    pairs = problem.positive_events()
    pairs.sort(key=lambda pair: (-problem.cost[pair], pair))
    return _dispatch_in_order(problem, pairs)


def schedule_random_order(
    problem: TotalExchangeProblem, *, rng: RngLike = None
) -> Schedule:
    """Events dispatched in a uniformly random priority order."""
    rng = to_rng(rng)
    pairs = problem.positive_events()
    rng.shuffle(pairs)
    return _dispatch_in_order(problem, pairs)


def schedule_local_search(
    problem: TotalExchangeProblem,
    *,
    max_passes: int = 3,
    seed_schedule: Optional[Schedule] = None,
) -> Schedule:
    """Hill-climb over dispatch orders, seeded by the open shop schedule.

    First-improvement adjacent swaps within each sender's order; each
    candidate is evaluated by one FIFO-engine execution.  Stops at a
    local optimum or after ``max_passes`` sweeps.
    """
    if max_passes < 0:
        raise ValueError(f"max_passes must be >= 0, got {max_passes}")
    seed = seed_schedule if seed_schedule is not None else schedule_openshop(problem)
    orders = [list(sender) for sender in seed.send_orders()]
    best_time = execute_orders(problem, orders, validate=False).completion_time

    for _ in range(max_passes):
        improved = False
        for src in range(problem.num_procs):
            for k in range(len(orders[src]) - 1):
                orders[src][k], orders[src][k + 1] = (
                    orders[src][k + 1],
                    orders[src][k],
                )
                time = execute_orders(
                    problem, orders, validate=False
                ).completion_time
                if time < best_time - 1e-12:
                    best_time = time
                    improved = True
                else:
                    orders[src][k], orders[src][k + 1] = (
                        orders[src][k + 1],
                        orders[src][k],
                    )
        if not improved:
            break
    return execute_orders(problem, orders, validate=False)
