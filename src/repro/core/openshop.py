"""Open shop heuristic scheduler (paper Section 4.5).

Total exchange maps onto open shop scheduling by treating every processor
as two independent entities — a sender (job) and a receiver (machine).
The heuristic is classical greedy list scheduling (after Shmoys, Stein &
Wein's open shop work the paper cites):

* whenever a sender becomes available, it picks the **earliest available
  receiver** in its remaining receiver set and schedules that message at
  ``t = max(sendavail, recvavail)``;
* senders that become available at the same time are processed before any
  later sender (index order breaks ties, the paper allows any order);
* idle time appears in a sender's column only when none of its remaining
  receivers is free.

The result is an explicit timed schedule (no separate execution step).
**Theorem 3**: its completion time is within twice the lower bound — the
idle time of the last-finishing sender is covered by the busy time of its
last receiver, so the makespan is at most one cost-matrix column plus one
row.

Kernel design
-------------

The seed implementation kept each sender's remaining receivers in a
Python set and picked ``min(receivers, key=lambda j: (recvavail[j], j))``
— an interpreted ``O(P)`` scan per event, ``O(P^3)`` overall, which
dominated every benchmark above ``P = 100``.  The rewrite keeps the exact
event semantics but restates the pick as dense array arithmetic:

* receiver availabilities live in a float ndarray ``recv_arr``;
* each sender's remaining-receiver set is a row of a ``P x P`` penalty
  matrix — ``0.0`` where the pair is still unscheduled, ``+inf`` where it
  is done (the boolean bitmap, stored so it adds instead of masks);
* the pick is one fused ``recv_arr + penalty_row`` followed by ``argmin``
  — numpy's first-minimum rule reproduces the seed's
  ``(recvavail[j], j)`` tie-break exactly;
* the sender queue holds exactly one live entry per unfinished sender,
  so the seed's stale-entry guard is unreachable; it is kept as a
  descending-sorted agenda of ``(-avail, -src)`` entries — next sender
  is an O(1) ``pop`` from the end and a reschedule is one
  ``bisect.insort``, cheaper than a heap sift at these sizes.

Events are emitted as raw field tuples and materialised into
:class:`CommEvent` objects only at the API boundary, the same trusted
construction the executors in :mod:`repro.sim.engine` use.
"""

from __future__ import annotations

from bisect import insort
from typing import Iterable, List, Optional, Tuple

import numpy as np

from repro.core.problem import TotalExchangeProblem
from repro.timing.events import (
    CommEvent,
    Schedule,
    schedule_from_fields,
)

# Event field tuples in CommEvent field order: (start, src, dst, duration,
# size).  Tuple lexicographic order therefore equals event order.
EventFields = List[Tuple[float, int, int, float, float]]


def _openshop_fields(
    cost_rows: List[List[float]],
    mask: np.ndarray,
    sendavail: List[float],
    recvavail: List[float],
    size_rows: List[List[float]],
) -> EventFields:
    """List-scheduling kernel emitting event field tuples in pick order.

    ``mask[src, dst]`` marks the still-unscheduled pairs.  ``sendavail``
    and ``recvavail`` are mutated in place to the post-schedule port
    availabilities, exactly like the public API.
    """
    n = len(sendavail)
    # Remaining-receiver bitmaps as additive penalties: 0 keeps a receiver
    # eligible, +inf knocks it out of the argmin.
    penalty = np.where(mask, 0.0, np.inf)
    penalty_rows = list(penalty)
    counts = mask.sum(axis=1).tolist()
    recv_arr = np.array(recvavail, dtype=float)
    buf = np.empty(n)
    buf_argmin = buf.argmin
    npadd = np.add
    inf = np.inf

    # The sender agenda is a descending-sorted list of (-avail, -src):
    # the earliest (avail, src) sender sits at the end, so the next
    # sender is an O(1) pop and a reschedule is one bisect.insort —
    # ~8 tuple comparisons plus a C memmove, measurably cheaper than a
    # heapreplace sift at P = 256.  Negation is exact for floats, and
    # every sender has exactly one live entry, so no entry is ever
    # stale.  Senders that share an instant pop in ascending src order,
    # the seed's tie-break.
    agenda = sorted(
        (-sendavail[src], -src) for src in range(n) if counts[src]
    )
    pop = agenda.pop

    fields: EventFields = []
    fields_append = fields.append
    while agenda:
        neg_avail, neg_src = pop()
        src = -neg_src
        # Earliest available receiver; argmin's first-minimum rule breaks
        # ties toward the lowest index, matching the seed's (time, index)
        # ordering.
        npadd(recv_arr, penalty_rows[src], buf)
        dst = int(buf_argmin())
        send_at = -neg_avail
        recv_at = recvavail[dst]
        start = send_at if send_at >= recv_at else recv_at
        duration = cost_rows[src][dst]
        finish = start + duration
        fields_append((start, src, dst, duration, size_rows[src][dst]))
        sendavail[src] = finish
        recvavail[dst] = finish
        recv_arr[dst] = finish
        penalty_rows[src][dst] = inf
        counts[src] -= 1
        if counts[src]:
            insort(agenda, (-finish, neg_src))
    return fields


def _pair_mask(n: int, pairs: Iterable[Tuple[int, int]]) -> np.ndarray:
    """Boolean ``[src, dst]`` bitmap of the pairs to schedule."""
    mask = np.zeros((n, n), dtype=bool)
    pair_list = list(pairs)
    if pair_list:
        arr = np.asarray(pair_list, dtype=np.intp)
        mask[arr[:, 0], arr[:, 1]] = True
    return mask


def _size_rows(n: int, sizes: Optional[np.ndarray]) -> List[List[float]]:
    if sizes is None:
        # One shared all-zero row: the kernel only reads it.
        row = [0.0] * n
        return [row] * n
    return np.asarray(sizes, dtype=float).tolist()


def openshop_events(
    cost: np.ndarray,
    pairs: Iterable[Tuple[int, int]],
    sendavail: List[float],
    recvavail: List[float],
    *,
    sizes: Optional[np.ndarray] = None,
) -> List[CommEvent]:
    """Open shop list scheduling of ``pairs`` from a warm state.

    The core of the paper's Section 4.5 algorithm, exposed with explicit
    availability vectors so callers can warm-start it: checkpoint
    rescheduling resumes mid-collective (ports busy at different times),
    and critical-resource scheduling chains two phases.  ``sendavail`` /
    ``recvavail`` are mutated in place to the post-schedule port
    availabilities.

    Events are returned in pick order (not time-sorted), exactly as the
    seed implementation emitted them.
    """
    n = len(sendavail)
    cost_rows = np.asarray(cost, dtype=float).tolist()
    fields = _openshop_fields(
        cost_rows,
        _pair_mask(n, pairs),
        sendavail,
        recvavail,
        _size_rows(n, sizes),
    )
    # Trusted CommEvent construction: the kernel guarantees the field
    # invariants, so skip the dataclass constructor and validation.
    new = object.__new__
    events: List[CommEvent] = []
    append = events.append
    for start, src, dst, duration, size in fields:
        event = new(CommEvent)
        d = event.__dict__
        d["start"] = start
        d["src"] = src
        d["dst"] = dst
        d["duration"] = duration
        d["size"] = size
        append(event)
    return events


def schedule_openshop(problem: TotalExchangeProblem) -> Schedule:
    """Open shop heuristic schedule (paper Figure 8)."""
    cost = problem.cost
    n = problem.num_procs
    cost_rows = cost.tolist()
    size_rows = _size_rows(n, problem.sizes)

    # Free messages appear as zero-duration markers so coverage holds.
    zero_mask = cost == 0
    np.fill_diagonal(zero_mask, False)
    fields: EventFields = [
        (0.0, src, dst, 0.0, size_rows[src][dst])
        for src, dst in zip(*(idx.tolist() for idx in np.nonzero(zero_mask)))
    ]

    fields += _openshop_fields(
        cost_rows,
        cost > 0,
        [0.0] * n,
        [0.0] * n,
        size_rows,
    )
    # Fields are in pick order; the lazy Schedule sorts them only if the
    # events are ever materialised (scoring needs just completion_time).
    return schedule_from_fields(n, fields)


def openshop_bound(problem: TotalExchangeProblem) -> float:
    """Theorem 3's guarantee: ``2 x`` the instance lower bound."""
    return 2.0 * problem.lower_bound()
