"""Open shop heuristic scheduler (paper Section 4.5).

Total exchange maps onto open shop scheduling by treating every processor
as two independent entities — a sender (job) and a receiver (machine).
The heuristic is classical greedy list scheduling (after Shmoys, Stein &
Wein's open shop work the paper cites):

* whenever a sender becomes available, it picks the **earliest available
  receiver** in its remaining receiver set and schedules that message at
  ``t = max(sendavail, recvavail)``;
* senders that become available at the same time are processed before any
  later sender (index order breaks ties, the paper allows any order);
* idle time appears in a sender's column only when none of its remaining
  receivers is free.

The result is an explicit timed schedule (no separate execution step).
**Theorem 3**: its completion time is within twice the lower bound — the
idle time of the last-finishing sender is covered by the busy time of its
last receiver, so the makespan is at most one cost-matrix column plus one
row.
"""

from __future__ import annotations

import heapq
from typing import Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.problem import TotalExchangeProblem
from repro.timing.events import CommEvent, Schedule


def openshop_events(
    cost: np.ndarray,
    pairs: Iterable[Tuple[int, int]],
    sendavail: List[float],
    recvavail: List[float],
    *,
    sizes: Optional[np.ndarray] = None,
) -> List[CommEvent]:
    """Open shop list scheduling of ``pairs`` from a warm state.

    The core of the paper's Section 4.5 algorithm, exposed with explicit
    availability vectors so callers can warm-start it: checkpoint
    rescheduling resumes mid-collective (ports busy at different times),
    and critical-resource scheduling chains two phases.  ``sendavail`` /
    ``recvavail`` are mutated in place to the post-schedule port
    availabilities.
    """
    n = len(sendavail)
    recv_sets: List[Set[int]] = [set() for _ in range(n)]
    for src, dst in pairs:
        recv_sets[src].add(dst)
    events: List[CommEvent] = []

    # Min-heap of (availability time, sender).  A sender is re-queued
    # with its new availability after every scheduled message and is
    # dropped once its receiver set empties.
    heap = [(sendavail[src], src) for src in range(n) if recv_sets[src]]
    heapq.heapify(heap)

    while heap:
        avail, src = heapq.heappop(heap)
        if avail < sendavail[src] or not recv_sets[src]:
            continue  # stale entry
        receivers = recv_sets[src]
        # Earliest available receiver; lowest index breaks ties.
        dst = min(receivers, key=lambda j: (recvavail[j], j))
        start = max(sendavail[src], recvavail[dst])
        duration = float(cost[src, dst])
        finish = start + duration
        events.append(
            CommEvent(
                start=start,
                src=src,
                dst=dst,
                duration=duration,
                size=float(sizes[src, dst]) if sizes is not None else 0.0,
            )
        )
        sendavail[src] = finish
        recvavail[dst] = finish
        receivers.discard(dst)
        if receivers:
            heapq.heappush(heap, (finish, src))
    return events


def schedule_openshop(problem: TotalExchangeProblem) -> Schedule:
    """Open shop heuristic schedule (paper Figure 8)."""
    cost = problem.cost
    n = problem.num_procs
    events: List[CommEvent] = []

    # Free messages appear as zero-duration markers so coverage holds.
    for src in range(n):
        for dst in range(n):
            if src != dst and cost[src, dst] == 0:
                events.append(
                    CommEvent(start=0.0, src=src, dst=dst, duration=0.0,
                              size=problem.size_of(src, dst))
                )

    events += openshop_events(
        cost,
        problem.positive_events(),
        [0.0] * n,
        [0.0] * n,
        sizes=problem.sizes,
    )
    return Schedule.from_events(n, events)


def openshop_bound(problem: TotalExchangeProblem) -> float:
    """Theorem 3's guarantee: ``2 x`` the instance lower bound."""
    return 2.0 * problem.lower_bound()
