"""Message-partitioning ablation (paper Section 3.4 design decision).

The paper forbids splitting messages: "Since the start-up overhead is
incurred for each message transmission, such a partitioning would
increase the start-up overheads."  This module implements the rejected
alternative so the decision can be measured: every message is split into
``k`` equal chunks, each chunk pays the full start-up cost ``T_ij``, and
the chunked instance is scheduled with any of the standard algorithms.

Splitting multiplies the total start-up cost by ``k`` but lets a long
transfer interleave with others at both ports — the classic
pipelining-vs-overhead trade-off.  With the paper's parameter ranges
(10-50 ms start-ups), the bench shows the paper's choice is right for
small messages and nearly neutral for large ones.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.core.openshop import openshop_events
from repro.core.problem import TotalExchangeProblem
from repro.directory.service import DirectorySnapshot
from repro.timing.events import CommEvent, Schedule


def partitioned_chunks(
    snapshot: DirectorySnapshot,
    sizes: np.ndarray,
    chunks: int,
) -> Tuple[np.ndarray, List[Tuple[int, int]]]:
    """Chunked per-transfer costs and the expanded event list.

    Returns ``(chunk_cost, events)`` where ``chunk_cost[i, j]`` is the
    time of ONE chunk of the (i, j) message (full start-up plus a
    ``1/chunks`` share of the bytes) and ``events`` repeats each positive
    pair ``chunks`` times.
    """
    if chunks < 1:
        raise ValueError(f"chunks must be >= 1, got {chunks}")
    sizes = np.asarray(sizes, dtype=float)
    n = snapshot.num_procs
    if sizes.shape != (n, n):
        raise ValueError(
            f"size matrix shape {sizes.shape} does not match {n} processors"
        )
    with np.errstate(invalid="ignore"):
        chunk_cost = snapshot.latency + (sizes / chunks) / snapshot.bandwidth
    chunk_cost = np.where(sizes == 0, 0.0, chunk_cost)
    np.fill_diagonal(chunk_cost, 0.0)
    events = [
        (int(i), int(j))
        for i, j in zip(*np.nonzero(chunk_cost))
        for _ in range(chunks)
    ]
    return chunk_cost, events


def schedule_openshop_partitioned(
    snapshot: DirectorySnapshot,
    sizes: np.ndarray,
    *,
    chunks: int,
) -> Schedule:
    """Open shop scheduling of the chunked instance.

    The chunk events of one (src, dst) pair are independent open shop
    tasks: the receiver may interleave chunks of different senders (each
    chunk is a complete message at the protocol level).  The returned
    schedule contains one event per chunk; completion time is directly
    comparable with the unpartitioned schedule of the same traffic.
    """
    chunk_cost, events = partitioned_chunks(snapshot, sizes, chunks)
    n = snapshot.num_procs
    # openshop_events schedules a *set* of (src, dst) pairs; chunk
    # repetitions need explicit handling — feed it the pair multiset by
    # layering: one openshop pass per chunk round, warm-starting ports.
    sendavail = [0.0] * n
    recvavail = [0.0] * n
    all_events: List[CommEvent] = []
    pairs = sorted(set(events))
    for _ in range(chunks):
        all_events += openshop_events(
            chunk_cost, pairs, sendavail, recvavail
        )
    return Schedule.from_events(n, all_events)


def partitioning_overhead(
    snapshot: DirectorySnapshot, sizes: np.ndarray, chunks: int
) -> float:
    """Extra start-up seconds the chunked instance pays in total."""
    sizes = np.asarray(sizes, dtype=float)
    positive = (sizes > 0) & ~np.eye(snapshot.num_procs, dtype=bool)
    return float((chunks - 1) * snapshot.latency[positive].sum())
