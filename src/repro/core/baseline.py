"""Baseline caterpillar schedule (paper Section 4.2).

The classical homogeneous total-exchange algorithm: in step ``j`` (for
``0 <= j < P``) every node ``P_i`` sends to ``P_(i+j) mod P``.  Each step
is a permutation, so a homogeneous system with uniform message sizes sees
no contention.  Under heterogeneity the fixed order stalls: long events
in early steps delay every later step.

Two execution semantics are provided:

* :func:`schedule_baseline` — **barrier-synchronised** steps (each step
  costs its longest event), the way the caterpillar runs in the
  lockstep/SIMD-style systems it comes from (the paper's reference [13]
  is a SIMD FFT library).  This is the variant whose degradation matches
  the paper's Section 5 figures (ratios of several x the lower bound,
  growing with heterogeneity).
* :func:`schedule_baseline_nosync` — **order-preserving without
  barriers**: each event starts when its sender finished its previous
  step's send and its receiver finished its previous step's receive.
  These are the semantics of Theorem 2's dependence-graph analysis, whose
  ``P/2 x`` lower-bound ratio is provable and tight
  (:func:`repro.core.problem.tight_baseline_instance`).

Step 0 is the self-permutation; with the usual zero diagonal it is free,
and it is kept so adversarial instances with self-messages execute
faithfully.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.problem import TotalExchangeProblem
from repro.sim.engine import (
    SendOrders,
    execute_steps_barrier,
    execute_steps_strict,
)
from repro.timing.events import Schedule


def baseline_steps(num_procs: int) -> List[List[Tuple[int, int]]]:
    """Caterpillar steps: step ``j`` pairs each ``i`` with ``(i+j) mod P``."""
    if num_procs <= 0:
        raise ValueError(f"num_procs must be positive, got {num_procs}")
    return [
        [(i, (i + j) % num_procs) for i in range(num_procs)]
        for j in range(num_procs)
    ]


def baseline_orders(num_procs: int) -> SendOrders:
    """Per-sender destination lists of the caterpillar schedule."""
    if num_procs <= 0:
        raise ValueError(f"num_procs must be positive, got {num_procs}")
    return [
        [(i + j) % num_procs for j in range(num_procs)]
        for i in range(num_procs)
    ]


def schedule_baseline(problem: TotalExchangeProblem) -> Schedule:
    """Barrier-synchronised caterpillar (the paper's simulated baseline)."""
    return execute_steps_barrier(
        problem.cost, baseline_steps(problem.num_procs), sizes=problem.sizes
    )


def schedule_baseline_nosync(problem: TotalExchangeProblem) -> Schedule:
    """Order-preserving caterpillar (Theorem 2's dependence-graph model)."""
    return execute_steps_strict(
        problem.cost, baseline_steps(problem.num_procs), sizes=problem.sizes
    )
