"""Core contribution: scheduling algorithms for total exchange.

Implements the paper's Section 4: the baseline caterpillar schedule, the
matching-based schedulers (maximum and minimum weight), the greedy
technique, the open shop heuristic, and an exact branch-and-bound solver
for small instances.  All schedulers share a uniform interface: they take
a :class:`~repro.core.problem.TotalExchangeProblem` and return a timed
:class:`~repro.timing.events.Schedule` (validated by
:func:`repro.timing.validate.check_schedule`).
"""

from repro.core.baseline import (
    baseline_orders,
    baseline_steps,
    schedule_baseline,
    schedule_baseline_nosync,
)
from repro.core.clustering import ClusterAssignment, detect_clusters
from repro.core.exact import branch_and_bound, schedule_optimal
from repro.core.greedy import greedy_orders, schedule_greedy
from repro.core.hierarchical import (
    HierarchicalScheduler,
    schedule_hierarchical,
)
from repro.core.matching import (
    matching_orders,
    schedule_matching_max,
    schedule_matching_min,
)
from repro.core.openshop import schedule_openshop
from repro.core.problem import (
    TotalExchangeProblem,
    example_problem,
    tight_baseline_instance,
)
from repro.core.registry import (
    SchedulerSpec,
    format_scheduler_spec,
    get_scheduler,
    get_spec,
    iter_specs,
    make_scheduler,
    parse_scheduler_spec,
    scheduler_names,
)

__all__ = [
    "ClusterAssignment",
    "HierarchicalScheduler",
    "SchedulerSpec",
    "TotalExchangeProblem",
    "baseline_orders",
    "baseline_steps",
    "branch_and_bound",
    "detect_clusters",
    "schedule_baseline_nosync",
    "example_problem",
    "format_scheduler_spec",
    "get_scheduler",
    "get_spec",
    "greedy_orders",
    "iter_specs",
    "make_scheduler",
    "matching_orders",
    "parse_scheduler_spec",
    "schedule_baseline",
    "schedule_greedy",
    "schedule_hierarchical",
    "schedule_matching_max",
    "schedule_matching_min",
    "schedule_openshop",
    "schedule_optimal",
    "scheduler_names",
    "tight_baseline_instance",
]
