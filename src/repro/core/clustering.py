"""Logical homogeneous cluster detection from pairwise costs.

Wide-area platforms are not flat: Estefanel & Mounié ("Identifying
Logical Homogeneous Clusters for Efficient Wide-area Communications")
observe that real heterogeneous systems decompose into *logical
clusters* — groups of nodes whose mutual links are an order of magnitude
faster than the links between groups.  This module recovers that
structure from nothing but the cost matrix the schedulers already use:

1. **pairwise link weight** — ``w[i, j] = max(cost[i, j], cost[j, i])``,
   the symmetrized per-message time; ``max`` so a pair only counts as
   close when *both* directions are cheap (asymmetric fast-up/slow-down
   links must not merge clusters);
2. **threshold detection** — positive weights are log-transformed and
   the largest gap in their sorted values is found (on a deterministic
   subsample above :data:`SAMPLE_LIMIT` entries, so detection stays
   ``O(P^2)`` at worst).  The threshold is the geometric mean across the
   gap.  A gap is only believed when the jump is at least
   ``gap_factor``x — below that the platform has no two-level structure
   and the whole system is one cluster;
3. **single-linkage components** — nodes whose weight is at or below
   the threshold are linked; connected components (via
   ``scipy.sparse.csgraph``) are the clusters, relabelled to contiguous
   ids in first-node order so the assignment is deterministic.

Degenerate cases resolve conservatively: an empty/all-zero matrix, a
single distinct cost level, or no convincing gap all yield **one**
cluster (the hierarchical scheduler then degenerates to the flat open
shop — never worse than not clustering).  An explicit ``threshold``
below every weight yields ``P`` singletons.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

#: Above this many off-diagonal entries the gap detector subsamples.
SAMPLE_LIMIT = 100_000

#: Minimum multiplicative jump between the "intra" and "inter" cost
#: levels for the gap detector to believe the platform is two-level.
DEFAULT_GAP_FACTOR = 4.0


@dataclass(frozen=True)
class ClusterAssignment:
    """A partition of ``num_procs`` nodes into logical clusters.

    Attributes
    ----------
    labels:
        Cluster id per node, contiguous ids ``0..num_clusters-1``
        ordered by first appearance (node 0's cluster is cluster 0).
    threshold:
        The link-weight threshold that produced the partition
        (``inf`` when everything merged into one cluster without one).
    """

    labels: np.ndarray
    threshold: float

    def __post_init__(self) -> None:
        labels = np.asarray(self.labels, dtype=np.intp)
        labels.flags.writeable = False
        object.__setattr__(self, "labels", labels)

    @property
    def num_procs(self) -> int:
        return int(self.labels.shape[0])

    @property
    def num_clusters(self) -> int:
        return int(self.labels.max()) + 1 if self.labels.size else 0

    def members(self) -> List[np.ndarray]:
        """Per-cluster node index arrays, ascending within each cluster."""
        order = np.argsort(self.labels, kind="stable")
        sizes = np.bincount(self.labels, minlength=self.num_clusters)
        out: List[np.ndarray] = []
        offset = 0
        for size in sizes.tolist():
            out.append(order[offset:offset + size])
            offset += size
        return out

    def sizes(self) -> np.ndarray:
        """Cluster sizes, indexed by cluster id."""
        return np.bincount(self.labels, minlength=self.num_clusters)


def link_weights(cost: np.ndarray) -> np.ndarray:
    """Symmetrized pairwise link weight: ``max`` of the two directions.

    The diagonal is zeroed — self-messages say nothing about locality.
    """
    cost = np.asarray(cost, dtype=float)
    weights = np.maximum(cost, cost.T)
    np.fill_diagonal(weights, 0.0)
    return weights


def _sample_positive(weights: np.ndarray, limit: int) -> np.ndarray:
    """A deterministic sample of the positive off-diagonal weights."""
    n = weights.shape[0]
    if n * n <= limit:
        flat = weights[np.triu_indices(n, k=1)]
    else:
        # Strided subsample of the upper triangle: deterministic, spread
        # across all rows, and O(limit) regardless of P.
        stride = max(1, (n * n) // limit)
        flat = weights.reshape(-1)[::stride]
    return flat[flat > 0]


def detect_threshold(
    cost: np.ndarray,
    *,
    gap_factor: float = DEFAULT_GAP_FACTOR,
    sample_limit: int = SAMPLE_LIMIT,
) -> Optional[float]:
    """The intra/inter cost threshold, or None without a convincing gap.

    Finds the largest gap in the sorted logs of the (sampled) positive
    link weights and returns the geometric midpoint when the jump is at
    least ``gap_factor``x.
    """
    if gap_factor <= 1.0:
        raise ValueError(f"gap_factor must be > 1, got {gap_factor}")
    values = _sample_positive(link_weights(cost), sample_limit)
    if values.size < 2:
        return None
    logs = np.sort(np.log(values))
    gaps = np.diff(logs)
    if gaps.size == 0:
        return None
    best = int(np.argmax(gaps))
    if gaps[best] < np.log(gap_factor):
        return None
    return float(np.exp(0.5 * (logs[best] + logs[best + 1])))


def detect_clusters(
    cost: np.ndarray,
    *,
    threshold: Optional[float] = None,
    gap_factor: float = DEFAULT_GAP_FACTOR,
    sample_limit: int = SAMPLE_LIMIT,
) -> ClusterAssignment:
    """Partition the nodes of ``cost`` into logical homogeneous clusters.

    Parameters
    ----------
    threshold:
        Explicit link-weight threshold: nodes with symmetrized cost at
        or below it share a cluster.  ``None`` auto-detects via the
        largest-gap heuristic; when no convincing gap exists the whole
        system is one cluster.
    """
    cost = np.asarray(cost, dtype=float)
    n = cost.shape[0]
    if cost.ndim != 2 or cost.shape != (n, n):
        raise ValueError(f"cost must be a square matrix, got {cost.shape}")
    if n == 0:
        return ClusterAssignment(
            labels=np.empty(0, dtype=np.intp), threshold=float("inf")
        )
    if threshold is None:
        threshold = detect_threshold(
            cost, gap_factor=gap_factor, sample_limit=sample_limit
        )
        if threshold is None:
            # No two-level structure: one cluster, so the hierarchical
            # scheduler falls back to the flat open shop wholesale.
            return ClusterAssignment(
                labels=np.zeros(n, dtype=np.intp), threshold=float("inf")
            )
    threshold = float(threshold)

    weights = link_weights(cost)
    # A zero weight means *no demand* in either direction — that is no
    # evidence of locality, so only positive weights at or below the
    # threshold link two nodes.
    adjacency = (weights > 0) & (weights <= threshold)
    labels = _connected_components(adjacency)
    return ClusterAssignment(labels=labels, threshold=threshold)


def _connected_components(adjacency: np.ndarray) -> np.ndarray:
    """Component labels of a boolean adjacency matrix, relabelled to
    contiguous ids in first-node order."""
    from scipy.sparse import csr_matrix
    from scipy.sparse.csgraph import connected_components

    n = adjacency.shape[0]
    _, raw = connected_components(csr_matrix(adjacency), directed=False)
    # Relabel deterministically: cluster ids in order of first node.
    _, first_index, labels = np.unique(
        raw, return_index=True, return_inverse=True
    )
    order = np.argsort(np.argsort(first_index))
    return order[labels].astype(np.intp)


def cluster_permutation(
    assignment: ClusterAssignment,
) -> Tuple[np.ndarray, np.ndarray]:
    """``(perm, offsets)`` grouping nodes by cluster.

    ``perm`` lists original node indices cluster by cluster (ascending
    within each cluster); ``offsets[c]:offsets[c+1]`` slices cluster
    ``c``'s span of the permuted index space.
    """
    perm = np.argsort(assignment.labels, kind="stable")
    sizes = assignment.sizes()
    offsets = np.concatenate(([0], np.cumsum(sizes)))
    return perm, offsets
